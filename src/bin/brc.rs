//! `brc` — the branch-reordering compiler driver.
//!
//! Compile a mini-C file, optionally profile-and-reorder it, run it, and
//! report dynamic statistics:
//!
//! ```text
//! brc prog.c --input data.txt                     # compile + run
//! brc prog.c --input data.txt --reorder           # train on the input itself
//! brc prog.c --input t.txt --train p.txt --reorder --stats
//! brc prog.c --set III --dump-ir > prog.ir        # show optimized IR
//! brc prog.ir --from-ir --input data.txt          # run dumped IR directly
//! brc lint prog.c                                 # static analysis report
//! brc lint prog.c --deny BR0101 --deny BR0102     # fail on specific codes
//! brc validate prog.c --train data.txt            # prove the reordering
//! brc validate --suite                            # all 17 workloads x 4 sets
//! brc prove prog.c --train data.txt               # certify + emit proof certs
//! brc prove --suite                               # certify the whole grid
//! brc prove --witness-demo out/                   # refute a seeded corruption
//! brc check cert.brcert                           # independently re-check
//! brc check --tamper-demo                         # show tamper rejection
//! brc adapt                                       # adaptive-vs-static report
//! brc adapt charclass --size 65536 --csv          # one scenario, CSV output
//! brc fuzz --seeds 10000                          # differential fuzzing
//! brc fuzz --replay fuzz/corpus/repro.bir         # re-check a saved repro
//! ```
//!
//! Subcommands:
//! * `lint FILE`     run the `br-analysis` lint passes (shadowed ranges,
//!   statically decided branches, redundant compares) plus the full IR
//!   verifier, and print every finding as a rustc-style diagnostic.
//!   `--deny CODE` (repeatable, or `--deny all`) turns the named
//!   diagnostic codes into hard failures (exit 1); the code table lives
//!   in DESIGN.md §13.
//! * `validate FILE` run the reordering pipeline with the translation
//!   validator on and report the equivalence proof per sequence; every
//!   failing sequence is reported in one run with its stage code
//!   (BR0201–BR0204). Exit 1 on proof failure, exit 2 on parse or
//!   compile failure.
//! * `prove FILE`    run the pipeline in *certify* mode: every committed
//!   reordering is proven by the certifying symbolic prover and its
//!   proof certificate re-checked on the spot by the independent
//!   checker (double entry). `--emit-certs DIR` writes the certificates
//!   out. `--suite` certifies all 17 workloads × Sets I–IV.
//!   `--witness-demo DIR` seeds an illegal target swap, shows the
//!   refutation's concrete witness diverging under the reference
//!   interpreter, and writes it as a replayable fuzz corpus entry.
//! * `check FILE`    independently re-check a saved certificate with
//!   `br_analysis::cert::check` (no prover code involved). Exit 0
//!   accepted, 1 rejected (`BR0301`), 2 unparseable. `--tamper-demo`
//!   shows every single-line tampering of a fresh certificate being
//!   rejected.
//! * `validate --suite` sweep all 17 paper workloads under heuristic
//!   Sets I–IV, proving every applied sequence equivalent, then
//!   demonstrate that an intentionally corrupted replica is rejected
//!   with a stage-naming diagnostic.
//! * `adapt [SCENARIO]` run the continuous-reoptimization runtime over
//!   the phase-shifting scenarios, racing it against a train-once
//!   deployment and a per-phase offline oracle (`--size N` bytes per
//!   phase, `--epoch N` blocks per adaptation epoch, `--exhaustive`
//!   ordering search, `--opttree` Set IV dispatch structures at swap
//!   time, `--csv` machine-readable output).
//! * `sweep` run the parallel reproduction engine: the full workload ×
//!   heuristic-set × seed grid fanned across cores with a
//!   content-addressed artifact cache, writing Tables 4–8 and the
//!   sequence-length figures into `results/` deterministically
//!   (`--threads N` workers, `--seeds K` input replications, `--quick`
//!   reduced input sizes, `--smoke` the tiny CI grid, `--exhaustive`
//!   ordering search, `--out DIR`, `--cache DIR`, `--no-cache`).
//! * `fuzz` run the generative differential tester: random verified
//!   modules through the reference interpreter, the pre-decoded fast
//!   path, and the reordering pipeline under all three heuristic sets,
//!   flagging any behavioral divergence, auto-reducing it, and writing
//!   a replayable repro into the corpus (`--seeds N`, `--start-seed N`,
//!   `--jobs N`, `--time SECS`, `--smoke` small programs for CI,
//!   `--corpus DIR`, `--no-reduce`, `--replay FILE` re-check a repro).
//! * `serve` run the reordering-as-a-service daemon: `reorder`,
//!   `measure`, and `profile` endpoints over length-prefixed TCP
//!   frames, with a bounded admission queue, per-request deadlines,
//!   panic isolation, a content-addressed response cache, and
//!   plaintext `health`/`metrics` (`--addr HOST:PORT`, `--threads N`,
//!   `--queue N`, `--deadline-ms N`, `--cache DIR`, `--no-cache`,
//!   `--debug-endpoints`, `--protocols both|brs1|brs2`). Speaks both
//!   the `brs1` text protocol and the `brs2` binary protocol (module
//!   interning, batching). Drains gracefully on SIGTERM or a
//!   `shutdown` frame.
//! * `cluster` run the sharded service: N `brc serve` child processes
//!   behind the consistent-hash `brs2` router, with cache replication
//!   to ring successors, shard health probes (eject/readmit), a
//!   router-side hot-key memo, and a propagated graceful drain
//!   (`--addr`, `--shards N`, `--base-port P`, `--cache DIR`,
//!   `--no-cache`, `--threads N`, `--queue N`, `--deadline-ms N`,
//!   `--no-replicate`, `--hot-threshold N`).
//! * `loadgen` drive a running daemon or cluster with the 17-workload
//!   corpus. Closed loop by default (`--conns N`, `--passes N`); open
//!   loop with `--open --rate R` (or `--rates R1,R2,...` for the
//!   latency-vs-offered-load sweep), scheduling requests on a shared
//!   clock and charging latency from the *scheduled* time. `--brs2`
//!   switches to the binary protocol, `--batch K` packs K requests
//!   per frame, `--procs N` fans the open loop across N worker
//!   processes, `--curves FILE` writes the sweep as CSV,
//!   `--assert-throughput N` exits 1 below N req/s. Also `--train N`,
//!   `--input N`, `--duration-ms N`, `--reorder-only`, `--smoke` the
//!   CI two-pass contract, `--shutdown` drain the daemon afterwards.
//!
//! Flags:
//! * `--input FILE`  program stdin (default: empty)
//! * `--train FILE`  training input for `--reorder` (default: the input)
//! * `--set I|II|III|IV` switch heuristics (default I)
//! * `--layout off|greedy|exttsp` block-layout pass after reordering
//!   (default greedy; `exttsp` is the profile-guided ext-TSP pass)
//! * `--reorder`     run the profile-guided reordering pipeline
//! * `--common`      also reorder common-successor sequences
//! * `--no-opt`      skip conventional optimizations
//! * `--stats`       print dynamic event counts
//! * `--dump-ir`     print the final IR instead of running
//! * `--trace N`     print the first N executed blocks to stderr
//! * `--size N`      input bytes per workload in `validate --suite`

use std::process::exit;

use br_analysis::{has_errors, render, Diagnostic};
use br_ir::Module;
use br_minic::{compile, HeuristicSet, Options};
use br_reorder::{reorder_module, LayoutMode, ReorderOptions, SequenceOutcome};
use br_vm::{run, VmOptions};

struct Args {
    source: String,
    input: Vec<u8>,
    train: Option<Vec<u8>>,
    set: HeuristicSet,
    layout: LayoutMode,
    reorder: bool,
    common: bool,
    no_opt: bool,
    stats: bool,
    dump_ir: bool,
    from_ir: bool,
    trace: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: brc FILE.c [--input FILE] [--train FILE] [--set I|II|III|IV] \
         [--reorder] [--common] [--no-opt] [--stats] [--dump-ir] [--from-ir]\n\
       \x20      brc lint FILE.c [--set I|II|III|IV] [--from-ir] [--no-opt] [--deny CODE|all]...\n\
       \x20      brc validate FILE.c [--input FILE] [--train FILE] [--set I|II|III|IV]\n\
       \x20      brc validate --suite [--size N]\n\
       \x20      brc prove FILE.c [--input FILE] [--train FILE] [--set I|II|III|IV] \
         [--emit-certs DIR]\n\
       \x20      brc prove --suite [--size N]\n\
       \x20      brc prove --witness-demo DIR\n\
       \x20      brc check CERT_FILE\n\
       \x20      brc check --tamper-demo\n\
       \x20      brc adapt [SCENARIO] [--size N] [--epoch N] [--exhaustive] [--opttree] [--csv]\n\
       \x20      brc sweep [--threads N] [--seeds K] [--quick] [--smoke] [--exhaustive] \
         [--layout MODE[,MODE...]] [--out DIR] [--cache DIR] [--no-cache]\n\
       \x20      brc fuzz [--seeds N] [--start-seed N] [--jobs N] [--time SECS] [--smoke] \
         [--corpus DIR] [--no-reduce] [--replay FILE]\n\
       \x20      brc serve [--addr HOST:PORT] [--threads N] [--queue N] [--deadline-ms N] \
         [--cache DIR] [--no-cache] [--debug-endpoints] [--protocols both|brs1|brs2]\n\
       \x20      brc cluster [--addr HOST:PORT] [--shards N] [--base-port P] [--cache DIR] \
         [--no-cache] [--threads N] [--queue N] [--deadline-ms N] [--no-replicate] \
         [--hot-threshold N]\n\
       \x20      brc loadgen [--addr HOST:PORT] [--conns N] [--passes N] [--train N] \
         [--input N] [--reorder-only] [--brs2] [--batch K] [--smoke] [--shutdown] \
         [--assert-throughput N]\n\
       \x20      brc loadgen --open (--rate R | --rates R1,R2,...) [--duration-ms N] \
         [--procs N] [--curves FILE] [common flags above]\n\
       \x20      brc --version"
    );
    exit(2)
}

/// Every subcommand `brc` understands, for `--version` output.
const SUBCOMMANDS: [&str; 10] = [
    "lint", "validate", "prove", "check", "adapt", "sweep", "fuzz", "serve", "cluster", "loadgen",
];

/// `brc --version` / `-V` — crate version plus the enabled subcommands.
fn cmd_version() -> ! {
    println!("brc {}", env!("CARGO_PKG_VERSION"));
    println!("subcommands: {}", SUBCOMMANDS.join(" "));
    exit(0)
}

/// Report a bad command line (naming what was wrong) and show usage.
fn bad_args(msg: std::fmt::Arguments) -> ! {
    eprintln!("brc: {msg}");
    usage()
}

/// The value following `flag`, or exit 2 naming the flag.
fn flag_value(flag: &str, v: Option<String>) -> String {
    v.unwrap_or_else(|| bad_args(format_args!("{flag} requires a value")))
}

/// Parse the value following `flag`, or exit 2 naming flag and value.
fn parse_flag<T: std::str::FromStr>(flag: &str, v: Option<String>) -> T {
    let v = flag_value(flag, v);
    v.parse()
        .unwrap_or_else(|_| bad_args(format_args!("invalid value for {flag}: {v}")))
}

fn read(path: &str) -> Vec<u8> {
    std::fs::read(path).unwrap_or_else(|e| {
        eprintln!("brc: cannot read {path}: {e}");
        exit(1)
    })
}

fn parse_layout(v: Option<String>) -> LayoutMode {
    let v = flag_value("--layout", v);
    LayoutMode::parse(&v).unwrap_or_else(|| {
        bad_args(format_args!(
            "invalid value for --layout: {v} (expected off, greedy, or exttsp)"
        ))
    })
}

fn parse_set(v: Option<String>) -> HeuristicSet {
    let v = flag_value("--set", v);
    match v.as_str() {
        "I" => HeuristicSet::SET_I,
        "II" => HeuristicSet::SET_II,
        "III" => HeuristicSet::SET_III,
        "IV" => HeuristicSet::SET_IV,
        _ => bad_args(format_args!(
            "invalid value for --set: {v} (expected I, II, III, or IV)"
        )),
    }
}

/// Compile a mini-C source (or parse dumped IR) into a verified module,
/// or describe why it cannot be built.
fn try_build_module(
    source: &str,
    set: HeuristicSet,
    from_ir: bool,
    no_opt: bool,
) -> Result<Module, String> {
    let mut module = if from_ir {
        br_ir::parse_module(source).map_err(|e| format!("IR parse error at {e}"))?
    } else {
        compile(source, &Options::with_heuristics(set))
            .map_err(|e| format!("compile error at {e}"))?
    };
    if !no_opt && !from_ir {
        br_opt::optimize(&mut module);
    }
    Ok(module)
}

/// [`try_build_module`], exiting with `code` on failure. `validate` and
/// `prove` use exit 2 here so a parse/compile failure is
/// distinguishable from a proof failure (exit 1).
fn build_module_or_exit(
    source: &str,
    set: HeuristicSet,
    from_ir: bool,
    no_opt: bool,
    code: i32,
) -> Module {
    try_build_module(source, set, from_ir, no_opt).unwrap_or_else(|e| {
        eprintln!("brc: {e}");
        exit(code)
    })
}

/// Compile a mini-C source (or parse dumped IR) into a verified module.
fn build_module(source: &str, set: HeuristicSet, from_ir: bool, no_opt: bool) -> Module {
    build_module_or_exit(source, set, from_ir, no_opt, 1)
}

fn parse_args(argv: impl Iterator<Item = String>) -> Args {
    let mut argv = argv.peekable();
    let mut source_path = None;
    let mut input = Vec::new();
    let mut train = None;
    let mut set = HeuristicSet::SET_I;
    let mut layout = LayoutMode::default();
    let (mut reorder, mut common, mut no_opt, mut stats, mut dump_ir, mut from_ir) =
        (false, false, false, false, false, false);
    let mut trace = 0usize;
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--input" => input = read(&flag_value("--input", argv.next())),
            "--train" => train = Some(read(&flag_value("--train", argv.next()))),
            "--set" => set = parse_set(argv.next()),
            "--layout" => layout = parse_layout(argv.next()),
            "--reorder" => reorder = true,
            "--common" => {
                reorder = true;
                common = true;
            }
            "--no-opt" => no_opt = true,
            "--stats" => stats = true,
            "--dump-ir" => dump_ir = true,
            "--from-ir" => from_ir = true,
            "--trace" => trace = parse_flag("--trace", argv.next()),
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') && source_path.is_none() => {
                source_path = Some(other.to_string());
            }
            other => bad_args(format_args!("unexpected argument: {other}")),
        }
    }
    let Some(path) = source_path else {
        bad_args(format_args!("no input file given"))
    };
    Args {
        source: String::from_utf8_lossy(&read(&path)).into_owned(),
        input,
        train,
        set,
        layout,
        reorder,
        common,
        no_opt,
        stats,
        dump_ir,
        from_ir,
        trace,
    }
}

/// `brc lint FILE` — full structural verification plus the analysis
/// lint passes, every finding reported at once. `--deny CODE`
/// (repeatable) or `--deny all` escalates the named diagnostic codes to
/// hard failures.
fn cmd_lint(argv: impl Iterator<Item = String>) -> ! {
    let mut deny: Vec<String> = Vec::new();
    let mut rest: Vec<String> = Vec::new();
    let mut argv = argv.peekable();
    while let Some(a) = argv.next() {
        if a == "--deny" {
            deny.push(flag_value("--deny", argv.next()));
        } else {
            rest.push(a);
        }
    }
    let args = parse_args(rest.into_iter());
    let module = build_module(&args.source, args.set, args.from_ir, args.no_opt);
    let mut diags: Vec<Diagnostic> = Vec::new();
    // Structural violations first (errors), then the lint findings
    // (warnings). `verify_module_all` collects every violation rather
    // than stopping at the first, so one run shows the complete list.
    for e in br_ir::verify_module_all(&module) {
        let mut d = Diagnostic::error("BR0001", &e.function, e.message.clone());
        if let Some(b) = e.block {
            d = d.at(b);
        }
        diags.push(d);
    }
    // The lint passes walk the CFG and assume it is well-formed, so
    // they only run on a module that verified clean.
    if diags.is_empty() {
        diags.extend(br_analysis::lint_module(&module));
    }
    print!("{}", render(&diags));
    let denied: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| deny.iter().any(|c| c == "all" || c == d.code))
        .collect();
    for d in &denied {
        eprintln!("brc: denied diagnostic [{}] in `{}`", d.code, d.function);
    }
    exit(if has_errors(&diags) || !denied.is_empty() {
        1
    } else {
        0
    })
}

/// Run the pipeline on one module with validation forced on; print the
/// proof summary and return whether everything checked out.
fn validate_one(module: &Module, train: &[u8], label: &str, opt_tree: bool, verbose: bool) -> bool {
    let opts = ReorderOptions {
        validate: true,
        opt_tree,
        ..ReorderOptions::default()
    };
    let report = match reorder_module(module, train, &opts) {
        Ok(r) => r,
        Err(t) => {
            println!("{label}: training run trapped: {t}");
            return false;
        }
    };
    let Some(summary) = report.validation else {
        // The pipeline contract is that `validate: true` always yields
        // a summary; if that ever breaks, report it instead of
        // panicking so suite runs keep their exit-code discipline.
        println!("{label}: internal error: pipeline returned no validation summary");
        return false;
    };
    for s in &report.sequences {
        if matches!(s.outcome, SequenceOutcome::NeverExecuted) && verbose {
            println!(
                "{label}: warning[BR0105]: sequence at {:?}/{:?} has zero profile \
                 coverage — left in original order",
                s.func, s.head
            );
        }
    }
    println!("{label}: {summary}");
    for f in &summary.failures {
        println!("{label}: {f}");
    }
    summary.is_clean()
}

/// Reorder a known chain, corrupt one replica branch, and confirm the
/// validator rejects it with a stage-naming diagnostic.
fn corruption_demo() -> bool {
    use br_ir::{BlockId, Cond, FuncBuilder, FuncId, Operand, Terminator};
    use br_reorder::profile::{order_items, plan_ranges, SequenceProfile};

    let mut b = FuncBuilder::new("demo");
    let v = b.new_reg();
    b.set_param_regs(vec![v]);
    let e = b.entry();
    let c2 = b.new_block();
    let c3 = b.new_block();
    let t1 = b.new_block();
    let t2 = b.new_block();
    let t3 = b.new_block();
    let td = b.new_block();
    b.cmp_branch(e, v, 10i64, Cond::Eq, t1, c2);
    b.cmp_branch(c2, v, 20i64, Cond::Eq, t2, c3);
    b.cmp_branch(c3, v, 5i64, Cond::Lt, t3, td);
    for (t, val) in [(t1, 1i64), (t2, 2), (t3, 3), (td, 4)] {
        b.set_term(t, Terminator::Return(Some(Operand::Imm(val))));
    }
    let original = b.finish();

    let mut f = original.clone();
    let seq = br_reorder::detect_sequences(&f).remove(0);
    let n = plan_ranges(&seq).len();
    let counts: Vec<u64> = (1..=n as u64).rev().collect();
    let items = order_items(&seq, &SequenceProfile { counts });
    let eliminable = br_reorder::pipeline::eliminable_items(&seq, &items);
    let mut candidates: Vec<BlockId> = br_reorder::validate::sequence_exits(&seq)
        .into_iter()
        .collect();
    candidates.sort();
    let ordering =
        br_reorder::select_ordering(&items, &candidates, &eliminable, seq.default_target);
    let replica_start = f.blocks.len() as u32;
    br_reorder::apply::apply_reordering(&mut f, &seq, &items, &ordering);
    // The intentional break: swap taken/not-taken on the first replica
    // branch, the kind of bug a wrong emit would introduce.
    for bi in replica_start..f.blocks.len() as u32 {
        if let Terminator::Branch {
            taken, not_taken, ..
        } = &mut f.block_mut(BlockId(bi)).term
        {
            if taken != not_taken {
                std::mem::swap(taken, not_taken);
                break;
            }
        }
    }
    match br_reorder::validate_sequence(FuncId(0), &original, &f, &seq, replica_start) {
        Err(failure) => {
            println!("corruption demo: rejected as intended:\n  {failure}");
            true
        }
        Ok(_) => {
            println!("corruption demo: ERROR — corrupted replica passed validation");
            false
        }
    }
}

/// `brc validate --suite` — prove the reordering over the paper's 17
/// workloads under all four heuristic sets, then show a corruption
/// being caught.
fn cmd_validate_suite(size: usize) -> ! {
    let mut ok = true;
    let mut proven = 0usize;
    for (set_name, set) in [
        ("I", HeuristicSet::SET_I),
        ("II", HeuristicSet::SET_II),
        ("III", HeuristicSet::SET_III),
        ("IV", HeuristicSet::SET_IV),
    ] {
        for w in br_workloads::all() {
            let module = build_module(w.source, set, false, false);
            let label = format!("set {set_name} {}", w.name);
            let opts = ReorderOptions {
                validate: true,
                opt_tree: set.opt_tree,
                ..ReorderOptions::default()
            };
            let report = match reorder_module(&module, &w.training_input(size), &opts) {
                Ok(r) => r,
                Err(t) => {
                    println!("{label}: training run trapped: {t}");
                    ok = false;
                    continue;
                }
            };
            let Some(summary) = report.validation else {
                println!("{label}: internal error: pipeline returned no validation summary");
                ok = false;
                continue;
            };
            println!("{label}: {summary}");
            for fail in &summary.failures {
                println!("{label}: {fail}");
            }
            proven += summary.proven;
            ok &= summary.is_clean();
        }
    }
    println!("suite: {proven} sequence proofs across 17 workloads x 4 heuristic sets");
    ok &= corruption_demo();
    exit(if ok { 0 } else { 1 })
}

/// `brc validate ...` argument dispatch.
fn cmd_validate(argv: impl Iterator<Item = String>) -> ! {
    let argv: Vec<String> = argv.collect();
    if argv.iter().any(|a| a == "--suite") {
        let mut size = 4096usize;
        let mut it = argv.iter();
        while let Some(a) = it.next() {
            if a == "--size" {
                size = parse_flag("--size", it.next().cloned());
            }
        }
        cmd_validate_suite(size);
    }
    let args = parse_args(argv.into_iter());
    // Exit 2 on parse/compile failure so CI can tell "the program never
    // built" from "the proof failed" (exit 1).
    let module = build_module_or_exit(&args.source, args.set, args.from_ir, args.no_opt, 2);
    let train = args.train.as_deref().unwrap_or(&args.input);
    let ok = validate_one(&module, train, "validate", args.set.opt_tree, true);
    exit(if ok { 0 } else { 1 })
}

// Matches the `br-fuzz` corpus hex convention: empty renders as `-`.
fn hex_bytes(b: &[u8]) -> String {
    if b.is_empty() {
        return "-".to_string();
    }
    b.iter().map(|x| format!("{x:02x}")).collect()
}

/// One-line behavior fingerprint of a reference run, matching the
/// `expect` line grammar of `br-fuzz` corpus entries.
fn behavior(r: &Result<br_vm::RunOutcome, br_vm::Trap>) -> String {
    match r {
        Ok(o) => format!("exit={} output={}", o.exit, hex_bytes(&o.output)),
        Err(t) => format!("trap={t}"),
    }
}

/// Run the pipeline on one module in certify mode; print the summary,
/// re-check every emitted certificate with the independent checker, and
/// optionally write the certificates to `emit_dir`. Returns whether
/// everything held plus the number of certificates double-checked.
fn certify_one(
    module: &Module,
    train: &[u8],
    label: &str,
    opt_tree: bool,
    emit_dir: Option<&std::path::Path>,
) -> (bool, usize) {
    let opts = ReorderOptions {
        certify: true,
        opt_tree,
        ..ReorderOptions::default()
    };
    let report = match reorder_module(module, train, &opts) {
        Ok(r) => r,
        Err(t) => {
            println!("{label}: training run trapped: {t}");
            return (false, 0);
        }
    };
    let Some(summary) = report.validation else {
        println!("{label}: internal error: pipeline returned no validation summary");
        return (false, 0);
    };
    let mut ok = summary.is_clean();
    let mut checked = 0usize;
    for c in &summary.certificates {
        match br_analysis::cert::check(&c.text) {
            Ok(cc) if cc.sig == c.sig => checked += 1,
            Ok(cc) => {
                println!(
                    "{label}: [BR0301] certificate for f{}/b{} re-checked with \
                     unexpected sig {:016x} (prover said {:016x})",
                    c.func.0, c.head.0, cc.sig, c.sig
                );
                ok = false;
            }
            Err(e) => {
                println!(
                    "{label}: [BR0301] certificate for f{}/b{} REJECTED by the \
                     independent checker: {e}",
                    c.func.0, c.head.0
                );
                ok = false;
            }
        }
        if let Some(dir) = emit_dir {
            let path = dir.join(format!(
                "cert-f{}-b{}-{:016x}.brcert",
                c.func.0, c.head.0, c.sig
            ));
            if let Err(e) = std::fs::write(&path, &c.text) {
                println!("{label}: cannot write {}: {e}", path.display());
                ok = false;
            } else {
                println!("{label}: wrote {}", path.display());
            }
        }
    }
    println!(
        "{label}: {summary}; {checked}/{} independently re-checked \
         (enumeration fallbacks: 0 — the prover is subsumption-only)",
        summary.certificates.len()
    );
    ok &= checked == summary.certificates.len();
    (ok, checked)
}

/// `brc prove --suite` — certify every applied sequence over the 17
/// paper workloads under all four heuristic sets, re-checking each
/// certificate with the independent checker on the spot.
fn cmd_prove_suite(size: usize) -> ! {
    let mut ok = true;
    let mut certified = 0usize;
    for (set_name, set) in [
        ("I", HeuristicSet::SET_I),
        ("II", HeuristicSet::SET_II),
        ("III", HeuristicSet::SET_III),
        ("IV", HeuristicSet::SET_IV),
    ] {
        for w in br_workloads::all() {
            let module = build_module(w.source, set, false, false);
            let label = format!("set {set_name} {}", w.name);
            let (clean, checked) =
                certify_one(&module, &w.training_input(size), &label, set.opt_tree, None);
            ok &= clean;
            certified += checked;
        }
    }
    println!(
        "prove suite: {certified} sequence(s) certified and independently re-checked \
         across 17 workloads x 4 heuristic sets; 0 enumeration fallbacks"
    );
    exit(if ok { 0 } else { 1 })
}

/// The shared `prove` demo scaffold: compile a `getchar`-driven else-if
/// chain, plan a reordering from a synthetic skewed profile, and apply
/// it. Returns the pristine module, the pre-reordering function, the
/// reordered module, and the sequence coordinates.
#[allow(clippy::type_complexity)]
fn demo_reordered() -> Option<(
    Module,
    br_ir::Function,
    Module,
    br_reorder::DetectedSequence,
    br_ir::FuncId,
    u32,
)> {
    use br_ir::BlockId;
    use br_reorder::profile::{order_items, plan_ranges, SequenceProfile};

    let src = "int main() { int c; int n; n = 0; c = getchar();
        while (c != -1) {
            if (c == 32) { n = n + 1; }
            else if (c == 10) { n = n + 2; }
            else if (c < 5) { n = n + 3; }
            else { n = n + 4; }
            c = getchar();
        }
        return n; }";
    let module = build_module(src, HeuristicSet::SET_I, false, false);
    let (fid, seq) = br_reorder::detect_all(&module).into_iter().next()?;
    let n = plan_ranges(&seq).len();
    let counts: Vec<u64> = (1..=n as u64).rev().collect();
    let items = order_items(&seq, &SequenceProfile { counts });
    let eliminable = br_reorder::pipeline::eliminable_items(&seq, &items);
    let mut candidates: Vec<BlockId> = br_reorder::validate::sequence_exits(&seq)
        .into_iter()
        .collect();
    candidates.sort();
    let ordering =
        br_reorder::select_ordering(&items, &candidates, &eliminable, seq.default_target);
    let mut reordered = module.clone();
    let f = reordered.function_mut(fid);
    let original_f = f.clone();
    let replica_start = f.blocks.len() as u32;
    br_reorder::apply::apply_reordering(f, &seq, &items, &ordering);
    Some((module, original_f, reordered, seq, fid, replica_start))
}

/// `brc prove --witness-demo DIR` — seed an illegal target swap into a
/// reordered replica, let the prover refute it and solve a witness,
/// demonstrate the divergence under the reference interpreter, and
/// write the counterexample as a replayable fuzz corpus entry.
fn cmd_witness_demo(dir: &str) -> ! {
    use br_ir::{BlockId, Terminator};

    let Some((module, original_f, mut corrupted, seq, fid, replica_start)) = demo_reordered()
    else {
        println!("witness demo: ERROR — no reorderable sequence detected in the demo program");
        exit(1)
    };
    let f = corrupted.function_mut(fid);
    let mut swapped = false;
    for bi in replica_start..f.blocks.len() as u32 {
        if let Terminator::Branch {
            taken, not_taken, ..
        } = &mut f.block_mut(BlockId(bi)).term
        {
            if taken != not_taken {
                std::mem::swap(taken, not_taken);
                swapped = true;
                break;
            }
        }
    }
    if !swapped {
        println!("witness demo: ERROR — replica contains no conditional branch");
        exit(1)
    }
    let refuted = match br_reorder::certify_sequence(fid, &original_f, f, &seq, replica_start) {
        Ok(_) => {
            println!("witness demo: ERROR — seeded target swap was certified");
            exit(1)
        }
        Err(r) => r,
    };
    println!("witness demo: refuted as intended:\n  {}", refuted.failure);
    let Some(w) = refuted.witness else {
        println!("witness demo: ERROR — refutation produced no witness");
        exit(1)
    };
    let Some(input) = w.input_bytes() else {
        println!("witness demo: ERROR — witness {w} has no input encoding");
        exit(1)
    };
    let vm = VmOptions::default();
    let expect = behavior(&br_vm::run_reference(&module, &input, &vm));
    let got = behavior(&br_vm::run_reference(&corrupted, &input, &vm));
    let diverges = expect != got;
    println!(
        "witness demo: witness {w}; input bytes [{}]",
        hex_bytes(&input)
    );
    println!("witness demo: original  {expect}");
    println!(
        "witness demo: corrupted {got}{}",
        if diverges {
            " — DIVERGES under run_reference"
        } else {
            " — no divergence observed (demo FAILED)"
        }
    );
    let entry = br_analysis::corpus_entry(
        &w,
        &br_ir::print_module(&corrupted),
        "seeded target swap refuted by br-prove",
        Some(&expect),
    );
    if let Err(e) = std::fs::create_dir_all(dir) {
        println!("witness demo: cannot create {dir}: {e}");
        exit(1)
    }
    let path = std::path::Path::new(dir).join("witness-target-swap.bir");
    if let Err(e) = std::fs::write(&path, entry) {
        println!("witness demo: cannot write {}: {e}", path.display());
        exit(1)
    }
    println!("witness demo: corpus entry written to {}", path.display());
    println!(
        "witness demo: replay with `brc fuzz --replay {}`",
        path.display()
    );
    exit(if diverges { 0 } else { 1 })
}

/// A fresh certificate from the demo reordering (uncorrupted), for the
/// tamper demo.
fn demo_certificate() -> Option<String> {
    let (_, original_f, reordered, seq, fid, replica_start) = demo_reordered()?;
    let f = &reordered.functions[fid.0 as usize];
    br_reorder::certify_sequence(fid, &original_f, f, &seq, replica_start)
        .ok()
        .map(|p| p.certificate)
}

/// Mutate one line of a certificate: bump its first digit, or flip the
/// case of its first letter.
fn mutate_line(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut done = false;
    for ch in line.chars() {
        if !done && ch.is_ascii_digit() {
            out.push(char::from(b'0' + (ch as u8 - b'0' + 1) % 10));
            done = true;
        } else if !done && ch.is_ascii_alphabetic() {
            out.push(if ch.is_ascii_lowercase() {
                ch.to_ascii_uppercase()
            } else {
                ch.to_ascii_lowercase()
            });
            done = true;
        } else {
            out.push(ch);
        }
    }
    if !done {
        out.push('x');
    }
    out
}

/// Re-sign a certificate body (lines without the `sig` line) with the
/// checker's exposed fingerprint, modeling an attacker who fixes up the
/// signature after a semantic edit.
fn resign(body_lines: &[String]) -> String {
    let mut body = String::new();
    for l in body_lines {
        body.push_str(l);
        body.push('\n');
    }
    let sig = br_analysis::cert::fingerprint(&body);
    format!("{body}sig {sig:016x}\n")
}

/// `brc check --tamper-demo` — generate a valid certificate, then show
/// that every single-line tampering (signed-over edits, plus re-signed
/// semantic edits and truncation) is rejected by the checker.
fn cmd_tamper_demo() -> ! {
    let Some(cert) = demo_certificate() else {
        println!("tamper demo: ERROR — could not build a demo certificate");
        exit(1)
    };
    if let Err(e) = br_analysis::cert::check(&cert) {
        println!("tamper demo: ERROR — pristine certificate rejected: {e}");
        exit(1)
    }
    let lines: Vec<String> = cert.lines().map(str::to_string).collect();
    let mut total = 0usize;
    let mut rejected = 0usize;
    let mut tally = |name: String, text: String| {
        total += 1;
        if br_analysis::cert::check(&text).is_err() {
            rejected += 1;
        } else {
            println!("tamper demo: ACCEPTED (bug!): {name}");
        }
    };
    // Unsigned single-line edits: the signature must catch all of them.
    for i in 0..lines.len() {
        let mut t = lines.clone();
        t[i] = mutate_line(&t[i]);
        if t[i] == lines[i] {
            continue;
        }
        tally(format!("line {i} edit"), t.join("\n") + "\n");
    }
    // Re-signed semantic edits: the checker's own reasoning must catch
    // these — the attacker fixed the signature up.
    let body: Vec<String> = lines[..lines.len() - 1].to_vec();
    let class_idx: Vec<usize> = body
        .iter()
        .enumerate()
        .filter(|(_, l)| l.starts_with("class "))
        .map(|(i, _)| i)
        .collect();
    // Swap the exits of two classes with different targets.
    let exit_of = |l: &str| l.rsplit(' ').next().unwrap_or("").to_string();
    if let Some((&a, &b)) = class_idx
        .iter()
        .flat_map(|a| class_idx.iter().map(move |b| (a, b)))
        .find(|(a, b)| a < b && exit_of(&body[**a]) != exit_of(&body[**b]))
    {
        let mut t = body.clone();
        let (ea, eb) = (exit_of(&t[a]), exit_of(&t[b]));
        t[a] = format!("{} {eb}", t[a].rsplit_once(' ').unwrap().0);
        t[b] = format!("{} {ea}", t[b].rsplit_once(' ').unwrap().0);
        tally("re-signed class target swap".into(), resign(&t));
    }
    // Shift one class's range bound (breaks the tiling or a rep walk).
    if let Some(&i) = class_idx.first() {
        if let Some(t_line) = shift_first_bound(&body[i]) {
            let mut t = body.clone();
            t[i] = t_line;
            tally("re-signed range-bound shift".into(), resign(&t));
        }
    }
    // Truncation: drop the last body line and re-sign.
    tally(
        "re-signed truncation".into(),
        resign(&body[..body.len() - 1]),
    );
    println!("tamper demo: {rejected}/{total} tamperings rejected");
    exit(if rejected == total && total > 0 { 0 } else { 1 })
}

/// Bump the `hi` bound of the first finite interval in a `class` line.
fn shift_first_bound(line: &str) -> Option<String> {
    let mut parts: Vec<String> = line.split(' ').map(str::to_string).collect();
    for p in parts.iter_mut() {
        if let Some((lo, hi)) = p.split_once(',') {
            if let (Ok(lo), Ok(hi)) = (lo.parse::<i64>(), hi.parse::<i64>()) {
                if hi != i64::MAX {
                    *p = format!("{lo},{}", hi + 1);
                    return Some(parts.join(" "));
                }
            }
        }
    }
    None
}

/// `brc prove ...` argument dispatch.
fn cmd_prove(argv: impl Iterator<Item = String>) -> ! {
    let argv: Vec<String> = argv.collect();
    if argv.iter().any(|a| a == "--suite") {
        let mut size = 4096usize;
        let mut it = argv.iter();
        while let Some(a) = it.next() {
            if a == "--size" {
                size = parse_flag("--size", it.next().cloned());
            }
        }
        cmd_prove_suite(size);
    }
    if let Some(i) = argv.iter().position(|a| a == "--witness-demo") {
        let Some(dir) = argv.get(i + 1) else {
            bad_args(format_args!("--witness-demo requires a directory"))
        };
        cmd_witness_demo(dir);
    }
    let mut emit: Option<String> = None;
    let mut rest: Vec<String> = Vec::new();
    let mut it = argv.into_iter();
    while let Some(a) = it.next() {
        if a == "--emit-certs" {
            emit = Some(flag_value("--emit-certs", it.next()));
        } else {
            rest.push(a);
        }
    }
    let args = parse_args(rest.into_iter());
    let module = build_module_or_exit(&args.source, args.set, args.from_ir, args.no_opt, 2);
    if let Some(dir) = &emit {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("brc: cannot create {dir}: {e}");
            exit(1)
        }
    }
    let train = args.train.as_deref().unwrap_or(&args.input);
    let (ok, _) = certify_one(
        &module,
        train,
        "prove",
        args.set.opt_tree,
        emit.as_deref().map(std::path::Path::new),
    );
    exit(if ok { 0 } else { 1 })
}

/// `brc check ...` — independent certificate re-checking.
fn cmd_check(argv: impl Iterator<Item = String>) -> ! {
    let argv: Vec<String> = argv.collect();
    if argv.iter().any(|a| a == "--tamper-demo") {
        cmd_tamper_demo();
    }
    let Some(path) = argv.iter().find(|a| !a.starts_with('-')) else {
        bad_args(format_args!("check needs a certificate file"))
    };
    let text = String::from_utf8_lossy(&read(path)).into_owned();
    match br_analysis::cert::check(&text) {
        Ok(c) => {
            println!(
                "check: certificate accepted: func {} var r{} {} class(es) sig {:016x}",
                c.func_name, c.var.0, c.classes, c.sig
            );
            exit(0)
        }
        Err(e @ br_analysis::CertError::Parse(_)) => {
            eprintln!("brc: [BR0301] certificate unparseable: {e}");
            exit(2)
        }
        Err(e) => {
            eprintln!("brc: [BR0301] certificate rejected: {e}");
            exit(1)
        }
    }
}

/// `brc adapt [SCENARIO]` — race the adaptive runtime against a frozen
/// train-once deployment and a per-phase oracle over phase-shifting
/// input streams.
fn cmd_adapt(argv: impl Iterator<Item = String>) -> ! {
    use br_adaptive::{adapt_stream, AdaptOptions};

    let mut name: Option<String> = None;
    let mut size = 24 * 1024usize;
    let mut epoch = 0u64;
    let mut exhaustive = false;
    let mut opt_tree = false;
    let mut csv = false;
    let mut argv = argv.peekable();
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--size" => size = parse_flag("--size", argv.next()),
            "--epoch" => epoch = parse_flag("--epoch", argv.next()),
            "--exhaustive" => exhaustive = true,
            "--opttree" => opt_tree = true,
            "--csv" => csv = true,
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') && name.is_none() => name = Some(other.to_string()),
            other => bad_args(format_args!("unexpected argument: {other}")),
        }
    }
    let scenarios = match name {
        Some(n) => match br_workloads::phases::scenario(&n) {
            Some(s) => vec![s],
            None => {
                let known: Vec<&str> = br_workloads::phases::scenarios()
                    .iter()
                    .map(|s| s.name)
                    .collect();
                eprintln!("brc: unknown scenario {n}; known: {}", known.join(", "));
                exit(1);
            }
        },
        None => br_workloads::phases::scenarios(),
    };
    let mut opts = AdaptOptions {
        exhaustive,
        opt_tree,
        ..AdaptOptions::default()
    };
    if epoch > 0 {
        opts.vm.epoch_blocks = epoch;
    }
    let mut ok = true;
    for s in &scenarios {
        let module = build_module(s.source, HeuristicSet::SET_I, false, false);
        let phases = s.phase_inputs(size);
        match adapt_stream(&module, s.name, &s.training_input(size), &phases, &opts) {
            Ok(report) => {
                if csv {
                    print!("{}", report.to_csv());
                } else {
                    println!("== {} — {}", s.name, s.description);
                    println!("{report}\n");
                }
                ok &= report.aborted_swaps == 0;
            }
            Err(t) => {
                eprintln!("brc: {}: run trapped: {t}", s.name);
                ok = false;
            }
        }
    }
    exit(if ok { 0 } else { 1 })
}

/// `brc sweep` — regenerate the paper's result tables with the parallel
/// reproduction engine; all grid and cache knobs exposed as flags.
fn cmd_sweep(argv: impl Iterator<Item = String>) -> ! {
    use br_sweep::{run_sweep, SweepConfig};

    let mut config = SweepConfig::full();
    let mut argv = argv.peekable();
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--threads" => config.threads = parse_flag("--threads", argv.next()),
            "--seeds" => config.seeds = parse_flag("--seeds", argv.next()),
            "--quick" => {
                config.train_size = 3 * 1024;
                config.test_size = 4 * 1024;
            }
            "--smoke" => {
                let threads = config.threads;
                let seeds = config.seeds;
                config = SweepConfig {
                    threads,
                    seeds,
                    out_dir: config.out_dir,
                    cache_dir: config.cache_dir,
                    ..SweepConfig::smoke()
                };
                if threads == 0 {
                    config.threads = 2;
                }
            }
            "--exhaustive" => config.exhaustive = true,
            "--layout" => {
                let v = flag_value("--layout", argv.next());
                config.layouts = v
                    .split(',')
                    .map(|s| {
                        br_reorder::LayoutMode::parse(s).unwrap_or_else(|| {
                            bad_args(format_args!(
                                "invalid value for --layout: {s} (expected off, greedy, or exttsp)"
                            ))
                        })
                    })
                    .collect();
            }
            "--out" => config.out_dir = flag_value("--out", argv.next()).into(),
            "--cache" => config.cache_dir = Some(flag_value("--cache", argv.next()).into()),
            "--no-cache" => config.cache_dir = None,
            "--help" | "-h" => usage(),
            other => bad_args(format_args!("unexpected argument: {other}")),
        }
    }
    match run_sweep(&config) {
        Ok(outcome) => {
            for m in &outcome.metrics {
                eprintln!(
                    "brc: sweep cell {}/{}/{}/seed{}: reorder {:.0?}{} measure {:.0?}{}",
                    m.set,
                    m.layout,
                    m.workload,
                    m.seed,
                    m.reorder_time,
                    if m.reorder_cached { " (cached)" } else { "" },
                    m.measure_time,
                    match m.measures_cached {
                        0 => "",
                        1 => " (1 of 2 cached)",
                        _ => " (cached)",
                    },
                );
            }
            for f in &outcome.files {
                eprintln!("brc: sweep wrote {}", f.display());
            }
            for f in &outcome.failed {
                eprintln!("brc: sweep cell FAILED: {f}");
            }
            println!(
                "sweep: {} cells ({} failed) in {:.1?}; cache {} hits / {} misses; {} files in {}",
                outcome.cells,
                outcome.failed.len(),
                outcome.elapsed,
                outcome.cache_hits,
                outcome.cache_misses,
                outcome.files.len(),
                config.out_dir.display(),
            );
            exit(i32::from(!outcome.failed.is_empty()))
        }
        Err(e) => {
            eprintln!("brc: sweep failed: {e}");
            exit(1)
        }
    }
}

/// `brc fuzz` — generative differential testing of the whole stack:
/// random verified modules through both VM engines and the reordering
/// pipeline under Sets I/II/III, with auto-reduction and a replayable
/// corpus for anything that diverges.
fn cmd_fuzz(argv: impl Iterator<Item = String>) -> ! {
    use br_fuzz::{replay_file, run_fuzz, FuzzConfig};

    let mut smoke = false;
    let mut seeds = None;
    let mut start_seed = None;
    let mut jobs = None;
    let mut time_limit = None;
    let mut corpus = None;
    let mut reduce = true;
    let mut replay: Option<String> = None;
    let mut argv = argv.peekable();
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--seeds" => seeds = Some(parse_flag("--seeds", argv.next())),
            "--start-seed" => start_seed = Some(parse_flag("--start-seed", argv.next())),
            "--jobs" => jobs = Some(parse_flag("--jobs", argv.next())),
            "--time" => {
                let secs: u64 = parse_flag("--time", argv.next());
                time_limit = Some(std::time::Duration::from_secs(secs));
            }
            "--smoke" => smoke = true,
            "--corpus" => corpus = Some(flag_value("--corpus", argv.next())),
            "--no-reduce" => reduce = false,
            "--replay" => replay = Some(flag_value("--replay", argv.next())),
            "--help" | "-h" => usage(),
            other => bad_args(format_args!("unexpected argument: {other}")),
        }
    }

    if let Some(path) = replay {
        match replay_file(std::path::Path::new(&path)) {
            Ok(report) => {
                for c in &report.checks {
                    println!("replay: {c}");
                }
                if report.reproduced {
                    println!("replay: divergence reproduced");
                    exit(0)
                } else {
                    println!("replay: divergence did NOT reproduce");
                    exit(1)
                }
            }
            Err(e) => {
                eprintln!("brc: cannot replay {path}: {e}");
                exit(1)
            }
        }
    }

    let mut cfg = if smoke {
        FuzzConfig::smoke()
    } else {
        FuzzConfig::default()
    };
    if let Some(n) = seeds {
        cfg.seeds = n;
    }
    if let Some(n) = start_seed {
        cfg.start_seed = n;
    }
    if let Some(n) = jobs {
        cfg.jobs = n;
    }
    cfg.time_limit = time_limit;
    if let Some(dir) = corpus {
        cfg.corpus_dir = Some(dir.into());
    }
    cfg.reduce = reduce;

    let out = run_fuzz(&cfg);
    for f in &out.findings {
        let crit = if f.finding.critical {
            " [CRITICAL]"
        } else {
            ""
        };
        println!(
            "finding{crit}: {} (seed {}, set {})",
            f.finding.fingerprint, f.finding.seed, f.finding.set
        );
        println!("  {}", f.finding.detail);
        if let Some(r) = &f.reduced {
            println!(
                "  reduced: {} site(s), {} condition(s), {}-byte input",
                r.spec.sites.len(),
                r.spec.cond_count(),
                r.input.len()
            );
        }
        if let Some(p) = &f.repro_path {
            println!("  repro: {}", p.display());
            println!("  replay: brc fuzz --replay {}", p.display());
        }
    }
    let skipped = if out.seeds_skipped > 0 {
        format!(" ({} skipped at time limit)", out.seeds_skipped)
    } else {
        String::new()
    };
    println!(
        "fuzz: {} seeds in {:.1?}{skipped}; {} distinct divergence(s){}",
        out.seeds_run,
        out.elapsed,
        out.findings.len(),
        if out.has_critical() {
            " — CRITICAL: validator accepted a miscompile"
        } else {
            ""
        }
    );
    exit(if out.findings.is_empty() { 0 } else { 1 })
}

/// `brc serve` — run the reordering daemon until SIGTERM or a
/// `shutdown` frame, then print the final counters.
fn cmd_serve(argv: impl Iterator<Item = String>) -> ! {
    use br_serve::{ServeConfig, Server};

    let mut config = ServeConfig::default();
    let mut argv = argv.peekable();
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--addr" => config.addr = flag_value("--addr", argv.next()),
            "--threads" => config.threads = parse_flag("--threads", argv.next()),
            "--queue" => config.queue = parse_flag("--queue", argv.next()),
            "--deadline-ms" => config.deadline_ms = parse_flag("--deadline-ms", argv.next()),
            "--cache" => config.cache_dir = Some(flag_value("--cache", argv.next()).into()),
            "--no-cache" => config.cache_dir = None,
            "--debug-endpoints" => config.debug_endpoints = true,
            "--protocols" => {
                config.protocols = match flag_value("--protocols", argv.next()).as_str() {
                    "both" => br_serve::ProtocolMode::Both,
                    "brs1" => br_serve::ProtocolMode::V1Only,
                    "brs2" => br_serve::ProtocolMode::V2Only,
                    other => bad_args(format_args!(
                        "--protocols must be both, brs1, or brs2 (got {other})"
                    )),
                }
            }
            "--help" | "-h" => usage(),
            other => bad_args(format_args!("unexpected argument: {other}")),
        }
    }
    let server = match Server::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("brc: serve failed to start: {e}");
            exit(1)
        }
    };
    eprintln!("brc: serving on {}", server.addr());
    let metrics = server.metrics();
    match server.wait() {
        Ok(()) => {
            eprintln!("brc: drained cleanly; final counters:");
            eprint!("{}", metrics.render());
            exit(0)
        }
        Err(e) => {
            eprintln!("brc: serve failed: {e}");
            exit(1)
        }
    }
}

/// `brc cluster` — run the sharded service: shard daemons as child
/// processes, the consistent-hash router in this process.
fn cmd_cluster(argv: impl Iterator<Item = String>) -> ! {
    use br_cluster::{run_cluster, ClusterConfig};

    let mut config = ClusterConfig::default();
    let mut argv = argv.peekable();
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--addr" => config.router_addr = flag_value("--addr", argv.next()),
            "--shards" => config.shards = parse_flag("--shards", argv.next()),
            "--base-port" => config.base_port = parse_flag("--base-port", argv.next()),
            "--cache" => config.cache_dir = Some(flag_value("--cache", argv.next()).into()),
            "--no-cache" => config.cache_dir = None,
            "--threads" => config.threads_per_shard = parse_flag("--threads", argv.next()),
            "--queue" => config.queue = parse_flag("--queue", argv.next()),
            "--deadline-ms" => config.deadline_ms = parse_flag("--deadline-ms", argv.next()),
            "--no-replicate" => config.replicate = false,
            "--hot-threshold" => config.hot_threshold = parse_flag("--hot-threshold", argv.next()),
            "--help" | "-h" => usage(),
            other => bad_args(format_args!("unexpected argument: {other}")),
        }
    }
    if config.shards == 0 {
        bad_args(format_args!("--shards must be at least 1"));
    }
    match run_cluster(&config) {
        Ok(()) => {
            eprintln!("brc: cluster drained cleanly");
            exit(0)
        }
        Err(e) => {
            eprintln!("brc: cluster failed: {e}");
            exit(1)
        }
    }
}

/// `brc loadgen` — closed- or open-loop load against a running daemon
/// or cluster.
fn cmd_loadgen(argv: impl Iterator<Item = String>) -> ! {
    use br_serve::loadgen::{
        run_curves, run_loadgen, run_open_loop, run_open_multiproc, run_smoke, write_curves,
        LoadgenConfig, OpenLoopConfig,
    };

    let mut config = LoadgenConfig::default();
    let mut smoke = false;
    let mut open = false;
    let mut worker = false;
    let mut rates: Vec<f64> = Vec::new();
    let mut duration_ms: u64 = 5_000;
    let mut procs: usize = 1;
    let mut curves: Option<String> = None;
    let mut assert_throughput: Option<f64> = None;
    let mut argv = argv.peekable();
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--addr" => config.addr = flag_value("--addr", argv.next()),
            "--conns" => config.connections = parse_flag("--conns", argv.next()),
            "--passes" => config.passes = parse_flag("--passes", argv.next()),
            "--train" => config.train_size = parse_flag("--train", argv.next()),
            "--input" => config.input_size = parse_flag("--input", argv.next()),
            "--reorder-only" => config.reorder_only = true,
            "--brs2" => config.brs2 = true,
            "--batch" => config.batch = parse_flag("--batch", argv.next()),
            "--open" => open = true,
            "--rate" => rates.push(parse_flag("--rate", argv.next())),
            "--rates" => {
                for r in flag_value("--rates", argv.next()).split(',') {
                    rates.push(r.trim().parse().unwrap_or_else(|_| {
                        bad_args(format_args!("invalid rate in --rates: {r}"))
                    }));
                }
            }
            "--duration-ms" => duration_ms = parse_flag("--duration-ms", argv.next()),
            "--procs" => procs = parse_flag("--procs", argv.next()),
            "--curves" => curves = Some(flag_value("--curves", argv.next())),
            "--assert-throughput" => {
                assert_throughput = Some(parse_flag("--assert-throughput", argv.next()))
            }
            "--worker" => worker = true,
            "--smoke" => smoke = true,
            "--shutdown" => config.shutdown_after = true,
            "--help" | "-h" => usage(),
            other => bad_args(format_args!("unexpected argument: {other}")),
        }
    }
    if open {
        if rates.is_empty() {
            bad_args(format_args!("--open requires --rate or --rates"));
        }
        let base = OpenLoopConfig {
            base: config.clone(),
            rate: rates[0],
            duration: std::time::Duration::from_millis(duration_ms.max(1)),
        };
        if worker {
            // Child of a --procs fan-out: run this process's share and
            // print the parseable summary for the parent to merge.
            match run_open_loop(&base) {
                Ok(report) => {
                    println!("{}", report.worker_summary());
                    exit(0)
                }
                Err(e) => {
                    eprintln!("brc: loadgen worker failed: {e}");
                    exit(1)
                }
            }
        }
        let mut worker_args: Vec<String> = [
            "loadgen",
            "--worker",
            "--open",
            "--addr",
            &config.addr,
            "--conns",
            &config.connections.to_string(),
            "--train",
            &config.train_size.to_string(),
            "--input",
            &config.input_size.to_string(),
            "--duration-ms",
            &duration_ms.to_string(),
        ]
        .map(str::to_string)
        .to_vec();
        if config.reorder_only {
            worker_args.push("--reorder-only".to_string());
        }
        if config.brs2 {
            worker_args.push("--brs2".to_string());
        }
        let result = if rates.len() > 1 || curves.is_some() {
            run_curves(&base, &rates, procs, &worker_args)
        } else if procs > 1 {
            run_open_multiproc(&base, procs, &worker_args).map(|r| vec![r])
        } else {
            run_open_loop(&base).map(|r| vec![r])
        };
        match result {
            Ok(rows) => {
                for r in &rows {
                    println!("{}", r.render_line());
                }
                if let Some(path) = curves {
                    if let Err(e) = write_curves(std::path::Path::new(&path), &rows) {
                        eprintln!("brc: loadgen cannot write {path}: {e}");
                        exit(1)
                    }
                    println!("loadgen: wrote {} curve row(s) to {path}", rows.len());
                }
                let errors: u64 = rows.iter().map(|r| r.errors).sum();
                if let Some(min) = assert_throughput {
                    let best = rows.iter().map(|r| r.achieved()).fold(0.0, f64::max);
                    if best < min {
                        eprintln!(
                            "brc: loadgen throughput assertion FAILED: best {best:.1} req/s < {min}"
                        );
                        exit(1)
                    }
                    println!("loadgen: achieved {best:.1} req/s (asserted >= {min})");
                }
                exit(if errors == 0 { 0 } else { 1 })
            }
            Err(e) => {
                eprintln!("brc: loadgen failed: {e}");
                exit(1)
            }
        }
    }
    if smoke {
        let shutdown_after = config.shutdown_after;
        let mut smoke_config = LoadgenConfig::smoke(&config.addr);
        smoke_config.shutdown_after = false; // only after the warm pass
        match run_smoke(&smoke_config) {
            Ok((warm, violations)) => {
                print!("{}", warm.render());
                for v in &violations {
                    eprintln!("brc: loadgen smoke FAILED: {v}");
                }
                if shutdown_after {
                    let drained = br_serve::Client::connect(&smoke_config.addr)
                        .and_then(|mut c| c.call(&br_serve::Frame::text("shutdown", "")));
                    match drained {
                        Ok(bye) if bye.kind == "ok" => {}
                        Ok(bye) => {
                            eprintln!("brc: loadgen shutdown refused: {}", bye.payload_text());
                            exit(1)
                        }
                        Err(e) => {
                            eprintln!("brc: loadgen shutdown failed: {e}");
                            exit(1)
                        }
                    }
                }
                exit(if violations.is_empty() { 0 } else { 1 })
            }
            Err(e) => {
                eprintln!("brc: loadgen failed: {e}");
                exit(1)
            }
        }
    }
    match run_loadgen(&config) {
        Ok(report) => {
            print!("{}", report.render());
            if let Some(min) = assert_throughput {
                if report.throughput() < min {
                    eprintln!(
                        "brc: loadgen throughput assertion FAILED: {:.1} req/s < {min}",
                        report.throughput()
                    );
                    exit(1)
                }
                println!(
                    "loadgen: achieved {:.1} req/s (asserted >= {min})",
                    report.throughput()
                );
            }
            exit(if report.errors == 0 { 0 } else { 1 })
        }
        Err(e) => {
            eprintln!("brc: loadgen failed: {e}");
            exit(1)
        }
    }
}

fn main() {
    let mut argv = std::env::args().skip(1).peekable();
    match argv.peek().map(String::as_str) {
        Some("lint") => {
            argv.next();
            cmd_lint(argv);
        }
        Some("validate") => {
            argv.next();
            cmd_validate(argv);
        }
        Some("prove") => {
            argv.next();
            cmd_prove(argv);
        }
        Some("check") => {
            argv.next();
            cmd_check(argv);
        }
        Some("adapt") => {
            argv.next();
            cmd_adapt(argv);
        }
        Some("sweep") => {
            argv.next();
            cmd_sweep(argv);
        }
        Some("fuzz") => {
            argv.next();
            cmd_fuzz(argv);
        }
        Some("serve") => {
            argv.next();
            cmd_serve(argv);
        }
        Some("cluster") => {
            argv.next();
            cmd_cluster(argv);
        }
        Some("loadgen") => {
            argv.next();
            cmd_loadgen(argv);
        }
        Some("--version" | "-V") => cmd_version(),
        _ => {}
    }
    let args = parse_args(argv);
    let mut module = build_module(&args.source, args.set, args.from_ir, args.no_opt);
    if args.reorder {
        let train = args.train.as_deref().unwrap_or(&args.input);
        let opts = ReorderOptions {
            common_successor: args.common,
            opt_tree: args.set.opt_tree,
            layout: args.layout,
            ..ReorderOptions::default()
        };
        match reorder_module(&module, train, &opts) {
            Ok(report) => {
                if args.stats {
                    for s in &report.sequences {
                        eprintln!(
                            "brc: sequence {:?}/{:?} ({:?}): {:?}",
                            s.func, s.head, s.kind, s.outcome
                        );
                    }
                }
                module = report.module;
            }
            Err(t) => {
                eprintln!("brc: training run trapped: {t}");
                exit(1);
            }
        }
    }
    if let Err(e) = br_ir::verify_module(&module) {
        eprintln!("brc: internal error: IR fails verification: {e}");
        exit(1);
    }
    if args.dump_ir {
        print!("{}", br_ir::print_module(&module));
        return;
    }
    let vm = VmOptions {
        trace_blocks: args.trace,
        ..VmOptions::default()
    };
    match run(&module, &args.input, &vm) {
        Ok(out) => {
            use std::io::Write as _;
            for line in &out.trace {
                eprintln!("brc: trace {line}");
            }
            std::io::stdout().write_all(&out.output).ok();
            if args.stats {
                eprintln!("brc: exit {}", out.exit);
                eprintln!("brc: {}", out.stats);
            }
            exit(out.exit.clamp(0, 255) as i32);
        }
        Err(t) => {
            eprintln!("brc: run-time trap: {t}");
            exit(1);
        }
    }
}
