//! `brc` — the branch-reordering compiler driver.
//!
//! Compile a mini-C file, optionally profile-and-reorder it, run it, and
//! report dynamic statistics:
//!
//! ```text
//! brc prog.c --input data.txt                     # compile + run
//! brc prog.c --input data.txt --reorder           # train on the input itself
//! brc prog.c --input t.txt --train p.txt --reorder --stats
//! brc prog.c --set III --dump-ir > prog.ir        # show optimized IR
//! brc prog.ir --from-ir --input data.txt          # run dumped IR directly
//! brc lint prog.c                                 # static analysis report
//! brc validate prog.c --train data.txt            # prove the reordering
//! brc validate --suite                            # all 17 workloads x 3 sets
//! brc adapt                                       # adaptive-vs-static report
//! brc adapt charclass --size 65536 --csv          # one scenario, CSV output
//! brc fuzz --seeds 10000                          # differential fuzzing
//! brc fuzz --replay fuzz/corpus/repro.bir         # re-check a saved repro
//! ```
//!
//! Subcommands:
//! * `lint FILE`     run the `br-analysis` lint passes (shadowed ranges,
//!   statically decided branches, redundant compares) plus the full IR
//!   verifier, and print every finding as a rustc-style diagnostic.
//! * `validate FILE` run the reordering pipeline with the translation
//!   validator on and report the equivalence proof per sequence.
//! * `validate --suite` sweep all 17 paper workloads under heuristic
//!   Sets I, II and III, proving every applied sequence equivalent, then
//!   demonstrate that an intentionally corrupted replica is rejected
//!   with a stage-naming diagnostic.
//! * `adapt [SCENARIO]` run the continuous-reoptimization runtime over
//!   the phase-shifting scenarios, racing it against a train-once
//!   deployment and a per-phase offline oracle (`--size N` bytes per
//!   phase, `--epoch N` blocks per adaptation epoch, `--exhaustive`
//!   ordering search, `--csv` machine-readable output).
//! * `sweep` run the parallel reproduction engine: the full workload ×
//!   heuristic-set × seed grid fanned across cores with a
//!   content-addressed artifact cache, writing Tables 4–8 and the
//!   sequence-length figures into `results/` deterministically
//!   (`--threads N` workers, `--seeds K` input replications, `--quick`
//!   reduced input sizes, `--smoke` the tiny CI grid, `--exhaustive`
//!   ordering search, `--out DIR`, `--cache DIR`, `--no-cache`).
//! * `fuzz` run the generative differential tester: random verified
//!   modules through the reference interpreter, the pre-decoded fast
//!   path, and the reordering pipeline under all three heuristic sets,
//!   flagging any behavioral divergence, auto-reducing it, and writing
//!   a replayable repro into the corpus (`--seeds N`, `--start-seed N`,
//!   `--jobs N`, `--time SECS`, `--smoke` small programs for CI,
//!   `--corpus DIR`, `--no-reduce`, `--replay FILE` re-check a repro).
//! * `serve` run the reordering-as-a-service daemon: `reorder`,
//!   `measure`, and `profile` endpoints over length-prefixed TCP
//!   frames, with a bounded admission queue, per-request deadlines,
//!   panic isolation, a content-addressed response cache, and
//!   plaintext `health`/`metrics` (`--addr HOST:PORT`, `--threads N`,
//!   `--queue N`, `--deadline-ms N`, `--cache DIR`, `--no-cache`,
//!   `--debug-endpoints`). Drains gracefully on SIGTERM or a
//!   `shutdown` frame.
//! * `loadgen` drive a running daemon with a closed-loop multi-
//!   connection replay of the 17 workloads and print achieved
//!   throughput, shed rate, and the latency histogram (`--addr`,
//!   `--conns N`, `--passes N`, `--train N`, `--input N`,
//!   `--reorder-only`, `--smoke` the CI two-pass contract,
//!   `--shutdown` drain the daemon afterwards).
//!
//! Flags:
//! * `--input FILE`  program stdin (default: empty)
//! * `--train FILE`  training input for `--reorder` (default: the input)
//! * `--set I|II|III` switch heuristics (default I)
//! * `--reorder`     run the profile-guided reordering pipeline
//! * `--common`      also reorder common-successor sequences
//! * `--no-opt`      skip conventional optimizations
//! * `--stats`       print dynamic event counts
//! * `--dump-ir`     print the final IR instead of running
//! * `--trace N`     print the first N executed blocks to stderr
//! * `--size N`      input bytes per workload in `validate --suite`

use std::process::exit;

use br_analysis::{has_errors, render, Diagnostic};
use br_ir::Module;
use br_minic::{compile, HeuristicSet, Options};
use br_reorder::{reorder_module, ReorderOptions, SequenceOutcome};
use br_vm::{run, VmOptions};

struct Args {
    source: String,
    input: Vec<u8>,
    train: Option<Vec<u8>>,
    set: HeuristicSet,
    reorder: bool,
    common: bool,
    no_opt: bool,
    stats: bool,
    dump_ir: bool,
    from_ir: bool,
    trace: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: brc FILE.c [--input FILE] [--train FILE] [--set I|II|III] \
         [--reorder] [--common] [--no-opt] [--stats] [--dump-ir] [--from-ir]\n\
       \x20      brc lint FILE.c [--set I|II|III] [--from-ir] [--no-opt]\n\
       \x20      brc validate FILE.c [--input FILE] [--train FILE] [--set I|II|III]\n\
       \x20      brc validate --suite [--size N]\n\
       \x20      brc adapt [SCENARIO] [--size N] [--epoch N] [--exhaustive] [--csv]\n\
       \x20      brc sweep [--threads N] [--seeds K] [--quick] [--smoke] [--exhaustive] \
         [--out DIR] [--cache DIR] [--no-cache]\n\
       \x20      brc fuzz [--seeds N] [--start-seed N] [--jobs N] [--time SECS] [--smoke] \
         [--corpus DIR] [--no-reduce] [--replay FILE]\n\
       \x20      brc serve [--addr HOST:PORT] [--threads N] [--queue N] [--deadline-ms N] \
         [--cache DIR] [--no-cache] [--debug-endpoints]\n\
       \x20      brc loadgen [--addr HOST:PORT] [--conns N] [--passes N] [--train N] \
         [--input N] [--reorder-only] [--smoke] [--shutdown]\n\
       \x20      brc --version"
    );
    exit(2)
}

/// Every subcommand `brc` understands, for `--version` output.
const SUBCOMMANDS: [&str; 7] = [
    "lint", "validate", "adapt", "sweep", "fuzz", "serve", "loadgen",
];

/// `brc --version` / `-V` — crate version plus the enabled subcommands.
fn cmd_version() -> ! {
    println!("brc {}", env!("CARGO_PKG_VERSION"));
    println!("subcommands: {}", SUBCOMMANDS.join(" "));
    exit(0)
}

/// Report a bad command line (naming what was wrong) and show usage.
fn bad_args(msg: std::fmt::Arguments) -> ! {
    eprintln!("brc: {msg}");
    usage()
}

/// The value following `flag`, or exit 2 naming the flag.
fn flag_value(flag: &str, v: Option<String>) -> String {
    v.unwrap_or_else(|| bad_args(format_args!("{flag} requires a value")))
}

/// Parse the value following `flag`, or exit 2 naming flag and value.
fn parse_flag<T: std::str::FromStr>(flag: &str, v: Option<String>) -> T {
    let v = flag_value(flag, v);
    v.parse()
        .unwrap_or_else(|_| bad_args(format_args!("invalid value for {flag}: {v}")))
}

fn read(path: &str) -> Vec<u8> {
    std::fs::read(path).unwrap_or_else(|e| {
        eprintln!("brc: cannot read {path}: {e}");
        exit(1)
    })
}

fn parse_set(v: Option<String>) -> HeuristicSet {
    let v = flag_value("--set", v);
    match v.as_str() {
        "I" => HeuristicSet::SET_I,
        "II" => HeuristicSet::SET_II,
        "III" => HeuristicSet::SET_III,
        _ => bad_args(format_args!(
            "invalid value for --set: {v} (expected I, II, or III)"
        )),
    }
}

/// Compile a mini-C source (or parse dumped IR) into a verified module.
fn build_module(source: &str, set: HeuristicSet, from_ir: bool, no_opt: bool) -> Module {
    let mut module = if from_ir {
        match br_ir::parse_module(source) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("brc: IR parse error at {e}");
                exit(1);
            }
        }
    } else {
        match compile(source, &Options::with_heuristics(set)) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("brc: compile error at {e}");
                exit(1);
            }
        }
    };
    if !no_opt && !from_ir {
        br_opt::optimize(&mut module);
    }
    module
}

fn parse_args(argv: impl Iterator<Item = String>) -> Args {
    let mut argv = argv.peekable();
    let mut source_path = None;
    let mut input = Vec::new();
    let mut train = None;
    let mut set = HeuristicSet::SET_I;
    let (mut reorder, mut common, mut no_opt, mut stats, mut dump_ir, mut from_ir) =
        (false, false, false, false, false, false);
    let mut trace = 0usize;
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--input" => input = read(&flag_value("--input", argv.next())),
            "--train" => train = Some(read(&flag_value("--train", argv.next()))),
            "--set" => set = parse_set(argv.next()),
            "--reorder" => reorder = true,
            "--common" => {
                reorder = true;
                common = true;
            }
            "--no-opt" => no_opt = true,
            "--stats" => stats = true,
            "--dump-ir" => dump_ir = true,
            "--from-ir" => from_ir = true,
            "--trace" => trace = parse_flag("--trace", argv.next()),
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') && source_path.is_none() => {
                source_path = Some(other.to_string());
            }
            other => bad_args(format_args!("unexpected argument: {other}")),
        }
    }
    let Some(path) = source_path else {
        bad_args(format_args!("no input file given"))
    };
    Args {
        source: String::from_utf8_lossy(&read(&path)).into_owned(),
        input,
        train,
        set,
        reorder,
        common,
        no_opt,
        stats,
        dump_ir,
        from_ir,
        trace,
    }
}

/// `brc lint FILE` — full structural verification plus the analysis
/// lint passes, every finding reported at once.
fn cmd_lint(argv: impl Iterator<Item = String>) -> ! {
    let args = parse_args(argv);
    let module = build_module(&args.source, args.set, args.from_ir, args.no_opt);
    let mut diags: Vec<Diagnostic> = Vec::new();
    // Structural violations first (errors), then the lint findings
    // (warnings). `verify_module_all` collects every violation rather
    // than stopping at the first, so one run shows the complete list.
    for e in br_ir::verify_module_all(&module) {
        let mut d = Diagnostic::error("BR0001", &e.function, e.message.clone());
        if let Some(b) = e.block {
            d = d.at(b);
        }
        diags.push(d);
    }
    // The lint passes walk the CFG and assume it is well-formed, so
    // they only run on a module that verified clean.
    if diags.is_empty() {
        diags.extend(br_analysis::lint_module(&module));
    }
    print!("{}", render(&diags));
    exit(if has_errors(&diags) { 1 } else { 0 })
}

/// Run the pipeline on one module with validation forced on; print the
/// proof summary and return whether everything checked out.
fn validate_one(module: &Module, train: &[u8], label: &str, verbose: bool) -> bool {
    let opts = ReorderOptions {
        validate: true,
        ..ReorderOptions::default()
    };
    let report = match reorder_module(module, train, &opts) {
        Ok(r) => r,
        Err(t) => {
            println!("{label}: training run trapped: {t}");
            return false;
        }
    };
    let Some(summary) = report.validation else {
        // The pipeline contract is that `validate: true` always yields
        // a summary; if that ever breaks, report it instead of
        // panicking so suite runs keep their exit-code discipline.
        println!("{label}: internal error: pipeline returned no validation summary");
        return false;
    };
    for s in &report.sequences {
        if matches!(s.outcome, SequenceOutcome::NeverExecuted) && verbose {
            println!(
                "{label}: warning[BR0105]: sequence at {:?}/{:?} has zero profile \
                 coverage — left in original order",
                s.func, s.head
            );
        }
    }
    println!("{label}: {summary}");
    for f in &summary.failures {
        println!("{label}: {f}");
    }
    summary.is_clean()
}

/// Reorder a known chain, corrupt one replica branch, and confirm the
/// validator rejects it with a stage-naming diagnostic.
fn corruption_demo() -> bool {
    use br_ir::{BlockId, Cond, FuncBuilder, FuncId, Operand, Terminator};
    use br_reorder::profile::{order_items, plan_ranges, SequenceProfile};

    let mut b = FuncBuilder::new("demo");
    let v = b.new_reg();
    b.set_param_regs(vec![v]);
    let e = b.entry();
    let c2 = b.new_block();
    let c3 = b.new_block();
    let t1 = b.new_block();
    let t2 = b.new_block();
    let t3 = b.new_block();
    let td = b.new_block();
    b.cmp_branch(e, v, 10i64, Cond::Eq, t1, c2);
    b.cmp_branch(c2, v, 20i64, Cond::Eq, t2, c3);
    b.cmp_branch(c3, v, 5i64, Cond::Lt, t3, td);
    for (t, val) in [(t1, 1i64), (t2, 2), (t3, 3), (td, 4)] {
        b.set_term(t, Terminator::Return(Some(Operand::Imm(val))));
    }
    let original = b.finish();

    let mut f = original.clone();
    let seq = br_reorder::detect_sequences(&f).remove(0);
    let n = plan_ranges(&seq).len();
    let counts: Vec<u64> = (1..=n as u64).rev().collect();
    let items = order_items(&seq, &SequenceProfile { counts });
    let eliminable = br_reorder::pipeline::eliminable_items(&seq, &items);
    let mut candidates: Vec<BlockId> = br_reorder::validate::sequence_exits(&seq)
        .into_iter()
        .collect();
    candidates.sort();
    let ordering =
        br_reorder::select_ordering(&items, &candidates, &eliminable, seq.default_target);
    let replica_start = f.blocks.len() as u32;
    br_reorder::apply::apply_reordering(&mut f, &seq, &items, &ordering);
    // The intentional break: swap taken/not-taken on the first replica
    // branch, the kind of bug a wrong emit would introduce.
    for bi in replica_start..f.blocks.len() as u32 {
        if let Terminator::Branch {
            taken, not_taken, ..
        } = &mut f.block_mut(BlockId(bi)).term
        {
            if taken != not_taken {
                std::mem::swap(taken, not_taken);
                break;
            }
        }
    }
    match br_reorder::validate_sequence(FuncId(0), &original, &f, &seq, replica_start) {
        Err(failure) => {
            println!("corruption demo: rejected as intended:\n  {failure}");
            true
        }
        Ok(_) => {
            println!("corruption demo: ERROR — corrupted replica passed validation");
            false
        }
    }
}

/// `brc validate --suite` — prove the reordering over the paper's 17
/// workloads under all three heuristic sets, then show a corruption
/// being caught.
fn cmd_validate_suite(size: usize) -> ! {
    let mut ok = true;
    let mut proven = 0usize;
    for (set_name, set) in [
        ("I", HeuristicSet::SET_I),
        ("II", HeuristicSet::SET_II),
        ("III", HeuristicSet::SET_III),
    ] {
        for w in br_workloads::all() {
            let module = build_module(w.source, set, false, false);
            let label = format!("set {set_name} {}", w.name);
            let opts = ReorderOptions {
                validate: true,
                ..ReorderOptions::default()
            };
            let report = match reorder_module(&module, &w.training_input(size), &opts) {
                Ok(r) => r,
                Err(t) => {
                    println!("{label}: training run trapped: {t}");
                    ok = false;
                    continue;
                }
            };
            let Some(summary) = report.validation else {
                println!("{label}: internal error: pipeline returned no validation summary");
                ok = false;
                continue;
            };
            println!("{label}: {summary}");
            for fail in &summary.failures {
                println!("{label}: {fail}");
            }
            proven += summary.proven;
            ok &= summary.is_clean();
        }
    }
    println!("suite: {proven} sequence proofs across 17 workloads x 3 heuristic sets");
    ok &= corruption_demo();
    exit(if ok { 0 } else { 1 })
}

/// `brc validate ...` argument dispatch.
fn cmd_validate(argv: impl Iterator<Item = String>) -> ! {
    let argv: Vec<String> = argv.collect();
    if argv.iter().any(|a| a == "--suite") {
        let mut size = 4096usize;
        let mut it = argv.iter();
        while let Some(a) = it.next() {
            if a == "--size" {
                size = parse_flag("--size", it.next().cloned());
            }
        }
        cmd_validate_suite(size);
    }
    let args = parse_args(argv.into_iter());
    let module = build_module(&args.source, args.set, args.from_ir, args.no_opt);
    let train = args.train.as_deref().unwrap_or(&args.input);
    let ok = validate_one(&module, train, "validate", true);
    exit(if ok { 0 } else { 1 })
}

/// `brc adapt [SCENARIO]` — race the adaptive runtime against a frozen
/// train-once deployment and a per-phase oracle over phase-shifting
/// input streams.
fn cmd_adapt(argv: impl Iterator<Item = String>) -> ! {
    use br_adaptive::{adapt_stream, AdaptOptions};

    let mut name: Option<String> = None;
    let mut size = 24 * 1024usize;
    let mut epoch = 0u64;
    let mut exhaustive = false;
    let mut csv = false;
    let mut argv = argv.peekable();
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--size" => size = parse_flag("--size", argv.next()),
            "--epoch" => epoch = parse_flag("--epoch", argv.next()),
            "--exhaustive" => exhaustive = true,
            "--csv" => csv = true,
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') && name.is_none() => name = Some(other.to_string()),
            other => bad_args(format_args!("unexpected argument: {other}")),
        }
    }
    let scenarios = match name {
        Some(n) => match br_workloads::phases::scenario(&n) {
            Some(s) => vec![s],
            None => {
                let known: Vec<&str> = br_workloads::phases::scenarios()
                    .iter()
                    .map(|s| s.name)
                    .collect();
                eprintln!("brc: unknown scenario {n}; known: {}", known.join(", "));
                exit(1);
            }
        },
        None => br_workloads::phases::scenarios(),
    };
    let mut opts = AdaptOptions {
        exhaustive,
        ..AdaptOptions::default()
    };
    if epoch > 0 {
        opts.vm.epoch_blocks = epoch;
    }
    let mut ok = true;
    for s in &scenarios {
        let module = build_module(s.source, HeuristicSet::SET_I, false, false);
        let phases = s.phase_inputs(size);
        match adapt_stream(&module, s.name, &s.training_input(size), &phases, &opts) {
            Ok(report) => {
                if csv {
                    print!("{}", report.to_csv());
                } else {
                    println!("== {} — {}", s.name, s.description);
                    println!("{report}\n");
                }
                ok &= report.aborted_swaps == 0;
            }
            Err(t) => {
                eprintln!("brc: {}: run trapped: {t}", s.name);
                ok = false;
            }
        }
    }
    exit(if ok { 0 } else { 1 })
}

/// `brc sweep` — regenerate the paper's result tables with the parallel
/// reproduction engine; all grid and cache knobs exposed as flags.
fn cmd_sweep(argv: impl Iterator<Item = String>) -> ! {
    use br_sweep::{run_sweep, SweepConfig};

    let mut config = SweepConfig::full();
    let mut argv = argv.peekable();
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--threads" => config.threads = parse_flag("--threads", argv.next()),
            "--seeds" => config.seeds = parse_flag("--seeds", argv.next()),
            "--quick" => {
                config.train_size = 3 * 1024;
                config.test_size = 4 * 1024;
            }
            "--smoke" => {
                let threads = config.threads;
                let seeds = config.seeds;
                config = SweepConfig {
                    threads,
                    seeds,
                    out_dir: config.out_dir,
                    cache_dir: config.cache_dir,
                    ..SweepConfig::smoke()
                };
                if threads == 0 {
                    config.threads = 2;
                }
            }
            "--exhaustive" => config.exhaustive = true,
            "--out" => config.out_dir = flag_value("--out", argv.next()).into(),
            "--cache" => config.cache_dir = Some(flag_value("--cache", argv.next()).into()),
            "--no-cache" => config.cache_dir = None,
            "--help" | "-h" => usage(),
            other => bad_args(format_args!("unexpected argument: {other}")),
        }
    }
    match run_sweep(&config) {
        Ok(outcome) => {
            for m in &outcome.metrics {
                eprintln!(
                    "brc: sweep cell {}/{}/seed{}: reorder {:.0?}{} measure {:.0?}{}",
                    m.set,
                    m.workload,
                    m.seed,
                    m.reorder_time,
                    if m.reorder_cached { " (cached)" } else { "" },
                    m.measure_time,
                    match m.measures_cached {
                        0 => "",
                        1 => " (1 of 2 cached)",
                        _ => " (cached)",
                    },
                );
            }
            for f in &outcome.files {
                eprintln!("brc: sweep wrote {}", f.display());
            }
            for f in &outcome.failed {
                eprintln!("brc: sweep cell FAILED: {f}");
            }
            println!(
                "sweep: {} cells ({} failed) in {:.1?}; cache {} hits / {} misses; {} files in {}",
                outcome.cells,
                outcome.failed.len(),
                outcome.elapsed,
                outcome.cache_hits,
                outcome.cache_misses,
                outcome.files.len(),
                config.out_dir.display(),
            );
            exit(i32::from(!outcome.failed.is_empty()))
        }
        Err(e) => {
            eprintln!("brc: sweep failed: {e}");
            exit(1)
        }
    }
}

/// `brc fuzz` — generative differential testing of the whole stack:
/// random verified modules through both VM engines and the reordering
/// pipeline under Sets I/II/III, with auto-reduction and a replayable
/// corpus for anything that diverges.
fn cmd_fuzz(argv: impl Iterator<Item = String>) -> ! {
    use br_fuzz::{replay_file, run_fuzz, FuzzConfig};

    let mut smoke = false;
    let mut seeds = None;
    let mut start_seed = None;
    let mut jobs = None;
    let mut time_limit = None;
    let mut corpus = None;
    let mut reduce = true;
    let mut replay: Option<String> = None;
    let mut argv = argv.peekable();
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--seeds" => seeds = Some(parse_flag("--seeds", argv.next())),
            "--start-seed" => start_seed = Some(parse_flag("--start-seed", argv.next())),
            "--jobs" => jobs = Some(parse_flag("--jobs", argv.next())),
            "--time" => {
                let secs: u64 = parse_flag("--time", argv.next());
                time_limit = Some(std::time::Duration::from_secs(secs));
            }
            "--smoke" => smoke = true,
            "--corpus" => corpus = Some(flag_value("--corpus", argv.next())),
            "--no-reduce" => reduce = false,
            "--replay" => replay = Some(flag_value("--replay", argv.next())),
            "--help" | "-h" => usage(),
            other => bad_args(format_args!("unexpected argument: {other}")),
        }
    }

    if let Some(path) = replay {
        match replay_file(std::path::Path::new(&path)) {
            Ok(report) => {
                for c in &report.checks {
                    println!("replay: {c}");
                }
                if report.reproduced {
                    println!("replay: divergence reproduced");
                    exit(0)
                } else {
                    println!("replay: divergence did NOT reproduce");
                    exit(1)
                }
            }
            Err(e) => {
                eprintln!("brc: cannot replay {path}: {e}");
                exit(1)
            }
        }
    }

    let mut cfg = if smoke {
        FuzzConfig::smoke()
    } else {
        FuzzConfig::default()
    };
    if let Some(n) = seeds {
        cfg.seeds = n;
    }
    if let Some(n) = start_seed {
        cfg.start_seed = n;
    }
    if let Some(n) = jobs {
        cfg.jobs = n;
    }
    cfg.time_limit = time_limit;
    if let Some(dir) = corpus {
        cfg.corpus_dir = Some(dir.into());
    }
    cfg.reduce = reduce;

    let out = run_fuzz(&cfg);
    for f in &out.findings {
        let crit = if f.finding.critical {
            " [CRITICAL]"
        } else {
            ""
        };
        println!(
            "finding{crit}: {} (seed {}, set {})",
            f.finding.fingerprint, f.finding.seed, f.finding.set
        );
        println!("  {}", f.finding.detail);
        if let Some(r) = &f.reduced {
            println!(
                "  reduced: {} site(s), {} condition(s), {}-byte input",
                r.spec.sites.len(),
                r.spec.cond_count(),
                r.input.len()
            );
        }
        if let Some(p) = &f.repro_path {
            println!("  repro: {}", p.display());
            println!("  replay: brc fuzz --replay {}", p.display());
        }
    }
    let skipped = if out.seeds_skipped > 0 {
        format!(" ({} skipped at time limit)", out.seeds_skipped)
    } else {
        String::new()
    };
    println!(
        "fuzz: {} seeds in {:.1?}{skipped}; {} distinct divergence(s){}",
        out.seeds_run,
        out.elapsed,
        out.findings.len(),
        if out.has_critical() {
            " — CRITICAL: validator accepted a miscompile"
        } else {
            ""
        }
    );
    exit(if out.findings.is_empty() { 0 } else { 1 })
}

/// `brc serve` — run the reordering daemon until SIGTERM or a
/// `shutdown` frame, then print the final counters.
fn cmd_serve(argv: impl Iterator<Item = String>) -> ! {
    use br_serve::{ServeConfig, Server};

    let mut config = ServeConfig::default();
    let mut argv = argv.peekable();
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--addr" => config.addr = flag_value("--addr", argv.next()),
            "--threads" => config.threads = parse_flag("--threads", argv.next()),
            "--queue" => config.queue = parse_flag("--queue", argv.next()),
            "--deadline-ms" => config.deadline_ms = parse_flag("--deadline-ms", argv.next()),
            "--cache" => config.cache_dir = Some(flag_value("--cache", argv.next()).into()),
            "--no-cache" => config.cache_dir = None,
            "--debug-endpoints" => config.debug_endpoints = true,
            "--help" | "-h" => usage(),
            other => bad_args(format_args!("unexpected argument: {other}")),
        }
    }
    let server = match Server::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("brc: serve failed to start: {e}");
            exit(1)
        }
    };
    eprintln!("brc: serving on {}", server.addr());
    let metrics = server.metrics();
    match server.wait() {
        Ok(()) => {
            eprintln!("brc: drained cleanly; final counters:");
            eprint!("{}", metrics.render());
            exit(0)
        }
        Err(e) => {
            eprintln!("brc: serve failed: {e}");
            exit(1)
        }
    }
}

/// `brc loadgen` — closed-loop load against a running daemon.
fn cmd_loadgen(argv: impl Iterator<Item = String>) -> ! {
    use br_serve::{run_loadgen, run_smoke, LoadgenConfig};

    let mut config = LoadgenConfig::default();
    let mut smoke = false;
    let mut argv = argv.peekable();
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--addr" => config.addr = flag_value("--addr", argv.next()),
            "--conns" => config.connections = parse_flag("--conns", argv.next()),
            "--passes" => config.passes = parse_flag("--passes", argv.next()),
            "--train" => config.train_size = parse_flag("--train", argv.next()),
            "--input" => config.input_size = parse_flag("--input", argv.next()),
            "--reorder-only" => config.reorder_only = true,
            "--smoke" => smoke = true,
            "--shutdown" => config.shutdown_after = true,
            "--help" | "-h" => usage(),
            other => bad_args(format_args!("unexpected argument: {other}")),
        }
    }
    if smoke {
        let shutdown_after = config.shutdown_after;
        let mut smoke_config = LoadgenConfig::smoke(&config.addr);
        smoke_config.shutdown_after = false; // only after the warm pass
        match run_smoke(&smoke_config) {
            Ok((warm, violations)) => {
                print!("{}", warm.render());
                for v in &violations {
                    eprintln!("brc: loadgen smoke FAILED: {v}");
                }
                if shutdown_after {
                    let drained = br_serve::Client::connect(&smoke_config.addr)
                        .and_then(|mut c| c.call(&br_serve::Frame::text("shutdown", "")));
                    match drained {
                        Ok(bye) if bye.kind == "ok" => {}
                        Ok(bye) => {
                            eprintln!("brc: loadgen shutdown refused: {}", bye.payload_text());
                            exit(1)
                        }
                        Err(e) => {
                            eprintln!("brc: loadgen shutdown failed: {e}");
                            exit(1)
                        }
                    }
                }
                exit(if violations.is_empty() { 0 } else { 1 })
            }
            Err(e) => {
                eprintln!("brc: loadgen failed: {e}");
                exit(1)
            }
        }
    }
    match run_loadgen(&config) {
        Ok(report) => {
            print!("{}", report.render());
            exit(if report.errors == 0 { 0 } else { 1 })
        }
        Err(e) => {
            eprintln!("brc: loadgen failed: {e}");
            exit(1)
        }
    }
}

fn main() {
    let mut argv = std::env::args().skip(1).peekable();
    match argv.peek().map(String::as_str) {
        Some("lint") => {
            argv.next();
            cmd_lint(argv);
        }
        Some("validate") => {
            argv.next();
            cmd_validate(argv);
        }
        Some("adapt") => {
            argv.next();
            cmd_adapt(argv);
        }
        Some("sweep") => {
            argv.next();
            cmd_sweep(argv);
        }
        Some("fuzz") => {
            argv.next();
            cmd_fuzz(argv);
        }
        Some("serve") => {
            argv.next();
            cmd_serve(argv);
        }
        Some("loadgen") => {
            argv.next();
            cmd_loadgen(argv);
        }
        Some("--version" | "-V") => cmd_version(),
        _ => {}
    }
    let args = parse_args(argv);
    let mut module = build_module(&args.source, args.set, args.from_ir, args.no_opt);
    if args.reorder {
        let train = args.train.as_deref().unwrap_or(&args.input);
        let opts = ReorderOptions {
            common_successor: args.common,
            ..ReorderOptions::default()
        };
        match reorder_module(&module, train, &opts) {
            Ok(report) => {
                if args.stats {
                    for s in &report.sequences {
                        eprintln!(
                            "brc: sequence {:?}/{:?} ({:?}): {:?}",
                            s.func, s.head, s.kind, s.outcome
                        );
                    }
                }
                module = report.module;
            }
            Err(t) => {
                eprintln!("brc: training run trapped: {t}");
                exit(1);
            }
        }
    }
    if let Err(e) = br_ir::verify_module(&module) {
        eprintln!("brc: internal error: IR fails verification: {e}");
        exit(1);
    }
    if args.dump_ir {
        print!("{}", br_ir::print_module(&module));
        return;
    }
    let vm = VmOptions {
        trace_blocks: args.trace,
        ..VmOptions::default()
    };
    match run(&module, &args.input, &vm) {
        Ok(out) => {
            use std::io::Write as _;
            for line in &out.trace {
                eprintln!("brc: trace {line}");
            }
            std::io::stdout().write_all(&out.output).ok();
            if args.stats {
                eprintln!("brc: exit {}", out.exit);
                eprintln!("brc: {}", out.stats);
            }
            exit(out.exit.clamp(0, 255) as i32);
        }
        Err(t) => {
            eprintln!("brc: run-time trap: {t}");
            exit(1);
        }
    }
}
