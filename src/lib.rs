//! # branch-reorder
//!
//! A from-scratch reproduction of *"Improving Performance by Branch
//! Reordering"* (Minghui Yang, Gang-Ryung Uh, David B. Whalley — PLDI
//! 1998): a profile-guided compiler transformation that reorders sequences
//! of conditional branches comparing a common variable against constants.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`ir`] — RISC-like IR with SPARC-style separate compare/branch.
//! * [`minic`] — a C-subset front end with the paper's three
//!   switch-translation heuristic sets.
//! * [`opt`] — conventional optimizations (the "first pass" of the paper's
//!   pipeline) and code layout.
//! * [`vm`] — an interpreter with architectural event counters, branch
//!   predictors, and a cycle model.
//! * [`reorder`] — **the paper's contribution**: detection of reorderable
//!   range-condition sequences, profiling, cost-based ordering selection,
//!   and the CFG restructuring transformation.
//! * [`analysis`] — dataflow framework (intervals, condition-code
//!   reaching definitions, purity), lint passes, and the translation
//!   validator that proves each reordering semantics-preserving.
//! * [`adaptive`] — continuous profile-guided reoptimization: online
//!   range-exit profiling with epoch decay, distribution-drift
//!   detection, and validated hot swapping of re-reordered sequences.
//! * [`workloads`] — the 17 benchmark kernels named after the paper's
//!   test programs, plus input generators.
//! * [`harness`] — experiment drivers that regenerate every table and
//!   figure of the paper's evaluation section.
//! * [`sweep`] — the parallel reproduction engine: the whole workload ×
//!   heuristic-set × seed grid fanned across cores, with a
//!   content-addressed artifact cache and deterministic result files.
//! * [`fuzz`] — generative differential testing: seeded random modules
//!   run through both VM engines and the reordering pipeline under all
//!   three heuristic sets, with divergence fingerprinting, a
//!   delta-debugging reducer, and a replayable repro corpus.
//!
//! ## Quickstart
//!
//! ```
//! use branch_reorder::harness::{run_program_experiment, ExperimentConfig};
//! use branch_reorder::minic::HeuristicSet;
//!
//! let src = r#"
//!     int main() {
//!         int c; int x; int y; int z; int n;
//!         x = 0; y = 0; z = 0; n = 0;
//!         c = getchar();
//!         while (c != -1) {
//!             if (c == 32) { x = x + 1; }
//!             else if (c == 10) { y = y + 1; }
//!             else { z = z + 1; }
//!             n = n + 1;
//!             c = getchar();
//!         }
//!         putint(x); putint(y); putint(z);
//!         return n;
//!     }
//! "#;
//! let input: Vec<u8> = b"mostly letters  with spaces\nand lines\n".to_vec();
//! let result = run_program_experiment(
//!     "quickstart",
//!     src,
//!     &input,
//!     &input,
//!     &ExperimentConfig::with_heuristics(HeuristicSet::SET_I),
//! ).expect("pipeline runs");
//! // Reordering never changes observable behaviour.
//! assert_eq!(result.original.output, result.reordered.output);
//! ```

pub use br_adaptive as adaptive;
pub use br_analysis as analysis;
pub use br_fuzz as fuzz;
pub use br_harness as harness;
pub use br_ir as ir;
pub use br_layout as layout;
pub use br_minic as minic;
pub use br_opt as opt;
pub use br_reorder as reorder;
pub use br_sweep as sweep;
pub use br_vm as vm;
pub use br_workloads as workloads;
