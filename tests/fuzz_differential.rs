//! Differential fuzzing over synthesized programs: for each random
//! program, observable behaviour must be identical across
//!
//! * unoptimized vs. conventionally optimized code,
//! * all three switch-translation heuristic sets,
//! * before vs. after branch reordering (with an arbitrary profile),
//! * plain vs. profiling-instrumented runs,
//!
//! and dynamic instruction counts must never increase when the training
//! distribution matches the test distribution.

use branch_reorder::minic::{compile, HeuristicSet, Options};
use branch_reorder::reorder::{reorder_module, ReorderOptions};
use branch_reorder::vm::{run, VmOptions};
use branch_reorder::workloads::synth::{generate_program, SynthConfig};

const SEEDS: u64 = 60;

fn inputs_for(seed: u64) -> (Vec<u8>, Vec<u8>) {
    // Byte soup with plenty of ASCII structure, plus some values the
    // generated switches look for.
    let mk = |s: u64| {
        let mut out = Vec::new();
        let mut x = s.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        for _ in 0..600 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            out.push((x % 128) as u8);
        }
        out
    };
    (mk(seed.wrapping_add(1)), mk(seed.wrapping_add(2)))
}

#[test]
fn optimizer_preserves_behaviour_on_random_programs() {
    let cfg = SynthConfig::default();
    for seed in 0..SEEDS {
        let src = generate_program(seed, &cfg);
        let (input, _) = inputs_for(seed);
        let raw = compile(&src, &Options::default()).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let mut optimized = raw.clone();
        branch_reorder::opt::optimize(&mut optimized);
        branch_reorder::ir::verify_module(&optimized)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let a = run(&raw, &input, &VmOptions::default())
            .unwrap_or_else(|e| panic!("seed {seed} raw trapped: {e}\n{src}"));
        let b = run(&optimized, &input, &VmOptions::default())
            .unwrap_or_else(|e| panic!("seed {seed} optimized trapped: {e}\n{src}"));
        assert_eq!(a.exit, b.exit, "seed {seed}\n{src}");
        assert_eq!(a.output, b.output, "seed {seed}\n{src}");
        assert!(
            b.stats.insts <= a.stats.insts,
            "seed {seed}: optimizer pessimized {} -> {}",
            a.stats.insts,
            b.stats.insts
        );
    }
}

#[test]
fn heuristic_sets_agree_on_random_programs() {
    let cfg = SynthConfig::default();
    for seed in 0..SEEDS {
        let src = generate_program(seed, &cfg);
        let (input, _) = inputs_for(seed);
        let mut reference: Option<(i64, Vec<u8>)> = None;
        for h in HeuristicSet::ALL {
            let mut m = compile(&src, &Options::with_heuristics(h)).unwrap();
            branch_reorder::opt::optimize(&mut m);
            let out = run(&m, &input, &VmOptions::default())
                .unwrap_or_else(|e| panic!("seed {seed} set {}: {e}\n{src}", h.name));
            match &reference {
                None => reference = Some((out.exit, out.output)),
                Some((exit, output)) => {
                    assert_eq!(out.exit, *exit, "seed {seed} set {}\n{src}", h.name);
                    assert_eq!(&out.output, output, "seed {seed} set {}\n{src}", h.name);
                }
            }
        }
    }
}

#[test]
fn reordering_preserves_behaviour_on_random_programs() {
    let cfg = SynthConfig::default();
    for seed in 0..SEEDS {
        let src = generate_program(seed, &cfg);
        let (train, test) = inputs_for(seed);
        for h in [HeuristicSet::SET_I, HeuristicSet::SET_III] {
            let mut m = compile(&src, &Options::with_heuristics(h)).unwrap();
            branch_reorder::opt::optimize(&mut m);
            let opts = ReorderOptions {
                validate: true,
                ..ReorderOptions::default()
            };
            let report = reorder_module(&m, &train, &opts)
                .unwrap_or_else(|e| panic!("seed {seed}: training trapped: {e}\n{src}"));
            // Behavioural agreement below is one input's worth of
            // evidence; the translation validator proves every applied
            // sequence equivalent for *all* values.
            let validation = report.validation.as_ref().expect("validation requested");
            assert!(
                validation.is_clean(),
                "seed {seed} set {}: {validation}\n{src}",
                h.name
            );
            branch_reorder::ir::verify_module(&report.module)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
            let a = run(&m, &test, &VmOptions::default()).unwrap();
            let b = run(&report.module, &test, &VmOptions::default())
                .unwrap_or_else(|e| panic!("seed {seed}: reordered trapped: {e}\n{src}"));
            assert_eq!(a.exit, b.exit, "seed {seed} set {}\n{src}", h.name);
            assert_eq!(a.output, b.output, "seed {seed} set {}\n{src}", h.name);
        }
    }
}

#[test]
fn perfect_profile_never_increases_branches_on_random_programs() {
    let cfg = SynthConfig::default();
    for seed in 0..SEEDS / 2 {
        let src = generate_program(seed, &cfg);
        let (_, test) = inputs_for(seed);
        let mut m = compile(&src, &Options::with_heuristics(HeuristicSet::SET_III)).unwrap();
        branch_reorder::opt::optimize(&mut m);
        // Train on exactly the measurement input.
        let report = reorder_module(&m, &test, &ReorderOptions::default()).unwrap();
        let a = run(&m, &test, &VmOptions::default()).unwrap();
        let b = run(&report.module, &test, &VmOptions::default()).unwrap();
        assert!(
            b.stats.cond_branches <= a.stats.cond_branches,
            "seed {seed}: branches grew {} -> {} with a perfect profile\n{src}",
            a.stats.cond_branches,
            b.stats.cond_branches,
        );
    }
}

#[test]
fn instrumentation_is_transparent_on_random_programs() {
    let cfg = SynthConfig::default();
    for seed in 0..SEEDS / 2 {
        let src = generate_program(seed, &cfg);
        let (input, _) = inputs_for(seed);
        let mut m = compile(&src, &Options::default()).unwrap();
        branch_reorder::opt::optimize(&mut m);
        let detections = branch_reorder::reorder::profile::detect_all(&m);
        let mut instrumented = m.clone();
        branch_reorder::reorder::profile::instrument_module(&mut instrumented, &detections);
        let a = run(&m, &input, &VmOptions::default()).unwrap();
        let b = run(&instrumented, &input, &VmOptions::default()).unwrap();
        assert_eq!(a.output, b.output, "seed {seed}\n{src}");
        assert_eq!(a.stats, b.stats, "seed {seed}: probes must be free\n{src}");
    }
}

#[test]
fn common_successor_extension_preserves_behaviour_on_random_programs() {
    let cfg = SynthConfig::default();
    for seed in 0..SEEDS {
        let src = generate_program(seed, &cfg);
        let (train, test) = inputs_for(seed);
        let mut m = compile(&src, &Options::default()).unwrap();
        branch_reorder::opt::optimize(&mut m);
        let opts = ReorderOptions {
            common_successor: true,
            ..ReorderOptions::default()
        };
        let report = reorder_module(&m, &train, &opts)
            .unwrap_or_else(|e| panic!("seed {seed}: training trapped: {e}\n{src}"));
        branch_reorder::ir::verify_module(&report.module)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
        let a = run(&m, &test, &VmOptions::default()).unwrap();
        let b = run(&report.module, &test, &VmOptions::default())
            .unwrap_or_else(|e| panic!("seed {seed}: reordered trapped: {e}\n{src}"));
        assert_eq!(a.exit, b.exit, "seed {seed}\n{src}");
        assert_eq!(a.output, b.output, "seed {seed}\n{src}");
    }
}

#[test]
fn ir_text_round_trips_on_random_programs() {
    use branch_reorder::ir::{parse_module, print_module};
    let cfg = SynthConfig::default();
    for seed in 0..SEEDS / 2 {
        let src = generate_program(seed, &cfg);
        let (input, _) = inputs_for(seed);
        let mut m = compile(&src, &Options::default()).unwrap();
        branch_reorder::opt::optimize(&mut m);
        let text = print_module(&m);
        let parsed = parse_module(&text).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{text}"));
        assert_eq!(print_module(&parsed), text, "seed {seed}");
        assert_eq!(parsed, m, "seed {seed}: parse(print(m)) != m");
        // The parsed module must verify and behave identically.
        branch_reorder::ir::verify_module(&parsed).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let a = run(&m, &input, &VmOptions::default()).unwrap();
        let b = run(&parsed, &input, &VmOptions::default()).unwrap();
        assert_eq!(a.exit, b.exit, "seed {seed}");
        assert_eq!(a.output, b.output, "seed {seed}");
        assert_eq!(a.stats, b.stats, "seed {seed}");
    }
}

#[test]
fn register_allocation_preserves_behaviour_on_random_programs() {
    use branch_reorder::opt::regalloc::{allocate_registers, RegAllocOptions};
    let cfg = SynthConfig::default();
    for seed in 0..SEEDS {
        let src = generate_program(seed, &cfg);
        let (train, test) = inputs_for(seed);
        let mut m = compile(&src, &Options::default()).unwrap();
        branch_reorder::opt::optimize(&mut m);
        // Allocate AFTER reordering, as a real backend would.
        let report = reorder_module(&m, &train, &ReorderOptions::default()).unwrap();
        for regs in [8u32, 12, 24] {
            let mut allocated = report.module.clone();
            for f in &mut allocated.functions {
                allocate_registers(f, &RegAllocOptions { num_regs: regs })
                    .unwrap_or_else(|| panic!("seed {seed}: params exceed {regs} regs"));
            }
            branch_reorder::ir::verify_module(&allocated)
                .unwrap_or_else(|e| panic!("seed {seed} regs {regs}: {e}\n{src}"));
            let a = run(&report.module, &test, &VmOptions::default()).unwrap();
            let b = run(&allocated, &test, &VmOptions::default())
                .unwrap_or_else(|e| panic!("seed {seed} regs {regs}: {e}\n{src}"));
            assert_eq!(a.exit, b.exit, "seed {seed} regs {regs}\n{src}");
            assert_eq!(a.output, b.output, "seed {seed} regs {regs}\n{src}");
            assert!(
                b.stats.insts >= a.stats.insts,
                "seed {seed}: spill code cannot shrink counts"
            );
        }
    }
}

#[test]
fn each_optimization_pass_is_individually_sound() {
    use branch_reorder::opt as passes;
    type Pass = (&'static str, fn(&mut branch_reorder::ir::Function) -> bool);
    let list: [Pass; 8] = [
        ("fold", passes::fold::fold_constants),
        ("algebra", passes::algebra::simplify_algebra),
        ("copyprop", passes::copyprop::propagate_copies),
        ("cse", passes::cse::eliminate_common_subexpressions),
        ("dce", passes::dce::eliminate_dead_code),
        ("chain", passes::chain::chain_branches),
        ("merge", passes::merge::merge_blocks),
        ("licm", passes::licm::hoist_loop_invariants),
    ];
    let cfg = SynthConfig::default();
    for seed in 0..SEEDS / 3 {
        let src = generate_program(seed, &cfg);
        let (input, _) = inputs_for(seed);
        let base_module = compile(&src, &Options::default()).unwrap();
        let base = run(&base_module, &input, &VmOptions::default()).unwrap();
        for (name, pass) in list {
            let mut m = base_module.clone();
            for f in &mut m.functions {
                pass(f);
            }
            branch_reorder::ir::verify_module(&m)
                .unwrap_or_else(|e| panic!("seed {seed} pass {name}: {e}\n{src}"));
            let got = run(&m, &input, &VmOptions::default())
                .unwrap_or_else(|e| panic!("seed {seed} pass {name} trapped: {e}\n{src}"));
            assert_eq!(got.exit, base.exit, "seed {seed} pass {name}\n{src}");
            assert_eq!(got.output, base.output, "seed {seed} pass {name}\n{src}");
        }
        // The layout pass mutates in place without a changed flag.
        let mut m = base_module.clone();
        for f in &mut m.functions {
            passes::layout::reposition(f);
        }
        branch_reorder::ir::verify_module(&m).unwrap();
        let got = run(&m, &input, &VmOptions::default()).unwrap();
        assert_eq!(got.exit, base.exit, "seed {seed} pass layout");
        assert_eq!(got.output, base.output, "seed {seed} pass layout");
    }
}
