//! The reproduction's headline claims, as executable assertions: the
//! *shapes* of the paper's evaluation (signs, orderings, crossovers)
//! must hold on every run. EXPERIMENTS.md narrates these; this test
//! enforces them.

use branch_reorder::harness::{run_suite, ExperimentConfig, SuiteResult};
use branch_reorder::minic::HeuristicSet;

fn suites() -> Vec<SuiteResult> {
    HeuristicSet::ALL
        .into_iter()
        .map(|h| run_suite(&ExperimentConfig::quick(h)).expect("suite runs"))
        .collect()
}

fn avg_insts_pct(s: &SuiteResult) -> f64 {
    s.programs.iter().map(|p| p.insts_pct()).sum::<f64>() / s.programs.len() as f64
}

fn pct_of<'a>(s: &'a SuiteResult, name: &str) -> &'a branch_reorder::harness::ProgramResult {
    s.programs
        .iter()
        .find(|p| p.name == name)
        .expect("program exists")
}

#[test]
fn table4_shapes_hold() {
    let all = suites();
    let (set1, set2, set3) = (&all[0], &all[1], &all[2]);

    // Reordering helps on average under every heuristic set.
    for s in &all {
        assert!(
            avg_insts_pct(s) < -5.0,
            "set {}: average {:.2}%",
            s.heuristics.name,
            avg_insts_pct(s)
        );
        // Branch reductions exceed instruction reductions on average.
        let avg_branches =
            s.programs.iter().map(|p| p.branches_pct()).sum::<f64>() / s.programs.len() as f64;
        assert!(avg_branches < avg_insts_pct(s), "set {}", s.heuristics.name);
    }
    // Set III (always linear search) benefits most.
    assert!(avg_insts_pct(set3) < avg_insts_pct(set1));
    assert!(avg_insts_pct(set3) < avg_insts_pct(set2));

    // hyphen regresses (train/test mismatch), as in the paper.
    assert!(
        pct_of(set1, "hyphen").insts_pct() > 0.0,
        "hyphen: {:.2}%",
        pct_of(set1, "hyphen").insts_pct()
    );
    // sort is a dramatic winner.
    assert!(pct_of(set1, "sort").insts_pct() < -20.0);
    // cpp: flat under I and II (dense 17-case switch is an indirect
    // jump), large under III.
    assert!(pct_of(set1, "cpp").insts_pct() > -2.0);
    assert!(pct_of(set2, "cpp").insts_pct() > -2.0);
    assert!(pct_of(set3, "cpp").insts_pct() < -10.0);
    // grep improves monotonically I -> II -> III.
    let g1 = pct_of(set1, "grep").insts_pct();
    let g2 = pct_of(set2, "grep").insts_pct();
    let g3 = pct_of(set3, "grep").insts_pct();
    assert!(g3 < g2 && g2 < g1, "grep: {g1:.2} {g2:.2} {g3:.2}");
    // join and yacc barely move (dominated by non-sequence work).
    assert!(pct_of(set1, "join").insts_pct() > -6.0);
    assert!(pct_of(set1, "yacc").insts_pct() > -8.0);
}

#[test]
fn table5_and_7_shapes_hold() {
    let suite = run_suite(&ExperimentConfig::quick(HeuristicSet::SET_II)).expect("suite");
    let rows = branch_reorder::harness::tables::table5_rows(&suite);
    // Some programs gain mispredictions, and wherever they do, the
    // instruction savings dominate (large ratios).
    let increased: Vec<_> = rows.iter().filter(|r| r.ratio.is_some()).collect();
    assert!(!increased.is_empty(), "someone must mispredict more");
    for r in &increased {
        assert!(
            r.ratio.unwrap() > 1.0,
            "{}: ratio {:.2} — savings must outweigh added misses",
            r.program,
            r.ratio.unwrap()
        );
    }
    // Time improvements are diluted relative to instruction improvements.
    let t7 = branch_reorder::harness::tables::table7_rows(&suite);
    let avg_time = t7.iter().map(|r| r.ultra_pct).sum::<f64>() / t7.len() as f64;
    let avg_insts = avg_insts_pct(&suite);
    assert!(
        avg_time < 0.0,
        "time must improve on average: {avg_time:.2}%"
    );
    assert!(
        avg_time > avg_insts,
        "library overhead must dilute: time {avg_time:.2}% vs insts {avg_insts:.2}%"
    );
}

#[test]
fn table8_and_figures_shapes_hold() {
    let all = suites();
    for s in &all {
        let rows = branch_reorder::harness::tables::table8_rows(s);
        let avg_static = rows.iter().map(|r| r.static_pct).sum::<f64>() / rows.len() as f64;
        assert!(avg_static > 0.0, "replicated code grows the program");
        assert!(avg_static < 40.0, "static growth bounded: {avg_static:.2}%");
        // Not everything is reordered (cold sequences), but plenty is.
        let avg_reordered = rows.iter().map(|r| r.reordered_pct).sum::<f64>() / rows.len() as f64;
        assert!(
            (20.0..100.0).contains(&avg_reordered),
            "{avg_reordered:.2}%"
        );
        // Reordered sequences get longer (defaults made explicit).
        let (orig, new) = branch_reorder::harness::tables::figure_histograms(s);
        let avg = |h: &[(u32, u32)]| {
            let total: u32 = h.iter().map(|&(_, c)| c).sum();
            h.iter().map(|&(l, c)| (l * c) as f64).sum::<f64>() / total.max(1) as f64
        };
        assert!(
            avg(&new) > avg(&orig),
            "set {}: {:.2} -> {:.2}",
            s.heuristics.name,
            avg(&orig),
            avg(&new)
        );
    }
}
