//! Cross-crate integration tests: the full Figure 2 pipeline through
//! the facade crate, checking the paper's qualitative claims.

use branch_reorder::harness::{run_program_experiment, run_workload, ExperimentConfig};
use branch_reorder::minic::HeuristicSet;
use branch_reorder::vm::{PredictorConfig, Scheme};

/// The paper's Figure 1 program, written the "natural" way.
const FIGURE1: &str = r#"
int main() {
    int c; int x; int y; int z;
    x = 0; y = 0; z = 0;
    c = getchar();
    while (c != -1) {
        if (c == ' ') x += 1;
        else if (c == '\n') y += 1;
        else z += 1;
        c = getchar();
    }
    putint(x); putint(y); putint(z);
    return 0;
}
"#;

fn prose(n: usize, seed: u64) -> Vec<u8> {
    branch_reorder::workloads::InputSpec::new(branch_reorder::workloads::InputKind::Prose, seed)
        .generate(n)
}

#[test]
fn figure1_improves_under_every_heuristic_set() {
    for h in HeuristicSet::ALL {
        let r = run_program_experiment(
            "figure1",
            FIGURE1,
            &prose(8192, 1),
            &prose(8192, 2),
            &ExperimentConfig::quick(h),
        )
        .expect("pipeline runs");
        assert!(r.insts_pct() < -5.0, "set {}: {}", h.name, r.insts_pct());
        assert!(r.branches_pct() < r.insts_pct(), "branches drop more");
    }
}

#[test]
fn behaviour_identical_across_the_full_matrix() {
    // 17 programs x 4 sets already covered in br-workloads; spot-check
    // through the facade with the quick config and predictor sweep on.
    for name in ["wc", "cb", "lex"] {
        let w = branch_reorder::workloads::by_name(name).unwrap();
        for h in HeuristicSet::ALL {
            let r = run_workload(&w, &ExperimentConfig::quick(h)).expect("runs");
            assert_eq!(r.original.output, r.reordered.output, "{name}/{}", h.name);
            assert_eq!(r.original.exit, r.reordered.exit);
        }
    }
}

#[test]
fn predictor_results_cover_requested_sweep() {
    let w = branch_reorder::workloads::by_name("wc").unwrap();
    let config = ExperimentConfig::quick(HeuristicSet::SET_II);
    let r = run_workload(&w, &config).expect("runs");
    assert_eq!(r.original.predictors.len(), 14);
    // Every predictor saw every conditional branch.
    for p in &r.original.predictors {
        assert_eq!(p.predictions, r.original.stats.cond_branches);
    }
    // Larger tables never mispredict more on the same trace, modulo
    // aliasing flukes; check the monotone trend loosely: 2048 <= 32 * 2.
    let at = |entries: usize| {
        r.original
            .predictors
            .iter()
            .find(|p| {
                p.config
                    == PredictorConfig {
                        scheme: Scheme::TwoBit,
                        entries,
                    }
            })
            .unwrap()
            .mispredictions
    };
    assert!(at(2048) <= at(32) * 2 + 10);
}

#[test]
fn exhaustive_and_greedy_agree_end_to_end() {
    let w = branch_reorder::workloads::by_name("wc").unwrap();
    let mut greedy_cfg = ExperimentConfig::quick(HeuristicSet::SET_III);
    let mut exhaustive_cfg = ExperimentConfig::quick(HeuristicSet::SET_III);
    greedy_cfg.exhaustive = false;
    exhaustive_cfg.exhaustive = true;
    let a = run_workload(&w, &greedy_cfg).expect("runs");
    let b = run_workload(&w, &exhaustive_cfg).expect("runs");
    assert_eq!(
        a.reordered.stats.insts, b.reordered.stats.insts,
        "the paper found greedy == exhaustive on every sequence"
    );
}

#[test]
fn static_growth_is_modest() {
    // The paper reports ~5% static growth. Kernels are tiny so allow
    // more headroom, but growth must stay bounded.
    let mut total_orig = 0usize;
    let mut total_new = 0usize;
    for w in branch_reorder::workloads::all() {
        let r = run_workload(&w, &ExperimentConfig::quick(HeuristicSet::SET_I)).expect("runs");
        total_orig += r.original_static;
        total_new += r.reordered_static;
    }
    let growth = (total_new as f64 - total_orig as f64) / total_orig as f64 * 100.0;
    assert!(
        growth > 0.0,
        "reordering adds replicated code: {growth:.2}%"
    );
    assert!(growth < 40.0, "static growth out of hand: {growth:.2}%");
}

#[test]
fn training_on_test_input_never_slows_a_program_down() {
    // When the training input IS the test input, the cost model should
    // never pick a worse ordering than the original (the paper: "when we
    // used the same test input data as the training input data, the
    // number of branches never increased").
    for name in ["wc", "grep", "hyphen", "deroff", "awk"] {
        let w = branch_reorder::workloads::by_name(name).unwrap();
        let input = w.test_input(4096);
        let r = run_program_experiment(
            name,
            w.source,
            &input,
            &input,
            &ExperimentConfig::quick(HeuristicSet::SET_III),
        )
        .expect("runs");
        assert!(
            r.reordered.stats.cond_branches <= r.original.stats.cond_branches,
            "{name}: branches increased with a perfect profile: {} -> {}",
            r.original.stats.cond_branches,
            r.reordered.stats.cond_branches,
        );
    }
}

#[test]
fn whole_harness_is_deterministic() {
    // Same config, two runs: byte-identical tables. This is what makes
    // results_full.txt reproducible.
    let mk = || {
        let config = ExperimentConfig::quick(HeuristicSet::SET_II);
        let suite = branch_reorder::harness::SuiteResult {
            heuristics: config.heuristics,
            programs: ["wc", "lex"]
                .iter()
                .map(|n| {
                    branch_reorder::harness::run_workload(
                        &branch_reorder::workloads::by_name(n).unwrap(),
                        &config,
                    )
                    .unwrap()
                })
                .collect(),
        };
        let mut out = String::new();
        out.push_str(&branch_reorder::harness::tables::table5(&suite));
        out.push_str(&branch_reorder::harness::tables::table7(&suite));
        out.push_str(&branch_reorder::harness::csv::table6(&suite));
        out
    };
    assert_eq!(mk(), mk());
}
