//! Proof-carrying reordering properties:
//!
//! * every certificate the certifying pipeline emits is independently
//!   accepted by the tiny checker (`analysis::cert::check`), and every
//!   single-line tampering of it is rejected — unsigned edits (caught
//!   by the signature), re-signed semantic edits (range-bound shifts
//!   and class-target swaps, caught by the tiling and walk checks),
//!   and single-line deletions (caught by the fixed-order parse);
//! * every prover refutation of a seeded illegal reordering — a
//!   target swap and a range-bound shift — comes with a concrete
//!   witness input on which the original and corrupted modules
//!   demonstrably diverge under the reference interpreter.

use branch_reorder::analysis::cert::{check, fingerprint};
use branch_reorder::ir::{BlockId, FuncId, Function, Inst, Module, Operand, Terminator};
use branch_reorder::minic::{compile, HeuristicSet, Options};
use branch_reorder::reorder::apply::apply_reordering;
use branch_reorder::reorder::pipeline::eliminable_items;
use branch_reorder::reorder::profile::{order_items, plan_ranges, SequenceProfile};
use branch_reorder::reorder::validate::sequence_exits;
use branch_reorder::reorder::{
    certify_sequence, reorder_module, select_ordering, DetectedSequence, ReorderOptions,
};
use branch_reorder::vm::{run_reference, VmOptions};

/// One real certificate: certify `wc`'s committed reordering.
fn wc_certificate() -> String {
    let w = branch_reorder::workloads::by_name("wc").expect("wc exists");
    let mut m =
        compile(w.source, &Options::with_heuristics(HeuristicSet::SET_I)).expect("wc compiles");
    branch_reorder::opt::optimize(&mut m);
    let opts = ReorderOptions {
        certify: true,
        ..ReorderOptions::default()
    };
    let report = reorder_module(&m, &w.training_input(1024), &opts).expect("pipeline runs");
    let summary = report.validation.expect("certify mode validates");
    assert!(summary.is_clean(), "{summary}");
    summary
        .certificates
        .into_iter()
        .next()
        .expect("wc commits at least one certified reordering")
        .text
}

/// Deterministic single-line mutation: bump the first ASCII digit,
/// else flip the case of the first letter, else append a byte.
fn mutate_line(line: &str) -> String {
    let mut chars: Vec<char> = line.chars().collect();
    if let Some(c) = chars.iter_mut().find(|c| c.is_ascii_digit()) {
        *c = char::from_digit((c.to_digit(10).unwrap() + 1) % 10, 10).unwrap();
        return chars.into_iter().collect();
    }
    if let Some(c) = chars.iter_mut().find(|c| c.is_ascii_alphabetic()) {
        *c = if c.is_ascii_lowercase() {
            c.to_ascii_uppercase()
        } else {
            c.to_ascii_lowercase()
        };
        return chars.into_iter().collect();
    }
    format!("{line}x")
}

/// Reassemble a certificate from body lines with a *freshly computed*
/// signature — the attack model where the tamperer controls the whole
/// file and can re-sign.
fn resign(body_lines: &[String]) -> String {
    let mut body = body_lines.join("\n");
    body.push('\n');
    format!("{body}sig {:016x}\n", fingerprint(&body))
}

fn body_lines(cert: &str) -> Vec<String> {
    let lines: Vec<&str> = cert.lines().collect();
    assert!(lines.last().unwrap().starts_with("sig "));
    lines[..lines.len() - 1]
        .iter()
        .map(|l| l.to_string())
        .collect()
}

#[test]
fn checker_rejects_every_unsigned_line_tampering() {
    let cert = wc_certificate();
    check(&cert).expect("pristine certificate is accepted");
    let lines: Vec<&str> = cert.lines().collect();
    for i in 0..lines.len() {
        let mutated = lines
            .iter()
            .enumerate()
            .map(|(j, l)| {
                if j == i {
                    mutate_line(l)
                } else {
                    (*l).to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n")
            + "\n";
        assert!(
            check(&mutated).is_err(),
            "unsigned tampering of line {i} ({:?}) was accepted",
            lines[i]
        );
    }
}

#[test]
fn checker_rejects_every_resigned_line_deletion() {
    let cert = wc_certificate();
    let body = body_lines(&cert);
    for i in 0..body.len() {
        let mut truncated = body.clone();
        truncated.remove(i);
        let forged = resign(&truncated);
        assert!(
            check(&forged).is_err(),
            "re-signed deletion of line {i} ({:?}) was accepted",
            body[i]
        );
    }
}

#[test]
fn checker_rejects_every_resigned_bound_shift() {
    let cert = wc_certificate();
    let body = body_lines(&cert);
    let mut tried = 0usize;
    for (i, line) in body.iter().enumerate() {
        let Some(rest) = line.strip_prefix("class ") else {
            continue;
        };
        let tokens: Vec<&str> = rest.split(' ').collect();
        let n_ivs: usize = tokens[0].parse().expect("interval count");
        for k in 0..n_ivs {
            let (lo, hi) = tokens[1 + k].split_once(',').expect("interval");
            let (lo, hi): (i64, i64) = (lo.parse().unwrap(), hi.parse().unwrap());
            for (nlo, nhi) in [
                (lo.saturating_add(1), hi),
                (lo.saturating_sub(1), hi),
                (lo, hi.saturating_add(1)),
                (lo, hi.saturating_sub(1)),
            ] {
                if (nlo, nhi) == (lo, hi) {
                    continue; // saturated at an i64 extreme
                }
                let mut toks: Vec<String> = tokens.iter().map(|t| t.to_string()).collect();
                toks[1 + k] = format!("{nlo},{nhi}");
                let mut forged_body = body.clone();
                forged_body[i] = format!("class {}", toks.join(" "));
                let forged = resign(&forged_body);
                assert!(
                    check(&forged).is_err(),
                    "re-signed bound shift {lo},{hi} -> {nlo},{nhi} on line {i} was accepted"
                );
                tried += 1;
            }
        }
    }
    assert!(tried > 0, "certificate declared no intervals to shift");
}

#[test]
fn checker_rejects_every_resigned_target_swap() {
    let cert = wc_certificate();
    let body = body_lines(&cert);
    let exit_of = |line: &str| -> Option<String> {
        line.strip_prefix("class ")?
            .rsplit_once("exit ")
            .map(|(_, t)| t.to_string())
    };
    let class_lines: Vec<(usize, String)> = body
        .iter()
        .enumerate()
        .filter_map(|(i, l)| exit_of(l).map(|t| (i, t)))
        .collect();
    let mut tried = 0usize;
    for &(i, ref ti) in &class_lines {
        for (_, tj) in &class_lines {
            if ti == tj {
                continue;
            }
            let mut forged_body = body.clone();
            let (prefix, _) = forged_body[i].rsplit_once("exit ").unwrap();
            forged_body[i] = format!("{prefix}exit {tj}");
            let forged = resign(&forged_body);
            assert!(
                check(&forged).is_err(),
                "re-signed target swap {ti} -> {tj} on line {i} was accepted"
            );
            tried += 1;
        }
    }
    assert!(tried > 0, "certificate has no pair of distinct class exits");
}

// ---------------------------------------------------------------------
// Witness divergence properties.
// ---------------------------------------------------------------------

/// A faithfully reordered demo program: else-if classifier on `getchar`
/// where every class bumps a counter by a different amount, so any
/// misrouting changes the exit value.
fn demo_reordered() -> (Module, Function, Module, DetectedSequence, FuncId, u32) {
    let src = "int main() { int c; int n; n = 0; c = getchar();
        while (c != -1) {
            if (c == 32) { n = n + 1; }
            else if (c == 10) { n = n + 2; }
            else if (c < 5) { n = n + 3; }
            else { n = n + 4; }
            c = getchar();
        }
        return n; }";
    let mut module =
        compile(src, &Options::with_heuristics(HeuristicSet::SET_I)).expect("compiles");
    branch_reorder::opt::optimize(&mut module);
    let (fid, seq) = branch_reorder::reorder::detect_all(&module)
        .into_iter()
        .next()
        .expect("demo program has a reorderable sequence");
    let n = plan_ranges(&seq).len();
    let counts: Vec<u64> = (1..=n as u64).rev().collect();
    let items = order_items(&seq, &SequenceProfile { counts });
    let eliminable = eliminable_items(&seq, &items);
    let mut candidates: Vec<BlockId> = sequence_exits(&seq).into_iter().collect();
    candidates.sort();
    let ordering = select_ordering(&items, &candidates, &eliminable, seq.default_target);
    let mut reordered = module.clone();
    let f = reordered.function_mut(fid);
    let original_f = f.clone();
    let replica_start = f.blocks.len() as u32;
    apply_reordering(f, &seq, &items, &ordering);
    (module, original_f, reordered, seq, fid, replica_start)
}

/// Refute the corrupted function, demand a feasible byte-encodable
/// witness, and demonstrate the divergence under `run_reference`.
fn assert_witness_diverges(
    module: &Module,
    original_f: &Function,
    corrupted: &Module,
    seq: &DetectedSequence,
    fid: FuncId,
    replica_start: u32,
    what: &str,
) {
    let refuted = certify_sequence(fid, original_f, corrupted.function(fid), seq, replica_start)
        .err()
        .unwrap_or_else(|| panic!("{what}: seeded corruption was certified"));
    let w = refuted
        .witness
        .unwrap_or_else(|| panic!("{what}: refutation produced no witness"));
    assert!(
        w.is_feasible(),
        "{what}: witness {w} is outside feasibility"
    );
    let input = w
        .input_bytes()
        .unwrap_or_else(|| panic!("{what}: witness {w} has no input encoding"));
    let vm = VmOptions::default();
    let a = run_reference(module, &input, &vm);
    let b = run_reference(corrupted, &input, &vm);
    let diverges = match (&a, &b) {
        (Ok(x), Ok(y)) => x.exit != y.exit || x.output != y.output,
        (Ok(_), Err(_)) | (Err(_), Ok(_)) => true,
        (Err(x), Err(y)) => x != y,
    };
    assert!(
        diverges,
        "{what}: witness {w} does not diverge (original {a:?}, corrupted {b:?})"
    );
}

#[test]
fn target_swap_refutation_witness_diverges_under_run_reference() {
    let (module, original_f, mut corrupted, seq, fid, replica_start) = demo_reordered();
    let f = corrupted.function_mut(fid);
    let mut swapped = false;
    for bi in replica_start..f.blocks.len() as u32 {
        if let Terminator::Branch {
            taken, not_taken, ..
        } = &mut f.block_mut(BlockId(bi)).term
        {
            if taken != not_taken {
                std::mem::swap(taken, not_taken);
                swapped = true;
                break;
            }
        }
    }
    assert!(swapped, "replica contains no conditional branch");
    assert_witness_diverges(
        &module,
        &original_f,
        &corrupted,
        &seq,
        fid,
        replica_start,
        "target swap",
    );
}

#[test]
fn bound_shift_refutation_witness_diverges_under_run_reference() {
    let (module, original_f, mut corrupted, seq, fid, replica_start) = demo_reordered();
    let f = corrupted.function_mut(fid);
    let mut shifted = false;
    'outer: for bi in replica_start..f.blocks.len() as u32 {
        for inst in &mut f.block_mut(BlockId(bi)).insts {
            if let Inst::Cmp {
                rhs: Operand::Imm(c),
                ..
            } = inst
            {
                *c += 1; // the replica now tests a shifted range boundary
                shifted = true;
                break 'outer;
            }
        }
    }
    assert!(shifted, "replica contains no compare against a constant");
    assert_witness_diverges(
        &module,
        &original_f,
        &corrupted,
        &seq,
        fid,
        replica_start,
        "bound shift",
    );
}
