//! Acceptance tests for the ext-TSP block-layout pass (`br-layout`)
//! composed with branch reordering.
//!
//! The fast smoke test runs on every `cargo test`. The full-suite
//! comparisons are `#[ignore]`d in debug runs — the CI `layout-smoke`
//! job runs them in release with `--include-ignored`.

use branch_reorder::harness::{run_workload, ExperimentConfig, ProgramResult};
use branch_reorder::layout::LayoutMode;
use branch_reorder::minic::HeuristicSet;
use branch_reorder::vm::{PredictorConfig, TimeModel};

fn config(layout: LayoutMode) -> ExperimentConfig {
    ExperimentConfig {
        layout,
        ..ExperimentConfig::quick(HeuristicSet::SET_II)
    }
}

/// Modelled Ultra-SPARC cycles of the reordered run, holding the
/// library baseline fixed at the original run's core cycles (exactly
/// how the sweep's interaction table computes `cycles_pct`).
fn reordered_cycles(r: &ProgramResult) -> u64 {
    let model = TimeModel::ultra_sparc();
    let cfg = PredictorConfig::ultra_sparc();
    let base_core = model.core_cycles(&r.original.stats, r.original.mispredictions(cfg));
    model.total_cycles(
        &r.reordered.stats,
        r.reordered.mispredictions(cfg),
        base_core,
    )
}

#[test]
fn exttsp_composes_with_reordering_on_the_smoke_workloads() {
    for name in ["wc", "cb", "lex"] {
        let w = branch_reorder::workloads::by_name(name).unwrap();
        let greedy = run_workload(&w, &config(LayoutMode::Greedy)).expect("greedy runs");
        let exttsp = run_workload(&w, &config(LayoutMode::ExtTsp)).expect("exttsp runs");
        // Same observable behaviour on the same test input...
        assert_eq!(greedy.reordered.output, exttsp.reordered.output, "{name}");
        assert_eq!(greedy.reordered.exit, exttsp.reordered.exit, "{name}");
        // ...and the profile-guided layout never pays more taken
        // branches than the profile-blind chainer.
        assert!(
            exttsp.reordered.stats.taken_branches <= greedy.reordered.stats.taken_branches,
            "{name}: exttsp {} vs greedy {} taken branches",
            exttsp.reordered.stats.taken_branches,
            greedy.reordered.stats.taken_branches,
        );
    }
}

/// The ISSUE's acceptance bar: across the 17-workload suite, ext-TSP
/// strictly reduces dynamic taken branches vs the greedy layout on at
/// least 12 programs and regresses none by more than 1% modelled
/// cycles.
#[test]
#[ignore = "full 17-workload suite; run in release (CI layout-smoke)"]
fn exttsp_beats_greedy_across_the_suite() {
    let mut improved = Vec::new();
    let mut tied = Vec::new();
    let mut regressed = Vec::new();
    let mut cycle_regressions = Vec::new();
    for w in branch_reorder::workloads::all() {
        let greedy = run_workload(&w, &config(LayoutMode::Greedy)).expect("greedy runs");
        let exttsp = run_workload(&w, &config(LayoutMode::ExtTsp)).expect("exttsp runs");
        assert_eq!(
            greedy.reordered.output, exttsp.reordered.output,
            "{}",
            w.name
        );
        let (g, x) = (
            greedy.reordered.stats.taken_branches,
            exttsp.reordered.stats.taken_branches,
        );
        match x.cmp(&g) {
            std::cmp::Ordering::Less => improved.push(format!("{} {g}->{x}", w.name)),
            std::cmp::Ordering::Equal => tied.push(format!("{} {g}", w.name)),
            std::cmp::Ordering::Greater => regressed.push(format!("{} {g}->{x}", w.name)),
        }
        let (gc, xc) = (reordered_cycles(&greedy), reordered_cycles(&exttsp));
        let pct = (xc as f64 - gc as f64) / gc as f64 * 100.0;
        if pct > 1.0 {
            cycle_regressions.push(format!("{} {gc}->{xc} ({pct:+.2}%)", w.name));
        }
    }
    assert!(
        regressed.is_empty(),
        "exttsp must never pay more taken branches than greedy: {regressed:?}"
    );
    assert!(
        improved.len() >= 12,
        "exttsp strictly improved only {}/17 workloads\nimproved: {improved:?}\ntied: {tied:?}",
        improved.len()
    );
    assert!(
        cycle_regressions.is_empty(),
        "exttsp regressed modelled cycles >1%: {cycle_regressions:?}"
    );
}

/// Every layout-modified function still certifies: the pipeline runs
/// with proof-carrying validation on, and the layout stage's own
/// `check_layout` verdict is part of the summary — any failure would
/// surface as a `layout`-stage diagnostic.
#[test]
#[ignore = "full 17-workload certify run; run in release (CI layout-smoke)"]
fn layout_modified_functions_still_certify() {
    use branch_reorder::reorder::{reorder_module, ReorderOptions};
    for w in branch_reorder::workloads::all() {
        let mut module = branch_reorder::minic::compile(
            w.source,
            &branch_reorder::minic::Options::with_heuristics(HeuristicSet::SET_II),
        )
        .expect("compiles");
        branch_reorder::opt::optimize(&mut module);
        let opts = ReorderOptions {
            certify: true,
            layout: LayoutMode::ExtTsp,
            ..ReorderOptions::default()
        };
        let report = reorder_module(&module, &w.training_input(3 * 1024), &opts)
            .expect("training run succeeds");
        let summary = report.validation.expect("certify mode yields a summary");
        assert!(
            summary.failures.is_empty(),
            "{}: {:?}",
            w.name,
            summary.failures
        );
    }
}
