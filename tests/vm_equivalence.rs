//! The pre-decoded VM fast path is *provably boring*: on every workload,
//! under every switch-translation heuristic set, before and after
//! reordering, it must produce the same [`br_vm::RunOutcome`] as the
//! classic tree-walking interpreter — exit value, output bytes, every
//! architectural counter, every profile counter, every predictor result,
//! and the block trace. This is the guard that lets `br_vm::run` (and
//! therefore the whole sweep engine) dispatch through `br_vm::Image`.

use branch_reorder::minic::{compile, HeuristicSet, Options};
use branch_reorder::reorder::{reorder_module, ReorderOptions};
use branch_reorder::vm::{
    run, run_image, run_reference, Image, PredictorConfig, RunOutcome, Scheme, VmOptions,
};

/// Assert complete outcome equality, field by field, so a mismatch names
/// the drifting field instead of dumping two full outcomes.
fn assert_same(fast: &RunOutcome, slow: &RunOutcome, what: &str) {
    assert_eq!(fast.exit, slow.exit, "{what}: exit");
    assert_eq!(fast.output, slow.output, "{what}: output");
    assert_eq!(fast.stats, slow.stats, "{what}: stats");
    assert_eq!(fast.profiles, slow.profiles, "{what}: profiles");
    assert_eq!(
        fast.predictor_results, slow.predictor_results,
        "{what}: predictor results"
    );
    assert_eq!(fast.trace, slow.trace, "{what}: trace");
    assert_eq!(fast.block_counts, slow.block_counts, "{what}: block counts");
}

#[test]
fn fast_path_matches_reference_on_all_workloads_and_sets() {
    let mut predictors = vec![PredictorConfig::ultra_sparc()];
    predictors.extend([
        PredictorConfig {
            scheme: Scheme::OneBit,
            entries: 32,
        },
        PredictorConfig {
            scheme: Scheme::Gshare(6),
            entries: 256,
        },
    ]);
    let vm = VmOptions {
        predictors,
        trace_blocks: 64,
        ..VmOptions::default()
    };
    for w in branch_reorder::workloads::all() {
        let train = w.training_input(2048);
        let test = w.test_input(2048);
        for h in HeuristicSet::ALL {
            let what = format!("{}/{}", w.name, h.name);
            let mut module =
                compile(w.source, &Options::with_heuristics(h)).expect("workload compiles");
            branch_reorder::opt::optimize(&mut module);
            let opts = ReorderOptions {
                // Set IV modules carry DP trees and jump tables; the
                // fast path must agree on those shapes too.
                opt_tree: h.opt_tree,
                ..ReorderOptions::default()
            };
            let report = reorder_module(&module, &train, &opts)
                .unwrap_or_else(|e| panic!("{what}: training trapped: {e}"));
            for (m, stage) in [(&module, "original"), (&report.module, "reordered")] {
                let what = format!("{what}/{stage}");
                let slow = run_reference(m, &test, &vm)
                    .unwrap_or_else(|e| panic!("{what}: reference trapped: {e}"));
                let fast =
                    run(m, &test, &vm).unwrap_or_else(|e| panic!("{what}: fast trapped: {e}"));
                assert_same(&fast, &slow, &what);
                // The derived per-function layout counters must sum back
                // to the module-wide stats on every workload and set.
                let rows = branch_reorder::vm::function_counters(m, &fast);
                assert!(
                    branch_reorder::vm::counters_match_stats(&rows, &fast.stats),
                    "{what}: function counters disagree with stats"
                );
                // One decode, reused across runs, behaves like run().
                let image = Image::decode(m);
                let again = run_image(&image, &test, &vm).expect("image run");
                assert_same(&again, &slow, &format!("{what}/image"));
            }
        }
    }
}

/// Traps must agree too: the fast path reports the same trap as the
/// reference interpreter, not just the same successes.
#[test]
fn fast_path_matches_reference_on_traps() {
    let src = "int main() { int x; x = getchar(); return 10 / x; }";
    let module = compile(src, &Options::with_heuristics(HeuristicSet::SET_I)).expect("compiles");
    let vm = VmOptions::default();
    // A NUL input byte makes getchar() return 0, so `10 / x` traps.
    let zero = [0u8];
    let slow = run_reference(&module, &zero, &vm).expect_err("10 / 0 must trap");
    let fast = run(&module, &zero, &vm).expect_err("10 / 0 must trap");
    assert_eq!(fast, slow);
}
