//! Translation-validation properties over the paper's 17 workloads:
//!
//! * the validator proves every sequence the pipeline reorders, under
//!   all three switch-translation heuristic sets;
//! * a seeded mutation — swapping two range targets after reordering —
//!   is rejected whenever it changes behavior, with the diagnostic
//!   naming the `emit` stage;
//! * the collect-everything verifier reports all structural violations
//!   of a corrupted module at once.

use std::collections::BTreeSet;

use branch_reorder::ir::{BlockId, FuncId, Function, Terminator};
use branch_reorder::minic::{compile, HeuristicSet, Options};
use branch_reorder::reorder::apply::apply_reordering;
use branch_reorder::reorder::pipeline::eliminable_items;
use branch_reorder::reorder::profile::{order_items, plan_ranges, SequenceProfile};
use branch_reorder::reorder::validate::{check_ordering, sequence_exits};
use branch_reorder::reorder::{
    detect_sequences, reorder_module, select_ordering, DetectedSequence, ReorderOptions, Stage,
};

fn compiled_workload(name: &str, source: &str, set: HeuristicSet) -> branch_reorder::ir::Module {
    let mut m = compile(source, &Options::with_heuristics(set))
        .unwrap_or_else(|e| panic!("{name}: compile error: {e}"));
    branch_reorder::opt::optimize(&mut m);
    m
}

#[test]
fn validator_accepts_all_workloads_under_all_heuristic_sets() {
    let mut proven_total = 0usize;
    for set in HeuristicSet::ALL {
        for w in branch_reorder::workloads::all() {
            let m = compiled_workload(w.name, w.source, set);
            let opts = ReorderOptions {
                validate: true,
                // Set IV sequences may commit as trees or jump tables;
                // the validator must prove those replicas too.
                opt_tree: set.opt_tree,
                ..ReorderOptions::default()
            };
            let report = reorder_module(&m, &w.training_input(1024), &opts)
                .unwrap_or_else(|e| panic!("{} set {}: training trapped: {e}", w.name, set.name));
            let summary = report
                .validation
                .as_ref()
                .expect("validation was requested");
            assert!(
                summary.is_clean(),
                "{} set {}: {summary}\n{}",
                w.name,
                set.name,
                summary
                    .failures
                    .iter()
                    .map(|f| f.to_string())
                    .collect::<Vec<_>>()
                    .join("\n")
            );
            assert_eq!(summary.proven, report.reordered_count());
            proven_total += summary.proven;
        }
    }
    // Every workload has at least one hot reorderable sequence, so the
    // sweep must produce at least one proof per workload-set pair.
    assert!(
        proven_total >= 51,
        "only {proven_total} proofs over 51 runs"
    );
}

/// Reorder the first detected sequence of `f` by hand (the pipeline's
/// own steps, minus profiling) and return what the validator needs.
fn reorder_first_sequence(f: &mut Function) -> Option<(DetectedSequence, u32)> {
    let seqs = detect_sequences(f);
    let seq = seqs.first()?.clone();
    let n = plan_ranges(&seq).len();
    let counts: Vec<u64> = (1..=n as u64).rev().collect();
    let items = order_items(&seq, &SequenceProfile { counts });
    let eliminable = eliminable_items(&seq, &items);
    let mut candidates: Vec<BlockId> = sequence_exits(&seq).into_iter().collect();
    candidates.sort();
    let ordering = select_ordering(&items, &candidates, &eliminable, seq.default_target);
    check_ordering(&items, &ordering).ok()?;
    let replica_start = f.blocks.len() as u32;
    apply_reordering(f, &seq, &items, &ordering);
    Some((seq, replica_start))
}

/// Replica branches whose taken edge exits the sequence, one site per
/// distinct exit target — the candidate sites for the seeded mutation.
fn swap_sites(
    f: &Function,
    exits: &BTreeSet<BlockId>,
    replica_start: u32,
) -> Vec<(BlockId, BlockId)> {
    let mut sites: Vec<(BlockId, BlockId)> = Vec::new();
    for b in replica_start..f.blocks.len() as u32 {
        if let Terminator::Branch { taken, .. } = &f.block(BlockId(b)).term {
            if exits.contains(taken) && sites.iter().all(|&(_, t)| t != *taken) {
                sites.push((BlockId(b), *taken));
            }
        }
    }
    sites
}

#[test]
fn validator_rejects_swapped_range_targets_on_every_workload() {
    // Swapping the taken targets of two exit branches is the seeded
    // mutation. A swap between *convergent* exits (one chain node whose
    // compares route the affected values into the other, with no side
    // effects on the way) is semantically harmless, and the validator is
    // entitled to prove it so via its tail-continuation check — so try
    // exit pairs until one behavior-changing swap is rejected.
    let mut mutated = 0usize;
    for w in branch_reorder::workloads::all() {
        let m = compiled_workload(w.name, w.source, HeuristicSet::SET_I);
        for (i, original) in m.functions.iter().enumerate() {
            let mut f = original.clone();
            let Some((seq, replica_start)) = reorder_first_sequence(&mut f) else {
                continue;
            };
            let exits = sequence_exits(&seq);
            let sites = swap_sites(&f, &exits, replica_start);
            if sites.len() < 2 {
                continue;
            }
            let mut rejected = false;
            'pairs: for a in 0..sites.len() {
                for b in a + 1..sites.len() {
                    let mut g = f.clone();
                    let ((b1, t1), (b2, t2)) = (sites[a], sites[b]);
                    for (block, target) in [(b1, t2), (b2, t1)] {
                        if let Terminator::Branch { taken, .. } = &mut g.block_mut(block).term {
                            *taken = target;
                        }
                    }
                    if let Err(failure) = branch_reorder::reorder::validate_sequence(
                        FuncId(i as u32),
                        original,
                        &g,
                        &seq,
                        replica_start,
                    ) {
                        assert_eq!(failure.stage, Stage::Emit, "{}: {failure}", w.name);
                        assert_eq!(failure.head, Some(seq.head), "{}", w.name);
                        rejected = true;
                        break 'pairs;
                    }
                }
            }
            if rejected {
                mutated += 1;
                break; // one mutated sequence per workload is enough
            }
        }
    }
    // The mutation must actually have been exercised and caught on most
    // workloads (a few may lack a two-exit replica, and a validator that
    // rubber-stamps everything counts nothing here).
    assert!(mutated >= 12, "only {mutated} workloads were mutated");
}

#[test]
fn verifier_reports_every_violation_of_a_corrupted_module() {
    use branch_reorder::ir::{verify_function_all, verify_module, verify_module_all};
    use branch_reorder::workloads::synth::{generate_program, SynthConfig};

    let src = generate_program(7, &SynthConfig::default());
    let mut m = compile(&src, &Options::default()).unwrap();
    branch_reorder::opt::optimize(&mut m);
    assert!(
        verify_module_all(&m).is_empty(),
        "synth module starts clean"
    );

    // Corrupt it three independent ways, in different places.
    m.main = Some(FuncId(999));
    let num_funcs = m.functions.len();
    {
        let f = &mut m.functions[0];
        let bad = branch_reorder::ir::Reg(f.num_regs + 7);
        let entry = f.entry;
        f.block_mut(entry)
            .insts
            .push(branch_reorder::ir::Inst::Copy {
                dst: bad,
                src: branch_reorder::ir::Operand::Imm(0),
            });
    }
    if num_funcs > 1 {
        let f = &mut m.functions[num_funcs - 1];
        let entry = f.entry;
        f.block_mut(entry).term = Terminator::Jump(BlockId(u32::MAX));
    }

    let all = verify_module_all(&m);
    let expected = if num_funcs > 1 { 3 } else { 2 };
    assert_eq!(all.len(), expected, "{all:?}");
    // The first-error API agrees with the head of the full list.
    assert_eq!(verify_module(&m).unwrap_err(), all[0]);
    // Per-function collection sees only that function's problems.
    assert_eq!(verify_function_all(&m.functions[0], Some(&m)).len(), 1);
}

#[test]
fn parse_print_round_trip_is_structural_identity() {
    use branch_reorder::ir::{parse_module, print_module};
    use branch_reorder::workloads::synth::{generate_program, SynthConfig};

    let cfg = SynthConfig::default();
    for seed in 0..20u64 {
        let src = generate_program(seed, &cfg);
        let mut m = compile(&src, &Options::default()).unwrap();
        branch_reorder::opt::optimize(&mut m);
        let parsed = parse_module(&print_module(&m))
            .unwrap_or_else(|e| panic!("seed {seed}: parse error at {e}"));
        assert_eq!(parsed, m, "seed {seed}: parse(print(m)) != m");
    }
    // The 17 real kernels round-trip too, including after reordering.
    for w in branch_reorder::workloads::all().into_iter().take(4) {
        let m = compiled_workload(w.name, w.source, HeuristicSet::SET_III);
        let report = reorder_module(&m, &w.training_input(1024), &ReorderOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let parsed = parse_module(&print_module(&report.module))
            .unwrap_or_else(|e| panic!("{}: parse error at {e}", w.name));
        assert_eq!(parsed, report.module, "{}", w.name);
    }
}
