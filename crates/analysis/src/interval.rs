//! Interval value-range analysis on registers, plus the exact
//! interval-set algebra the translation validator partitions value
//! spaces with.
//!
//! Two layers live here:
//!
//! * [`Interval`] / [`IntervalSet`] — closed `i64` intervals and sorted
//!   disjoint unions of them, with the exact set algebra (intersect,
//!   union, complement, the satisfied set of a `cmp`+branch condition).
//! * [`intervals`] — a branch-sensitive forward dataflow analysis (on the
//!   [`crate::dataflow`] engine) that bounds every register at every
//!   block, narrowing along conditional edges whose compare pits a
//!   register against a constant. Used by the lints to prove range
//!   conditions statically dead.

use br_ir::{BlockId, Cond, Function, Inst, Operand, Reg};

use crate::dataflow::{solve, Direction, Domain, Solution};

/// A non-empty closed interval `[lo, hi]` of `i64` values.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Interval {
    /// Smallest contained value.
    pub lo: i64,
    /// Largest contained value (inclusive; `hi >= lo`).
    pub hi: i64,
}

impl Interval {
    /// The interval containing every `i64`.
    pub const FULL: Interval = Interval {
        lo: i64::MIN,
        hi: i64::MAX,
    };

    /// `[lo, hi]`; panics if empty.
    pub fn new(lo: i64, hi: i64) -> Interval {
        assert!(lo <= hi, "empty interval [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// The single-value interval `[v, v]`.
    pub fn singleton(v: i64) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// Whether `v` lies in the interval.
    pub fn contains(&self, v: i64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// The single value, if the interval holds exactly one.
    pub fn as_singleton(&self) -> Option<i64> {
        (self.lo == self.hi).then_some(self.lo)
    }

    /// Intersection; `None` when disjoint.
    pub fn intersect(&self, o: &Interval) -> Option<Interval> {
        let lo = self.lo.max(o.lo);
        let hi = self.hi.min(o.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }

    /// Smallest interval containing both.
    pub fn hull(&self, o: &Interval) -> Interval {
        Interval {
            lo: self.lo.min(o.lo),
            hi: self.hi.max(o.hi),
        }
    }

    /// The smallest interval containing every value that satisfies
    /// `v cond c` — exact except for `Ne`, whose satisfied set is not an
    /// interval (its hull only shaves the `c == i64::MIN/MAX` endpoints).
    /// `None` when no value satisfies the condition.
    pub fn satisfying_hull(cond: Cond, c: i64) -> Option<Interval> {
        match cond {
            Cond::Eq => Some(Interval::singleton(c)),
            Cond::Ne => match (c == i64::MIN, c == i64::MAX) {
                (true, _) => Some(Interval::new(i64::MIN + 1, i64::MAX)),
                (_, true) => Some(Interval::new(i64::MIN, i64::MAX - 1)),
                _ => Some(Interval::FULL),
            },
            Cond::Lt => (c != i64::MIN).then(|| Interval::new(i64::MIN, c - 1)),
            Cond::Le => Some(Interval::new(i64::MIN, c)),
            Cond::Gt => (c != i64::MAX).then(|| Interval::new(c + 1, i64::MAX)),
            Cond::Ge => Some(Interval::new(c, i64::MAX)),
        }
    }
}

/// A set of `i64` values stored as sorted, disjoint, non-adjacent
/// maximal intervals.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct IntervalSet(Vec<Interval>);

impl IntervalSet {
    /// The empty set.
    pub fn empty() -> IntervalSet {
        IntervalSet(Vec::new())
    }

    /// The set of all `i64` values.
    pub fn full() -> IntervalSet {
        IntervalSet(vec![Interval::FULL])
    }

    /// A set holding one interval.
    pub fn of(iv: Interval) -> IntervalSet {
        IntervalSet(vec![iv])
    }

    /// Build from arbitrary intervals (normalized: sorted and coalesced).
    pub fn from_intervals(ivs: impl IntoIterator<Item = Interval>) -> IntervalSet {
        let mut v: Vec<Interval> = ivs.into_iter().collect();
        v.sort_by_key(|i| i.lo);
        let mut out: Vec<Interval> = Vec::with_capacity(v.len());
        for iv in v {
            match out.last_mut() {
                // Coalesce overlapping or adjacent intervals.
                Some(last) if iv.lo <= last.hi.saturating_add(1) => {
                    last.hi = last.hi.max(iv.hi);
                }
                _ => out.push(iv),
            }
        }
        IntervalSet(out)
    }

    /// The exact set of values `v` with `v cond c`.
    pub fn satisfying(cond: Cond, c: i64) -> IntervalSet {
        match cond {
            Cond::Ne => IntervalSet::of(Interval::singleton(c)).complement(),
            _ => match Interval::satisfying_hull(cond, c) {
                Some(iv) => IntervalSet::of(iv),
                None => IntervalSet::empty(),
            },
        }
    }

    /// The member intervals, sorted and disjoint.
    pub fn intervals(&self) -> &[Interval] {
        &self.0
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Whether the set is all of `i64`.
    pub fn is_full(&self) -> bool {
        self.0 == [Interval::FULL]
    }

    /// Whether `v` is a member.
    pub fn contains(&self, v: i64) -> bool {
        self.0.iter().any(|i| i.contains(v))
    }

    /// Total number of members, saturating at `u128::MAX` (the full set
    /// has 2^64 members).
    pub fn len(&self) -> u128 {
        self.0
            .iter()
            .map(|i| (i.hi as i128 - i.lo as i128 + 1) as u128)
            .sum()
    }

    /// Set intersection.
    pub fn intersect(&self, o: &IntervalSet) -> IntervalSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.0.len() && j < o.0.len() {
            if let Some(iv) = self.0[i].intersect(&o.0[j]) {
                out.push(iv);
            }
            if self.0[i].hi <= o.0[j].hi {
                i += 1;
            } else {
                j += 1;
            }
        }
        IntervalSet(out)
    }

    /// Set union.
    pub fn union(&self, o: &IntervalSet) -> IntervalSet {
        IntervalSet::from_intervals(self.0.iter().chain(o.0.iter()).copied())
    }

    /// Set complement within `i64`.
    pub fn complement(&self) -> IntervalSet {
        let mut out = Vec::new();
        let mut next = Some(i64::MIN);
        for iv in &self.0 {
            if let Some(lo) = next {
                if lo < iv.lo {
                    out.push(Interval::new(lo, iv.lo - 1));
                }
            }
            next = if iv.hi == i64::MAX {
                None
            } else {
                Some(iv.hi + 1)
            };
        }
        if let Some(lo) = next {
            out.push(Interval::new(lo, i64::MAX));
        }
        IntervalSet(out)
    }

    /// `self` minus `o`.
    pub fn subtract(&self, o: &IntervalSet) -> IntervalSet {
        self.intersect(&o.complement())
    }

    /// Whether the two sets share any value.
    pub fn overlaps(&self, o: &IntervalSet) -> bool {
        !self.intersect(o).is_empty()
    }

    /// An arbitrary member, if any.
    pub fn sample(&self) -> Option<i64> {
        self.0.first().map(|i| i.lo)
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (self.lo == i64::MIN, self.hi == i64::MAX, self.lo == self.hi) {
            (true, true, _) => write!(f, "(-inf, +inf)"),
            (_, _, true) => write!(f, "[{}]", self.lo),
            (true, false, _) => write!(f, "(-inf, {}]", self.hi),
            (false, true, _) => write!(f, "[{}, +inf)", self.lo),
            _ => write!(f, "[{}, {}]", self.lo, self.hi),
        }
    }
}

impl std::fmt::Display for IntervalSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            return write!(f, "{{}}");
        }
        if self.is_full() {
            return write!(f, "(-inf, +inf)");
        }
        for (k, iv) in self.0.iter().enumerate() {
            if k > 0 {
                write!(f, " u ")?;
            }
            match (iv.lo == i64::MIN, iv.hi == i64::MAX, iv.lo == iv.hi) {
                (_, _, true) => write!(f, "[{}]", iv.lo)?,
                (true, false, _) => write!(f, "(-inf, {}]", iv.hi)?,
                (false, true, _) => write!(f, "[{}, +inf)", iv.lo)?,
                _ => write!(f, "[{}, {}]", iv.lo, iv.hi)?,
            }
        }
        Ok(())
    }
}

/// Per-register intervals at one program point. `None` = not reached.
#[derive(Clone, PartialEq, Debug)]
pub struct Env(Option<Vec<Interval>>);

impl Env {
    fn unreachable() -> Env {
        Env(None)
    }

    fn top(f: &Function) -> Env {
        Env(Some(vec![Interval::FULL; f.num_regs as usize]))
    }

    /// The interval of `r`, or `None` if this point is unreachable.
    pub fn get(&self, r: Reg) -> Option<Interval> {
        self.0
            .as_ref()
            .map(|v| v.get(r.0 as usize).copied().unwrap_or(Interval::FULL))
    }

    fn set(&mut self, r: Reg, iv: Interval) {
        if let Some(v) = self.0.as_mut() {
            if let Some(slot) = v.get_mut(r.0 as usize) {
                *slot = iv;
            }
        }
    }
}

/// The value-range analysis problem fed to the dataflow engine.
struct IntervalDomain;

impl IntervalDomain {
    fn operand(env: &[Interval], op: Operand) -> Interval {
        match op {
            Operand::Imm(i) => Interval::singleton(i),
            Operand::Reg(r) => env.get(r.0 as usize).copied().unwrap_or(Interval::FULL),
        }
    }

    fn inst(env: &mut [Interval], inst: &Inst) {
        use br_ir::BinOp;
        let value = match inst {
            Inst::Copy { src, .. } => Self::operand(env, *src),
            Inst::Bin { op, lhs, rhs, .. } => {
                let (a, b) = (Self::operand(env, *lhs), Self::operand(env, *rhs));
                // Wrapping semantics: any possible overflow widens to FULL.
                match op {
                    BinOp::Add => match (a.lo.checked_add(b.lo), a.hi.checked_add(b.hi)) {
                        (Some(lo), Some(hi)) => Interval::new(lo, hi),
                        _ => Interval::FULL,
                    },
                    BinOp::Sub => match (a.lo.checked_sub(b.hi), a.hi.checked_sub(b.lo)) {
                        (Some(lo), Some(hi)) => Interval::new(lo, hi),
                        _ => Interval::FULL,
                    },
                    _ => match (a.as_singleton(), b.as_singleton()) {
                        (Some(x), Some(y)) => op
                            .eval(x, y)
                            .map(Interval::singleton)
                            .unwrap_or(Interval::FULL),
                        _ => Interval::FULL,
                    },
                }
            }
            Inst::Un { op, src, .. } => {
                let a = Self::operand(env, *src);
                match op {
                    br_ir::UnOp::Neg if a.lo != i64::MIN => Interval::new(-a.hi, -a.lo),
                    _ => Interval::FULL,
                }
            }
            Inst::Load { .. } | Inst::FrameAddr { .. } | Inst::Call { dst: Some(_), .. } => {
                Interval::FULL
            }
            _ => return,
        };
        if let Some(dst) = inst.def() {
            if let Some(slot) = env.get_mut(dst.0 as usize) {
                *slot = value;
            }
        }
    }
}

/// The register/constant compare feeding `b`'s terminator, if the
/// block ends with `cmp reg, imm` (either operand order) and nothing
/// after it clobbers the condition codes. The `bool` is true when the
/// operands were swapped (`cmp imm, reg`).
pub fn terminal_compare(f: &Function, b: BlockId) -> Option<(Reg, i64, bool)> {
    let block = f.block(b);
    let at = block.last_cmp()?;
    if block.insts[at + 1..]
        .iter()
        .any(|i| matches!(i, Inst::Call { .. }))
    {
        return None;
    }
    match block.insts[at] {
        Inst::Cmp {
            lhs: Operand::Reg(r),
            rhs: Operand::Imm(c),
        } => Some((r, c, false)),
        Inst::Cmp {
            lhs: Operand::Imm(c),
            rhs: Operand::Reg(r),
        } => Some((r, c, true)),
        _ => None,
    }
}

impl Domain for IntervalDomain {
    type Value = Env;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn bottom(&self, _f: &Function) -> Env {
        Env::unreachable()
    }

    fn boundary(&self, f: &Function) -> Env {
        Env::top(f)
    }

    fn join(&self, into: &mut Env, from: &Env) -> bool {
        match (&mut into.0, &from.0) {
            (_, None) => false,
            (slot @ None, Some(_)) => {
                *slot = from.0.clone();
                true
            }
            (Some(a), Some(b)) => {
                let mut changed = false;
                for (x, y) in a.iter_mut().zip(b.iter()) {
                    let h = x.hull(y);
                    if h != *x {
                        *x = h;
                        changed = true;
                    }
                }
                changed
            }
        }
    }

    fn widen(&self, into: &mut Env, from: &Env) -> bool {
        match (&mut into.0, &from.0) {
            (_, None) => false,
            (slot @ None, Some(_)) => {
                *slot = from.0.clone();
                true
            }
            (Some(a), Some(b)) => {
                let mut changed = false;
                for (x, y) in a.iter_mut().zip(b.iter()) {
                    let lo = if y.lo < x.lo { i64::MIN } else { x.lo };
                    let hi = if y.hi > x.hi { i64::MAX } else { x.hi };
                    if (lo, hi) != (x.lo, x.hi) {
                        *x = Interval::new(lo, hi);
                        changed = true;
                    }
                }
                changed
            }
        }
    }

    fn transfer(&self, f: &Function, b: BlockId, input: &Env) -> Env {
        let mut env = input.clone();
        if let Some(regs) = env.0.as_mut() {
            for inst in &f.block(b).insts {
                Self::inst(regs, inst);
            }
        }
        env
    }

    fn edge(&self, f: &Function, from: BlockId, to: BlockId, out: &Env) -> Env {
        let mut env = out.clone();
        if env.0.is_none() {
            return env;
        }
        let br_ir::Terminator::Branch {
            cond,
            taken,
            not_taken,
        } = f.block(from).term
        else {
            return env;
        };
        if taken == not_taken {
            return env; // both outcomes land here: no refinement
        }
        let Some((reg, c, swapped)) = terminal_compare(f, from) else {
            return env;
        };
        let cond = if swapped { cond.swap() } else { cond };
        let effective = if to == taken { cond } else { cond.negate() };
        let current = env.get(reg).unwrap_or(Interval::FULL);
        match Interval::satisfying_hull(effective, c).and_then(|h| current.intersect(&h)) {
            Some(narrowed) => env.set(reg, narrowed),
            // The edge is infeasible: nothing flows along it.
            None => env = Env::unreachable(),
        }
        env
    }
}

/// Solved value-range analysis for one function.
pub struct IntervalAnalysis {
    solution: Solution<Env>,
}

/// Run the branch-sensitive interval analysis on `f`.
pub fn intervals(f: &Function) -> IntervalAnalysis {
    IntervalAnalysis {
        solution: solve(f, &IntervalDomain),
    }
}

impl IntervalAnalysis {
    /// Interval of `r` at the entry of `b`; `None` if `b` is unreachable.
    pub fn at_entry(&self, b: BlockId, r: Reg) -> Option<Interval> {
        self.solution.input(b).get(r)
    }

    /// Interval of `r` at `b`'s terminator (after the block body).
    pub fn at_terminator(&self, b: BlockId, r: Reg) -> Option<Interval> {
        self.solution.output(b).get(r)
    }

    /// The statically-decided outcome of `b`'s conditional branch, if the
    /// analysis proves its compare always or never satisfied. `Some(true)`
    /// means always taken, `Some(false)` never taken.
    pub fn decided_branch(&self, f: &Function, b: BlockId) -> Option<bool> {
        let br_ir::Terminator::Branch { cond, .. } = f.block(b).term else {
            return None;
        };
        let (reg, c, swapped) = terminal_compare(f, b)?;
        let cond = if swapped { cond.swap() } else { cond };
        let iv = self.at_terminator(b, reg)?;
        let sat = IntervalSet::satisfying(cond, c);
        let have = IntervalSet::of(iv);
        if have.subtract(&sat).is_empty() {
            Some(true)
        } else if !have.overlaps(&sat) {
            Some(false)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_ir::{Block, Terminator};

    #[test]
    fn interval_set_algebra() {
        let a = IntervalSet::from_intervals([Interval::new(0, 10), Interval::new(20, 30)]);
        let b = IntervalSet::from_intervals([Interval::new(5, 25)]);
        assert_eq!(
            a.intersect(&b).intervals(),
            &[Interval::new(5, 10), Interval::new(20, 25)]
        );
        assert_eq!(a.union(&b).intervals(), &[Interval::new(0, 30)]);
        assert!(a.overlaps(&b));
        assert_eq!(a.subtract(&a), IntervalSet::empty());
        assert!(a.union(&a.complement()).is_full());
        assert!(!a.intersect(&a.complement()).overlaps(&a));
        // Adjacent intervals coalesce.
        let c = IntervalSet::from_intervals([Interval::new(0, 4), Interval::new(5, 9)]);
        assert_eq!(c.intervals(), &[Interval::new(0, 9)]);
        assert_eq!(c.len(), 10);
    }

    #[test]
    fn satisfying_sets_match_cond_eval() {
        for c in [-3i64, 0, 7, i64::MIN, i64::MAX] {
            for cond in [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Le, Cond::Gt, Cond::Ge] {
                let set = IntervalSet::satisfying(cond, c);
                for probe in [
                    c,
                    c.saturating_sub(1),
                    c.saturating_add(1),
                    i64::MIN,
                    i64::MAX,
                    0,
                ] {
                    assert_eq!(
                        set.contains(probe),
                        cond.eval(probe, c),
                        "{probe} {cond:?} {c}"
                    );
                }
                // satisfied and unsatisfied sets partition the space.
                let neg = IntervalSet::satisfying(cond.negate(), c);
                assert!(!set.overlaps(&neg));
                assert!(set.union(&neg).is_full());
            }
        }
    }

    #[test]
    fn complement_of_full_and_empty() {
        assert!(IntervalSet::full().complement().is_empty());
        assert!(IntervalSet::empty().complement().is_full());
    }

    /// entry: r0 = 5; cmp r0, 10; blt then else merge — the analysis must
    /// prove the branch always taken and bound r0 on each edge.
    #[test]
    fn branch_refinement_narrows_and_decides() {
        let mut f = Function::new("t");
        let r0 = f.new_reg();
        let merge = f.add_block(Block::new(Terminator::Return(None)));
        let then = f.add_block(Block::new(Terminator::Jump(merge)));
        let els = f.add_block(Block::new(Terminator::Jump(merge)));
        let e = f.entry;
        f.block_mut(e).insts.push(Inst::Copy {
            dst: r0,
            src: Operand::Imm(5),
        });
        f.block_mut(e).insts.push(Inst::Cmp {
            lhs: Operand::Reg(r0),
            rhs: Operand::Imm(10),
        });
        f.block_mut(e).term = Terminator::branch(Cond::Lt, then, els);
        let a = intervals(&f);
        assert_eq!(a.at_terminator(e, r0), Some(Interval::singleton(5)));
        assert_eq!(a.decided_branch(&f, e), Some(true));
        assert_eq!(a.at_entry(then, r0), Some(Interval::singleton(5)));
        // The else edge is infeasible; the else block is never reached.
        assert_eq!(a.at_entry(els, r0), None);
    }

    /// A counting loop widens to a sound (if loose) bound instead of
    /// diverging.
    #[test]
    fn loops_converge_via_widening() {
        let mut f = Function::new("loop");
        let r0 = f.new_reg();
        let exit = f.add_block(Block::new(Terminator::Return(None)));
        let body = f.add_block(Block::new(Terminator::Jump(f.entry)));
        let e = f.entry;
        f.block_mut(e).insts.push(Inst::Cmp {
            lhs: Operand::Reg(r0),
            rhs: Operand::Imm(100),
        });
        f.block_mut(e).term = Terminator::branch(Cond::Ge, exit, body);
        f.block_mut(body).insts.push(Inst::Bin {
            op: br_ir::BinOp::Add,
            dst: r0,
            lhs: Operand::Reg(r0),
            rhs: Operand::Imm(1),
        });
        let a = intervals(&f);
        // Body entry: r0 < 100 on the fall edge.
        let at_body = a.at_entry(body, r0).expect("body reachable");
        assert!(at_body.hi <= 99);
        assert_eq!(a.at_entry(exit, r0).map(|i| i.lo), Some(100));
    }
}
