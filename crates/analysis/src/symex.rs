//! The certifying symbolic prover for reordered branch sequences.
//!
//! [`prove_sequence`] upgrades the yes/no translation validator
//! ([`crate::validate`]) into a *certifying* analysis:
//!
//! * **Soundness prechecks** — the reordered function's CFG and
//!   dominator tree ([`crate::cfg`], [`crate::domtree`]) must show the
//!   sequence head dominating every reachable replica block (the
//!   replica has a single entry), and the replica structures as a nest
//!   of two-way conditionals.
//! * **Subsumption proof** — the symbolic walk derives each path's
//!   predicate as an exact interval constraint and proves the
//!   original/reordered partitions equivalent by constraint
//!   subsumption; no value enumeration ever happens (the
//!   `fallbacks` counter in [`SequenceProof`] exists to prove it).
//! * **Certificates** — every accepted reordering is rendered as a
//!   [`crate::cert`] artifact that the independent checker re-validates
//!   with no shared code.
//! * **Counterexample witnesses** — every refutation is solved for a
//!   concrete value of the tested variable, drawn from the diverging
//!   value class intersected with the [`feasible_values`]
//!   interval+congruence abstraction of what the program can actually
//!   put in the variable (so the witness is replayable as real input,
//!   not just an abstract value).

use br_ir::{print_function, BinOp, Callee, Function, Inst, Intrinsic, Operand, Reg};

use crate::cfg::Cfg;
use crate::domtree::{two_way_conditionals, DomTree};
use crate::interval::{Interval, IntervalSet};
use crate::validate::{check_equivalence, EquivalenceCheck, Side, ValidationError};
use crate::witness::Witness;

/// An interval+congruence abstraction of a register's dynamic values:
/// the value lies in `range` and is congruent to `residue` modulo
/// `modulus` (`modulus <= 1` means no congruence information).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AbsVal {
    /// Range bound.
    pub range: Interval,
    /// Congruence modulus (`<= 1` = unconstrained).
    pub modulus: i64,
    /// Residue class within `modulus`.
    pub residue: i64,
}

impl AbsVal {
    /// No information: any `i64`.
    pub fn top() -> AbsVal {
        AbsVal {
            range: Interval::FULL,
            modulus: 1,
            residue: 0,
        }
    }

    /// Whether `v` is admitted by the abstraction.
    pub fn admits(&self, v: i64) -> bool {
        self.range.contains(v) && (self.modulus <= 1 || v.rem_euclid(self.modulus) == self.residue)
    }

    /// Least upper bound.
    fn join(&self, o: &AbsVal) -> AbsVal {
        AbsVal {
            range: self.range.hull(&o.range),
            modulus: if (self.modulus, self.residue) == (o.modulus, o.residue) {
                self.modulus
            } else {
                1
            },
            residue: if self.modulus == o.modulus && self.residue == o.residue {
                self.residue
            } else {
                0
            },
        }
    }

    /// The abstraction shifted by a constant (`v + c`).
    fn shifted(&self, c: i64) -> AbsVal {
        let range = match (self.range.lo.checked_add(c), self.range.hi.checked_add(c)) {
            (Some(lo), Some(hi)) => Interval::new(lo, hi),
            _ => Interval::FULL,
        };
        AbsVal {
            range,
            modulus: self.modulus,
            residue: if self.modulus > 1 {
                (self.residue + c.rem_euclid(self.modulus)).rem_euclid(self.modulus)
            } else {
                0
            },
        }
    }
}

/// Join the abstractions of every definition of `var` in `f`: a sound
/// (flow-insensitive) bound on what the program can dynamically store
/// in the tested variable. `getchar` yields `[-1, 255]`; `rem`/`and`
/// with constants bound the range; multiplies and shifts by powers of
/// two yield congruence facts (wrapping-safe: wrapping preserves low
/// bits); adding a constant shifts the residue.
pub fn feasible_values(f: &Function, var: Reg) -> AbsVal {
    abs_of_reg(f, var, 8)
}

fn abs_of_reg(f: &Function, r: Reg, depth: usize) -> AbsVal {
    if depth == 0 {
        return AbsVal::top();
    }
    let mut joined: Option<AbsVal> = None;
    for b in f.block_ids() {
        for inst in &f.block(b).insts {
            if inst.def() != Some(r) {
                continue;
            }
            let a = abs_of_inst(f, inst, depth);
            joined = Some(match joined {
                None => a,
                Some(j) => j.join(&a),
            });
        }
    }
    joined.unwrap_or_else(AbsVal::top)
}

fn abs_of_inst(f: &Function, inst: &Inst, depth: usize) -> AbsVal {
    let singleton = |c: i64| AbsVal {
        range: Interval::singleton(c),
        modulus: 1,
        residue: 0,
    };
    let ranged = |lo: i64, hi: i64| AbsVal {
        range: Interval::new(lo, hi),
        modulus: 1,
        residue: 0,
    };
    match inst {
        Inst::Copy {
            src: Operand::Imm(c),
            ..
        } => singleton(*c),
        Inst::Copy {
            src: Operand::Reg(s),
            ..
        } => abs_of_reg(f, *s, depth - 1),
        Inst::Call {
            callee: Callee::Intrinsic(Intrinsic::GetChar),
            ..
        } => ranged(-1, 255),
        Inst::Bin { op, lhs, rhs, .. } => match (op, lhs, rhs) {
            (BinOp::Rem, _, Operand::Imm(k)) if *k > 0 => ranged(-(k - 1), k - 1),
            (BinOp::And, _, Operand::Imm(m)) | (BinOp::And, Operand::Imm(m), _) if *m >= 0 => {
                ranged(0, *m)
            }
            (BinOp::Mul, _, Operand::Imm(k)) | (BinOp::Mul, Operand::Imm(k), _)
                if *k > 1 && k.count_ones() == 1 =>
            {
                AbsVal {
                    range: Interval::FULL,
                    modulus: *k,
                    residue: 0,
                }
            }
            (BinOp::Shl, _, Operand::Imm(s)) if (1..=62).contains(s) => AbsVal {
                range: Interval::FULL,
                modulus: 1i64 << s,
                residue: 0,
            },
            (BinOp::Add, Operand::Reg(a), Operand::Imm(c))
            | (BinOp::Add, Operand::Imm(c), Operand::Reg(a)) => {
                abs_of_reg(f, *a, depth - 1).shifted(*c)
            }
            (BinOp::Sub, Operand::Reg(a), Operand::Imm(c)) if *c != i64::MIN => {
                abs_of_reg(f, *a, depth - 1).shifted(-c)
            }
            _ => AbsVal::top(),
        },
        _ => AbsVal::top(),
    }
}

/// The smallest member of `values` admitted by `feasible`, preferring
/// dynamically producible witnesses; falls back to any member of the
/// diverging class when the feasible set misses it entirely.
/// Non-negative members are preferred over negative ones: a `getchar`
/// witness of `-1` is end-of-input and replays as an *empty* stream,
/// so a byte-encodable value demonstrates the divergence more directly.
pub fn solve_witness(values: &IntervalSet, feasible: &AbsVal) -> Option<i64> {
    let restricted = values.intersect(&IntervalSet::of(feasible.range));
    let nonneg = restricted.intersect(&IntervalSet::of(Interval::new(0, i64::MAX)));
    let m = feasible.modulus.max(1);
    let r = feasible.residue.rem_euclid(m);
    for set in [&nonneg, &restricted] {
        for iv in set.intervals() {
            // Smallest v >= lo with v ≡ r (mod m), in i128 against overflow.
            let lo = iv.lo as i128;
            let mm = m as i128;
            let candidate = lo + (r as i128 - lo).rem_euclid(mm);
            if candidate <= iv.hi as i128 {
                return Some(candidate as i64);
            }
        }
    }
    restricted.sample().or_else(|| values.sample())
}

/// A successful, certified proof of one sequence.
#[derive(Clone, Debug)]
pub struct SequenceProof {
    /// The rendered proof certificate (see [`crate::cert`]).
    pub certificate: String,
    /// The certificate's signature / content address.
    pub sig: u64,
    /// Value classes the subsumption proof compared.
    pub value_classes: usize,
    /// Distinct sequence exits.
    pub exits: usize,
    /// Two-way conditionals structured in the replica (head included).
    pub two_way_headers: usize,
    /// Times the prover fell back to enumerating values instead of
    /// subsumption. Always zero — the field exists so callers can
    /// assert it stays that way.
    pub fallbacks: usize,
}

/// A refutation: the equivalence violations plus, when a diverging
/// value class exists, a concrete witness for it.
#[derive(Clone, Debug)]
pub struct Refutation {
    /// Every violation the validator proved.
    pub errors: Vec<ValidationError>,
    /// A concrete witness value for the first diverging class.
    pub witness: Option<Witness>,
}

impl std::fmt::Display for Refutation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, e) in self.errors.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{e}")?;
        }
        if let Some(w) = &self.witness {
            write!(f, "\nwitness: {w}")?;
        }
        Ok(())
    }
}

/// The prover's own FNV-1a (the checker in [`crate::cert`] carries an
/// independent copy — deliberately no shared code).
fn sign(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in text.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Prove one reordered sequence equivalent to its original and render
/// the proof as a certificate; on refutation, solve for a concrete
/// counterexample witness.
///
/// # Errors
///
/// Returns a [`Refutation`] carrying every violation found and, when a
/// diverging value class exists, a feasibility-guided witness value.
pub fn prove_sequence(chk: &EquivalenceCheck) -> Result<SequenceProof, Refutation> {
    // Soundness precheck: the replica must be a single-entry region
    // hanging off the head — the head dominates every reachable
    // replica block. A replica block reachable around the head would
    // invalidate the walk-based partition argument.
    let cfg = Cfg::build(chk.reordered);
    let dom = DomTree::build(chk.reordered);
    for b in cfg.reachable() {
        if b.0 >= chk.replica_start && !dom.dominates(chk.head, b) {
            return Err(Refutation {
                errors: vec![ValidationError::Walk {
                    side: Side::Reordered,
                    detail: format!(
                        "replica block {b} is reachable without passing the sequence head \
                         {} (not a single-entry region)",
                        chk.head
                    ),
                }],
                witness: None,
            });
        }
    }
    let two_way_headers = two_way_conditionals(chk.reordered, &cfg, &dom)
        .iter()
        .filter(|t| t.header == chk.head || t.header.0 >= chk.replica_start)
        .count();

    match check_equivalence(chk) {
        Ok(proof) => {
            let certificate = render_certificate(chk, &proof);
            let sig = sign(certificate.rsplit_once("sig ").map_or("", |(body, _)| body));
            Ok(SequenceProof {
                certificate,
                sig,
                value_classes: proof.value_classes,
                exits: proof.exits,
                two_way_headers,
                fallbacks: 0,
            })
        }
        Err(errors) => {
            // Solve every diverging class and prefer a witness in the
            // character range — those replay directly as input bytes;
            // fall back to the first solvable class otherwise.
            let feasible = feasible_values(chk.original, chk.var);
            let mut witness: Option<Witness> = None;
            for values in errors.iter().filter_map(diverging_values) {
                let Some(v) = solve_witness(&values, &feasible) else {
                    continue;
                };
                if witness.is_none() {
                    witness = Some(Witness::new(v, feasible));
                }
                if (0..=255).contains(&v) {
                    witness = Some(Witness::new(v, feasible));
                    break;
                }
            }
            Err(Refutation { errors, witness })
        }
    }
}

/// The diverging value class a refutation names, if any.
fn diverging_values(e: &ValidationError) -> Option<IntervalSet> {
    match e {
        ValidationError::TargetMismatch { values, .. }
        | ValidationError::EffectMismatch { values, .. }
        | ValidationError::TailMismatch { values, .. }
        | ValidationError::NotDisjoint { values, .. }
        | ValidationError::Unresolved { values, .. } => Some(values.clone()),
        ValidationError::NotExhaustive { missing, .. } => Some(missing.clone()),
        ValidationError::PlanMismatch {
            expected, found, ..
        } => {
            let diff = expected.subtract(found).union(&found.subtract(expected));
            (!diff.is_empty()).then_some(diff)
        }
        _ => None,
    }
}

/// Render the proof as a [`crate::cert`] artifact. Certificates for
/// replicas containing an indirect dispatch (a Set IV jump table) are
/// rendered as `brcert v2` with the extra `temps` header the checker's
/// concrete walker needs; everything else stays `brcert v1`.
fn render_certificate(chk: &EquivalenceCheck, proof: &crate::validate::EquivalenceProof) -> String {
    let orig_text = print_function(chk.original);
    let reord_text = print_function(chk.reordered);
    let dispatches = (chk.replica_start..chk.reordered.blocks.len() as u32).any(|b| {
        matches!(
            chk.reordered.block(br_ir::BlockId(b)).term,
            br_ir::Terminator::IndirectJump { .. }
        )
    });
    let mut s = String::new();
    s.push_str(if dispatches {
        crate::cert::VERSION_V2
    } else {
        crate::cert::VERSION
    });
    s.push('\n');
    s.push_str(&format!("func {}\n", chk.original.name));
    s.push_str(&format!("var r{}\n", chk.var.0));
    s.push_str(&format!("head {}\n", chk.head.0));
    s.push_str(&format!("replica {}\n", chk.replica_start));
    s.push_str(&format!("prologue {}\n", proof.prologue));
    if dispatches {
        s.push_str(&format!("temps {}\n", chk.original.num_regs));
    }
    s.push_str(&format!("exits {}", chk.exits.len()));
    for e in &chk.exits {
        s.push_str(&format!(" {}", e.0));
    }
    s.push('\n');
    s.push_str(&format!("classes {}\n", proof.classes.len()));
    for class in &proof.classes {
        let ivs = class.values.intervals();
        s.push_str(&format!("class {}", ivs.len()));
        for iv in ivs {
            s.push_str(&format!(" {},{}", iv.lo, iv.hi));
        }
        s.push_str(&format!(" exit {}\n", class.target.0));
    }
    s.push_str(&format!("original {}\n", orig_text.lines().count()));
    s.push_str(&orig_text);
    s.push_str(&format!("reordered {}\n", reord_text.lines().count()));
    s.push_str(&reord_text);
    let sig = sign(&s);
    s.push_str(&format!("sig {sig:016x}\n"));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    use br_ir::{Block, BlockId, Cond, Operand, Terminator};

    fn cmp(var: Reg, c: i64) -> Inst {
        Inst::Cmp {
            lhs: Operand::Reg(var),
            rhs: Operand::Imm(c),
        }
    }

    /// The same three-exit chain the validator tests use, with
    /// observably distinct exits.
    fn chain() -> (Function, Reg, BlockId, [BlockId; 3]) {
        let mut f = Function::new("t");
        let var = f.new_reg();
        let head = f.add_block(Block::new(Terminator::Return(None)));
        let c2 = f.add_block(Block::new(Terminator::Return(None)));
        let t1 = f.add_block(Block::new(Terminator::Return(Some(Operand::Imm(1)))));
        let t2 = f.add_block(Block::new(Terminator::Return(Some(Operand::Imm(2)))));
        let dflt = f.add_block(Block::new(Terminator::Return(Some(Operand::Imm(3)))));
        f.block_mut(f.entry).insts.push(Inst::Call {
            dst: Some(var),
            callee: Callee::Intrinsic(Intrinsic::GetChar),
            args: vec![],
        });
        f.block_mut(f.entry).term = Terminator::Jump(head);
        f.block_mut(head).insts.push(cmp(var, 0));
        f.block_mut(head).term = Terminator::branch(Cond::Eq, t1, c2);
        f.block_mut(c2).insts.push(cmp(var, 1));
        f.block_mut(c2).term = Terminator::branch(Cond::Eq, t2, dflt);
        (f, var, head, [t1, t2, dflt])
    }

    fn plan(t1: BlockId, t2: BlockId, dflt: BlockId) -> Vec<(Interval, BlockId)> {
        vec![
            (Interval::singleton(0), t1),
            (Interval::singleton(1), t2),
            (Interval::new(i64::MIN, -1), dflt),
            (Interval::new(2, i64::MAX), dflt),
        ]
    }

    fn reorder(
        f: &Function,
        var: Reg,
        head: BlockId,
        t1: BlockId,
        t2: BlockId,
        dflt: BlockId,
    ) -> (Function, u32) {
        let mut g = f.clone();
        let replica_start = g.blocks.len() as u32;
        let r1 = BlockId(replica_start + 1);
        let r0 = g.add_block(Block::new(Terminator::branch(Cond::Eq, t2, r1)));
        g.block_mut(r0).insts.push(cmp(var, 1));
        let r1 = g.add_block(Block::new(Terminator::branch(Cond::Eq, t1, dflt)));
        g.block_mut(r1).insts.push(cmp(var, 0));
        g.block_mut(head).insts.clear();
        g.block_mut(head).term = Terminator::Jump(r0);
        (g, replica_start)
    }

    fn request<'a>(
        f: &'a Function,
        g: &'a Function,
        var: Reg,
        head: BlockId,
        exits: [BlockId; 3],
        replica_start: u32,
    ) -> EquivalenceCheck<'a> {
        EquivalenceCheck {
            original: f,
            reordered: g,
            var,
            head,
            exits: BTreeSet::from(exits),
            replica_start,
            expected: plan(exits[0], exits[1], exits[2]),
        }
    }

    #[test]
    fn proves_and_certifies_a_faithful_reordering() {
        let (f, var, head, [t1, t2, dflt]) = chain();
        let (g, rs) = reorder(&f, var, head, t1, t2, dflt);
        let proof = prove_sequence(&request(&f, &g, var, head, [t1, t2, dflt], rs)).unwrap();
        assert_eq!(proof.fallbacks, 0);
        assert!(proof.value_classes >= 3);
        assert!(proof.two_way_headers >= 2, "replica structures as a nest");
        // Double entry: the independent checker accepts the artifact.
        let checked = crate::cert::check(&proof.certificate).expect("checker accepts");
        assert_eq!(checked.sig, proof.sig);
        assert_eq!(checked.func_name, "t");
        assert_eq!(checked.classes, proof.value_classes);
    }

    /// A Set IV jump-table replica for [`chain`]: bounds checks, a
    /// `sub` into a fresh dispatch temp, and an `ijmp` over `[t1, t2]`.
    fn table_dispatch(
        f: &Function,
        var: Reg,
        head: BlockId,
        t1: BlockId,
        t2: BlockId,
        dflt: BlockId,
    ) -> (Function, u32) {
        let mut g = f.clone();
        let temp = g.new_reg();
        let replica_start = g.blocks.len() as u32;
        let [d1, d2] = [1, 2].map(|i: u32| BlockId(replica_start + i));
        let d0 = g.add_block(Block::new(Terminator::branch(Cond::Lt, dflt, d1)));
        g.block_mut(d0).insts.push(cmp(var, 0));
        let d1 = g.add_block(Block::new(Terminator::branch(Cond::Gt, dflt, d2)));
        g.block_mut(d1).insts.push(cmp(var, 1));
        let d2 = g.add_block(Block::new(Terminator::IndirectJump {
            index: temp,
            targets: vec![t1, t2],
        }));
        g.block_mut(d2).insts.push(Inst::Bin {
            op: BinOp::Sub,
            dst: temp,
            lhs: Operand::Reg(var),
            rhs: Operand::Imm(0),
        });
        g.block_mut(head).insts.clear();
        g.block_mut(head).term = Terminator::Jump(d0);
        (g, replica_start)
    }

    #[test]
    fn proves_and_certifies_a_jump_table_dispatch() {
        let (f, var, head, [t1, t2, dflt]) = chain();
        let (g, rs) = table_dispatch(&f, var, head, t1, t2, dflt);
        let proof = prove_sequence(&request(&f, &g, var, head, [t1, t2, dflt], rs)).unwrap();
        assert_eq!(proof.fallbacks, 0);
        assert!(
            proof.certificate.starts_with(crate::cert::VERSION_V2),
            "a dispatch replica must render a v2 certificate"
        );
        assert!(proof.certificate.contains("\ntemps "));
        // Double entry: the independent checker follows the table.
        let checked = crate::cert::check(&proof.certificate).expect("checker accepts v2");
        assert_eq!(checked.sig, proof.sig);
        assert_eq!(checked.dispatch_temps, f.num_regs);

        // Semantic tampering: swap the two table slots inside the
        // embedded reordered function and re-sign. The signature is
        // now valid, but a representative walk exits to the wrong
        // block and the checker must refuse.
        let body = proof
            .certificate
            .rsplit_once("sig ")
            .map(|(b, _)| b)
            .unwrap();
        let tampered_body = body.replace("ijmp r1, [b3, b4]", "ijmp r1, [b4, b3]");
        assert_ne!(tampered_body, body, "tamper target must exist: {body}");
        let tampered = format!(
            "{tampered_body}sig {:016x}\n",
            crate::cert::fingerprint(&tampered_body)
        );
        assert!(matches!(
            crate::cert::check(&tampered),
            Err(crate::cert::CertError::Walk(_))
        ));
    }

    #[test]
    fn refutes_swapped_targets_with_a_feasible_witness() {
        let (f, var, head, [t1, t2, dflt]) = chain();
        let (mut g, rs) = reorder(&f, var, head, t1, t2, dflt);
        let r1 = BlockId(rs + 1);
        g.block_mut(r1).term = Terminator::branch(Cond::Eq, dflt, t1);
        let refutation =
            prove_sequence(&request(&f, &g, var, head, [t1, t2, dflt], rs)).unwrap_err();
        let w = refutation.witness.expect("witness solved");
        // The solver must pick a dynamically producible value: var is
        // fed by getchar, so the witness lies in [-1, 255] and maps
        // back to concrete input bytes.
        assert!(w.is_feasible());
        assert!((-1..=255).contains(&w.value));
        assert!(w.input_bytes().is_some());
    }

    #[test]
    fn rejects_multi_entry_replicas() {
        let (f, var, head, [t1, t2, dflt]) = chain();
        let (mut g, rs) = reorder(&f, var, head, t1, t2, dflt);
        // A side entrance into the replica, bypassing the head.
        let sneak = g.add_block(Block::new(Terminator::Jump(BlockId(rs))));
        let entry = g.entry;
        g.block_mut(entry).term = Terminator::branch(Cond::Eq, head, sneak);
        let refutation =
            prove_sequence(&request(&f, &g, var, head, [t1, t2, dflt], rs)).unwrap_err();
        assert!(matches!(
            refutation.errors[0],
            ValidationError::Walk {
                side: Side::Reordered,
                ..
            }
        ));
    }

    #[test]
    fn feasible_values_of_getchar_and_arithmetic() {
        // var = getchar() twice joined, then shifted chain elsewhere.
        let mut f = Function::new("t");
        let var = f.new_reg();
        let e = f.entry;
        f.block_mut(e).insts.push(Inst::Call {
            dst: Some(var),
            callee: Callee::Intrinsic(Intrinsic::GetChar),
            args: vec![],
        });
        let a = feasible_values(&f, var);
        assert_eq!(a.range, Interval::new(-1, 255));
        assert!(a.admits(-1) && a.admits(255) && !a.admits(256));

        // w = (x << 3) + 5: congruence 8, residue 5.
        let x = f.new_reg();
        let t = f.new_reg();
        let w = f.new_reg();
        f.block_mut(e).insts.push(Inst::Bin {
            op: BinOp::Shl,
            dst: t,
            lhs: Operand::Reg(x),
            rhs: Operand::Imm(3),
        });
        f.block_mut(e).insts.push(Inst::Bin {
            op: BinOp::Add,
            dst: w,
            lhs: Operand::Reg(t),
            rhs: Operand::Imm(5),
        });
        let aw = feasible_values(&f, w);
        assert_eq!((aw.modulus, aw.residue), (8, 5));
        assert!(aw.admits(13) && !aw.admits(12));
    }

    #[test]
    fn witness_solver_respects_congruence() {
        let feasible = AbsVal {
            range: Interval::new(0, 100),
            modulus: 8,
            residue: 5,
        };
        let cls = IntervalSet::from_intervals([Interval::new(10, 40)]);
        let w = solve_witness(&cls, &feasible).unwrap();
        assert!(cls.contains(w) && feasible.admits(w));
        assert_eq!(w, 13);
        // Infeasible class: fall back to a member of the class itself.
        let far = IntervalSet::from_intervals([Interval::new(1000, 2000)]);
        assert_eq!(solve_witness(&far, &feasible), Some(1000));
    }
}
