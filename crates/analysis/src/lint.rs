//! Lint passes over the IR: suspicious range conditions and
//! comparisons the optimizer should have removed (or that the source
//! program never needed).
//!
//! | code   | lint                                                  |
//! |--------|-------------------------------------------------------|
//! | BR0101 | range condition partially shadowed by earlier ranges  |
//! | BR0102 | range condition fully shadowed (never satisfied)      |
//! | BR0103 | branch statically decided by value-range analysis     |
//! | BR0104 | comparison redundant with the one already in the codes|
//!
//! BR0101/BR0102 walk compare *chains* (the paper's reorderable
//! sequences, before any reordering) with exact [`IntervalSet`]
//! arithmetic, so they catch `Ne`-shaped shadowing the hull-based
//! interval analysis cannot. BR0103 uses the branch-sensitive interval
//! analysis and also fires outside chains. BR0104 is the
//! reaching-definitions cross-check for compares Figure 9 missed.

use std::collections::BTreeSet;

use br_ir::{predecessors, reachable, BlockId, Function, Inst, Module, Operand, Reg, Terminator};

use crate::diag::Diagnostic;
use crate::interval::{intervals, terminal_compare, IntervalSet};
use crate::reaching::cc_reaching;

/// Run every lint over one function.
pub fn lint_function(f: &Function) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    chain_lints(f, &mut diags);
    decided_branch_lints(f, &mut diags);
    redundant_compare_lints(f, &mut diags);
    diags
}

/// Run every lint over every function of a module.
pub fn lint_module(m: &Module) -> Vec<Diagnostic> {
    m.functions.iter().flat_map(lint_function).collect()
}

/// A block that ends a compare-on-`var` + conditional-branch pair and
/// can extend a chain: its compare tests `var` against a constant, and
/// nothing before the compare redefines `var`.
fn chain_link(f: &Function, b: BlockId) -> Option<(Reg, i64, bool)> {
    let (reg, c, swapped) = terminal_compare(f, b)?;
    if !matches!(f.block(b).term, Terminator::Branch { .. }) {
        return None;
    }
    let at = f.block(b).last_cmp().expect("terminal_compare found one");
    if f.block(b).insts[..at].iter().any(|i| i.def() == Some(reg)) {
        return None;
    }
    Some((reg, c, swapped))
}

/// BR0101/BR0102: walk each maximal fall-through chain of compares on
/// one variable, tracking exactly which values remain unclaimed.
fn chain_lints(f: &Function, diags: &mut Vec<Diagnostic>) {
    let reachable = reachable(f);
    let members: BTreeSet<BlockId> = f
        .block_ids()
        .filter(|&b| reachable.contains(&b) && chain_link(f, b).is_some())
        .collect();

    // A head is a member no same-variable member falls through to: the
    // chain walk from it sees the full value space.
    let mut fallthrough_of: BTreeSet<BlockId> = BTreeSet::new();
    for &b in &members {
        let (reg, ..) = chain_link(f, b).unwrap();
        if let Terminator::Branch {
            taken, not_taken, ..
        } = f.block(b).term
        {
            if taken != not_taken && members.contains(&not_taken) {
                if let Some((r2, ..)) = chain_link(f, not_taken) {
                    if r2 == reg {
                        fallthrough_of.insert(not_taken);
                    }
                }
            }
        }
    }

    for &head in &members {
        if fallthrough_of.contains(&head) {
            continue;
        }
        let (var, ..) = chain_link(f, head).unwrap();
        let mut remaining = IntervalSet::full();
        let mut claimed = IntervalSet::empty();
        let mut cur = head;
        let mut visited = BTreeSet::new();
        loop {
            if !visited.insert(cur) {
                break; // cyclic chain: stop rather than loop
            }
            let Some((reg, c, swapped)) = chain_link(f, cur) else {
                break;
            };
            if reg != var {
                break;
            }
            let Terminator::Branch {
                cond,
                taken,
                not_taken,
            } = f.block(cur).term
            else {
                break;
            };
            let eff = if swapped { cond.swap() } else { cond };
            let sat = IntervalSet::satisfying(eff, c);
            let live = sat.intersect(&remaining);
            if cur != head && live.is_empty() {
                diags.push(
                    Diagnostic::warning(
                        "BR0102",
                        &f.name,
                        format!("range condition `{} {}` is never satisfied", eff.mnemonic(), c),
                    )
                    .at(cur)
                    .note(format!("earlier conditions in the chain starting at {head} already claim all of {sat}"))
                    .note("the branch always falls through; the taken side is dead here".to_string()),
                );
            } else if cur != head && !sat.subtract(&claimed).is_empty() && sat.overlaps(&claimed) {
                let overlap = sat.intersect(&claimed);
                diags.push(
                    Diagnostic::warning(
                        "BR0101",
                        &f.name,
                        format!(
                            "range condition `{} {}` partially shadowed by earlier ranges",
                            eff.mnemonic(),
                            c
                        ),
                    )
                    .at(cur)
                    .note(format!("values {overlap} were already claimed upstream"))
                    .note(format!("only {live} can still take this branch")),
                );
            }
            claimed = claimed.union(&sat);
            remaining = remaining.subtract(&sat);
            if taken == not_taken || !members.contains(&not_taken) {
                break;
            }
            cur = not_taken;
        }
    }
}

/// BR0103: a conditional branch the interval analysis proves one-sided.
fn decided_branch_lints(f: &Function, diags: &mut Vec<Diagnostic>) {
    let analysis = intervals(f);
    let reachable = reachable(f);
    for b in f.block_ids() {
        if !reachable.contains(&b) {
            continue;
        }
        let Some(decided) = analysis.decided_branch(f, b) else {
            continue;
        };
        let (reg, c, _) = terminal_compare(f, b).expect("decided branch has a compare");
        let bound = analysis
            .at_terminator(b, reg)
            .expect("reachable block has an environment");
        let (kept, dead) = if decided {
            ("taken", "fall-through")
        } else {
            ("fall-through", "taken")
        };
        diags.push(
            Diagnostic::warning(
                "BR0103",
                &f.name,
                format!("branch is statically decided: always {kept}"),
            )
            .at(b)
            .note(format!(
                "value-range analysis bounds {reg} to {bound} at the compare against {c}"
            ))
            .note(format!("the {dead} edge is unreachable")),
        );
    }
}

/// BR0104: a compare whose result is already in the condition codes.
///
/// Exactly one `cmp lhs, rhs` reaches `b`'s compare on every path, the
/// operands are syntactically identical, and no block between the
/// defining site and the re-compare redefines either operand register.
fn redundant_compare_lints(f: &Function, diags: &mut Vec<Diagnostic>) {
    let cc = cc_reaching(f);
    let reachable = reachable(f);
    for b in f.block_ids() {
        if !reachable.contains(&b) {
            continue;
        }
        let Some(at) = f.block(b).last_cmp() else {
            continue;
        };
        // Only the *first* cc event of the block sees the incoming codes.
        if f.block(b).insts[..at]
            .iter()
            .any(|i| matches!(i, Inst::Cmp { .. } | Inst::Call { .. }))
        {
            continue;
        }
        let Inst::Cmp { lhs, rhs } = f.block(b).insts[at] else {
            continue;
        };
        let Some((plhs, prhs)) = cc.unique_compare_at_entry(f, b) else {
            continue;
        };
        if (lhs, rhs) != (plhs, prhs) {
            continue;
        }
        let (site, site_at) = cc.at_entry(b).unwrap().unique_site().unwrap();
        if !operands_stable(f, (site, site_at), (b, at), &[lhs, rhs]) {
            continue;
        }
        diags.push(
            Diagnostic::warning(
                "BR0104",
                &f.name,
                format!(
                    "comparison of {lhs} and {rhs} is redundant: the condition codes already hold it"
                ),
            )
            .at(b)
            .note(format!("same compare performed at instruction {site_at} of {site}"))
            .note("redundant-comparison elimination (paper Figure 9) would remove it".to_string()),
        );
    }
}

/// No path from just after `def` to just before `reuse` redefines any
/// register in `operands`. Over-approximates paths as: blocks forward-
/// reachable from `def.0` that also reach `reuse.0`, checking the
/// relevant instruction ranges of the endpoint blocks.
fn operands_stable(
    f: &Function,
    def: (BlockId, usize),
    reuse: (BlockId, usize),
    operands: &[Operand],
) -> bool {
    let regs: Vec<Reg> = operands.iter().filter_map(|o| o.reg()).collect();
    let defines = |inst: &Inst| inst.def().is_some_and(|d| regs.contains(&d));

    let (db, di) = def;
    let (rb, ri) = reuse;
    if db == rb {
        // Same block: a unique reaching site in the same block means the
        // straight-line gap between the two is the only path.
        return di < ri && !f.block(db).insts[di + 1..ri].iter().any(defines);
    }
    if f.block(db).insts[di + 1..].iter().any(defines) {
        return false;
    }
    if f.block(rb).insts[..ri].iter().any(defines) {
        return false;
    }

    // Interior blocks: forward-reachable from def's successors AND
    // backward-reachable from reuse's predecessors.
    let preds = predecessors(f);
    let mut fwd: BTreeSet<BlockId> = BTreeSet::new();
    let mut stack: Vec<BlockId> = f.block(db).term.successors();
    while let Some(b) = stack.pop() {
        if fwd.insert(b) {
            stack.extend(f.block(b).term.successors());
        }
    }
    let mut bwd: BTreeSet<BlockId> = BTreeSet::new();
    let mut stack: Vec<BlockId> = preds[rb.index()].clone();
    while let Some(b) = stack.pop() {
        if bwd.insert(b) {
            stack.extend(preds[b.index()].iter().copied());
        }
    }
    for b in fwd.intersection(&bwd) {
        if *b == db || *b == rb {
            continue;
        }
        if f.block(*b).insts.iter().any(defines) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_ir::{Block, Cond};

    fn cmp(var: Reg, c: i64) -> Inst {
        Inst::Cmp {
            lhs: Operand::Reg(var),
            rhs: Operand::Imm(c),
        }
    }

    /// chain: `le 10` then `lt 5` — the second is fully shadowed.
    #[test]
    fn fully_shadowed_range_fires_br0102() {
        let mut f = Function::new("t");
        let var = f.new_reg();
        let t1 = f.add_block(Block::new(Terminator::Return(None)));
        let t2 = f.add_block(Block::new(Terminator::Return(None)));
        let dflt = f.add_block(Block::new(Terminator::Return(None)));
        let c2 = f.add_block(Block::new(Terminator::branch(Cond::Lt, t2, dflt)));
        f.block_mut(c2).insts.push(cmp(var, 5));
        let e = f.entry;
        f.block_mut(e).insts.push(cmp(var, 10));
        f.block_mut(e).term = Terminator::branch(Cond::Le, t1, c2);

        let diags = lint_function(&f);
        assert!(
            diags
                .iter()
                .any(|d| d.code == "BR0102" && d.block == Some(c2)),
            "got: {diags:?}"
        );
    }

    /// chain: `lt 5` then `le 10` — overlap on (-inf, 4], still
    /// satisfiable on [5, 10].
    #[test]
    fn partial_shadow_fires_br0101() {
        let mut f = Function::new("t");
        let var = f.new_reg();
        let t1 = f.add_block(Block::new(Terminator::Return(None)));
        let t2 = f.add_block(Block::new(Terminator::Return(None)));
        let dflt = f.add_block(Block::new(Terminator::Return(None)));
        let c2 = f.add_block(Block::new(Terminator::branch(Cond::Le, t2, dflt)));
        f.block_mut(c2).insts.push(cmp(var, 10));
        let e = f.entry;
        f.block_mut(e).insts.push(cmp(var, 5));
        f.block_mut(e).term = Terminator::branch(Cond::Lt, t1, c2);

        let diags = lint_function(&f);
        assert!(
            diags
                .iter()
                .any(|d| d.code == "BR0101" && d.block == Some(c2)),
            "got: {diags:?}"
        );
        assert!(!diags.iter().any(|d| d.code == "BR0102"));
    }

    /// disjoint ranges lint-clean: `eq 1` then `eq 2`.
    #[test]
    fn disjoint_chain_is_clean() {
        let mut f = Function::new("t");
        let var = f.new_reg();
        let t1 = f.add_block(Block::new(Terminator::Return(None)));
        let t2 = f.add_block(Block::new(Terminator::Return(None)));
        let dflt = f.add_block(Block::new(Terminator::Return(None)));
        let c2 = f.add_block(Block::new(Terminator::branch(Cond::Eq, t2, dflt)));
        f.block_mut(c2).insts.push(cmp(var, 2));
        let e = f.entry;
        f.block_mut(e).insts.push(cmp(var, 1));
        f.block_mut(e).term = Terminator::branch(Cond::Eq, t1, c2);
        assert!(lint_function(&f).is_empty(), "{:?}", lint_function(&f));
    }

    /// `copy r0, 3; cmp r0, 10; blt` — statically always taken.
    #[test]
    fn constant_branch_fires_br0103() {
        let mut f = Function::new("t");
        let var = f.new_reg();
        let t1 = f.add_block(Block::new(Terminator::Return(None)));
        let dflt = f.add_block(Block::new(Terminator::Return(None)));
        let e = f.entry;
        f.block_mut(e).insts.push(Inst::Copy {
            dst: var,
            src: Operand::Imm(3),
        });
        f.block_mut(e).insts.push(cmp(var, 10));
        f.block_mut(e).term = Terminator::branch(Cond::Lt, t1, dflt);
        let diags = lint_function(&f);
        assert!(
            diags
                .iter()
                .any(|d| d.code == "BR0103" && d.block == Some(e)),
            "got: {diags:?}"
        );
    }

    /// Re-comparing the same operands with no interference: BR0104.
    #[test]
    fn redundant_recompare_fires_br0104() {
        let mut f = Function::new("t");
        let var = f.new_reg();
        let t1 = f.add_block(Block::new(Terminator::Return(None)));
        let dflt = f.add_block(Block::new(Terminator::Return(None)));
        let again = f.add_block(Block::new(Terminator::branch(Cond::Ge, dflt, t1)));
        f.block_mut(again).insts.push(cmp(var, 7));
        let e = f.entry;
        f.block_mut(e).insts.push(cmp(var, 7));
        f.block_mut(e).term = Terminator::branch(Cond::Lt, t1, again);
        let diags = lint_function(&f);
        assert!(
            diags
                .iter()
                .any(|d| d.code == "BR0104" && d.block == Some(again)),
            "got: {diags:?}"
        );
    }

    /// Redefining the operand between compares suppresses BR0104.
    #[test]
    fn interfering_def_suppresses_br0104() {
        let mut f = Function::new("t");
        let var = f.new_reg();
        let t1 = f.add_block(Block::new(Terminator::Return(None)));
        let dflt = f.add_block(Block::new(Terminator::Return(None)));
        let again = f.add_block(Block::new(Terminator::branch(Cond::Ge, dflt, t1)));
        f.block_mut(again).insts.push(Inst::Copy {
            dst: var,
            src: Operand::Imm(0),
        });
        f.block_mut(again).insts.push(cmp(var, 7));
        let e = f.entry;
        f.block_mut(e).insts.push(cmp(var, 7));
        f.block_mut(e).term = Terminator::branch(Cond::Lt, t1, again);
        let diags = lint_function(&f);
        assert!(!diags.iter().any(|d| d.code == "BR0104"), "got: {diags:?}");
    }
}
