//! `br-analysis`: static analyses and a translation validator for the
//! branch-reordering pipeline.
//!
//! The reordering transformation (crate `br-reorder`) rewrites chains
//! of compare-and-branch blocks guided by value profiles. This crate
//! provides the machinery to *check* that work rather than trust it:
//!
//! - [`dataflow`] — a generic worklist engine for forward and backward
//!   problems over pluggable join-semilattice domains, with widening.
//! - [`interval`] — branch-sensitive value-range analysis of the
//!   registers feeding `cmp` instructions, plus the exact
//!   [`interval::IntervalSet`] arithmetic the validator and lints use.
//! - [`reaching`] — reaching-definitions for the implicit
//!   condition-code register (`cmp` defines, `call` clobbers).
//! - [`purity`] — side-effect and cc-liveness analysis that re-derives
//!   the paper's Theorem 2 legality conditions independently of the
//!   detector.
//! - [`validate`] — the translation validator: symbolically partitions
//!   the tested variable's value space into range → target classes
//!   before and after reordering and proves the partitions equivalent
//!   (disjoint, exhaustive, same targets, same side effects, same
//!   continuations).
//! - [`lint`] — IR lints: shadowed and statically-dead range
//!   conditions, redundant comparisons the optimizer missed.
//! - [`diag`] — rustc-style diagnostics shared by the lints and the
//!   CLI frontends.

#![warn(missing_docs)]

pub mod dataflow;
pub mod diag;
pub mod interval;
pub mod lint;
pub mod purity;
pub mod reaching;
pub mod validate;

pub use dataflow::{solve, Direction, Domain, Solution};
pub use diag::{has_errors, render, Diagnostic, Severity};
pub use interval::{intervals, terminal_compare, Interval, IntervalAnalysis, IntervalSet};
pub use lint::{lint_function, lint_module};
pub use purity::{block_effects, cc_needed_on_entry, check_motion, EffectSummary, MotionViolation};
pub use reaching::{cc_reaching, CcAnalysis, CcReach, CcSite};
pub use validate::{
    check_equivalence, explore, tail_equivalent, Arm, ArmEnd, Cursor, EquivalenceCheck,
    EquivalenceProof, Side, ValidationError, WalkSpec,
};
