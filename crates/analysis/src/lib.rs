//! `br-analysis`: static analyses and a translation validator for the
//! branch-reordering pipeline.
//!
//! The reordering transformation (crate `br-reorder`) rewrites chains
//! of compare-and-branch blocks guided by value profiles. This crate
//! provides the machinery to *check* that work rather than trust it:
//!
//! - [`dataflow`] — a generic worklist engine for forward and backward
//!   problems over pluggable join-semilattice domains, with widening.
//! - [`interval`] — branch-sensitive value-range analysis of the
//!   registers feeding `cmp` instructions, plus the exact
//!   [`interval::IntervalSet`] arithmetic the validator and lints use.
//! - [`reaching`] — reaching-definitions for the implicit
//!   condition-code register (`cmp` defines, `call` clobbers).
//! - [`purity`] — side-effect and cc-liveness analysis that re-derives
//!   the paper's Theorem 2 legality conditions independently of the
//!   detector.
//! - [`validate`] — the translation validator: symbolically partitions
//!   the tested variable's value space into range → target classes
//!   before and after reordering and proves the partitions equivalent
//!   (disjoint, exhaustive, same targets, same side effects, same
//!   continuations).
//! - [`mod@cfg`] / [`domtree`] — first-class control-flow graphs,
//!   dominator trees, and two-way-conditional structuring, the
//!   soundness substrate of the prover.
//! - [`symex`] — the certifying prover (`br-prove`): proves
//!   original/reordered partition equivalence by constraint
//!   subsumption, renders accepted proofs as certificates, and solves
//!   refutations for concrete counterexample witnesses guided by an
//!   interval+congruence feasibility abstraction.
//! - [`cert`] — the proof-certificate format plus a deliberately tiny
//!   *independent* checker (no code shared with the prover) for
//!   double-entry acceptance of every committed reordering.
//! - [`witness`] — counterexample witnesses and their rendering as
//!   replayable `br-fuzz` corpus entries.
//! - [`layout`] — the layout-permutation check (`BR04xx`): proves a
//!   block-layout pass only moved code — a permutation with renumbered
//!   successors, a mapped entry, and at most a polarity fixup per
//!   branch.
//! - [`lint`] — IR lints: shadowed and statically-dead range
//!   conditions, redundant comparisons the optimizer missed.
//! - [`diag`] — rustc-style diagnostics shared by the lints and the
//!   CLI frontends.

#![warn(missing_docs)]

pub mod cert;
pub mod cfg;
pub mod dataflow;
pub mod diag;
pub mod domtree;
pub mod interval;
pub mod layout;
pub mod lint;
pub mod purity;
pub mod reaching;
pub mod symex;
pub mod validate;
pub mod witness;

pub use cert::{check, CertError, CheckedCert};
pub use cfg::Cfg;
pub use dataflow::{solve, Direction, Domain, Solution};
pub use diag::{has_errors, render, Diagnostic, Severity};
pub use domtree::{two_way_conditionals, DomTree, TwoWayConditional};
pub use interval::{intervals, terminal_compare, Interval, IntervalAnalysis, IntervalSet};
pub use layout::check_layout;
pub use lint::{lint_function, lint_module};
pub use purity::{block_effects, cc_needed_on_entry, check_motion, EffectSummary, MotionViolation};
pub use reaching::{cc_reaching, CcAnalysis, CcReach, CcSite};
pub use symex::{feasible_values, prove_sequence, AbsVal, Refutation, SequenceProof};
pub use validate::{
    check_equivalence, explore, tail_equivalent, Arm, ArmEnd, ClassRecord, Cursor,
    EquivalenceCheck, EquivalenceProof, Side, ValidationError, WalkSpec,
};
pub use witness::{corpus_entry, Witness};
