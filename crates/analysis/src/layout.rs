//! Layout-permutation validation (`BR04xx`): proves that a block-layout
//! pass only *moved* code.
//!
//! A layout pass (greedy repositioning or the ext-TSP pass in
//! `br-layout`) is semantics-preserving exactly when the result is a
//! permutation of the input blocks with every successor reference
//! renumbered consistently — plus, optionally, per-branch polarity
//! fixups (condition negated and arms swapped), which leave the
//! transfer function of the branch untouched. [`check_layout`] verifies
//! that structure syntactically against the claimed order, so the check
//! is exact: no abstraction, no false positives, and a forged order is
//! always caught.

use br_ir::{BlockId, Function, Terminator};

use crate::diag::Diagnostic;

/// Check that `after` is exactly `before` laid out in `order` (old block
/// ids in new storage order), with successor references renumbered, the
/// entry mapped, and at most a polarity fixup per branch. Returns one
/// error diagnostic per violation; an empty vector is a proof that the
/// layout pass preserved semantics.
pub fn check_layout(before: &Function, after: &Function, order: &[BlockId]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let n = before.blocks.len();
    let mut seen = vec![false; n];
    let mut valid_perm = order.len() == after.blocks.len();
    for &b in order {
        if b.index() >= n || seen[b.index()] {
            valid_perm = false;
            break;
        }
        seen[b.index()] = true;
    }
    if !valid_perm || order.len() != n {
        diags.push(
            Diagnostic::error(
                "BR0401",
                &before.name,
                "claimed layout order is not a permutation of the function's blocks",
            )
            .note(format!(
                "function has {n} blocks, order lists {} (after has {})",
                order.len(),
                after.blocks.len()
            )),
        );
        return diags;
    }
    let mut new_id = vec![BlockId(0); n];
    for (new_idx, &old) in order.iter().enumerate() {
        new_id[old.index()] = BlockId(new_idx as u32);
    }
    if after.entry != new_id[before.entry.index()] {
        diags.push(
            Diagnostic::error("BR0404", &before.name, "entry block mapped incorrectly").note(
                format!(
                    "entry {} should map to {}, found {}",
                    before.entry,
                    new_id[before.entry.index()],
                    after.entry
                ),
            ),
        );
    }
    for (new_idx, &old) in order.iter().enumerate() {
        let src = &before.blocks[old.index()];
        let dst = &after.blocks[new_idx];
        if src.insts != dst.insts {
            diags.push(
                Diagnostic::error(
                    "BR0402",
                    &before.name,
                    "block body changed under a layout-only pass",
                )
                .at(BlockId(new_idx as u32))
                .note(format!("moved from {old}")),
            );
        }
        let mut expected = src.term.clone();
        expected.map_successors(|s| new_id[s.index()]);
        if dst.term == expected {
            continue;
        }
        // The only other legal form: a polarity fixup of the mapped
        // branch (negated condition, arms swapped).
        let fixup_ok = match (&expected, &dst.term) {
            (
                Terminator::Branch {
                    cond,
                    taken,
                    not_taken,
                },
                Terminator::Branch {
                    cond: acond,
                    taken: ataken,
                    not_taken: anot,
                },
            ) => *acond == cond.negate() && ataken == not_taken && anot == taken,
            _ => false,
        };
        if !fixup_ok {
            diags.push(
                Diagnostic::error(
                    "BR0403",
                    &before.name,
                    "terminator is neither the renumbered original nor its polarity fixup",
                )
                .at(BlockId(new_idx as u32))
                .note(format!("expected {expected:?}"))
                .note(format!("found {:?}", dst.term)),
            );
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_ir::{Cond, FuncBuilder, Operand};

    fn diamond() -> Function {
        let mut b = FuncBuilder::new("f");
        let x = b.new_reg();
        b.set_param_regs(vec![x]);
        let e = b.entry();
        let l = b.new_block();
        let r = b.new_block();
        b.cmp_branch(e, x, 0i64, Cond::Eq, l, r);
        b.set_term(l, Terminator::Return(Some(Operand::Imm(0))));
        b.set_term(r, Terminator::Return(Some(Operand::Imm(1))));
        b.finish()
    }

    fn permute(f: &Function, order: &[BlockId]) -> Function {
        let mut new_id = vec![BlockId(0); f.blocks.len()];
        for (i, &old) in order.iter().enumerate() {
            new_id[old.index()] = BlockId(i as u32);
        }
        let mut out = f.clone();
        out.blocks = order
            .iter()
            .map(|&old| {
                let mut b = f.blocks[old.index()].clone();
                b.term.map_successors(|s| new_id[s.index()]);
                b
            })
            .collect();
        out.entry = new_id[f.entry.index()];
        out
    }

    #[test]
    fn honest_permutation_passes() {
        let f = diamond();
        let order = [2, 0, 1].map(BlockId);
        let after = permute(&f, &order);
        assert!(check_layout(&f, &after, &order).is_empty());
    }

    #[test]
    fn polarity_fixup_is_accepted() {
        let f = diamond();
        let order = [0, 2, 1].map(BlockId);
        let mut after = permute(&f, &order);
        // Make the now-adjacent arm the fall-through, as invert_branches
        // would.
        if let Terminator::Branch {
            cond,
            taken,
            not_taken,
        } = after.blocks[0].term
        {
            after.blocks[0].term = Terminator::Branch {
                cond: cond.negate(),
                taken: not_taken,
                not_taken: taken,
            };
        }
        assert!(check_layout(&f, &after, &order).is_empty());
    }

    #[test]
    fn forged_order_is_rejected() {
        let f = diamond();
        let order = [0, 2, 1].map(BlockId);
        let after = permute(&f, &order);
        let claimed = [0, 1, 2].map(BlockId);
        let diags = check_layout(&f, &after, &claimed);
        assert!(diags.iter().any(|d| d.code == "BR0403"), "{diags:?}");
    }

    #[test]
    fn non_permutation_order_is_rejected() {
        let f = diamond();
        let after = f.clone();
        let diags = check_layout(&f, &after, &[BlockId(0), BlockId(0), BlockId(1)]);
        assert!(diags.iter().any(|d| d.code == "BR0401"), "{diags:?}");
    }

    #[test]
    fn edited_block_body_is_rejected() {
        let f = diamond();
        let order = [0, 1, 2].map(BlockId);
        let mut after = permute(&f, &order);
        after.blocks[0].insts.clear(); // the entry holds the cmp
        let diags = check_layout(&f, &after, &order);
        assert!(diags.iter().any(|d| d.code == "BR0402"), "{diags:?}");
    }

    #[test]
    fn retargeted_branch_is_rejected() {
        let f = diamond();
        let order = [0, 1, 2].map(BlockId);
        let mut after = permute(&f, &order);
        after.blocks[1].term = Terminator::Jump(BlockId(2));
        let diags = check_layout(&f, &after, &order);
        assert!(diags.iter().any(|d| d.code == "BR0403"), "{diags:?}");
    }

    #[test]
    fn wrong_entry_is_rejected() {
        let f = diamond();
        let order = [0, 1, 2].map(BlockId);
        let mut after = permute(&f, &order);
        after.entry = BlockId(1);
        let diags = check_layout(&f, &after, &order);
        assert!(diags.iter().any(|d| d.code == "BR0404"), "{diags:?}");
    }
}
