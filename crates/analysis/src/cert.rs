//! Proof certificates for reordered branch sequences, and the
//! independent checker that re-validates them.
//!
//! A certificate is a versioned, line-oriented text artifact (the same
//! genre as the sweep cache's artifacts) recording everything one
//! sequence's equivalence proof established: the tested variable, the
//! sequence head, the proven value partition with each class's exit,
//! and — so the artifact is self-contained — the printed IR of the
//! function before and after the transformation. The final line is a
//! FNV-1a signature over everything above it.
//!
//! # Checker independence
//!
//! [`check`] deliberately shares **no code** with the prover
//! ([`crate::symex`], [`crate::validate`]): it has its own line parser,
//! its own signature loop, and its own concrete evaluator. Where the
//! prover reasons symbolically over *all* values with interval
//! arithmetic, the checker re-parses the embedded functions with the
//! ordinary IR parser and *concretely walks* both versions for
//! boundary-representative values of every class interval (`lo`, `hi`,
//! and a midpoint), comparing the side-effect traces and the arrival
//! points instruction by instruction. Acceptance is therefore
//! double-entry: a bug in the prover's interval algebra cannot leak
//! through the checker's concrete walks, and vice versa.
//!
//! The signature catches accidental corruption of any line; the
//! structural checks (partition must tile `i64` exactly; every class
//! exit must be a declared sequence exit; embedded prologues must
//! agree) plus the representative walks catch *semantic* tampering even
//! when the signature is recomputed — flip any range bound and the
//! boundary value now walks to the wrong exit, swap any target and the
//! original's first exit passage contradicts the declaration.

use std::collections::BTreeSet;

use br_ir::{parse_module, BinOp, BlockId, Cond, Function, Inst, Operand, Reg, Terminator};

/// Certificate format version tag (first line of every certificate).
pub const VERSION: &str = "brcert v1";

/// Version tag for certificates whose replica contains an indirect
/// dispatch (a Set IV jump table). Identical to [`VERSION`] except for
/// one extra header line, `temps N`, after `prologue`: the first
/// register number the emitter created for dispatch index computation.
/// The checker evaluates `sub tN, var, base` into such a register
/// concretely and follows the indirect jump through its table — chain
/// and pure-tree certificates never need this and stay `brcert v1`.
pub const VERSION_V2: &str = "brcert v2";

/// Why a certificate was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CertError {
    /// The text does not parse as a certificate (wrong version,
    /// missing or malformed line, truncation).
    Parse(String),
    /// The signature line does not match the certificate body.
    BadSignature {
        /// Signature recomputed over the body.
        expected: u64,
        /// Signature the certificate carries.
        found: u64,
    },
    /// The declared classes do not tile the `i64` value space.
    Tiling(String),
    /// A representative concrete walk contradicted the certificate.
    Walk(String),
}

impl std::fmt::Display for CertError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertError::Parse(d) => write!(f, "certificate does not parse: {d}"),
            CertError::BadSignature { expected, found } => write!(
                f,
                "certificate signature mismatch: body hashes to {expected:016x}, \
                 signature line says {found:016x}"
            ),
            CertError::Tiling(d) => write!(f, "class partition does not tile i64: {d}"),
            CertError::Walk(d) => write!(f, "representative walk refutes the certificate: {d}"),
        }
    }
}

impl std::error::Error for CertError {}

/// One accepted certificate, decoded.
#[derive(Clone, Debug)]
pub struct CheckedCert {
    /// Name of the certified function.
    pub func_name: String,
    /// The tested variable.
    pub var: Reg,
    /// The sequence head block.
    pub head: BlockId,
    /// First block id of the emitted replica.
    pub replica_start: u32,
    /// Instructions of the head prologue both versions share.
    pub prologue: usize,
    /// First register number treated as a dispatch temporary when
    /// walking the replica (`u32::MAX` for v1 certificates: no
    /// indirect dispatch).
    pub dispatch_temps: u32,
    /// Declared sequence exits.
    pub exits: BTreeSet<BlockId>,
    /// Number of value classes checked.
    pub classes: usize,
    /// The embedded pre-transformation function, printed.
    pub original_text: String,
    /// The embedded post-transformation function, printed.
    pub reordered_text: String,
    /// The certificate's signature (also its content address).
    pub sig: u64,
}

/// 64-bit FNV-1a over one byte string. The checker's own copy — shared
/// with nothing.
fn sig64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Content fingerprint of an arbitrary text (FNV-1a). Used to key
/// certificate caches and to surface certificate hashes in service
/// responses; for a valid certificate, `fingerprint` of the body equals
/// the `sig` line.
pub fn fingerprint(text: &str) -> u64 {
    sig64(text.as_bytes())
}

fn perr(detail: impl Into<String>) -> CertError {
    CertError::Parse(detail.into())
}

fn take<'a>(lines: &mut std::str::Lines<'a>, key: &str) -> Result<&'a str, CertError> {
    let line = lines
        .next()
        .ok_or_else(|| perr(format!("missing `{key}` line")))?;
    line.strip_prefix(key)
        .and_then(|r| r.strip_prefix(' '))
        .ok_or_else(|| perr(format!("expected `{key} ...`, found `{line}`")))
}

fn num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, CertError> {
    s.parse()
        .map_err(|_| perr(format!("malformed {what}: `{s}`")))
}

struct ParsedClass {
    intervals: Vec<(i64, i64)>,
    target: BlockId,
}

/// Check one certificate, end to end. Returns the decoded certificate
/// on acceptance; the first violation found otherwise.
///
/// # Errors
///
/// Every rejection reason is a [`CertError`] variant; see its docs.
pub fn check(text: &str) -> Result<CheckedCert, CertError> {
    // 1. Signature: the last line signs everything before it.
    let body_end = text
        .rfind("sig ")
        .filter(|&at| at == 0 || text.as_bytes()[at - 1] == b'\n')
        .ok_or_else(|| perr("missing `sig` line"))?;
    let sig_str = text[body_end..]
        .trim_end()
        .strip_prefix("sig ")
        .ok_or_else(|| perr("malformed `sig` line"))?;
    let found =
        u64::from_str_radix(sig_str, 16).map_err(|_| perr("signature is not hexadecimal"))?;
    let expected = sig64(&text.as_bytes()[..body_end]);
    if expected != found {
        return Err(CertError::BadSignature { expected, found });
    }

    // 2. Header fields, in fixed order.
    let mut lines = text[..body_end].lines();
    let version = lines.next();
    if version != Some(VERSION) && version != Some(VERSION_V2) {
        return Err(perr(format!(
            "version line is neither `{VERSION}` nor `{VERSION_V2}`"
        )));
    }
    let func_name = take(&mut lines, "func")?.to_string();
    let var = Reg(num(
        take(&mut lines, "var")?
            .strip_prefix('r')
            .ok_or_else(|| perr("var is not `rN`"))?,
        "var register",
    )?);
    let head = BlockId(num(take(&mut lines, "head")?, "head block")?);
    let replica_start: u32 = num(take(&mut lines, "replica")?, "replica start")?;
    let prologue: usize = num(take(&mut lines, "prologue")?, "prologue length")?;
    let dispatch_temps: u32 = if version == Some(VERSION_V2) {
        num(take(&mut lines, "temps")?, "dispatch temp threshold")?
    } else {
        u32::MAX
    };
    let mut exit_fields = take(&mut lines, "exits")?.split(' ');
    let n_exits: usize = num(
        exit_fields.next().ok_or_else(|| perr("empty exits line"))?,
        "exit count",
    )?;
    let mut exits = BTreeSet::new();
    for _ in 0..n_exits {
        exits.insert(BlockId(num(
            exit_fields.next().ok_or_else(|| perr("short exits line"))?,
            "exit block",
        )?));
    }
    if exit_fields.next().is_some() {
        return Err(perr("trailing fields on exits line"));
    }

    // 3. Classes.
    let n_classes: usize = num(take(&mut lines, "classes")?, "class count")?;
    let mut classes = Vec::with_capacity(n_classes);
    for _ in 0..n_classes {
        let rest = take(&mut lines, "class")?;
        let mut fields = rest.split(' ');
        let n_ivs: usize = num(
            fields.next().ok_or_else(|| perr("empty class line"))?,
            "interval count",
        )?;
        let mut intervals = Vec::with_capacity(n_ivs);
        for _ in 0..n_ivs {
            let iv = fields.next().ok_or_else(|| perr("short class line"))?;
            let (lo, hi) = iv
                .split_once(',')
                .ok_or_else(|| perr(format!("malformed interval `{iv}`")))?;
            intervals.push((
                num::<i64>(lo, "interval lo")?,
                num::<i64>(hi, "interval hi")?,
            ));
        }
        if fields.next() != Some("exit") {
            return Err(perr("class line missing `exit`"));
        }
        let target = BlockId(num(
            fields
                .next()
                .ok_or_else(|| perr("class line missing exit block"))?,
            "class exit",
        )?);
        if fields.next().is_some() {
            return Err(perr("trailing fields on class line"));
        }
        if !exits.contains(&target) {
            return Err(CertError::Tiling(format!(
                "class exit {target} is not a declared sequence exit"
            )));
        }
        classes.push(ParsedClass { intervals, target });
    }

    // 4. Embedded functions.
    let original_text = take_embedded(&mut lines, "original")?;
    let reordered_text = take_embedded(&mut lines, "reordered")?;
    if lines.next().is_some() {
        return Err(perr("trailing lines after embedded functions"));
    }
    let original = parse_embedded(&original_text, &func_name)?;
    let reordered = parse_embedded(&reordered_text, &func_name)?;

    // 5. The classes must tile i64 exactly: sorted by lo, no overlap,
    //    no gap, ends pinned to the extremes. Any single bound flip
    //    breaks this or moves a boundary a representative walk covers.
    let mut all: Vec<(i64, i64)> = classes
        .iter()
        .flat_map(|c| c.intervals.iter().copied())
        .collect();
    if all.is_empty() {
        return Err(CertError::Tiling("no intervals declared".to_string()));
    }
    for &(lo, hi) in &all {
        if lo > hi {
            return Err(CertError::Tiling(format!("empty interval {lo},{hi}")));
        }
    }
    all.sort_unstable();
    if all[0].0 != i64::MIN {
        return Err(CertError::Tiling(format!(
            "first interval starts at {}, not i64::MIN",
            all[0].0
        )));
    }
    if all[all.len() - 1].1 != i64::MAX {
        return Err(CertError::Tiling(format!(
            "last interval ends at {}, not i64::MAX",
            all[all.len() - 1].1
        )));
    }
    for w in all.windows(2) {
        let (prev, next) = (w[0], w[1]);
        if prev.1 >= next.0 {
            return Err(CertError::Tiling(format!(
                "intervals {},{} and {},{} overlap",
                prev.0, prev.1, next.0, next.1
            )));
        }
        if prev.1 + 1 != next.0 {
            return Err(CertError::Tiling(format!(
                "gap between {} and {}",
                prev.1, next.0
            )));
        }
    }

    // 6. Structural sanity of the embedded pair.
    if head.index() >= original.blocks.len() || head.index() >= reordered.blocks.len() {
        return Err(CertError::Walk(format!("head {head} out of range")));
    }
    let orig_head = &original.block(head).insts;
    let reord_head = &reordered.block(head).insts;
    if orig_head.len() < prologue
        || reord_head.len() < prologue
        || orig_head[..prologue] != reord_head[..prologue]
    {
        return Err(CertError::Walk("head prologues differ".to_string()));
    }

    // 7. Representative concrete walks: for every class, walk both
    //    versions at each interval's lo, hi, and midpoint.
    for class in &classes {
        for &(lo, hi) in &class.intervals {
            let mid = (lo as i128 + (hi as i128 - lo as i128) / 2) as i64;
            for v in [lo, hi, mid] {
                check_value(
                    &original,
                    &reordered,
                    var,
                    head,
                    prologue,
                    dispatch_temps,
                    replica_start,
                    &exits,
                    v,
                    class.target,
                )?;
            }
        }
    }

    Ok(CheckedCert {
        func_name,
        var,
        head,
        replica_start,
        prologue,
        dispatch_temps,
        exits,
        classes: classes.len(),
        original_text,
        reordered_text,
        sig: found,
    })
}

fn take_embedded(lines: &mut std::str::Lines, key: &str) -> Result<String, CertError> {
    let n: usize = num(take(lines, key)?, "embedded line count")?;
    let mut text = String::new();
    for _ in 0..n {
        let line = lines
            .next()
            .ok_or_else(|| perr(format!("embedded `{key}` function truncated")))?;
        text.push_str(line);
        text.push('\n');
    }
    Ok(text)
}

fn parse_embedded(text: &str, expect_name: &str) -> Result<Function, CertError> {
    let module =
        parse_module(text).map_err(|e| perr(format!("embedded function does not parse: {e}")))?;
    let [f]: [Function; 1] = <[Function; 1]>::try_from(module.functions)
        .map_err(|_| perr("embedded text is not exactly one function"))?;
    if f.name != expect_name {
        return Err(perr(format!(
            "embedded function is named `{}`, certificate says `{expect_name}`",
            f.name
        )));
    }
    Ok(f)
}

/// Where one concrete walk came to rest.
#[derive(PartialEq, Eq, Debug)]
enum WalkEnd {
    /// Entered this block (at its first instruction).
    Block(BlockId),
    /// Reached a `ret`, with the returned operand printed.
    Ret(String),
}

struct WalkResult {
    end: WalkEnd,
    trace: Vec<String>,
    first_exit: Option<BlockId>,
}

/// Concretely walk `f` from `(start, start_inst)` with the tested
/// variable bound to `value`, collecting the side-effect trace, until a
/// stop condition fires: in replica mode (`boundary = Some(b)`)
/// entering any block below `b`; in original mode (`stop`) reaching the
/// given end. Tracks the first declared exit entered. Registers
/// numbered `>= temps` are dispatch temporaries: a `sub` of the tested
/// variable into one is evaluated concretely (and kept out of the
/// trace, like the compares) so a following indirect jump can be
/// followed through its table.
#[allow(clippy::too_many_arguments)]
fn concrete_walk(
    f: &Function,
    start: BlockId,
    start_inst: usize,
    var: Reg,
    value: i64,
    temps: u32,
    boundary: Option<u32>,
    stop: Option<&WalkEnd>,
    exits: &BTreeSet<BlockId>,
) -> Result<WalkResult, String> {
    // Condition codes: the operand values of the last compare, when the
    // walker can evaluate it (a compare of the intact tested variable
    // against a constant); `None` otherwise.
    let mut cc: Option<(i64, i64)> = None;
    let mut var_valid = true;
    // Dispatch-index binding: `Some((t, i))` when register `t` holds
    // the concrete index value `i`.
    let mut sub: Option<(Reg, i64)> = None;
    let mut trace = Vec::new();
    let mut first_exit = None;
    let mut block = start;
    let mut at = start_inst;
    let mut entered = false;
    let mut fuel = 4096usize;
    loop {
        if entered {
            if first_exit.is_none() && exits.contains(&block) {
                first_exit = Some(block);
            }
            if let Some(b) = boundary {
                if block.0 < b {
                    return Ok(WalkResult {
                        end: WalkEnd::Block(block),
                        trace,
                        first_exit,
                    });
                }
            }
            if let Some(WalkEnd::Block(s)) = stop {
                if *s == block {
                    return Ok(WalkResult {
                        end: WalkEnd::Block(block),
                        trace,
                        first_exit,
                    });
                }
            }
        }
        entered = true;
        if block.index() >= f.blocks.len() {
            return Err(format!("walk entered nonexistent block {block}"));
        }
        let b = f.block(block);
        for inst in &b.insts[at..] {
            fuel = fuel.checked_sub(1).ok_or("walk ran out of fuel")?;
            match inst {
                Inst::Cmp { lhs, rhs } => {
                    cc = match (lhs, rhs) {
                        (Operand::Reg(r), Operand::Imm(c)) if *r == var && var_valid => {
                            Some((value, *c))
                        }
                        (Operand::Imm(c), Operand::Reg(r)) if *r == var && var_valid => {
                            Some((*c, value))
                        }
                        _ => {
                            trace.push(format!("{inst:?}"));
                            None
                        }
                    };
                }
                Inst::Bin {
                    op: BinOp::Sub,
                    dst,
                    lhs: Operand::Reg(r),
                    rhs: Operand::Imm(base),
                } if dst.0 >= temps && *r == var && var_valid => {
                    sub = Some((*dst, value.wrapping_sub(*base)));
                }
                other => {
                    if matches!(other, Inst::Call { .. }) {
                        cc = None;
                    }
                    if other.def() == Some(var) {
                        var_valid = false;
                    }
                    if sub.is_some_and(|(t, _)| other.def() == Some(t)) {
                        sub = None;
                    }
                    trace.push(format!("{other:?}"));
                }
            }
        }
        at = 0;
        fuel = fuel.checked_sub(1).ok_or("walk ran out of fuel")?;
        match &b.term {
            Terminator::Jump(t) => block = *t,
            Terminator::Branch {
                cond,
                taken,
                not_taken,
            } => {
                if taken == not_taken {
                    block = *taken;
                } else {
                    let (l, r) = cc.ok_or(
                        "branch on condition codes the checker cannot \
                                           evaluate",
                    )?;
                    block = if eval_cond(*cond, l, r) {
                        *taken
                    } else {
                        *not_taken
                    };
                }
            }
            Terminator::Return(op) => {
                return Ok(WalkResult {
                    end: WalkEnd::Ret(format!("{op:?}")),
                    trace,
                    first_exit,
                });
            }
            Terminator::IndirectJump { index, targets } => {
                let Some(slot) = sub.and_then(|(t, i)| (t == *index).then_some(i)) else {
                    return Err("walk reached an indirect jump with no evaluable index".into());
                };
                let slot = usize::try_from(slot)
                    .ok()
                    .filter(|&s| s < targets.len())
                    .ok_or_else(|| {
                        format!(
                            "indirect jump index {slot} outside table of {} slots",
                            targets.len()
                        )
                    })?;
                block = targets[slot];
            }
        }
    }
}

/// The checker's own compare evaluator (no shared code with the
/// prover's interval algebra).
fn eval_cond(cond: Cond, l: i64, r: i64) -> bool {
    match cond {
        Cond::Eq => l == r,
        Cond::Ne => l != r,
        Cond::Lt => l < r,
        Cond::Le => l <= r,
        Cond::Gt => l > r,
        Cond::Ge => l >= r,
    }
}

/// Walk both versions for one representative value and compare.
#[allow(clippy::too_many_arguments)]
fn check_value(
    original: &Function,
    reordered: &Function,
    var: Reg,
    head: BlockId,
    prologue: usize,
    dispatch_temps: u32,
    replica_start: u32,
    exits: &BTreeSet<BlockId>,
    value: i64,
    target: BlockId,
) -> Result<(), CertError> {
    let werr = |d: String| CertError::Walk(format!("value {value}: {d}"));
    let new = concrete_walk(
        reordered,
        head,
        prologue,
        var,
        value,
        dispatch_temps,
        Some(replica_start),
        None,
        exits,
    )
    .map_err(|d| werr(format!("reordered: {d}")))?;
    // The original never contains emitter-created dispatch temporaries.
    let old = concrete_walk(
        original,
        head,
        prologue,
        var,
        value,
        u32::MAX,
        None,
        Some(&new.end),
        exits,
    )
    .map_err(|d| werr(format!("original: {d}")))?;
    // The original must pass through the declared exit first (or come
    // to rest exactly there).
    let reached = old.first_exit.or(match old.end {
        WalkEnd::Block(b) if exits.contains(&b) => Some(b),
        _ => None,
    });
    if reached != Some(target) {
        return Err(werr(format!(
            "original reaches exit {}, certificate declares {target}",
            reached.map_or("<none>".to_string(), |b| b.to_string()),
        )));
    }
    if old.end != new.end {
        return Err(werr(format!(
            "versions come to rest at different points: {:?} vs {:?}",
            old.end, new.end
        )));
    }
    if old.trace != new.trace {
        let at = old
            .trace
            .iter()
            .zip(&new.trace)
            .position(|(a, b)| a != b)
            .unwrap_or(old.trace.len().min(new.trace.len()));
        return Err(werr(format!(
            "side-effect traces diverge at step {at}: {:?} vs {:?}",
            old.trace.get(at),
            new.trace.get(at)
        )));
    }
    Ok(())
}
