//! Concrete counterexample witnesses for refuted reorderings.
//!
//! When [`crate::symex::prove_sequence`] refutes an alleged
//! equivalence, it solves the diverging value class for a concrete
//! value of the tested variable ([`crate::symex::solve_witness`]).
//! [`Witness`] carries that value together with the feasibility
//! abstraction it was drawn from, maps it back to program *input*
//! where possible (the paper's sequences overwhelmingly test the
//! result of `getchar`, so a byte value is literally one input byte),
//! and renders the whole counterexample as a replayable `br-fuzz`
//! corpus entry (`# br-fuzz repro v1`) so a refutation immediately
//! becomes a regression test.

use crate::symex::AbsVal;

/// A concrete counterexample: a value of the tested variable on which
/// the original and reordered sequences demonstrably diverge.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Witness {
    /// The diverging value of the tested variable.
    pub value: i64,
    /// The feasibility abstraction the value was solved against.
    pub feasible: AbsVal,
}

impl Witness {
    /// Pair a solved value with its feasibility context.
    pub fn new(value: i64, feasible: AbsVal) -> Witness {
        Witness { value, feasible }
    }

    /// Whether the witness value is admitted by the feasibility
    /// abstraction (i.e. the program can dynamically produce it).
    pub fn is_feasible(&self) -> bool {
        self.feasible.admits(self.value)
    }

    /// Map the witness value back to program input bytes, for variables
    /// fed by `getchar`: `-1` is end-of-input (empty), `0..=255` is one
    /// literal byte. Values outside the character range have no direct
    /// input encoding and return `None`.
    pub fn input_bytes(&self) -> Option<Vec<u8>> {
        match self.value {
            -1 => Some(Vec::new()),
            v @ 0..=255 => Some(vec![v as u8]),
            _ => None,
        }
    }
}

impl std::fmt::Display for Witness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "value {} (feasible range {}",
            self.value, self.feasible.range
        )?;
        if self.feasible.modulus > 1 {
            write!(
                f,
                ", ≡ {} mod {}",
                self.feasible.residue, self.feasible.modulus
            )?;
        }
        write!(f, ")")
    }
}

// Matches the `br-fuzz` corpus hex convention: empty renders as `-`.
fn hex(bytes: &[u8]) -> String {
    if bytes.is_empty() {
        return "-".to_string();
    }
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Render a refutation witness as a `br-fuzz` corpus entry: the
/// *reordered* (illegal) module with the witness bytes as input and the
/// original module's behaviour as the expectation, so `brc fuzz
/// --replay` reproduces the divergence. `expect` is the pre-computed
/// expectation line body (e.g. `exit=1 output=`), supplied by the
/// caller because this crate deliberately does not execute modules.
pub fn corpus_entry(
    witness: &Witness,
    reordered_module_text: &str,
    detail: &str,
    expect: Option<&str>,
) -> String {
    let input = witness.input_bytes().unwrap_or_default();
    let mut s = String::new();
    s.push_str("# br-fuzz repro v1\n");
    s.push_str("# seed 0\n");
    s.push_str("# set prover-witness\n");
    s.push_str("# kind prover-divergence\n");
    s.push_str(&format!(
        "# fingerprint {:016x}\n",
        crate::cert::fingerprint(reordered_module_text)
    ));
    s.push_str(&format!("# detail {}\n", detail.replace('\n', " ")));
    s.push_str(&format!("# witness-value {}\n", witness.value));
    s.push_str("# train -\n");
    s.push_str(&format!("# input {}\n", hex(&input)));
    if let Some(e) = expect {
        s.push_str(&format!("# expect {e}\n"));
    }
    s.push_str("# replay brc fuzz --replay <this file>\n");
    s.push_str(reordered_module_text);
    if !reordered_module_text.ends_with('\n') {
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::Interval;

    fn feasible() -> AbsVal {
        AbsVal {
            range: Interval::new(-1, 255),
            modulus: 1,
            residue: 0,
        }
    }

    #[test]
    fn input_mapping_covers_the_character_range() {
        assert_eq!(Witness::new(-1, feasible()).input_bytes(), Some(vec![]));
        assert_eq!(Witness::new(0, feasible()).input_bytes(), Some(vec![0]));
        assert_eq!(Witness::new(97, feasible()).input_bytes(), Some(vec![97]));
        assert_eq!(Witness::new(255, feasible()).input_bytes(), Some(vec![255]));
        assert_eq!(Witness::new(256, feasible()).input_bytes(), None);
        assert_eq!(Witness::new(-2, feasible()).input_bytes(), None);
    }

    #[test]
    fn corpus_entry_is_a_versioned_repro() {
        let w = Witness::new(97, feasible());
        let entry = corpus_entry(
            &w,
            "func f() regs=0 frame=0 {\n}\n",
            "targets swapped",
            None,
        );
        assert!(entry.starts_with("# br-fuzz repro v1\n"));
        assert!(entry.contains("# input 61\n"));
        assert!(entry.contains("# witness-value 97\n"));
        assert!(entry.contains("# detail targets swapped\n"));
        assert!(entry.ends_with("func f() regs=0 frame=0 {\n}\n"));
    }
}
