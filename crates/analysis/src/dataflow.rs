//! Generic worklist dataflow engine over IR control-flow graphs.
//!
//! A [`Domain`] supplies the join-semilattice (value type, bottom, join)
//! and the block transfer function; [`solve`] iterates to a fixed point
//! with a worklist seeded in analysis order (reverse postorder for
//! forward problems, postorder for backward ones). Domains whose lattices
//! have unbounded ascending chains — intervals, most prominently — get a
//! widening hook that the engine invokes once a block's input has been
//! recomputed more than [`WIDEN_AFTER`] times.

use std::collections::VecDeque;

use br_ir::{postorder, predecessors, reverse_postorder, BlockId, Function};

/// Direction a dataflow problem propagates facts in.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    /// Facts flow from the entry along edges.
    Forward,
    /// Facts flow from exits against edges.
    Backward,
}

/// Recomputations of one block's input before the engine switches from a
/// plain join to [`Domain::widen`] to force convergence.
pub const WIDEN_AFTER: usize = 8;

/// A join-semilattice dataflow problem.
pub trait Domain {
    /// The lattice value attached to each program point.
    type Value: Clone + PartialEq;

    /// Which way facts propagate.
    fn direction(&self) -> Direction;

    /// The value for points not (yet) reached by any fact.
    fn bottom(&self, f: &Function) -> Self::Value;

    /// The value flowing in at the boundary: the entry block for forward
    /// problems, every exit block (no successors) for backward ones.
    fn boundary(&self, f: &Function) -> Self::Value;

    /// Join `from` into `into`; return whether `into` changed.
    fn join(&self, into: &mut Self::Value, from: &Self::Value) -> bool;

    /// Apply the block's effect to the incoming value. For a forward
    /// problem `input` holds at block entry; for a backward problem it
    /// holds at block exit.
    fn transfer(&self, f: &Function, b: BlockId, input: &Self::Value) -> Self::Value;

    /// Refine the value carried along one CFG edge (forward problems
    /// only; called with the source block's output). The default is the
    /// identity; branch-sensitive domains narrow here.
    fn edge(&self, _f: &Function, _from: BlockId, _to: BlockId, out: &Self::Value) -> Self::Value {
        out.clone()
    }

    /// Widening join, used in place of [`Domain::join`] once a block has
    /// been recomputed [`WIDEN_AFTER`] times. Must make the ascending
    /// chain finite; the default simply joins, which suffices for finite
    /// lattices.
    fn widen(&self, into: &mut Self::Value, from: &Self::Value) -> bool {
        self.join(into, from)
    }
}

/// A solved dataflow problem: one input and output value per block,
/// indexed by block index. Unreachable blocks keep bottom.
pub struct Solution<V> {
    /// Value at each block's analysis entry (block entry for forward,
    /// block exit for backward).
    pub inputs: Vec<V>,
    /// Value after each block's transfer.
    pub outputs: Vec<V>,
}

impl<V> Solution<V> {
    /// The input value of `b`.
    pub fn input(&self, b: BlockId) -> &V {
        &self.inputs[b.index()]
    }

    /// The output value of `b`.
    pub fn output(&self, b: BlockId) -> &V {
        &self.outputs[b.index()]
    }
}

/// Run `domain` over `f` to a fixed point.
pub fn solve<D: Domain>(f: &Function, domain: &D) -> Solution<D::Value> {
    let n = f.blocks.len();
    let forward = domain.direction() == Direction::Forward;
    let preds = predecessors(f);

    // feeds_into[b]: blocks whose outputs flow into b's input.
    // fed_by_me[b]: blocks whose inputs depend on b's output.
    let (feeds_into, fed_by_me): (Vec<Vec<BlockId>>, Vec<Vec<BlockId>>) = if forward {
        let succs: Vec<Vec<BlockId>> = (0..n).map(|i| f.blocks[i].term.successors()).collect();
        (preds, succs)
    } else {
        let succs: Vec<Vec<BlockId>> = (0..n).map(|i| f.blocks[i].term.successors()).collect();
        (succs, preds)
    };
    let at_boundary = |b: BlockId| {
        if forward {
            b == f.entry
        } else {
            f.block(b).term.successors().is_empty()
        }
    };

    let order = if forward {
        reverse_postorder(f)
    } else {
        postorder(f)
    };
    let mut reachable = vec![false; n];
    for &b in &order {
        reachable[b.index()] = true;
    }

    let mut inputs: Vec<D::Value> = (0..n).map(|_| domain.bottom(f)).collect();
    let mut outputs: Vec<D::Value> = (0..n).map(|_| domain.bottom(f)).collect();
    let mut visits = vec![0usize; n];

    let mut in_worklist = vec![false; n];
    let mut worklist: VecDeque<BlockId> = VecDeque::with_capacity(order.len());
    for &b in &order {
        worklist.push_back(b);
        in_worklist[b.index()] = true;
    }

    while let Some(b) = worklist.pop_front() {
        let bi = b.index();
        in_worklist[bi] = false;

        // Recompute b's input from the boundary and its feeders' outputs.
        let mut input = domain.bottom(f);
        if at_boundary(b) {
            domain.join(&mut input, &domain.boundary(f));
        }
        for &p in &feeds_into[bi] {
            if !reachable[p.index()] {
                continue;
            }
            let carried = if forward {
                domain.edge(f, p, b, &outputs[p.index()])
            } else {
                outputs[p.index()].clone()
            };
            domain.join(&mut input, &carried);
        }

        let first = visits[bi] == 0;
        visits[bi] += 1;
        let in_changed = if visits[bi] > WIDEN_AFTER {
            domain.widen(&mut inputs[bi], &input)
        } else if input != inputs[bi] {
            inputs[bi] = input;
            true
        } else {
            false
        };
        if !in_changed && !first {
            continue;
        }

        let out = domain.transfer(f, b, &inputs[bi]);
        if out == outputs[bi] && !first {
            continue;
        }
        outputs[bi] = out;
        for &t in &fed_by_me[bi] {
            if reachable[t.index()] && !in_worklist[t.index()] {
                in_worklist[t.index()] = true;
                worklist.push_back(t);
            }
        }
    }

    Solution { inputs, outputs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_ir::{Block, Cond, Inst, Operand, Reg, Terminator};

    /// Forward "shortest block distance from entry" domain, capped so the
    /// lattice is finite.
    struct Dist;
    impl Domain for Dist {
        type Value = Option<usize>;
        fn direction(&self) -> Direction {
            Direction::Forward
        }
        fn bottom(&self, _f: &Function) -> Option<usize> {
            None
        }
        fn boundary(&self, _f: &Function) -> Option<usize> {
            Some(0)
        }
        fn join(&self, into: &mut Option<usize>, from: &Option<usize>) -> bool {
            match (*into, *from) {
                (_, None) => false,
                (None, Some(v)) => {
                    *into = Some(v);
                    true
                }
                (Some(a), Some(b)) if b < a => {
                    *into = Some(b);
                    true
                }
                _ => false,
            }
        }
        fn transfer(&self, _f: &Function, _b: BlockId, input: &Option<usize>) -> Option<usize> {
            input.map(|d| (d + 1).min(64))
        }
    }

    /// Backward liveness of register 0, for direction coverage.
    struct LiveR0;
    impl Domain for LiveR0 {
        type Value = bool;
        fn direction(&self) -> Direction {
            Direction::Backward
        }
        fn bottom(&self, _f: &Function) -> bool {
            false
        }
        fn boundary(&self, _f: &Function) -> bool {
            false
        }
        fn join(&self, into: &mut bool, from: &bool) -> bool {
            let old = *into;
            *into |= *from;
            *into != old
        }
        fn transfer(&self, f: &Function, b: BlockId, live_out: &bool) -> bool {
            let mut live = *live_out || f.block(b).term.uses().contains(&Reg(0));
            for i in f.block(b).insts.iter().rev() {
                if i.def() == Some(Reg(0)) {
                    live = false;
                }
                if i.uses().contains(&Reg(0)) {
                    live = true;
                }
            }
            live
        }
    }

    /// entry → (a | b); a, b → join(ret r0). Block ids: join=1, a=2, b=3.
    fn diamond() -> Function {
        let mut f = Function::new("d");
        let join = f.add_block(Block::new(Terminator::Return(Some(Operand::Reg(Reg(0))))));
        let a = f.add_block(Block::new(Terminator::Jump(join)));
        let b = f.add_block(Block::new(Terminator::Jump(join)));
        f.block_mut(f.entry).term = Terminator::branch(Cond::Eq, a, b);
        f.num_regs = 1;
        f
    }

    #[test]
    fn forward_distances_on_diamond() {
        let f = diamond();
        let s = solve(&f, &Dist);
        assert_eq!(*s.input(f.entry), Some(0));
        assert_eq!(*s.input(BlockId(2)), Some(1));
        assert_eq!(*s.input(BlockId(3)), Some(1));
        assert_eq!(*s.input(BlockId(1)), Some(2));
    }

    #[test]
    fn forward_converges_on_loops() {
        let mut f = Function::new("loop");
        let body = f.add_block(Block::new(Terminator::Jump(BlockId(0))));
        f.block_mut(f.entry).term = Terminator::Jump(body);
        let s = solve(&f, &Dist);
        assert_eq!(*s.input(f.entry), Some(0));
        assert_eq!(*s.input(body), Some(1));
    }

    #[test]
    fn backward_liveness_on_diamond() {
        let mut f = diamond();
        // Kill r0 on the `a` arm: r0 is live into the entry only via `b`.
        f.block_mut(BlockId(2)).insts.push(Inst::Copy {
            dst: Reg(0),
            src: Operand::Imm(1),
        });
        let s = solve(&f, &LiveR0);
        assert!(*s.input(BlockId(2)), "live out of a (join block uses r0)");
        assert!(!*s.output(BlockId(2)), "killed above a's copy");
        assert!(*s.output(BlockId(3)), "live through b");
        assert!(*s.output(f.entry), "live into the function via b");
    }

    #[test]
    fn unreachable_blocks_stay_bottom() {
        let mut f = diamond();
        f.add_block(Block::new(Terminator::Return(None)));
        let s = solve(&f, &Dist);
        assert_eq!(*s.input(BlockId(4)), None);
        assert_eq!(*s.output(BlockId(4)), None);
    }
}
