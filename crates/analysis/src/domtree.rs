//! Dominator tree and two-way-conditional structuring.
//!
//! Wraps the IR crate's Cooper–Harvey–Kennedy dominator computation
//! ([`br_ir::dom::Dominators`]) with explicit child lists, and layers
//! the classic structuring pass for two-way conditionals on top: for
//! every block ending in a genuine two-way branch, find its *follow*
//! block — the join point where both arms reconverge — as the latest
//! (by reverse postorder) block immediately dominated by the header
//! with at least two incoming edges. Headers with no such join (their
//! arms leave the region, e.g. both return) stay unresolved and are
//! folded into the follow of the nearest enclosing conditional, as in
//! Cifuentes' structuring algorithm.
//!
//! The prover uses this to recognize the replica of a reordered
//! sequence as one nest of two-way conditionals hanging off the
//! sequence head, and to check that the head dominates every replica
//! block (single-entry soundness).

use br_ir::dom::Dominators;
use br_ir::{BlockId, Function, Terminator};

use crate::cfg::Cfg;

/// A dominator tree with child lists, built once per function.
#[derive(Clone, Debug)]
pub struct DomTree {
    doms: Dominators,
    children: Vec<Vec<BlockId>>,
}

impl DomTree {
    /// Compute the dominator tree of `f`.
    pub fn build(f: &Function) -> DomTree {
        let doms = Dominators::compute(f);
        let mut children = vec![Vec::new(); f.blocks.len()];
        for b in f.block_ids() {
            if let Some(d) = doms.idom(b) {
                children[d.index()].push(b);
            }
        }
        DomTree { doms, children }
    }

    /// The immediate dominator of `b` (`None` for the entry and for
    /// unreachable blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.doms.idom(b)
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        self.doms.dominates(a, b)
    }

    /// Blocks whose immediate dominator is `b`.
    pub fn children(&self, b: BlockId) -> &[BlockId] {
        &self.children[b.index()]
    }
}

/// One structured two-way conditional.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TwoWayConditional {
    /// The block ending in the two-way branch.
    pub header: BlockId,
    /// The join block where both arms reconverge, when one exists
    /// inside the function (arms that both leave — return, exit the
    /// region — have no follow).
    pub follow: Option<BlockId>,
}

/// Structure the two-way conditionals of `f`: pair every genuine
/// two-way branch header with its follow block. Results are ordered by
/// header id.
pub fn two_way_conditionals(f: &Function, cfg: &Cfg, dom: &DomTree) -> Vec<TwoWayConditional> {
    let mut out = Vec::new();
    let mut unresolved: Vec<BlockId> = Vec::new();
    // Descending reverse postorder = ascending postorder: inner
    // conditionals are structured before the ones enclosing them.
    for &m in cfg.reverse_postorder().iter().rev() {
        let two_way = matches!(
            f.block(m).term,
            Terminator::Branch {
                taken, not_taken, ..
            } if taken != not_taken
        );
        if !two_way {
            continue;
        }
        // The follow is the latest immediately-dominated join point.
        let follow = dom
            .children(m)
            .iter()
            .copied()
            .filter(|&n| cfg.in_degree(n) >= 2 && cfg.is_reachable(n))
            .max_by_key(|&n| cfg.rpo_index(n));
        match follow {
            Some(join) => {
                out.push(TwoWayConditional {
                    header: m,
                    follow: Some(join),
                });
                // Conditionals whose arms escaped their own region join
                // at this enclosing follow.
                for h in unresolved.drain(..) {
                    out.push(TwoWayConditional {
                        header: h,
                        follow: Some(join),
                    });
                }
            }
            None => unresolved.push(m),
        }
    }
    out.extend(unresolved.drain(..).map(|h| TwoWayConditional {
        header: h,
        follow: None,
    }));
    out.sort_by_key(|t| t.header);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_ir::{Block, Cond, Terminator};

    fn branch_block(f: &mut Function, b: BlockId, taken: BlockId, not_taken: BlockId) {
        f.block_mut(b).term = Terminator::branch(Cond::Eq, taken, not_taken);
    }

    /// entry → (l | r); l → j; r → j; j → ret.
    #[test]
    fn diamond_has_its_join_as_follow() {
        let mut f = Function::new("d");
        let j = f.add_block(Block::new(Terminator::Return(None)));
        let l = f.add_block(Block::new(Terminator::Jump(j)));
        let r = f.add_block(Block::new(Terminator::Jump(j)));
        let entry = f.entry;
        branch_block(&mut f, entry, l, r);
        let cfg = Cfg::build(&f);
        let dom = DomTree::build(&f);
        assert_eq!(dom.idom(j), Some(f.entry));
        assert_eq!(dom.children(f.entry).len(), 3);
        let conds = two_way_conditionals(&f, &cfg, &dom);
        assert_eq!(
            conds,
            vec![TwoWayConditional {
                header: f.entry,
                follow: Some(j),
            }]
        );
    }

    /// A chain `e → (t1 | c2); c2 → (t2 | c3); c3 → (t3 | d)` where every
    /// target returns: no joins anywhere, all follows are None.
    #[test]
    fn branch_chain_with_returning_arms_has_no_follows() {
        let mut f = Function::new("chain");
        let mk = |f: &mut Function| f.add_block(Block::new(Terminator::Return(None)));
        let t1 = mk(&mut f);
        let t2 = mk(&mut f);
        let t3 = mk(&mut f);
        let d = mk(&mut f);
        let c3 = mk(&mut f);
        let c2 = mk(&mut f);
        let entry = f.entry;
        branch_block(&mut f, entry, t1, c2);
        branch_block(&mut f, c2, t2, c3);
        branch_block(&mut f, c3, t3, d);
        let cfg = Cfg::build(&f);
        let dom = DomTree::build(&f);
        let conds = two_way_conditionals(&f, &cfg, &dom);
        assert_eq!(conds.len(), 3);
        assert!(conds.iter().all(|c| c.follow.is_none()));
    }

    /// Nested conditionals: the inner one's arms fall into the outer
    /// join, so the inner header inherits the outer follow.
    #[test]
    fn inner_conditional_inherits_enclosing_follow() {
        let mut f = Function::new("nest");
        let j = f.add_block(Block::new(Terminator::Return(None)));
        let a = f.add_block(Block::new(Terminator::Jump(j)));
        let b = f.add_block(Block::new(Terminator::Jump(j)));
        let inner = f.add_block(Block::new(Terminator::Return(None))); // placeholder
        let outer_arm = f.add_block(Block::new(Terminator::Jump(j)));
        branch_block(&mut f, inner, a, b);
        let entry = f.entry;
        branch_block(&mut f, entry, inner, outer_arm);
        let cfg = Cfg::build(&f);
        let dom = DomTree::build(&f);
        let conds = two_way_conditionals(&f, &cfg, &dom);
        let by_header = |h: BlockId| conds.iter().find(|c| c.header == h).expect("structured");
        assert_eq!(by_header(f.entry).follow, Some(j));
        assert_eq!(by_header(inner).follow, Some(j));
    }
}
