//! Translation validation for the branch-reordering transformation.
//!
//! For one detected sequence, [`check_equivalence`] symbolically executes
//! both the original condition chain and the emitted replica, computing
//! for each the partition of the tested variable's value space into
//! *(interval set → exit, side effects)* arms, and proves
//!
//! 1. each partition is **disjoint** and **exhaustive** (covers all of
//!    `i64`, including the default ranges),
//! 2. every value class reaches the **same target** with the **same
//!    side-effect trace** in both versions,
//! 3. where the replica leaves the sequence through duplicated tail code
//!    (the paper's Figure 10 / Section 8), the duplicate structurally
//!    **bisimulates** the original continuation.
//!
//! The walker ([`explore`]) tracks the condition codes symbolically:
//! after `cmp var, c` a branch splits the current interval set exactly,
//! and the codes persist across blocks — which is precisely what makes
//! the Figure 9 redundant-comparison elision (branches with no compare
//! of their own) checkable instead of trusted.

use std::collections::BTreeSet;

use br_ir::{BinOp, BlockId, Function, Inst, Operand, Reg, Terminator};

use crate::interval::{Interval, IntervalSet};

/// A program point: a block plus an instruction offset into it
/// (`inst == insts.len()` means "at the terminator").
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct Cursor {
    /// The block.
    pub block: BlockId,
    /// Offset of the next instruction to execute.
    pub inst: usize,
}

impl Cursor {
    /// The start of `b`.
    pub fn start(b: BlockId) -> Cursor {
        Cursor { block: b, inst: 0 }
    }
}

impl std::fmt::Display for Cursor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.inst == 0 {
            write!(f, "{}", self.block)
        } else {
            write!(f, "{}+{}", self.block, self.inst)
        }
    }
}

/// How one walk arm ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArmEnd {
    /// Reached a designated stop block (a sequence exit).
    Target(BlockId),
    /// Stopped elsewhere: left the walk domain, re-entered a cut block,
    /// or hit a control transfer the walker cannot split (a branch on
    /// foreign condition codes, an indirect jump, a return).
    Frontier(Cursor),
}

/// One arm of a symbolic walk: a set of values of the tested variable,
/// where those values end up, and the instructions they execute on the
/// way (compares consumed by splits excluded — they are control, not
/// effect; everything else, including dead compares, is kept verbatim).
#[derive(Clone, Debug)]
pub struct Arm {
    /// The values taking this arm.
    pub values: IntervalSet,
    /// Where the arm ended.
    pub end: ArmEnd,
    /// Instructions executed along the arm.
    pub effects: Vec<Inst>,
}

/// Configuration of one symbolic walk.
#[derive(Clone, Debug)]
pub struct WalkSpec {
    /// The tested variable.
    pub var: Reg,
    /// Block the walk starts at.
    pub entry: BlockId,
    /// Instruction offset within `entry` the walk starts at. Nonzero
    /// when the head block carries a prologue that must be skipped —
    /// e.g. it computes the tested variable itself right before the
    /// first compare (a `switch (x % 17)` head).
    pub entry_inst: usize,
    /// Values of `var` to partition.
    pub initial: IntervalSet,
    /// Blocks where an arm resolves as [`ArmEnd::Target`].
    pub stops: BTreeSet<BlockId>,
    /// Blocks the walk may traverse; entering any other block ends the
    /// arm as a frontier. `None` allows every block.
    pub domain: Option<BTreeSet<BlockId>>,
    /// Blocks that end an arm as a frontier on *re-entry* (the sequence
    /// head: duplicated tails may loop back to it).
    pub cuts: BTreeSet<BlockId>,
    /// Instruction budget for the whole walk.
    pub fuel: usize,
    /// First register number treated as a *dispatch temporary*: a
    /// `sub tN, var, base` writing a register `>= dispatch_temps` is
    /// control (the jump-table index computation of a Set IV dispatch),
    /// not an effect, and lets the walker split a following
    /// [`Terminator::IndirectJump`] on it exactly. `u32::MAX` (the
    /// default) disables the feature: every register is an ordinary
    /// effect target and indirect jumps end arms as frontiers.
    pub dispatch_temps: u32,
}

impl WalkSpec {
    /// A walk over every value from `entry`, stopping at `stops`.
    pub fn new(var: Reg, entry: BlockId, stops: BTreeSet<BlockId>) -> WalkSpec {
        WalkSpec {
            var,
            entry,
            entry_inst: 0,
            initial: IntervalSet::full(),
            stops,
            domain: None,
            cuts: BTreeSet::new(),
            fuel: 16 * 1024,
            dispatch_temps: u32::MAX,
        }
    }
}

/// Symbolic condition-code state during a walk.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Cc {
    /// Nothing set them yet on this path.
    Unset,
    /// Set by something the walker cannot relate to the tested variable
    /// (a compare of other operands, or clobbered by a call).
    Opaque,
    /// Set by `cmp var, c` (or `cmp c, var` when `swapped`).
    FromVar { c: i64, swapped: bool },
}

struct WalkItem {
    cursor: Cursor,
    values: IntervalSet,
    effects: Vec<Inst>,
    /// False once something redefined `var`: later compares of it no
    /// longer partition the *original* value.
    var_valid: bool,
    cc: Cc,
    at_entry: bool,
    /// Live dispatch-index binding: `Some((t, base))` after
    /// `sub t, var, base` wrote a dispatch temporary, meaning
    /// `t == var - base` on this path.
    sub: Option<(Reg, i64)>,
}

/// Hard cap on arms, against adversarial or broken input.
const MAX_ARMS: usize = 512;

/// Symbolically walk `f` from the spec's entry, partitioning the
/// tested variable's values. Errors (fuel or arm explosion, which real
/// sequences never hit) return a description.
pub fn explore(f: &Function, spec: &WalkSpec) -> Result<Vec<Arm>, String> {
    let mut arms: Vec<Arm> = Vec::new();
    let mut fuel = spec.fuel;
    let mut work = vec![WalkItem {
        cursor: Cursor {
            block: spec.entry,
            inst: spec.entry_inst,
        },
        values: spec.initial.clone(),
        effects: Vec::new(),
        var_valid: true,
        cc: Cc::Unset,
        at_entry: true,
        sub: None,
    }];

    while let Some(mut item) = work.pop() {
        if item.values.is_empty() {
            continue;
        }
        loop {
            let cur = item.cursor;
            // Block-entry checks (skipped for the walk's entry point).
            if cur.inst == 0 && !item.at_entry {
                if spec.stops.contains(&cur.block) {
                    arms.push(Arm {
                        values: item.values,
                        end: ArmEnd::Target(cur.block),
                        effects: item.effects,
                    });
                    break;
                }
                let outside = spec
                    .domain
                    .as_ref()
                    .is_some_and(|d| !d.contains(&cur.block));
                if outside || spec.cuts.contains(&cur.block) {
                    arms.push(Arm {
                        values: item.values,
                        end: ArmEnd::Frontier(cur),
                        effects: item.effects,
                    });
                    break;
                }
            }
            item.at_entry = false;
            if cur.block.index() >= f.blocks.len() {
                return Err(format!("walk reached nonexistent block {}", cur.block));
            }
            let block = f.block(cur.block);

            // Consume the block body from the cursor.
            for i in cur.inst..block.insts.len() {
                if fuel == 0 {
                    return Err("walk ran out of fuel".to_string());
                }
                fuel -= 1;
                let inst = &block.insts[i];
                match inst {
                    Inst::Cmp { lhs, rhs } => {
                        let on_var = match (lhs, rhs) {
                            (Operand::Reg(r), Operand::Imm(c)) if *r == spec.var => {
                                Some((*c, false))
                            }
                            (Operand::Imm(c), Operand::Reg(r)) if *r == spec.var => {
                                Some((*c, true))
                            }
                            _ => None,
                        };
                        match on_var {
                            Some((c, swapped)) if item.var_valid => {
                                item.cc = Cc::FromVar { c, swapped };
                            }
                            _ => {
                                // Control state the walker cannot model:
                                // keep the compare as an effect so trace
                                // comparison still sees it.
                                item.cc = Cc::Opaque;
                                item.effects.push(inst.clone());
                            }
                        }
                    }
                    Inst::Bin {
                        op: BinOp::Sub,
                        dst,
                        lhs: Operand::Reg(r),
                        rhs: Operand::Imm(base),
                    } if dst.0 >= spec.dispatch_temps && *r == spec.var && item.var_valid => {
                        // The jump-table index computation of a Set IV
                        // dispatch. Like the compares consumed by branch
                        // splits, it is control, not effect: it exists
                        // only to feed the indirect jump, and the
                        // register it writes does not exist in the
                        // original function.
                        item.sub = Some((*dst, *base));
                    }
                    other => {
                        if matches!(other, Inst::Call { .. }) {
                            item.cc = Cc::Opaque;
                        }
                        if other.def() == Some(spec.var) {
                            item.var_valid = false;
                        }
                        if item.sub.is_some_and(|(t, _)| other.def() == Some(t)) {
                            item.sub = None;
                        }
                        item.effects.push(other.clone());
                    }
                }
            }
            if fuel == 0 {
                return Err("walk ran out of fuel".to_string());
            }
            fuel -= 1;

            // Terminator.
            match &block.term {
                Terminator::Jump(t) => {
                    item.cursor = Cursor::start(*t);
                    continue;
                }
                Terminator::Branch {
                    cond,
                    taken,
                    not_taken,
                } => {
                    if taken == not_taken {
                        item.cursor = Cursor::start(*taken);
                        continue;
                    }
                    let Cc::FromVar { c, swapped } = item.cc else {
                        // Branch on foreign codes: frontier at the
                        // terminator, body already consumed.
                        arms.push(Arm {
                            values: item.values,
                            end: ArmEnd::Frontier(Cursor {
                                block: cur.block,
                                inst: block.insts.len(),
                            }),
                            effects: item.effects,
                        });
                        break;
                    };
                    let eff = if swapped { cond.swap() } else { *cond };
                    let sat = IntervalSet::satisfying(eff, c);
                    let taken_values = item.values.intersect(&sat);
                    let fall_values = item.values.subtract(&sat);
                    if !taken_values.is_empty() {
                        work.push(WalkItem {
                            cursor: Cursor::start(*taken),
                            values: taken_values,
                            effects: item.effects.clone(),
                            var_valid: item.var_valid,
                            cc: item.cc,
                            at_entry: false,
                            sub: item.sub,
                        });
                    }
                    if fall_values.is_empty() {
                        break;
                    }
                    item.cursor = Cursor::start(*not_taken);
                    item.values = fall_values;
                    continue;
                }
                Terminator::IndirectJump { index, targets }
                    if item.sub.is_some_and(|(t, _)| t == *index) =>
                {
                    // A Set IV jump table dispatching on `var - base`:
                    // value `base + s` transfers to `targets[s]`. Split
                    // the live values by contiguous runs of equal
                    // target, exactly as a cascade of branches would.
                    let (_, base) = item.sub.expect("guard checked the binding");
                    let last = targets.len() as i64 - 1;
                    let lo = base;
                    let Some(hi) = base.checked_add(last) else {
                        return Err(format!(
                            "jump-table window [{base}, {base}+{last}] overflows i64"
                        ));
                    };
                    let window = IntervalSet::from_intervals([Interval::new(lo, hi)]);
                    let outside = item.values.subtract(&window);
                    if !outside.is_empty() {
                        // Values that would trap the VM's bounds check:
                        // the emitter must never let them reach the
                        // dispatch, so a walk that does is a miscompile.
                        return Err(format!(
                            "values {outside} reach the jump table outside its window [{lo}, {hi}]"
                        ));
                    }
                    let mut s = 0usize;
                    while s < targets.len() {
                        let mut e = s;
                        while e + 1 < targets.len() && targets[e + 1] == targets[s] {
                            e += 1;
                        }
                        let run = IntervalSet::from_intervals([Interval::new(
                            base + s as i64,
                            base + e as i64,
                        )]);
                        let taken = item.values.intersect(&run);
                        if !taken.is_empty() {
                            work.push(WalkItem {
                                cursor: Cursor::start(targets[s]),
                                values: taken,
                                effects: item.effects.clone(),
                                var_valid: item.var_valid,
                                cc: item.cc,
                                at_entry: false,
                                sub: item.sub,
                            });
                        }
                        s = e + 1;
                    }
                    break;
                }
                Terminator::Return(_) | Terminator::IndirectJump { .. } => {
                    arms.push(Arm {
                        values: item.values,
                        end: ArmEnd::Frontier(Cursor {
                            block: cur.block,
                            inst: block.insts.len(),
                        }),
                        effects: item.effects,
                    });
                    break;
                }
            }
        }
        if arms.len() > MAX_ARMS {
            return Err(format!("walk produced more than {MAX_ARMS} arms"));
        }
    }
    Ok(arms)
}

/// Structural bisimulation of the code at two cursors, possibly in two
/// different functions (the pre- and post-transformation copies of one
/// function share every block the transformation did not touch).
///
/// Duplicated tail code is a verbatim copy of original blocks whose
/// fall-through successors are further copies, so matching instructions
/// pairwise — following unconditional jumps silently and assuming
/// already-visited pairs equivalent (coinduction) — proves the copy
/// faithful. Identical cursors over identical blocks are equal outright;
/// the pair `(head, head)` at offset 0 is *assumed* equivalent even
/// though the transformation rewrote the head, because the sequence
/// partition proof covers every value re-entering the head.
pub fn tail_equivalent(
    fa: &Function,
    a: Cursor,
    fb: &Function,
    b: Cursor,
    head: BlockId,
    fuel: usize,
) -> bool {
    let mut assumed: BTreeSet<(Cursor, Cursor)> = BTreeSet::new();
    let mut fuel = fuel;
    bisim(fa, a, fb, b, head, &mut assumed, &mut fuel)
}

fn bisim(
    fa: &Function,
    mut a: Cursor,
    fb: &Function,
    mut b: Cursor,
    head: BlockId,
    assumed: &mut BTreeSet<(Cursor, Cursor)>,
    fuel: &mut usize,
) -> bool {
    loop {
        if *fuel == 0 {
            return false;
        }
        *fuel -= 1;
        if a.block.index() >= fa.blocks.len() || b.block.index() >= fb.blocks.len() {
            return false;
        }
        if a == b {
            if a.block == head {
                if a.inst == 0 {
                    return true; // assume-guarantee on the sequence entry
                }
            } else if fa.blocks[a.block.index()] == fb.blocks[b.block.index()] {
                return true;
            }
        }
        if !assumed.insert((a, b)) {
            return true; // coinductive hypothesis
        }
        let ia = &fa.block(a.block).insts;
        let ib = &fb.block(b.block).insts;
        let k = (ia.len() - a.inst).min(ib.len() - b.inst);
        if ia[a.inst..a.inst + k] != ib[b.inst..b.inst + k] {
            return false;
        }
        a.inst += k;
        b.inst += k;
        let a_done = a.inst == ia.len();
        let b_done = b.inst == ib.len();
        match (a_done, b_done) {
            (true, false) => match fa.block(a.block).term {
                Terminator::Jump(t) => {
                    a = Cursor::start(t);
                    continue;
                }
                _ => return false,
            },
            (false, true) => match fb.block(b.block).term {
                Terminator::Jump(t) => {
                    b = Cursor::start(t);
                    continue;
                }
                _ => return false,
            },
            (false, false) => unreachable!("k consumed one side fully"),
            (true, true) => {}
        }
        match (&fa.block(a.block).term, &fb.block(b.block).term) {
            (Terminator::Jump(x), Terminator::Jump(y)) => {
                a = Cursor::start(*x);
                b = Cursor::start(*y);
            }
            (Terminator::Jump(x), _) => a = Cursor::start(*x),
            (_, Terminator::Jump(y)) => b = Cursor::start(*y),
            (
                Terminator::Branch {
                    cond: c1,
                    taken: t1,
                    not_taken: n1,
                },
                Terminator::Branch {
                    cond: c2,
                    taken: t2,
                    not_taken: n2,
                },
            ) => {
                return c1 == c2
                    && bisim(
                        fa,
                        Cursor::start(*t1),
                        fb,
                        Cursor::start(*t2),
                        head,
                        assumed,
                        fuel,
                    )
                    && bisim(
                        fa,
                        Cursor::start(*n1),
                        fb,
                        Cursor::start(*n2),
                        head,
                        assumed,
                        fuel,
                    );
            }
            (Terminator::Return(x), Terminator::Return(y)) => return x == y,
            (
                Terminator::IndirectJump {
                    index: i1,
                    targets: t1,
                },
                Terminator::IndirectJump {
                    index: i2,
                    targets: t2,
                },
            ) => {
                return i1 == i2
                    && t1.len() == t2.len()
                    && t1.iter().zip(t2.iter()).all(|(x, y)| {
                        bisim(
                            fa,
                            Cursor::start(*x),
                            fb,
                            Cursor::start(*y),
                            head,
                            assumed,
                            fuel,
                        )
                    });
            }
            _ => return false,
        }
    }
}

/// Which version of the function a validation error implicates.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Side {
    /// The pre-transformation chain (or the detector's model of it).
    Original,
    /// The emitted replica.
    Reordered,
}

impl std::fmt::Display for Side {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Side::Original => write!(f, "original"),
            Side::Reordered => write!(f, "reordered"),
        }
    }
}

/// A proven violation of sequence equivalence.
#[derive(Clone, Debug)]
pub enum ValidationError {
    /// A symbolic walk failed outright (fuel, arm explosion, bad CFG).
    Walk {
        /// Which version failed to walk.
        side: Side,
        /// Walker failure description.
        detail: String,
    },
    /// An original arm did not resolve at a sequence exit.
    Unresolved {
        /// Values of the unresolved arm.
        values: IntervalSet,
        /// Where the walk stopped instead.
        at: Cursor,
    },
    /// Two arms of one partition overlap.
    NotDisjoint {
        /// Which partition.
        side: Side,
        /// The shared values.
        values: IntervalSet,
    },
    /// A partition does not cover every `i64` value.
    NotExhaustive {
        /// Which partition.
        side: Side,
        /// The uncovered values.
        missing: IntervalSet,
    },
    /// The original partition disagrees with the detector's declared
    /// range→target plan.
    PlanMismatch {
        /// Exit target whose value set disagrees.
        target: BlockId,
        /// Values the plan routes to the target.
        expected: IntervalSet,
        /// Values the original code actually routes there.
        found: IntervalSet,
    },
    /// A value class exits at different targets before and after.
    TargetMismatch {
        /// The value class.
        values: IntervalSet,
        /// Target in the original.
        expected: BlockId,
        /// Where the replica sent it.
        found: ArmEnd,
    },
    /// A value class executes different side effects before and after.
    EffectMismatch {
        /// The value class.
        values: IntervalSet,
        /// Its original exit target.
        target: BlockId,
        /// What differed.
        detail: String,
    },
    /// The replica's duplicated tail is not equivalent to the original
    /// continuation.
    TailMismatch {
        /// The value class.
        values: IntervalSet,
        /// What differed.
        detail: String,
    },
    /// The head block's prologue (the instructions before the first
    /// compare, executed unconditionally by every value) differs between
    /// the two versions.
    PrologueMismatch {
        /// What differed.
        detail: String,
    },
}

impl ValidationError {
    /// Whether the error implicates the original chain / the detector's
    /// model of it (true) rather than the emitted replica (false).
    pub fn blames_original(&self) -> bool {
        matches!(
            self,
            ValidationError::Walk {
                side: Side::Original,
                ..
            } | ValidationError::Unresolved { .. }
                | ValidationError::NotDisjoint {
                    side: Side::Original,
                    ..
                }
                | ValidationError::NotExhaustive {
                    side: Side::Original,
                    ..
                }
                | ValidationError::PlanMismatch { .. }
        )
    }
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::Walk { side, detail } => {
                write!(f, "symbolic walk of the {side} sequence failed: {detail}")
            }
            ValidationError::Unresolved { values, at } => write!(
                f,
                "original values {values} do not reach a sequence exit (stopped at {at})"
            ),
            ValidationError::NotDisjoint { side, values } => {
                write!(
                    f,
                    "{side} partition is not disjoint: {values} reached twice"
                )
            }
            ValidationError::NotExhaustive { side, missing } => {
                write!(f, "{side} partition is not exhaustive: {missing} uncovered")
            }
            ValidationError::PlanMismatch {
                target,
                expected,
                found,
            } => write!(
                f,
                "declared plan routes {expected} to {target}, original code routes {found}"
            ),
            ValidationError::TargetMismatch {
                values,
                expected,
                found,
            } => match found {
                ArmEnd::Target(t) => write!(
                    f,
                    "values {values} exit to {t} after reordering, but to {expected} originally"
                ),
                ArmEnd::Frontier(at) => write!(
                    f,
                    "values {values} leave the replica at {at} instead of exiting to {expected}"
                ),
            },
            ValidationError::EffectMismatch {
                values,
                target,
                detail,
            } => write!(
                f,
                "values {values} (exit {target}) execute different side effects: {detail}"
            ),
            ValidationError::TailMismatch { values, detail } => write!(
                f,
                "duplicated tail diverges from the original for values {values}: {detail}"
            ),
            ValidationError::PrologueMismatch { detail } => {
                write!(f, "head prologue differs after reordering: {detail}")
            }
        }
    }
}

/// Inputs to one sequence-equivalence check.
pub struct EquivalenceCheck<'a> {
    /// The function before the transformation.
    pub original: &'a Function,
    /// The function after `apply_reordering` (before cleanup, so block
    /// ids still align with `original`).
    pub reordered: &'a Function,
    /// The tested variable.
    pub var: Reg,
    /// The sequence head block.
    pub head: BlockId,
    /// Every exit of the sequence: all condition targets plus the
    /// default target.
    pub exits: BTreeSet<BlockId>,
    /// First block id of the emitted replica in `reordered`.
    pub replica_start: u32,
    /// The detector's declared range→target plan (the profiling plan):
    /// ground truth the original partition must reproduce.
    pub expected: Vec<(Interval, BlockId)>,
}

/// One value class of a proven partition: a set of values of the tested
/// variable and the sequence exit they reach (in both versions).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ClassRecord {
    /// The values of the class.
    pub values: IntervalSet,
    /// The exit both versions route the class to.
    pub target: BlockId,
}

/// Statistics of a successful equivalence proof, plus the proven
/// partition itself (consumed by the certificate renderer in
/// [`crate::symex`]).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct EquivalenceProof {
    /// Distinct value classes compared across the two versions.
    pub value_classes: usize,
    /// Distinct exits of the original partition.
    pub exits: usize,
    /// The proven partition: disjoint, exhaustive value → exit classes.
    pub classes: Vec<ClassRecord>,
    /// Length of the head prologue both walks skipped (instructions
    /// before the tested variable's last definition in the head).
    pub prologue: usize,
}

fn partition_checks(arms: &[Arm], side: Side, errors: &mut Vec<ValidationError>) {
    let mut seen = IntervalSet::empty();
    for arm in arms {
        let overlap = seen.intersect(&arm.values);
        if !overlap.is_empty() {
            errors.push(ValidationError::NotDisjoint {
                side,
                values: overlap,
            });
        }
        seen = seen.union(&arm.values);
    }
    if !seen.is_full() {
        errors.push(ValidationError::NotExhaustive {
            side,
            missing: seen.complement(),
        });
    }
}

fn first_difference(a: &[Inst], b: &[Inst]) -> String {
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        if x != y {
            return format!("instruction {i}: {x:?} vs {y:?}");
        }
    }
    format!("{} vs {} instructions", a.len(), b.len())
}

/// Prove that the replica of one sequence is equivalent to the original
/// chain. On success returns proof statistics; otherwise every
/// violation found.
pub fn check_equivalence(chk: &EquivalenceCheck) -> Result<EquivalenceProof, Vec<ValidationError>> {
    let mut errors = Vec::new();

    // 0. The head may compute the tested variable itself before the
    // first compare (e.g. a `switch (x % 17)` head). That prologue runs
    // unconditionally on both sides, so the value partition refers to
    // the variable *after* it: demand the prologues identical and start
    // both walks past them.
    let head_body = &chk.original.block(chk.head).insts;
    let prologue = head_body
        .iter()
        .rposition(|i| i.def() == Some(chk.var))
        .map_or(0, |p| p + 1);
    if prologue > 0 {
        let new_body = &chk.reordered.block(chk.head).insts;
        if new_body.len() < prologue || new_body[..prologue] != head_body[..prologue] {
            return Err(vec![ValidationError::PrologueMismatch {
                detail: first_difference(&head_body[..prologue], new_body),
            }]);
        }
    }

    // 1. Partition the original chain.
    let mut orig_spec = WalkSpec::new(chk.var, chk.head, chk.exits.clone());
    orig_spec.entry_inst = prologue;
    orig_spec.cuts.insert(chk.head);
    let orig_arms = match explore(chk.original, &orig_spec) {
        Ok(arms) => arms,
        Err(detail) => {
            return Err(vec![ValidationError::Walk {
                side: Side::Original,
                detail,
            }])
        }
    };
    partition_checks(&orig_arms, Side::Original, &mut errors);
    let mut resolved: Vec<(&Arm, BlockId)> = Vec::new();
    for arm in &orig_arms {
        match arm.end {
            ArmEnd::Target(t) => resolved.push((arm, t)),
            ArmEnd::Frontier(at) => errors.push(ValidationError::Unresolved {
                values: arm.values.clone(),
                at,
            }),
        }
    }
    if !errors.is_empty() {
        return Err(errors);
    }

    // 2. The original partition must reproduce the declared plan.
    let mut plan_targets: Vec<BlockId> = chk.expected.iter().map(|&(_, t)| t).collect();
    plan_targets.extend(resolved.iter().map(|&(_, t)| t));
    plan_targets.sort();
    plan_targets.dedup();
    for &target in &plan_targets {
        let expected = IntervalSet::from_intervals(
            chk.expected
                .iter()
                .filter(|&&(_, t)| t == target)
                .map(|&(iv, _)| iv),
        );
        let found = resolved
            .iter()
            .filter(|&&(_, t)| t == target)
            .fold(IntervalSet::empty(), |acc, (arm, _)| acc.union(&arm.values));
        if expected != found {
            errors.push(ValidationError::PlanMismatch {
                target,
                expected,
                found,
            });
        }
    }

    // 3. Partition the replica. Registers past the original's count are
    // necessarily emitter-created dispatch temporaries, which is what
    // lets the walker split a Set IV jump table soundly.
    let mut new_spec = WalkSpec::new(chk.var, chk.head, chk.exits.clone());
    new_spec.entry_inst = prologue;
    new_spec.cuts.insert(chk.head);
    new_spec.dispatch_temps = chk.original.num_regs;
    let mut domain: BTreeSet<BlockId> = (chk.replica_start..chk.reordered.blocks.len() as u32)
        .map(BlockId)
        .collect();
    domain.insert(chk.head);
    new_spec.domain = Some(domain);
    let new_arms = match explore(chk.reordered, &new_spec) {
        Ok(arms) => arms,
        Err(detail) => {
            errors.push(ValidationError::Walk {
                side: Side::Reordered,
                detail,
            });
            return Err(errors);
        }
    };
    partition_checks(&new_arms, Side::Reordered, &mut errors);

    // 4. Cross-match every refined value class.
    let mut classes = 0usize;
    for &(orig, target) in &resolved {
        for new in &new_arms {
            let common = orig.values.intersect(&new.values);
            if common.is_empty() {
                continue;
            }
            classes += 1;
            match_class(chk, &common, orig, target, new, &mut errors);
        }
    }

    if errors.is_empty() {
        let mut exits: Vec<BlockId> = resolved.iter().map(|&(_, t)| t).collect();
        exits.sort();
        exits.dedup();
        Ok(EquivalenceProof {
            value_classes: classes,
            exits: exits.len(),
            classes: resolved
                .iter()
                .map(|&(arm, target)| ClassRecord {
                    values: arm.values.clone(),
                    target,
                })
                .collect(),
            prologue,
        })
    } else {
        Err(errors)
    }
}

/// Prove one refined value class equivalent across the two versions.
fn match_class(
    chk: &EquivalenceCheck,
    common: &IntervalSet,
    orig: &Arm,
    target: BlockId,
    new: &Arm,
    errors: &mut Vec<ValidationError>,
) {
    if let ArmEnd::Target(t) = new.end {
        if t == target {
            if new.effects != orig.effects {
                errors.push(ValidationError::EffectMismatch {
                    values: common.clone(),
                    target,
                    detail: first_difference(&orig.effects, &new.effects),
                });
            }
            return;
        }
    }
    // The replica did not land on the declared exit. This is legal only
    // when it merged into duplicated tail code whose behaviour extends
    // the original continuation from `target` — including the case where
    // that duplicated tail runs all the way into *another* exit of the
    // sequence (the walk then stops there, so the arm ends in a Target
    // that differs from the declared one).
    let cur = match new.end {
        ArmEnd::Target(t) => Cursor::start(t),
        ArmEnd::Frontier(c) => c,
    };
    if new.effects.len() < orig.effects.len() || new.effects[..orig.effects.len()] != orig.effects {
        errors.push(ValidationError::EffectMismatch {
            values: common.clone(),
            target,
            detail: first_difference(&orig.effects, &new.effects),
        });
        return;
    }
    let rest = &new.effects[orig.effects.len()..];
    if cur.inst == 0 && cur.block == target {
        // Stopped exactly at the original exit.
        if !rest.is_empty() {
            errors.push(ValidationError::EffectMismatch {
                values: common.clone(),
                target,
                detail: format!("{} extra instructions before {target}", rest.len()),
            });
        }
        return;
    }
    if let Err(tail_error) = continuation_matches(chk, common, target, rest, cur) {
        // A walk that stopped at the wrong exit and failed the tail
        // check is the common genuine-miscompile shape: report it as a
        // target mismatch. A frontier failure keeps the tail detail.
        if matches!(new.end, ArmEnd::Target(_)) {
            errors.push(ValidationError::TargetMismatch {
                values: common.clone(),
                expected: target,
                found: new.end,
            });
        } else {
            errors.push(tail_error);
        }
    }
}

/// Continue the original walk from `target` and demand it mirror the
/// replica's overrun (`rest` effects, then the code at `cur`) exactly.
fn continuation_matches(
    chk: &EquivalenceCheck,
    common: &IntervalSet,
    target: BlockId,
    rest: &[Inst],
    cur: Cursor,
) -> Result<(), ValidationError> {
    let mut cont = WalkSpec::new(chk.var, target, BTreeSet::new());
    cont.initial = common.clone();
    if cur.inst == 0 {
        cont.stops.insert(cur.block);
    }
    let cont_arms =
        explore(chk.original, &cont).map_err(|detail| ValidationError::TailMismatch {
            values: common.clone(),
            detail: format!("original continuation walk failed: {detail}"),
        })?;
    if cont_arms.len() != 1 {
        return Err(ValidationError::TailMismatch {
            values: common.clone(),
            detail: format!(
                "original continuation splits into {} paths",
                cont_arms.len()
            ),
        });
    }
    let cont_arm = &cont_arms[0];
    if cont_arm.effects != rest {
        return Err(ValidationError::TailMismatch {
            values: common.clone(),
            detail: format!(
                "tail effects differ: {}",
                first_difference(&cont_arm.effects, rest)
            ),
        });
    }
    let cont_end = match cont_arm.end {
        ArmEnd::Target(t) => Cursor::start(t),
        ArmEnd::Frontier(c) => c,
    };
    if !tail_equivalent(chk.reordered, cur, chk.original, cont_end, chk.head, 4096) {
        return Err(ValidationError::TailMismatch {
            values: common.clone(),
            detail: format!("code at {cur} does not bisimulate code at {cont_end}"),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_ir::{Block, Callee, Cond, Intrinsic};

    fn cmp(var: Reg, c: i64) -> Inst {
        Inst::Cmp {
            lhs: Operand::Reg(var),
            rhs: Operand::Imm(c),
        }
    }

    fn putchar() -> Inst {
        Inst::Call {
            dst: None,
            callee: Callee::Intrinsic(Intrinsic::PutChar),
            args: vec![Operand::Imm(10)],
        }
    }

    /// entry→head; head: `cmp var,0; beq t1 c2`; c2: `cmp var,1; beq t2
    /// dflt`. Exits t1/t2/dflt. Returns `(f, var, head, [t1, t2, dflt])`.
    fn chain() -> (Function, Reg, BlockId, [BlockId; 3]) {
        let mut f = Function::new("t");
        let var = f.new_reg();
        let head = f.add_block(Block::new(Terminator::Return(None)));
        let c2 = f.add_block(Block::new(Terminator::Return(None)));
        let t1 = f.add_block(Block::new(Terminator::Return(None)));
        let t2 = f.add_block(Block::new(Terminator::Return(None)));
        let dflt = f.add_block(Block::new(Terminator::Return(None)));
        f.block_mut(f.entry).term = Terminator::Jump(head);
        f.block_mut(head).insts.push(cmp(var, 0));
        f.block_mut(head).term = Terminator::branch(Cond::Eq, t1, c2);
        f.block_mut(c2).insts.push(cmp(var, 1));
        f.block_mut(c2).term = Terminator::branch(Cond::Eq, t2, dflt);
        (f, var, head, [t1, t2, dflt])
    }

    /// The detector's plan for [`chain`].
    fn plan(t1: BlockId, t2: BlockId, dflt: BlockId) -> Vec<(Interval, BlockId)> {
        vec![
            (Interval::singleton(0), t1),
            (Interval::singleton(1), t2),
            (Interval::new(i64::MIN, -1), dflt),
            (Interval::new(2, i64::MAX), dflt),
        ]
    }

    /// Hand-apply a reordering that tests `eq 1` first: head becomes a
    /// jump into appended replica blocks r0/r1.
    fn reorder(
        f: &Function,
        var: Reg,
        head: BlockId,
        t1: BlockId,
        t2: BlockId,
        dflt: BlockId,
    ) -> (Function, u32) {
        let mut g = f.clone();
        let replica_start = g.blocks.len() as u32;
        let r1 = BlockId(replica_start + 1);
        let r0 = g.add_block(Block::new(Terminator::branch(Cond::Eq, t2, r1)));
        g.block_mut(r0).insts.push(cmp(var, 1));
        let r1 = g.add_block(Block::new(Terminator::branch(Cond::Eq, t1, dflt)));
        g.block_mut(r1).insts.push(cmp(var, 0));
        g.block_mut(head).insts.clear();
        g.block_mut(head).term = Terminator::Jump(r0);
        (g, replica_start)
    }

    #[test]
    fn explore_partitions_the_chain() {
        let (f, var, head, [t1, t2, dflt]) = chain();
        let spec = WalkSpec::new(var, head, BTreeSet::from([t1, t2, dflt]));
        let arms = explore(&f, &spec).unwrap();
        assert_eq!(arms.len(), 3);
        for arm in &arms {
            assert!(arm.effects.is_empty(), "split compares are not effects");
            match arm.end {
                ArmEnd::Target(t) if t == t1 => assert!(arm.values.contains(0)),
                ArmEnd::Target(t) if t == t2 => assert!(arm.values.contains(1)),
                ArmEnd::Target(t) if t == dflt => {
                    assert!(arm.values.contains(-1) && arm.values.contains(2))
                }
                other => panic!("unexpected arm end {other:?}"),
            }
        }
    }

    #[test]
    fn accepts_faithful_reordering() {
        let (f, var, head, [t1, t2, dflt]) = chain();
        let (g, replica_start) = reorder(&f, var, head, t1, t2, dflt);
        let proof = check_equivalence(&EquivalenceCheck {
            original: &f,
            reordered: &g,
            var,
            head,
            exits: BTreeSet::from([t1, t2, dflt]),
            replica_start,
            expected: plan(t1, t2, dflt),
        })
        .unwrap();
        assert_eq!(proof.exits, 3);
        assert!(proof.value_classes >= 3);
    }

    #[test]
    fn rejects_swapped_targets() {
        let (mut f, var, head, [t1, t2, dflt]) = chain();
        // The exits must be observably different, otherwise routing
        // values to the wrong one is (correctly) proven harmless by the
        // tail-continuation check.
        for (i, t) in [t1, t2, dflt].into_iter().enumerate() {
            f.block_mut(t).term = Terminator::Return(Some(Operand::Imm(i as i64)));
        }
        // Corrupt: route the `eq 0` values to dflt and the rest to t1.
        let (mut g, replica_start) = reorder(&f, var, head, t1, t2, dflt);
        let r1 = BlockId(replica_start + 1);
        g.block_mut(r1).term = Terminator::branch(Cond::Eq, dflt, t1);
        let errors = check_equivalence(&EquivalenceCheck {
            original: &f,
            reordered: &g,
            var,
            head,
            exits: BTreeSet::from([t1, t2, dflt]),
            replica_start,
            expected: plan(t1, t2, dflt),
        })
        .unwrap_err();
        assert!(errors
            .iter()
            .any(|e| matches!(e, ValidationError::TargetMismatch { .. })));
        assert!(
            errors.iter().all(|e| !e.blames_original()),
            "the corruption is in the replica: {errors:?}"
        );
    }

    #[test]
    fn accepts_duplicated_tail_running_into_another_exit() {
        // Shape found by fuzzing: the replica eliminates its `[157..] -> x`
        // item by making it the fall-through and duplicating x's
        // *conditional* continuation; for values [159..] the copy runs
        // straight into the shared default `d`, which is itself a declared
        // exit, so the replica walk stops there while the original arm
        // stops at `x`. The continuation check must prove the detour
        // harmless instead of reporting a target mismatch.
        let mut f = Function::new("t");
        let var = f.new_reg();
        let head = f.add_block(Block::new(Terminator::Return(None)));
        let h2 = f.add_block(Block::new(Terminator::Return(None)));
        let x = f.add_block(Block::new(Terminator::Return(None)));
        let x2 = f.add_block(Block::new(Terminator::Return(None)));
        let q = f.add_block(Block::new(Terminator::Return(None)));
        let a = f.add_block(Block::new(Terminator::Return(None)));
        let d = f.add_block(Block::new(Terminator::Return(None)));
        let p = f.add_block(Block::new(Terminator::Return(None)));
        let out = f.add_block(Block::new(Terminator::Return(None)));
        f.block_mut(f.entry).term = Terminator::Jump(head);
        f.block_mut(head).insts.push(cmp(var, 155));
        f.block_mut(head).term = Terminator::branch(Cond::Lt, a, h2);
        f.block_mut(h2).insts.push(cmp(var, 157));
        f.block_mut(h2).term = Terminator::branch(Cond::Lt, d, x);
        f.block_mut(x).insts.push(cmp(var, 157));
        f.block_mut(x).term = Terminator::branch(Cond::Eq, p, x2);
        f.block_mut(x2).insts.push(cmp(var, 158));
        f.block_mut(x2).term = Terminator::branch(Cond::Ne, d, q);
        f.block_mut(q).insts.push(putchar());
        f.block_mut(q).term = Terminator::Jump(out);

        let mut g = f.clone();
        let replica_start = g.blocks.len() as u32;
        let [r1, r2, r3, r4] = [1, 2, 3, 4].map(|i: u32| BlockId(replica_start + i));
        let r0 = g.add_block(Block::new(Terminator::branch(Cond::Lt, a, r1)));
        g.block_mut(r0).insts.push(cmp(var, 155));
        let r1 = g.add_block(Block::new(Terminator::branch(Cond::Le, d, r2)));
        g.block_mut(r1).insts.push(cmp(var, 156));
        // Duplicated tail of `x` (its whole conditional chain).
        let r2 = g.add_block(Block::new(Terminator::branch(Cond::Eq, p, r3)));
        g.block_mut(r2).insts.push(cmp(var, 157));
        let r3 = g.add_block(Block::new(Terminator::branch(Cond::Ne, d, r4)));
        g.block_mut(r3).insts.push(cmp(var, 158));
        let r4 = g.add_block(Block::new(Terminator::Jump(out)));
        g.block_mut(r4).insts.push(putchar());
        g.block_mut(head).insts.clear();
        g.block_mut(head).term = Terminator::Jump(r0);

        let proof = check_equivalence(&EquivalenceCheck {
            original: &f,
            reordered: &g,
            var,
            head,
            exits: BTreeSet::from([a, x, d]),
            replica_start,
            expected: vec![
                (Interval::new(i64::MIN, 154), a),
                (Interval::new(157, i64::MAX), x),
                (Interval::new(155, 156), d),
            ],
        })
        .unwrap();
        assert_eq!(proof.exits, 3);
        assert!(proof.value_classes >= 5);
    }

    #[test]
    fn rejects_dropped_side_effect() {
        let (mut f, var, head, [t1, t2, dflt]) = chain();
        // Original c2 carries a side effect ahead of its compare …
        let c2 = BlockId(head.0 + 1);
        f.block_mut(c2).insts.insert(0, putchar());
        // … which the replica forgets to replay anywhere.
        let (g, replica_start) = reorder(&f, var, head, t1, t2, dflt);
        let errors = check_equivalence(&EquivalenceCheck {
            original: &f,
            reordered: &g,
            var,
            head,
            exits: BTreeSet::from([t1, t2, dflt]),
            replica_start,
            expected: plan(t1, t2, dflt),
        })
        .unwrap_err();
        assert!(errors
            .iter()
            .any(|e| matches!(e, ValidationError::EffectMismatch { .. })));
    }

    #[test]
    fn rejects_wrong_declared_plan() {
        let (f, var, head, [t1, t2, dflt]) = chain();
        let (g, replica_start) = reorder(&f, var, head, t1, t2, dflt);
        // Plan claims the targets the other way round.
        let errors = check_equivalence(&EquivalenceCheck {
            original: &f,
            reordered: &g,
            var,
            head,
            exits: BTreeSet::from([t1, t2, dflt]),
            replica_start,
            expected: plan(t2, t1, dflt),
        })
        .unwrap_err();
        assert!(errors
            .iter()
            .any(|e| matches!(e, ValidationError::PlanMismatch { .. })));
        assert!(
            errors.iter().any(|e| e.blames_original()),
            "a plan mismatch implicates the detector, not the emitter"
        );
    }

    #[test]
    fn accepts_duplicated_tail() {
        let (mut f, var, head, [t1, t2, dflt]) = chain();
        // Give the default exit a body worth duplicating.
        f.block_mut(dflt).insts.push(putchar());
        let (mut g, replica_start) = reorder(&f, var, head, t1, t2, dflt);
        // Replica absorbs a verbatim copy of dflt instead of jumping.
        let dup = g.add_block(Block::new(Terminator::Return(None)));
        g.block_mut(dup).insts.push(putchar());
        let r1 = BlockId(replica_start + 1);
        g.block_mut(r1).term = Terminator::branch(Cond::Eq, t1, dup);
        let proof = check_equivalence(&EquivalenceCheck {
            original: &f,
            reordered: &g,
            var,
            head,
            exits: BTreeSet::from([t1, t2, dflt]),
            replica_start,
            expected: plan(t1, t2, dflt),
        })
        .unwrap();
        assert_eq!(proof.exits, 3);
    }

    #[test]
    fn rejects_diverging_duplicated_tail() {
        let (mut f, var, head, [t1, t2, dflt]) = chain();
        f.block_mut(dflt).insts.push(putchar());
        let (mut g, replica_start) = reorder(&f, var, head, t1, t2, dflt);
        // The "copy" returns a different value: not a faithful duplicate.
        let dup = g.add_block(Block::new(Terminator::Return(Some(Operand::Imm(1)))));
        g.block_mut(dup).insts.push(putchar());
        let r1 = BlockId(replica_start + 1);
        g.block_mut(r1).term = Terminator::branch(Cond::Eq, t1, dup);
        let errors = check_equivalence(&EquivalenceCheck {
            original: &f,
            reordered: &g,
            var,
            head,
            exits: BTreeSet::from([t1, t2, dflt]),
            replica_start,
            expected: plan(t1, t2, dflt),
        })
        .unwrap_err();
        assert!(errors
            .iter()
            .any(|e| matches!(e, ValidationError::TailMismatch { .. })));
    }

    /// Hand-apply a Set IV jump-table dispatch to [`chain`]: the head
    /// jumps into bounds checks, a `sub` into a fresh temp, and an
    /// `ijmp` over `[t1, t2]` (window `[0, 1]`).
    fn table_dispatch(
        f: &Function,
        var: Reg,
        head: BlockId,
        t1: BlockId,
        t2: BlockId,
        dflt: BlockId,
    ) -> (Function, u32) {
        let mut g = f.clone();
        let temp = g.new_reg();
        let replica_start = g.blocks.len() as u32;
        let [d1, d2] = [1, 2].map(|i: u32| BlockId(replica_start + i));
        let d0 = g.add_block(Block::new(Terminator::branch(Cond::Lt, dflt, d1)));
        g.block_mut(d0).insts.push(cmp(var, 0));
        let d1 = g.add_block(Block::new(Terminator::branch(Cond::Gt, dflt, d2)));
        g.block_mut(d1).insts.push(cmp(var, 1));
        let d2 = g.add_block(Block::new(Terminator::IndirectJump {
            index: temp,
            targets: vec![t1, t2],
        }));
        g.block_mut(d2).insts.push(Inst::Bin {
            op: br_ir::BinOp::Sub,
            dst: temp,
            lhs: Operand::Reg(var),
            rhs: Operand::Imm(0),
        });
        g.block_mut(head).insts.clear();
        g.block_mut(head).term = Terminator::Jump(d0);
        (g, replica_start)
    }

    #[test]
    fn accepts_jump_table_dispatch() {
        let (f, var, head, [t1, t2, dflt]) = chain();
        let (g, replica_start) = table_dispatch(&f, var, head, t1, t2, dflt);
        let proof = check_equivalence(&EquivalenceCheck {
            original: &f,
            reordered: &g,
            var,
            head,
            exits: BTreeSet::from([t1, t2, dflt]),
            replica_start,
            expected: plan(t1, t2, dflt),
        })
        .unwrap();
        assert_eq!(proof.exits, 3);
        assert!(proof.value_classes >= 3);
    }

    #[test]
    fn rejects_jump_table_with_swapped_slots() {
        let (mut f, var, head, [t1, t2, dflt]) = chain();
        for (i, t) in [t1, t2, dflt].into_iter().enumerate() {
            f.block_mut(t).term = Terminator::Return(Some(Operand::Imm(i as i64)));
        }
        let (mut g, replica_start) = table_dispatch(&f, var, head, t1, t2, dflt);
        let d2 = BlockId(replica_start + 2);
        if let Terminator::IndirectJump { targets, .. } = &mut g.block_mut(d2).term {
            targets.swap(0, 1);
        } else {
            panic!("dispatch block must end in an indirect jump");
        }
        let errors = check_equivalence(&EquivalenceCheck {
            original: &f,
            reordered: &g,
            var,
            head,
            exits: BTreeSet::from([t1, t2, dflt]),
            replica_start,
            expected: plan(t1, t2, dflt),
        })
        .unwrap_err();
        assert!(errors
            .iter()
            .any(|e| matches!(e, ValidationError::TargetMismatch { .. })));
        assert!(
            errors.iter().all(|e| !e.blames_original()),
            "the corruption is in the replica: {errors:?}"
        );
    }

    #[test]
    fn unguarded_jump_table_values_fail_the_walk() {
        // Strip the bounds checks: values outside the table window now
        // reach the dispatch, which the VM would trap on. The walker
        // must refuse rather than invent a partition.
        let (f, var, head, [t1, t2, dflt]) = chain();
        let (mut g, replica_start) = table_dispatch(&f, var, head, t1, t2, dflt);
        let d2 = BlockId(replica_start + 2);
        g.block_mut(head).term = Terminator::Jump(d2);
        let errors = check_equivalence(&EquivalenceCheck {
            original: &f,
            reordered: &g,
            var,
            head,
            exits: BTreeSet::from([t1, t2, dflt]),
            replica_start,
            expected: plan(t1, t2, dflt),
        })
        .unwrap_err();
        assert!(
            errors.iter().any(|e| matches!(
                e,
                ValidationError::Walk {
                    side: Side::Reordered,
                    ..
                }
            )),
            "{errors:?}"
        );
    }

    #[test]
    fn indirect_jump_is_a_frontier_without_dispatch_temps() {
        // The original-side walk never has dispatch temporaries
        // configured, so even a well-formed dispatch ends as a frontier
        // there — the binding must not leak into ordinary walks.
        let (f, var, head, [t1, t2, dflt]) = chain();
        let (g, replica_start) = table_dispatch(&f, var, head, t1, t2, dflt);
        let spec = WalkSpec::new(var, head, BTreeSet::from([t1, t2, dflt]));
        let arms = explore(&g, &spec).unwrap();
        let d2 = BlockId(replica_start + 2);
        assert!(
            arms.iter()
                .any(|a| matches!(a.end, ArmEnd::Frontier(c) if c.block == d2)),
            "in-window values must stop at the dispatch block: {arms:?}"
        );
    }

    #[test]
    fn bisimulation_follows_jumps_and_loops() {
        // a: loop { putchar; jump a }  vs  copy with an interposed jump.
        let mut f = Function::new("t");
        let a = f.add_block(Block::new(Terminator::Return(None)));
        f.block_mut(a).insts.push(putchar());
        f.block_mut(a).term = Terminator::Jump(a);
        let mut g = f.clone();
        let hop = g.add_block(Block::new(Terminator::Jump(a)));
        let b = g.add_block(Block::new(Terminator::Jump(hop)));
        g.block_mut(b).insts.push(putchar());
        assert!(tail_equivalent(
            &g,
            Cursor::start(b),
            &f,
            Cursor::start(a),
            BlockId(u32::MAX),
            256
        ));
    }
}
