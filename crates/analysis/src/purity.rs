//! Side-effect and purity analysis: an independent check of the
//! legality conditions behind the paper's Theorem 2.
//!
//! Reordering a sequence moves the instructions that precede each
//! non-head compare ("side effects in a range condition", the paper's
//! Definition 6) into per-exit bundles. That motion is legal only when
//!
//! 1. no moved instruction redefines the tested variable (later
//!    compares must still see the original value),
//! 2. no moved instruction writes the condition codes (only the final
//!    compare of each condition may), and moved profiling probes would
//!    double-count,
//! 3. no exit target consumes condition codes set inside the sequence —
//!    after reordering a different compare may be the last one executed.
//!
//! The detector enforces these with its own ad-hoc scans
//! (`side_effects_movable`, `targets_cc_clean`); this module re-derives
//! them from first principles — condition 3 as a backward dataflow
//! problem on the [`crate::dataflow`] engine — so the translation
//! validator can cross-check the detector rather than trust it.

use br_ir::{BlockId, Function, Inst, Reg, Terminator};

use crate::dataflow::{solve, Direction, Domain};

/// What a block does to the implicit condition-code register.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum CcEffect {
    /// No instruction touches the codes: they pass through.
    Transparent,
    /// The last cc event is a `cmp`: incoming codes are dead.
    Defines,
    /// The last cc event is a `call`: incoming codes are dead (and the
    /// codes are garbage at exit).
    Clobbers,
}

fn cc_effect(f: &Function, b: BlockId) -> CcEffect {
    let mut effect = CcEffect::Transparent;
    for inst in &f.block(b).insts {
        match inst {
            Inst::Cmp { .. } => effect = CcEffect::Defines,
            Inst::Call { .. } => effect = CcEffect::Clobbers,
            _ => {}
        }
    }
    effect
}

/// Backward problem: does the condition-code value at a block's *entry*
/// reach a consumer (a conditional branch with no intervening writer)?
struct NeedsCc;

impl Domain for NeedsCc {
    type Value = bool;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn bottom(&self, _f: &Function) -> bool {
        false
    }

    fn boundary(&self, _f: &Function) -> bool {
        false
    }

    fn join(&self, into: &mut bool, from: &bool) -> bool {
        let old = *into;
        *into |= *from;
        *into != old
    }

    fn transfer(&self, f: &Function, b: BlockId, needed_at_exit: &bool) -> bool {
        match cc_effect(f, b) {
            // The body overwrites the codes before anything could read
            // the incoming value (branches test *after* the body).
            CcEffect::Defines | CcEffect::Clobbers => false,
            CcEffect::Transparent => {
                matches!(f.block(b).term, Terminator::Branch { .. }) || *needed_at_exit
            }
        }
    }
}

/// For each block (by index): whether the condition codes on entry may
/// be consumed by a conditional branch before being rewritten.
///
/// A block where this is `true` is *not* cc-clean: jumping to it from
/// freshly reordered code (where a different compare executed last)
/// would change behaviour.
pub fn cc_needed_on_entry(f: &Function) -> Vec<bool> {
    solve(f, &NeedsCc).outputs
}

/// One way a proposed side-effect motion breaks Theorem 2's conditions.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MotionViolation {
    /// A moved instruction defines the tested variable.
    DefinesTestedVar {
        /// Block holding the instruction.
        block: BlockId,
        /// Instruction index within the block.
        inst: usize,
    },
    /// A moved instruction is an extra compare (writes condition codes).
    ExtraCompare {
        /// Block holding the instruction.
        block: BlockId,
        /// Instruction index within the block.
        inst: usize,
    },
    /// A moved instruction is a profiling probe (would double-count).
    ProfileProbe {
        /// Block holding the instruction.
        block: BlockId,
        /// Instruction index within the block.
        inst: usize,
    },
    /// An exit target consumes condition codes set inside the sequence.
    TargetNeedsCc {
        /// The offending target block.
        target: BlockId,
    },
}

impl std::fmt::Display for MotionViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MotionViolation::DefinesTestedVar { block, inst } => {
                write!(
                    f,
                    "instruction {inst} of {block} redefines the tested variable"
                )
            }
            MotionViolation::ExtraCompare { block, inst } => {
                write!(f, "instruction {inst} of {block} is a second compare")
            }
            MotionViolation::ProfileProbe { block, inst } => {
                write!(f, "instruction {inst} of {block} is a profiling probe")
            }
            MotionViolation::TargetNeedsCc { target } => {
                write!(f, "exit target {target} consumes incoming condition codes")
            }
        }
    }
}

/// Check Theorem 2's legality conditions for moving the side effects of
/// `moved_blocks` (the sequence's non-head condition blocks, whose every
/// instruction except a trailing `cmp` gets bundled) given the
/// sequence's `exit_targets`. Returns every violation found; an empty
/// vector means the motion is legal.
pub fn check_motion(
    f: &Function,
    tested_var: Reg,
    moved_blocks: &[BlockId],
    exit_targets: &[BlockId],
) -> Vec<MotionViolation> {
    let mut violations = Vec::new();
    for &b in moved_blocks {
        let insts = &f.block(b).insts;
        let trailing_cmp = matches!(insts.last(), Some(Inst::Cmp { .. }));
        let moved = if trailing_cmp {
            &insts[..insts.len() - 1]
        } else {
            &insts[..]
        };
        for (i, inst) in moved.iter().enumerate() {
            if inst.def() == Some(tested_var) {
                violations.push(MotionViolation::DefinesTestedVar { block: b, inst: i });
            }
            match inst {
                Inst::Cmp { .. } => {
                    violations.push(MotionViolation::ExtraCompare { block: b, inst: i })
                }
                Inst::ProfileRanges { .. } | Inst::ProfileOutcomes { .. } => {
                    violations.push(MotionViolation::ProfileProbe { block: b, inst: i })
                }
                _ => {}
            }
        }
    }
    let needs = cc_needed_on_entry(f);
    let mut flagged = Vec::new();
    for &t in exit_targets {
        if needs.get(t.index()).copied().unwrap_or(false) && !flagged.contains(&t) {
            flagged.push(t);
            violations.push(MotionViolation::TargetNeedsCc { target: t });
        }
    }
    violations
}

/// Coarse effect summary of one block, for diagnostics.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct EffectSummary {
    /// Contains a store.
    pub writes_memory: bool,
    /// Contains a call (I/O, arbitrary effects).
    pub calls: bool,
    /// Contains a profiling probe.
    pub profiles: bool,
    /// Contains an instruction that may trap (division).
    pub may_trap: bool,
}

impl EffectSummary {
    /// Whether the block body is free of observable effects.
    pub fn is_pure(&self) -> bool {
        !self.writes_memory && !self.calls && !self.profiles && !self.may_trap
    }
}

/// Summarize the observable effects of `b`'s body.
pub fn block_effects(f: &Function, b: BlockId) -> EffectSummary {
    let mut s = EffectSummary::default();
    for inst in &f.block(b).insts {
        match inst {
            Inst::Store { .. } => s.writes_memory = true,
            Inst::Call { .. } => s.calls = true,
            Inst::ProfileRanges { .. } | Inst::ProfileOutcomes { .. } => s.profiles = true,
            _ => {}
        }
        s.may_trap |= inst.may_trap();
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_ir::{Block, Cond, Operand};

    /// target consumes cc set by its predecessor: must be flagged.
    #[test]
    fn cc_needed_detects_inherited_consumers() {
        let mut f = Function::new("t");
        let r0 = f.new_reg();
        let done = f.add_block(Block::new(Terminator::Return(None)));
        // `tail` branches without a compare of its own.
        let tail = f.add_block(Block::new(Terminator::branch(Cond::Eq, done, done)));
        let e = f.entry;
        f.block_mut(e).insts.push(Inst::Cmp {
            lhs: Operand::Reg(r0),
            rhs: Operand::Imm(1),
        });
        f.block_mut(e).term = Terminator::Jump(tail);
        let needs = cc_needed_on_entry(&f);
        assert!(needs[tail.index()], "tail consumes inherited codes");
        assert!(!needs[done.index()]);
        assert!(!needs[e.index()], "entry defines before any consumer");
    }

    #[test]
    fn cc_needed_stops_at_own_compare() {
        let mut f = Function::new("t");
        let r0 = f.new_reg();
        let done = f.add_block(Block::new(Terminator::Return(None)));
        let own = f.add_block(Block::new(Terminator::branch(Cond::Lt, done, done)));
        f.block_mut(own).insts.push(Inst::Cmp {
            lhs: Operand::Reg(r0),
            rhs: Operand::Imm(5),
        });
        f.block_mut(f.entry).term = Terminator::Jump(own);
        let needs = cc_needed_on_entry(&f);
        assert!(!needs[own.index()], "block compares for itself");
    }

    #[test]
    fn motion_check_flags_var_def_and_cc_target() {
        let mut f = Function::new("t");
        let var = f.new_reg();
        let done = f.add_block(Block::new(Terminator::Return(None)));
        let target = f.add_block(Block::new(Terminator::branch(Cond::Eq, done, done)));
        let cond = f.add_block(Block::new(Terminator::branch(Cond::Eq, target, done)));
        f.block_mut(cond).insts.push(Inst::Copy {
            dst: var,
            src: Operand::Imm(7),
        });
        f.block_mut(cond).insts.push(Inst::Cmp {
            lhs: Operand::Reg(var),
            rhs: Operand::Imm(3),
        });
        f.block_mut(f.entry).term = Terminator::Jump(cond);

        let v = check_motion(&f, var, &[cond], &[target, done]);
        assert!(v.contains(&MotionViolation::DefinesTestedVar {
            block: cond,
            inst: 0
        }));
        assert!(v.contains(&MotionViolation::TargetNeedsCc { target }));
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn motion_check_accepts_pure_movable_effects() {
        let mut f = Function::new("t");
        let var = f.new_reg();
        let tmp = f.new_reg();
        let done = f.add_block(Block::new(Terminator::Return(None)));
        let cond = f.add_block(Block::new(Terminator::branch(Cond::Eq, done, done)));
        f.block_mut(cond).insts.push(Inst::Copy {
            dst: tmp,
            src: Operand::Imm(1),
        });
        f.block_mut(cond).insts.push(Inst::Cmp {
            lhs: Operand::Reg(var),
            rhs: Operand::Imm(3),
        });
        f.block_mut(f.entry).term = Terminator::Jump(cond);
        assert!(check_motion(&f, var, &[cond], &[done]).is_empty());
        assert!(block_effects(&f, cond).is_pure());
    }
}
