//! Rustc-style diagnostics for the lint and validation passes.
//!
//! A [`Diagnostic`] renders as
//!
//! ```text
//! warning[BR0102]: range condition is statically dead
//!   --> function `main`, block b7
//!    = note: interval analysis bounds the tested register to [0, 9]
//! ```
//!
//! and the collection helpers summarize a run for CLI exit codes.

use std::fmt;

use br_ir::BlockId;

/// How serious a diagnostic is.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// Advisory: suspicious but not wrong.
    Warning,
    /// A proven problem (e.g. a validation failure).
    Error,
}

impl Severity {
    fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One finding, tied to a function and optionally a block.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// Severity class.
    pub severity: Severity,
    /// Stable diagnostic code (`BRxxxx`), grouping findings by pass.
    pub code: &'static str,
    /// Primary message, one line.
    pub message: String,
    /// Function the finding is in.
    pub function: String,
    /// Block the finding anchors to, when one exists.
    pub block: Option<BlockId>,
    /// Supplementary notes, one line each.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// A new warning.
    pub fn warning(code: &'static str, function: &str, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            code,
            message: message.into(),
            function: function.to_string(),
            block: None,
            notes: Vec::new(),
        }
    }

    /// A new error.
    pub fn error(code: &'static str, function: &str, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            ..Diagnostic::warning(code, function, message)
        }
    }

    /// Anchor the diagnostic to a block.
    pub fn at(mut self, block: BlockId) -> Diagnostic {
        self.block = Some(block);
        self
    }

    /// Attach a one-line note.
    pub fn note(mut self, note: impl Into<String>) -> Diagnostic {
        self.notes.push(note.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}[{}]: {}",
            self.severity.label(),
            self.code,
            self.message
        )?;
        match self.block {
            Some(b) => writeln!(f, "  --> function `{}`, block {}", self.function, b)?,
            None => writeln!(f, "  --> function `{}`", self.function)?,
        }
        for n in &self.notes {
            writeln!(f, "   = note: {n}")?;
        }
        Ok(())
    }
}

/// Render a batch of diagnostics followed by a rustc-style summary line.
/// Returns the rendered text; empty input renders as empty.
pub fn render(diags: &[Diagnostic]) -> String {
    if diags.is_empty() {
        return String::new();
    }
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags.len() - errors;
    let mut parts = Vec::new();
    if errors > 0 {
        parts.push(format!(
            "{errors} error{}",
            if errors == 1 { "" } else { "s" }
        ));
    }
    if warnings > 0 {
        parts.push(format!(
            "{warnings} warning{}",
            if warnings == 1 { "" } else { "s" }
        ));
    }
    out.push_str(&format!("{} emitted\n", parts.join(", ")));
    out
}

/// Whether any diagnostic in the batch is an error.
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_rustc_style() {
        let d = Diagnostic::warning("BR0101", "main", "ranges overlap")
            .at(BlockId(7))
            .note("first range [0, 9]")
            .note("second range [5, 20]");
        let text = d.to_string();
        assert!(text.starts_with("warning[BR0101]: ranges overlap\n"));
        assert!(text.contains("  --> function `main`, block b7\n"));
        assert!(text.contains("   = note: first range [0, 9]\n"));
    }

    #[test]
    fn batch_summary_counts() {
        let batch = vec![
            Diagnostic::error("BR0201", "f", "bad"),
            Diagnostic::warning("BR0101", "f", "meh"),
            Diagnostic::warning("BR0102", "g", "meh"),
        ];
        assert!(has_errors(&batch));
        let text = render(&batch);
        assert!(text.ends_with("1 error, 2 warnings emitted\n"));
        assert!(render(&[]).is_empty());
        assert!(!has_errors(&[]));
    }
}
