//! Condition-code reaching-definitions analysis.
//!
//! The IR has a single implicit condition-code register: `cmp` defines
//! it, `call` clobbers it, and a block's conditional branch consumes it.
//! This forward analysis computes, for every program point, which `cmp`
//! instructions may have set the codes last — plus whether the function
//! entry (codes never set) or a clobbering call may reach instead.
//!
//! Consumers: the redundant-comparison lint (a compare whose every
//! reaching definition compares the same operands, unmodified since, is
//! one Figure 9 missed) and an independent cross-check of the
//! structural verifier's "branch sees defined codes" rule.

use std::collections::BTreeSet;

use br_ir::{BlockId, Function, Inst, Operand};

use crate::dataflow::{solve, Direction, Domain, Solution};

/// Location of one cc-defining `cmp`: `(block, instruction index)`.
pub type CcSite = (BlockId, usize);

/// The set of condition-code definitions reaching a point.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct CcReach {
    /// The function entry reaches here with the codes never set.
    pub undefined: bool,
    /// A clobbering `call` is the most recent cc event on some path.
    pub clobbered: bool,
    /// Every `cmp` that may have set the codes most recently.
    pub sites: BTreeSet<CcSite>,
}

impl CcReach {
    /// Whether the condition codes are guaranteed to hold the result of
    /// some `cmp` here.
    pub fn is_defined(&self) -> bool {
        !self.undefined && !self.clobbered
    }

    /// The unique reaching compare, if exactly one `cmp` (and nothing
    /// else) reaches.
    pub fn unique_site(&self) -> Option<CcSite> {
        if self.is_defined() && self.sites.len() == 1 {
            self.sites.iter().next().copied()
        } else {
            None
        }
    }
}

struct CcDomain;

impl Domain for CcDomain {
    type Value = Option<CcReach>;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn bottom(&self, _f: &Function) -> Option<CcReach> {
        None
    }

    fn boundary(&self, _f: &Function) -> Option<CcReach> {
        Some(CcReach {
            undefined: true,
            clobbered: false,
            sites: BTreeSet::new(),
        })
    }

    fn join(&self, into: &mut Option<CcReach>, from: &Option<CcReach>) -> bool {
        let Some(from) = from else { return false };
        match into {
            None => {
                *into = Some(from.clone());
                true
            }
            Some(acc) => {
                let before = acc.clone();
                acc.undefined |= from.undefined;
                acc.clobbered |= from.clobbered;
                acc.sites.extend(from.sites.iter().copied());
                *acc != before
            }
        }
    }

    fn transfer(&self, f: &Function, b: BlockId, input: &Option<CcReach>) -> Option<CcReach> {
        let mut state = input.clone()?;
        for (i, inst) in f.block(b).insts.iter().enumerate() {
            match inst {
                Inst::Cmp { .. } => {
                    state = CcReach {
                        undefined: false,
                        clobbered: false,
                        sites: BTreeSet::from([(b, i)]),
                    };
                }
                Inst::Call { .. } => {
                    state = CcReach {
                        undefined: false,
                        clobbered: true,
                        sites: BTreeSet::new(),
                    };
                }
                _ => {}
            }
        }
        Some(state)
    }
}

/// Solved condition-code reaching-definitions for one function.
pub struct CcAnalysis {
    solution: Solution<Option<CcReach>>,
}

/// Run the cc reaching-definitions analysis on `f`.
pub fn cc_reaching(f: &Function) -> CcAnalysis {
    CcAnalysis {
        solution: solve(f, &CcDomain),
    }
}

impl CcAnalysis {
    /// Reaching cc definitions at the entry of `b` (`None` when `b` is
    /// unreachable).
    pub fn at_entry(&self, b: BlockId) -> Option<&CcReach> {
        self.solution.input(b).as_ref()
    }

    /// Reaching cc definitions at `b`'s terminator.
    pub fn at_terminator(&self, b: BlockId) -> Option<&CcReach> {
        self.solution.output(b).as_ref()
    }

    /// The operands of the compare whose result is guaranteed to be in
    /// the condition codes at the entry of `b` — present only when every
    /// path agrees on a single `cmp` site.
    pub fn unique_compare_at_entry(&self, f: &Function, b: BlockId) -> Option<(Operand, Operand)> {
        let (sb, si) = self.at_entry(b)?.unique_site()?;
        match f.block(sb).insts[si] {
            Inst::Cmp { lhs, rhs } => Some((lhs, rhs)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_ir::{Block, Cond, Reg, Terminator};

    /// entry: cmp r0,1; beq a b — a: (nothing) → join; b: call → join.
    #[test]
    fn merges_sites_and_clobbers() {
        let mut f = Function::new("t");
        let r0 = f.new_reg();
        let join = f.add_block(Block::new(Terminator::Return(None)));
        let a = f.add_block(Block::new(Terminator::Jump(join)));
        let b = f.add_block(Block::new(Terminator::Jump(join)));
        let e = f.entry;
        f.block_mut(e).insts.push(Inst::Cmp {
            lhs: Operand::Reg(r0),
            rhs: Operand::Imm(1),
        });
        f.block_mut(e).term = Terminator::branch(Cond::Eq, a, b);
        f.block_mut(b).insts.push(Inst::Call {
            dst: None,
            callee: br_ir::Callee::Intrinsic(br_ir::Intrinsic::GetChar),
            args: vec![],
        });

        let cc = cc_reaching(&f);
        assert!(cc.at_entry(e).unwrap().undefined);
        let at_a = cc.at_entry(a).unwrap();
        assert_eq!(at_a.unique_site(), Some((e, 0)));
        assert_eq!(
            cc.unique_compare_at_entry(&f, a),
            Some((Operand::Reg(Reg(0)), Operand::Imm(1)))
        );
        let at_join = cc.at_entry(join).unwrap();
        assert!(at_join.clobbered, "call path clobbers");
        assert!(!at_join.is_defined());
        assert_eq!(at_join.sites.len(), 1, "cmp path still listed");
    }

    #[test]
    fn within_block_cmp_shadows_previous() {
        let mut f = Function::new("t");
        let r0 = f.new_reg();
        let t = f.add_block(Block::new(Terminator::Return(None)));
        let e = f.entry;
        for c in [1i64, 2] {
            f.block_mut(e).insts.push(Inst::Cmp {
                lhs: Operand::Reg(r0),
                rhs: Operand::Imm(c),
            });
        }
        f.block_mut(e).term = Terminator::branch(Cond::Eq, t, t);
        let cc = cc_reaching(&f);
        let out = cc.at_terminator(e).unwrap();
        assert_eq!(out.unique_site(), Some((e, 1)), "last cmp wins");
    }
}
