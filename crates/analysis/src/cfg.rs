//! First-class control-flow graphs over `br-ir` functions.
//!
//! The IR crate ships traversal helpers ([`br_ir::predecessors`],
//! [`br_ir::reverse_postorder`]) that recompute orders on every call;
//! analyses that ask many reachability or order
//! questions about one function want them computed once. [`Cfg`] builds
//! successor and predecessor lists, the reverse postorder, and each
//! block's position in it, and answers queries from those tables.

use std::collections::BTreeSet;

use br_ir::{BlockId, Function};

/// A materialized control-flow graph for one function: edge lists plus
/// the reverse postorder, computed once at construction.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// The entry block.
    pub entry: BlockId,
    succs: Vec<Vec<BlockId>>,
    preds: Vec<Vec<BlockId>>,
    rpo: Vec<BlockId>,
    /// Position of each block in the reverse postorder
    /// (`usize::MAX` for unreachable blocks).
    rpo_index: Vec<usize>,
}

impl Cfg {
    /// Build the CFG of `f`.
    pub fn build(f: &Function) -> Cfg {
        let succs: Vec<Vec<BlockId>> = f
            .block_ids()
            .map(|b| f.block(b).term.successors())
            .collect();
        let preds = br_ir::predecessors(f);
        let rpo = br_ir::reverse_postorder(f);
        let mut rpo_index = vec![usize::MAX; f.blocks.len()];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = i;
        }
        Cfg {
            entry: f.entry,
            succs,
            preds,
            rpo,
            rpo_index,
        }
    }

    /// Successor edges of `b` (one entry per edge).
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.index()]
    }

    /// Predecessor edges of `b` (one entry per edge, so a two-way
    /// branch with both arms on `b` contributes two).
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.index()]
    }

    /// Number of incoming edges of `b`.
    pub fn in_degree(&self, b: BlockId) -> usize {
        self.preds[b.index()].len()
    }

    /// Blocks in reverse postorder (entry first; unreachable blocks
    /// omitted).
    pub fn reverse_postorder(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Position of `b` in the reverse postorder; `None` when `b` is
    /// unreachable.
    pub fn rpo_index(&self, b: BlockId) -> Option<usize> {
        match self.rpo_index.get(b.index()) {
            Some(&i) if i != usize::MAX => Some(i),
            _ => None,
        }
    }

    /// Whether `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_index(b).is_some()
    }

    /// Every reachable block, as a sorted set.
    pub fn reachable(&self) -> BTreeSet<BlockId> {
        self.rpo.iter().copied().collect()
    }

    /// Number of blocks in the underlying function (reachable or not).
    pub fn num_blocks(&self) -> usize {
        self.succs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_ir::{Block, Cond, Terminator};

    /// entry → (b1 | b2); b1 → b3; b2 → b3; b3 → ret; b4 unreachable.
    fn diamond() -> (Function, [BlockId; 4]) {
        let mut f = Function::new("d");
        let b3 = f.add_block(Block::new(Terminator::Return(None)));
        let b1 = f.add_block(Block::new(Terminator::Jump(b3)));
        let b2 = f.add_block(Block::new(Terminator::Jump(b3)));
        let b4 = f.add_block(Block::new(Terminator::Return(None)));
        f.block_mut(f.entry).term = Terminator::branch(Cond::Eq, b1, b2);
        (f, [b1, b2, b3, b4])
    }

    #[test]
    fn edges_and_degrees() {
        let (f, [b1, b2, b3, b4]) = diamond();
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.succs(cfg.entry), &[b1, b2]);
        assert_eq!(cfg.in_degree(b3), 2);
        assert_eq!(cfg.in_degree(b4), 0);
        assert_eq!(cfg.preds(b1), &[f.entry]);
    }

    #[test]
    fn rpo_orders_join_after_arms() {
        let (f, [b1, b2, b3, b4]) = diamond();
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.reverse_postorder()[0], cfg.entry);
        assert!(cfg.rpo_index(b3) > cfg.rpo_index(b1));
        assert!(cfg.rpo_index(b3) > cfg.rpo_index(b2));
        assert_eq!(cfg.rpo_index(b4), None);
        assert!(!cfg.is_reachable(b4));
        assert_eq!(cfg.reachable().len(), 4);
    }
}
