//! The ext-TSP objective: exact integer scoring of a candidate block
//! order against profile edge weights.

use br_ir::{BlockId, Function};

use crate::{EdgeWeights, LayoutParams};

/// Score `order` (old block ids in candidate storage order) under the
/// ext-TSP objective: for every weighted CFG edge, full
/// [`LayoutParams::fallthrough_gain`] when the successor is adjacent,
/// else a linearly decaying band gain for short forward/backward jumps,
/// else nothing. Distances are in static instructions, matching the
/// VM's branch-address scheme (profiling probes included, as the VM
/// counts them when assigning addresses). Pure integer arithmetic: the
/// score is bit-identical across platforms and runs.
pub fn score_order(
    f: &Function,
    weights: &EdgeWeights,
    params: &LayoutParams,
    order: &[BlockId],
) -> u128 {
    let n = f.blocks.len();
    debug_assert_eq!(order.len(), n, "order must be a full permutation");
    let mut pos = vec![0usize; n];
    for (i, &b) in order.iter().enumerate() {
        pos[b.index()] = i;
    }
    // Start address of each *position* and the block length at it.
    let mut start = vec![0u64; n];
    let mut len_at = vec![0u64; n];
    let mut addr = 0u64;
    for (i, &b) in order.iter().enumerate() {
        start[i] = addr;
        len_at[i] = f.blocks[b.index()].insts.len() as u64 + 1;
        addr += len_at[i];
    }
    let mut score: u128 = 0;
    for (src, dst, w) in weights.all_edges() {
        if w == 0 {
            continue;
        }
        let ps = pos[src.index()];
        let pd = pos[dst.index()];
        let gain = if pd == ps + 1 {
            params.fallthrough_gain
        } else if pd > ps {
            // Forward jump: distance from src's terminator to dst.
            let d = start[pd] - (start[ps] + len_at[ps]);
            band(d, params.forward_window, params.forward_gain)
        } else {
            // Backward jump (including a self-loop's trip to its start).
            let d = (start[ps] + len_at[ps]) - start[pd];
            band(d, params.backward_window, params.backward_gain)
        };
        score += w as u128 * gain as u128;
    }
    score
}

/// Linearly decaying band gain: `peak` at distance 0, zero at or beyond
/// `window`.
fn band(d: u64, window: u64, peak: u64) -> u64 {
    if window == 0 || d >= window {
        0
    } else {
        peak * (window - d) / window
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_ir::{Cond, FuncBuilder, Operand, Terminator};

    fn diamond() -> Function {
        let mut b = FuncBuilder::new("f");
        let x = b.new_reg();
        b.set_param_regs(vec![x]);
        let e = b.entry();
        let l = b.new_block();
        let r = b.new_block();
        let j = b.new_block();
        b.cmp_branch(e, x, 0i64, Cond::Eq, l, r);
        b.set_term(l, Terminator::Jump(j));
        b.set_term(r, Terminator::Jump(j));
        b.set_term(j, Terminator::Return(Some(Operand::Reg(x))));
        b.finish()
    }

    #[test]
    fn adjacency_beats_any_band() {
        let f = diamond();
        let counts = [[10, 4], [4, 0], [6, 0], [10, 0]];
        let w = EdgeWeights::from_block_counts(&f, &counts);
        let p = LayoutParams::default();
        let ids = |v: [u32; 4]| v.map(BlockId).to_vec();
        // r (weight 6) adjacent to entry beats l (weight 4) adjacent.
        let r_adjacent = score_order(&f, &w, &p, &ids([0, 2, 3, 1]));
        let l_adjacent = score_order(&f, &w, &p, &ids([0, 1, 3, 2]));
        assert!(r_adjacent > l_adjacent, "{r_adjacent} <= {l_adjacent}");
    }

    #[test]
    fn band_decays_to_zero() {
        assert_eq!(band(0, 100, 50), 50);
        assert_eq!(band(50, 100, 50), 25);
        assert_eq!(band(100, 100, 50), 0);
        assert_eq!(band(7, 0, 50), 0, "zero window disables the band");
    }

    #[test]
    fn nearer_cold_code_scores_higher_via_bands() {
        // Two orders with identical fall-throughs must still be totally
        // ordered by jump distance through the band terms.
        let mut b = FuncBuilder::new("f");
        let t = b.new_reg();
        let e = b.entry();
        let far = b.new_block();
        let pad = b.new_block();
        for _ in 0..8 {
            b.copy(pad, t, 0i64);
        }
        b.set_term(e, Terminator::Jump(far));
        b.set_term(far, Terminator::Return(None));
        b.set_term(pad, Terminator::Return(None));
        let f = b.finish();
        let w = EdgeWeights::from_block_counts(&f, &[[5, 0], [5, 0], [0, 0]]);
        let p = LayoutParams::default();
        let near = score_order(&f, &w, &p, &[BlockId(0), BlockId(2), BlockId(1)]);
        let adjacent = score_order(&f, &w, &p, &[BlockId(0), BlockId(1), BlockId(2)]);
        assert!(adjacent > near, "fall-through still wins outright");
        assert!(near > 0, "a short forward jump earns partial band credit");
    }
}
