//! # br-layout
//!
//! Profile-guided whole-function basic-block layout, the second consumer
//! of the edge profiles the branch reorderer collects.
//!
//! The paper's transformation re-sequences conditional branches *within*
//! a dispatch sequence; the surrounding block order was left to the
//! profile-blind greedy chainer in `br_opt::layout`. This crate adds the
//! profile-aware pass: the ext-TSP objective of Newell & Pupyrev's
//! *Improved Basic Block Reordering* — weighted fall-throughs plus
//! distance-banded gains for short forward/backward jumps — maximized by
//! greedy chain coalescing with merge lookahead (§4 of that paper) and a
//! local-search refinement bounded by a deterministic move budget.
//!
//! ## Calibration against the VM's cost model
//!
//! The interpreter (`br-vm`) charges layout three ways: a `Jump` to a
//! non-adjacent block and a not-taken branch whose successor is not
//! adjacent each materialize one unconditional-jump instruction, and a
//! branch whose *hot* arm is not the fall-through pays a taken branch
//! (the counter the evaluation tables headline). Adjacency is therefore
//! worth exactly one instruction per traversal, so the fall-through term
//! dominates the score: [`LayoutParams::fallthrough_gain`] is an order of
//! magnitude above both band gains, meaning no sum of band bonuses can
//! outbid a fall-through of equal edge weight. The bands only break ties
//! among layouts with identical fall-through totals, preferring compact
//! hot regions (shorter jump distances also densify the predictor's
//! branch-address space). Distances are measured in static instructions,
//! matching the VM's branch-address scheme.
//!
//! ## Determinism
//!
//! Scores are exact integers (`u128` of scaled units — no floats), every
//! candidate enumeration is in a fixed order with total tie-breakers,
//! and refinement is first-improvement under a fixed move budget, so a
//! given (function, weights, params) always yields the same order on
//! every platform and thread count. [`layout_function`] additionally
//! never returns an order scoring below the order it started from: the
//! ext-TSP result is kept only when it beats the incumbent, so
//! `score(exttsp) >= score(greedy)` holds by construction.

mod apply;
mod chain;
mod refine;
mod score;

pub use apply::{apply_order, invert_branches, reposition_tail};
pub use score::score_order;

use br_ir::{BlockId, Function, Terminator};

/// Which layout pass the pipeline runs after reordering and cleanup.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum LayoutMode {
    /// Leave blocks in transformation order: no repositioning at all.
    /// The ablation baseline — jumps and taken branches go unoptimized.
    Off,
    /// The profile-blind greedy fall-through chainer
    /// (`br_opt::layout::reposition`), the pre-layout-pass status quo.
    #[default]
    Greedy,
    /// Greedy first, then profile-guided ext-TSP refinement seeded from
    /// it (kept only when it scores at least as well).
    ExtTsp,
}

impl LayoutMode {
    /// Stable lowercase name, used in CLI flags and cache keys.
    pub fn name(self) -> &'static str {
        match self {
            LayoutMode::Off => "off",
            LayoutMode::Greedy => "greedy",
            LayoutMode::ExtTsp => "exttsp",
        }
    }

    /// Parse a CLI spelling. Accepts exactly the [`LayoutMode::name`]s.
    pub fn parse(s: &str) -> Option<LayoutMode> {
        match s {
            "off" => Some(LayoutMode::Off),
            "greedy" => Some(LayoutMode::Greedy),
            "exttsp" => Some(LayoutMode::ExtTsp),
            _ => None,
        }
    }

    /// All modes, in ablation order.
    pub const ALL: [LayoutMode; 3] = [LayoutMode::Off, LayoutMode::Greedy, LayoutMode::ExtTsp];
}

/// Tunables of the ext-TSP objective and its optimizers. The defaults
/// are calibrated against `br-vm`'s cost model (see the crate docs).
#[derive(Clone, Copy, Debug)]
pub struct LayoutParams {
    /// Scaled gain per unit of edge weight for an adjacent successor.
    pub fallthrough_gain: u64,
    /// Scaled peak gain for a short forward jump (decays linearly to
    /// zero at `forward_window`).
    pub forward_gain: u64,
    /// Forward-jump band width, in static instructions.
    pub forward_window: u64,
    /// Scaled peak gain for a short backward jump.
    pub backward_gain: u64,
    /// Backward-jump band width, in static instructions.
    pub backward_window: u64,
    /// Chain-merge candidates examined with one step of lookahead.
    pub lookahead: usize,
    /// Refinement move budget: candidate relocations *evaluated* (not
    /// just accepted) per function. Bounds worst-case layout cost
    /// deterministically, which the adaptive runtime's hot-swap budget
    /// relies on.
    pub move_budget: usize,
}

impl Default for LayoutParams {
    fn default() -> LayoutParams {
        LayoutParams {
            fallthrough_gain: 1000,
            forward_gain: 100,
            forward_window: 256,
            backward_gain: 70,
            backward_window: 640,
            lookahead: 4,
            move_budget: 256,
        }
    }
}

/// Profile weights on a function's layout-relevant CFG edges.
///
/// `out[b]` lists `(successor, weight)` pairs for block `b` — at most
/// two entries (a branch's arms) — in a fixed order, so every consumer
/// iterates deterministically. Indirect jumps and returns contribute no
/// edges: the VM prices an indirect jump identically wherever its
/// targets sit.
#[derive(Clone, Debug, Default)]
pub struct EdgeWeights {
    out: Vec<Vec<(BlockId, u64)>>,
}

impl EdgeWeights {
    /// Derive edge weights from a run's per-block `[executions, taken]`
    /// frequencies for this function (`br_vm::RunOutcome::block_counts`
    /// rows, summed over the training inputs by the caller).
    pub fn from_block_counts(f: &Function, counts: &[[u64; 2]]) -> EdgeWeights {
        let mut out = vec![Vec::new(); f.blocks.len()];
        for (bi, b) in f.blocks.iter().enumerate() {
            let [freq, taken] = counts.get(bi).copied().unwrap_or([0, 0]);
            match &b.term {
                Terminator::Branch {
                    taken: t,
                    not_taken: nt,
                    ..
                } => {
                    out[bi].push((*t, taken));
                    out[bi].push((*nt, freq.saturating_sub(taken)));
                }
                Terminator::Jump(t) => out[bi].push((*t, freq)),
                Terminator::IndirectJump { .. } | Terminator::Return(_) => {}
            }
        }
        EdgeWeights { out }
    }

    /// Successor edges of `b`, heaviest first (ties: successor id).
    pub fn edges_from(&self, b: BlockId) -> &[(BlockId, u64)] {
        self.out.get(b.index()).map_or(&[], |v| v)
    }

    /// Every `(src, dst, weight)` edge, in block order.
    pub fn all_edges(&self) -> impl Iterator<Item = (BlockId, BlockId, u64)> + '_ {
        self.out.iter().enumerate().flat_map(|(bi, edges)| {
            edges
                .iter()
                .map(move |&(dst, w)| (BlockId(bi as u32), dst, w))
        })
    }

    /// Total weight across all edges; zero means the function never ran
    /// under training and ext-TSP has nothing to optimize.
    pub fn total(&self) -> u64 {
        self.out
            .iter()
            .flat_map(|v| v.iter().map(|&(_, w)| w))
            .sum()
    }
}

/// What [`layout_function`] decided for one function.
#[derive(Clone, Debug)]
pub struct LayoutOutcome {
    /// ext-TSP score of the order the function arrived with (the greedy
    /// chainer's, when called from the pipeline).
    pub incumbent_score: u128,
    /// Score of the order the function left with. Always
    /// `>= incumbent_score`.
    pub final_score: u128,
    /// The block permutation applied (old ids in new storage order), or
    /// `None` when the incumbent was kept.
    pub applied: Option<Vec<BlockId>>,
}

/// Run the ext-TSP pass on one function: form profile-weighted chains
/// with lookahead, refine by bounded local search, and apply the result
/// — but only if it scores at least the incumbent order, so a caller
/// that laid out greedily first is guaranteed a score no worse than
/// greedy. Branch polarity is re-fixed after any permutation
/// ([`invert_branches`]), exactly as the greedy chainer does.
pub fn layout_function(
    f: &mut Function,
    weights: &EdgeWeights,
    params: &LayoutParams,
) -> LayoutOutcome {
    let n = f.blocks.len();
    let incumbent: Vec<BlockId> = f.block_ids().collect();
    let incumbent_score = score_order(f, weights, params, &incumbent);
    if n <= 2 || weights.total() == 0 {
        // One placement choice (entry is pinned) or no profile signal:
        // the incumbent stands.
        return LayoutOutcome {
            incumbent_score,
            final_score: incumbent_score,
            applied: None,
        };
    }
    let mut order = chain::form_chains(f, weights, params);
    refine::refine(f, weights, params, &mut order);
    let final_score = score_order(f, weights, params, &order);
    if final_score <= incumbent_score {
        return LayoutOutcome {
            incumbent_score,
            final_score: incumbent_score,
            applied: None,
        };
    }
    apply_order(f, &order);
    invert_branches(f);
    LayoutOutcome {
        incumbent_score,
        final_score,
        applied: Some(order),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_ir::{Cond, FuncBuilder, Operand};

    /// Entry branches to `cold` (taken, weight 1) or `hot` (not-taken,
    /// weight 99), but blocks are stored entry, cold, hot: the greedy
    /// *structural* order already has cold adjacent. ext-TSP must move
    /// the hot arm into the fall-through slot.
    fn hot_cold() -> (Function, EdgeWeights) {
        let mut b = FuncBuilder::new("f");
        let x = b.new_reg();
        b.set_param_regs(vec![x]);
        let e = b.entry();
        let cold = b.new_block();
        let hot = b.new_block();
        b.cmp_branch(e, x, 0i64, Cond::Eq, cold, hot);
        b.copy(cold, x, 1i64);
        b.set_term(cold, Terminator::Return(Some(Operand::Reg(x))));
        b.copy(hot, x, 2i64);
        b.set_term(hot, Terminator::Return(Some(Operand::Reg(x))));
        let f = b.finish();
        let counts = [[100, 1], [1, 0], [99, 0]];
        let w = EdgeWeights::from_block_counts(&f, &counts);
        (f, w)
    }

    #[test]
    fn weights_split_branch_arms() {
        let (_f, w) = hot_cold();
        assert_eq!(
            w.edges_from(BlockId(0)),
            &[(BlockId(1), 1), (BlockId(2), 99)]
        );
        assert_eq!(w.total(), 100);
    }

    #[test]
    fn hot_arm_becomes_fall_through() {
        let (mut f, w) = hot_cold();
        let out = layout_function(&mut f, &w, &LayoutParams::default());
        assert!(out.applied.is_some(), "must improve on cold-adjacent");
        assert!(out.final_score > out.incumbent_score);
        // The hot block (old id 2) now sits right after the entry as the
        // not-taken fall-through; the heavy edge no longer pays a jump.
        match f.blocks[0].term {
            Terminator::Branch {
                taken, not_taken, ..
            } => {
                assert_eq!(not_taken, BlockId(1), "hot arm must fall through");
                assert_eq!(taken, BlockId(2));
            }
            ref t => panic!("unexpected {t:?}"),
        }
    }

    #[test]
    fn result_never_scores_below_incumbent() {
        let (mut f, w) = hot_cold();
        // Pre-apply the optimum, then ask again: nothing to gain, so the
        // incumbent must be kept verbatim.
        layout_function(&mut f, &w, &LayoutParams::default());
        let counts = [[100, 1], [99, 0], [1, 0]]; // ids permuted with blocks
        let w2 = EdgeWeights::from_block_counts(&f, &counts);
        let before = f.clone();
        let out = layout_function(&mut f, &w2, &LayoutParams::default());
        assert!(out.applied.is_none());
        assert_eq!(out.final_score, out.incumbent_score);
        assert_eq!(format!("{before:?}"), format!("{f:?}"));
    }

    #[test]
    fn zero_weight_functions_are_left_alone() {
        let (mut f, _) = hot_cold();
        let w = EdgeWeights::from_block_counts(&f, &[[0, 0], [0, 0], [0, 0]]);
        let out = layout_function(&mut f, &w, &LayoutParams::default());
        assert!(out.applied.is_none());
    }

    #[test]
    fn layout_preserves_semantics() {
        use br_vm::{run, VmOptions};
        let mut b = FuncBuilder::new("main");
        let x = b.new_reg();
        let e = b.entry();
        let neg = b.new_block();
        let pos = b.new_block();
        b.copy(e, x, -9i64);
        b.cmp_branch(e, x, 0i64, Cond::Ge, pos, neg);
        b.un(neg, br_ir::UnOp::Neg, x, x);
        b.set_term(neg, Terminator::Jump(pos));
        b.set_term(pos, Terminator::Return(Some(Operand::Reg(x))));
        let mut f = b.finish();
        let counts = [[1, 1], [1, 0], [1, 0]];
        let w = EdgeWeights::from_block_counts(&f, &counts);
        layout_function(&mut f, &w, &LayoutParams::default());
        br_ir::verify_function(&f, None).unwrap();
        let mut m = br_ir::Module::new();
        m.main = Some(m.add_function(f));
        assert_eq!(run(&m, b"", &VmOptions::default()).unwrap().exit, 9);
    }

    #[test]
    fn mode_names_round_trip() {
        for mode in LayoutMode::ALL {
            assert_eq!(LayoutMode::parse(mode.name()), Some(mode));
        }
        assert_eq!(LayoutMode::parse("bogus"), None);
    }
}
