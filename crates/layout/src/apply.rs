//! Applying a block order to a function: physical permutation, reference
//! renumbering, branch-polarity fixup, and the id-stable tail variant
//! the adaptive runtime uses on freshly spliced replicas.

use br_ir::{BlockId, Function, Terminator};

/// Physically permute `f`'s blocks into `order` (old ids in new storage
/// order) and renumber every successor reference and the entry. `order`
/// must be a permutation of the function's block ids.
pub fn apply_order(f: &mut Function, order: &[BlockId]) {
    let mut new_id = vec![BlockId(0); f.blocks.len()];
    for (new_idx, &old) in order.iter().enumerate() {
        new_id[old.index()] = BlockId(new_idx as u32);
    }
    let old_blocks = std::mem::take(&mut f.blocks);
    let mut slots: Vec<Option<br_ir::Block>> = old_blocks.into_iter().map(Some).collect();
    for &old in order {
        let mut b = slots[old.index()].take().expect("each block placed once");
        b.term.map_successors(|s| new_id[s.index()]);
        f.blocks.push(b);
    }
    f.entry = new_id[f.entry.index()];
}

/// Where a branch's taken arm is adjacent but its not-taken arm is not,
/// negate the condition and swap the arms so the adjacent block becomes
/// the free fall-through. Identical to the fixup the greedy chainer
/// runs; idempotent.
pub fn invert_branches(f: &mut Function) {
    for i in 0..f.blocks.len() {
        if let Terminator::Branch {
            cond,
            taken,
            not_taken,
        } = f.blocks[i].term
        {
            let next = BlockId(i as u32 + 1);
            if not_taken != next && taken == next {
                f.blocks[i].term = Terminator::Branch {
                    cond: cond.negate(),
                    taken: not_taken,
                    not_taken: taken,
                };
            }
        }
    }
}

/// Re-lay-out only the blocks at indices `>= start`, leaving every block
/// below `start` at its id and position.
///
/// This is the layout pass the adaptive runtime can afford: a hot swap
/// appends a replica of the re-reordered sequence at the end of the
/// function, and blocks below `start` are referenced by live profile
/// plans and sequence heads whose ids must not move — but the appended
/// tail is unreferenced except through the head's terminator, so it can
/// be chained freely. Blocks are chained structurally along preferred
/// fall-through edges (a branch prefers its not-taken arm), seeded from
/// `start` so the replica's entry keeps its position; chains never
/// follow edges out of the tail. Branch polarity is *not* touched: the
/// spliced structure is certified after this runs, and the certificate
/// covers exactly the emitted conditions.
pub fn reposition_tail(f: &mut Function, start: usize) {
    let n = f.blocks.len();
    if start >= n {
        return;
    }
    let mut placed = vec![false; n - start];
    let mut tail: Vec<BlockId> = Vec::with_capacity(n - start);
    for seed in start..n {
        let mut cur = seed;
        while !placed[cur - start] {
            placed[cur - start] = true;
            tail.push(BlockId(cur as u32));
            let next = match &f.blocks[cur].term {
                Terminator::Jump(t) => Some(t.index()),
                Terminator::Branch {
                    taken, not_taken, ..
                } => {
                    let nt = not_taken.index();
                    if nt >= start && !placed[nt - start] {
                        Some(nt)
                    } else {
                        Some(taken.index())
                    }
                }
                Terminator::IndirectJump { targets, .. } => targets.first().map(|t| t.index()),
                Terminator::Return(_) => None,
            };
            match next {
                Some(t) if t >= start && !placed[t - start] => cur = t,
                _ => break,
            }
        }
    }
    debug_assert_eq!(tail.len(), n - start);
    let order: Vec<BlockId> = (0..start as u32).map(BlockId).chain(tail).collect();
    apply_order(f, &order);
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_ir::{Cond, FuncBuilder, Operand};

    #[test]
    fn apply_order_renumbers_and_moves_entry() {
        let mut b = FuncBuilder::new("f");
        let e = b.entry();
        let x = b.new_block();
        let y = b.new_block();
        b.set_term(e, Terminator::Jump(y));
        b.set_term(y, Terminator::Jump(x));
        b.set_term(x, Terminator::Return(None));
        let mut f = b.finish();
        apply_order(&mut f, &[BlockId(0), BlockId(2), BlockId(1)]);
        assert_eq!(f.entry, BlockId(0));
        assert_eq!(f.blocks[0].term, Terminator::Jump(BlockId(1)));
        assert_eq!(f.blocks[1].term, Terminator::Jump(BlockId(2)));
        br_ir::verify_function(&f, None).unwrap();
    }

    #[test]
    fn tail_reposition_leaves_prefix_ids_alone() {
        // Prefix: entry jumps into the tail. The tail's chain head sits
        // at `start` but its successors were appended out of order
        // (h -> tb -> ta with ta stored before tb); repositioning must
        // straighten the chain without renumbering the prefix.
        let mut b = FuncBuilder::new("f");
        let x = b.new_reg();
        let e = b.entry();
        let pre = b.new_block(); // id 1, prefix
        let h = b.new_block(); // id 2, tail chain head
        let ta = b.new_block(); // id 3, tail: chain end, stored first
        let tb = b.new_block(); // id 4, tail: chain middle, stored last
        b.copy(e, x, 1i64);
        b.set_term(e, Terminator::Jump(pre));
        b.set_term(pre, Terminator::Jump(h));
        b.set_term(h, Terminator::Jump(tb));
        b.set_term(tb, Terminator::Jump(ta));
        b.set_term(ta, Terminator::Return(Some(Operand::Reg(x))));
        let mut f = b.finish();
        reposition_tail(&mut f, 2);
        // Prefix untouched, ids stable, head still at `start`.
        assert_eq!(f.entry, BlockId(0));
        assert_eq!(f.blocks[0].term, Terminator::Jump(BlockId(1)));
        assert_eq!(f.blocks[1].term, Terminator::Jump(BlockId(2)));
        // The tail chain now falls through: h -> tb -> ta.
        assert_eq!(f.blocks[2].term, Terminator::Jump(BlockId(3)));
        assert_eq!(f.blocks[3].term, Terminator::Jump(BlockId(4)));
        assert!(matches!(f.blocks[4].term, Terminator::Return(_)));
        br_ir::verify_function(&f, None).unwrap();
    }

    #[test]
    fn tail_reposition_never_follows_edges_into_the_prefix() {
        let mut b = FuncBuilder::new("f");
        let e = b.entry();
        let t1 = b.new_block();
        let t2 = b.new_block();
        b.set_term(e, Terminator::Jump(t1));
        b.set_term(t1, Terminator::Jump(e)); // backward edge to prefix
        b.set_term(t2, Terminator::Return(None));
        let mut f = b.finish();
        let before = f.clone();
        reposition_tail(&mut f, 1);
        // Nothing to improve: t1 chains to the prefix (not followed),
        // t2 stays after it. Order unchanged.
        assert_eq!(format!("{before:?}"), format!("{f:?}"));
    }

    #[test]
    fn tail_reposition_with_branches_prefers_not_taken() {
        let mut b = FuncBuilder::new("f");
        let x = b.new_reg();
        b.set_param_regs(vec![x]);
        let e = b.entry();
        let h = b.new_block(); // tail head, id 1
        let cold = b.new_block(); // id 2, taken arm
        let hot = b.new_block(); // id 3, not-taken arm
        b.set_term(e, Terminator::Jump(h));
        b.cmp_branch(h, x, 0i64, Cond::Eq, cold, hot);
        b.set_term(cold, Terminator::Return(Some(Operand::Imm(0))));
        b.set_term(hot, Terminator::Return(Some(Operand::Imm(1))));
        let mut f = b.finish();
        reposition_tail(&mut f, 1);
        match f.blocks[1].term {
            Terminator::Branch { not_taken, .. } => {
                assert_eq!(not_taken, BlockId(2), "not-taken arm must fall through")
            }
            ref t => panic!("unexpected {t:?}"),
        }
        br_ir::verify_function(&f, None).unwrap();
    }
}
