//! Profile-weighted chain formation with merge lookahead
//! (Newell & Pupyrev §4).
//!
//! Every block starts as a singleton chain. Chains merge tail-to-head
//! along the heaviest profile edges; before committing a merge, the top
//! few candidates are compared with one step of lookahead — the value of
//! a merge is its edge weight *plus* the heaviest follow-on edge the
//! merged chain's new tail would enable — so a slightly lighter edge
//! that unlocks a heavy continuation wins over a greedy dead end.

use br_ir::{BlockId, Function};

use crate::{EdgeWeights, LayoutParams};

/// Form chains and concatenate them into a full block order, entry
/// first. Deterministic: edges are ranked `(weight desc, src asc, dst
/// asc)` and every tie-breaker is total.
pub(crate) fn form_chains(
    f: &Function,
    weights: &EdgeWeights,
    params: &LayoutParams,
) -> Vec<BlockId> {
    let n = f.blocks.len();
    let entry = f.entry.index();
    let mut chain_of: Vec<usize> = (0..n).collect();
    let mut chains: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();

    let mut edges: Vec<(u64, usize, usize)> = weights
        .all_edges()
        .filter(|&(s, d, w)| w > 0 && s != d)
        .map(|(s, d, w)| (w, s.index(), d.index()))
        .collect();
    edges.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));

    loop {
        // Mergeable edges in rank order: src must be its chain's tail,
        // dst a different chain's head, and the entry block can never
        // become an interior block (it must stay first overall).
        let mut cands: Vec<(u64, usize, usize)> = Vec::new();
        for &(w, s, d) in &edges {
            let (cs, cd) = (chain_of[s], chain_of[d]);
            if cs == cd || d == entry {
                continue;
            }
            if *chains[cs].last().expect("nonempty chain") != s || chains[cd][0] != d {
                continue;
            }
            cands.push((w, s, d));
            if cands.len() >= params.lookahead.max(1) {
                break;
            }
        }
        let Some(&first) = cands.first() else {
            break;
        };
        // One-step lookahead over the candidate window.
        let mut best = first;
        let mut best_val = 0u128;
        for &(w, s, d) in &cands {
            let cd = chain_of[d];
            let tail = *chains[cd].last().expect("nonempty chain");
            let follow = weights
                .edges_from(BlockId(tail as u32))
                .iter()
                .filter(|&&(fd, fw)| {
                    let cf = chain_of[fd.index()];
                    fw > 0
                        && cf != chain_of[s]
                        && cf != cd
                        && chains[cf][0] == fd.index()
                        && fd.index() != entry
                })
                .map(|&(_, fw)| fw)
                .max()
                .unwrap_or(0);
            let val = w as u128 + follow as u128;
            if val > best_val {
                best_val = val;
                best = (w, s, d);
            }
        }
        let (_, s, d) = best;
        let (cs, cd) = (chain_of[s], chain_of[d]);
        let moved = std::mem::take(&mut chains[cd]);
        for &b in &moved {
            chain_of[b] = cs;
        }
        chains[cs].extend(moved);
    }

    concat_chains(f, weights, &chains, chain_of[entry])
}

/// Concatenate chains: the entry chain first, then repeatedly the chain
/// whose head receives the heaviest edge from any already-placed block
/// (ties: smaller head id); chains no placed block reaches follow in
/// head-id order — unreachable and never-profiled blocks keep a stable
/// position. Structural successors count as weight-0 edges so cold
/// chains still prefer a spot after a block that targets them.
fn concat_chains(
    f: &Function,
    weights: &EdgeWeights,
    chains: &[Vec<usize>],
    entry_chain: usize,
) -> Vec<BlockId> {
    let n = f.blocks.len();
    let mut order: Vec<BlockId> = Vec::with_capacity(n);
    let mut placed_chain = vec![false; chains.len()];
    let mut remaining: Vec<usize> = (0..chains.len())
        .filter(|&c| c != entry_chain && !chains[c].is_empty())
        .collect();
    placed_chain[entry_chain] = true;
    order.extend(chains[entry_chain].iter().map(|&b| BlockId(b as u32)));

    while !remaining.is_empty() {
        // (weight, reached) of each remaining chain's head from the
        // placed region.
        let mut pick: Option<(u64, bool, usize, usize)> = None; // (w, reached, head, idx)
        for (idx, &c) in remaining.iter().enumerate() {
            let head = chains[c][0];
            let mut w = 0u64;
            let mut reached = false;
            for &p in &order {
                for &(dst, ew) in weights.edges_from(p) {
                    if dst.index() == head {
                        reached = true;
                        w = w.max(ew);
                    }
                }
                if f.blocks[p.index()]
                    .term
                    .successors()
                    .iter()
                    .any(|t| t.index() == head)
                {
                    reached = true;
                }
            }
            let better = match pick {
                None => true,
                Some((bw, br, bh, _)) => {
                    (w, reached, std::cmp::Reverse(head)) > (bw, br, std::cmp::Reverse(bh))
                }
            };
            if better {
                pick = Some((w, reached, head, idx));
            }
        }
        let (_, _, _, idx) = pick.expect("remaining is nonempty");
        let c = remaining.remove(idx);
        order.extend(chains[c].iter().map(|&b| BlockId(b as u32)));
    }
    debug_assert_eq!(order.len(), n);
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LayoutParams;
    use br_ir::{Cond, FuncBuilder, Operand, Terminator};

    #[test]
    fn heaviest_path_forms_one_chain() {
        // e -> a (90) / b (10); a -> c (90). Chain must be e,a,c then b.
        let mut bld = FuncBuilder::new("f");
        let x = bld.new_reg();
        bld.set_param_regs(vec![x]);
        let e = bld.entry();
        let a = bld.new_block();
        let b = bld.new_block();
        let c = bld.new_block();
        bld.cmp_branch(e, x, 0i64, Cond::Eq, b, a);
        bld.set_term(a, Terminator::Jump(c));
        bld.set_term(b, Terminator::Return(Some(Operand::Imm(0))));
        bld.set_term(c, Terminator::Return(Some(Operand::Reg(x))));
        let f = bld.finish();
        let counts = [[100, 10], [90, 0], [10, 0], [90, 0]];
        let w = EdgeWeights::from_block_counts(&f, &counts);
        let order = form_chains(&f, &w, &LayoutParams::default());
        assert_eq!(order, vec![BlockId(0), BlockId(1), BlockId(3), BlockId(2)]);
    }

    #[test]
    fn lookahead_prefers_the_edge_with_a_continuation() {
        // e can fall into a (w 50) or b (w 50). a continues into c with
        // weight 49; b is a dead end. Lookahead must pick a first even
        // though the immediate weights tie.
        let mut bld = FuncBuilder::new("f");
        let x = bld.new_reg();
        bld.set_param_regs(vec![x]);
        let e = bld.entry();
        let b = bld.new_block();
        let a = bld.new_block();
        let c = bld.new_block();
        bld.cmp_branch(e, x, 0i64, Cond::Eq, b, a);
        bld.set_term(a, Terminator::Jump(c));
        bld.set_term(b, Terminator::Return(Some(Operand::Imm(0))));
        bld.set_term(c, Terminator::Return(Some(Operand::Reg(x))));
        let f = bld.finish();
        // b is block 1 (the taken arm, lower id); a is block 2.
        let counts = [[100, 50], [50, 0], [49, 0], [49, 0]];
        let w = EdgeWeights::from_block_counts(&f, &counts);
        let order = form_chains(&f, &w, &LayoutParams::default());
        let pos_a = order.iter().position(|&x| x == BlockId(2)).unwrap();
        let pos_b = order.iter().position(|&x| x == BlockId(1)).unwrap();
        assert!(
            pos_a < pos_b,
            "lookahead must chain through a (order {order:?})"
        );
    }

    #[test]
    fn entry_chain_is_always_first() {
        let mut bld = FuncBuilder::new("f");
        let e = bld.entry();
        let far = bld.new_block();
        bld.set_term(e, Terminator::Jump(far));
        bld.set_term(far, Terminator::Return(None));
        let f = bld.finish();
        let w = EdgeWeights::from_block_counts(&f, &[[3, 0], [3, 0]]);
        let order = form_chains(&f, &w, &LayoutParams::default());
        assert_eq!(order[0], f.entry);
    }
}
