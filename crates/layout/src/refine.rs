//! Local-search refinement: chain splitting by segment relocation,
//! bounded by a deterministic move budget.
//!
//! Chain formation commits to tail-to-head merges; relocation can undo a
//! bad commitment by splitting a chain anywhere and re-inserting the
//! split-off segment where a profile edge wants it (the 2-opt analogue
//! on block orders). Candidate targets are *edge-guided* — a segment is
//! only offered positions adjacent to one of its CFG neighbours — so the
//! move set stays proportional to the profile's edge count rather than
//! quadratic in blocks.

use br_ir::BlockId;

use crate::score::score_order;
use crate::{EdgeWeights, LayoutParams};

/// Refine `order` in place. First-improvement hill climbing: passes over
/// segment lengths 1 and 2, accepting the first move that strictly
/// raises the ext-TSP score, until a full pass finds nothing or the
/// evaluation budget ([`LayoutParams::move_budget`]) is exhausted. The
/// entry block (position 0) never moves. Deterministic by construction:
/// fixed enumeration order, integer scores, hard budget.
pub(crate) fn refine(
    f: &br_ir::Function,
    weights: &EdgeWeights,
    params: &LayoutParams,
    order: &mut Vec<BlockId>,
) {
    let n = order.len();
    if n <= 3 || params.move_budget == 0 {
        return;
    }
    let mut budget = params.move_budget;
    let mut best = score_order(f, weights, params, order);
    'passes: loop {
        let mut pos = vec![0usize; n];
        for (i, &b) in order.iter().enumerate() {
            pos[b.index()] = i;
        }
        for i in 1..n {
            for len in 1..=2usize {
                if i + len > n {
                    continue;
                }
                let head = order[i];
                let tail = order[i + len - 1];
                // Insertion points that could create a new fall-through:
                // right after a predecessor of the segment head, or right
                // before a successor of the segment tail.
                let mut targets: Vec<usize> = Vec::new();
                for (src, dst, w) in weights.all_edges() {
                    if w == 0 {
                        continue;
                    }
                    if dst == head {
                        targets.push(pos[src.index()] + 1);
                    }
                    if src == tail {
                        targets.push(pos[dst.index()]);
                    }
                }
                targets.sort_unstable();
                targets.dedup();
                for &j in &targets {
                    // Skip no-ops and positions inside the segment; the
                    // entry must stay at position 0.
                    if j == i || (j > i && j < i + len) || j == 0 {
                        continue;
                    }
                    if budget == 0 {
                        break 'passes;
                    }
                    budget -= 1;
                    let candidate = relocated(order, i, len, j);
                    let s = score_order(f, weights, params, &candidate);
                    if s > best {
                        best = s;
                        *order = candidate;
                        continue 'passes;
                    }
                }
            }
        }
        break;
    }
}

/// `order` with the segment `[i, i+len)` removed and re-inserted so its
/// head lands where position `j` (an index into the *original* order)
/// used to be.
fn relocated(order: &[BlockId], i: usize, len: usize, j: usize) -> Vec<BlockId> {
    let mut rest: Vec<BlockId> = Vec::with_capacity(order.len());
    rest.extend_from_slice(&order[..i]);
    rest.extend_from_slice(&order[i + len..]);
    let at = if j > i { j - len } else { j };
    let mut out = Vec::with_capacity(order.len());
    out.extend_from_slice(&rest[..at]);
    out.extend_from_slice(&order[i..i + len]);
    out.extend_from_slice(&rest[at..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_ir::{Cond, FuncBuilder, Operand, Terminator};

    #[test]
    fn relocation_preserves_permutation() {
        let order: Vec<BlockId> = (0..6).map(BlockId).collect();
        for i in 1..6 {
            for len in 1..=2 {
                if i + len > 6 {
                    continue;
                }
                for j in 1..6 {
                    if j == i || (j > i && j < i + len) {
                        continue;
                    }
                    let mut r = relocated(&order, i, len, j);
                    assert_eq!(r.len(), 6);
                    r.sort_by_key(|b| b.index());
                    assert_eq!(r, order, "i={i} len={len} j={j}");
                }
            }
        }
    }

    #[test]
    fn refine_fixes_a_bad_chain_commitment() {
        // Storage order strands the hot a,b chain behind a cold block:
        // e, cold, a, b with e->a (80) and a->b (80) but e->cold only
        // 20. Relocating the two-block segment [a, b] right after the
        // entry gains a heavy fall-through — the chain-split move.
        let mut bld = FuncBuilder::new("f");
        let x = bld.new_reg();
        bld.set_param_regs(vec![x]);
        let e = bld.entry();
        let cold = bld.new_block();
        let a = bld.new_block();
        let b = bld.new_block();
        bld.cmp_branch(e, x, 0i64, Cond::Eq, cold, a);
        bld.set_term(cold, Terminator::Return(Some(Operand::Imm(0))));
        bld.set_term(a, Terminator::Jump(b));
        bld.set_term(b, Terminator::Return(Some(Operand::Reg(x))));
        let f = bld.finish();
        let counts = [[100, 20], [20, 0], [80, 0], [80, 0]];
        let w = EdgeWeights::from_block_counts(&f, &counts);
        let p = LayoutParams::default();
        let mut order: Vec<BlockId> = (0..4).map(BlockId).collect();
        let before = score_order(&f, &w, &p, &order);
        refine(&f, &w, &p, &mut order);
        let after = score_order(&f, &w, &p, &order);
        assert!(after > before, "refinement found nothing: {order:?}");
        assert_eq!(
            order,
            [0, 2, 3, 1].map(BlockId).to_vec(),
            "hot chain must move into the fall-through slot"
        );
    }

    #[test]
    fn budget_zero_disables_refinement() {
        let mut bld = FuncBuilder::new("f");
        let e = bld.entry();
        let a = bld.new_block();
        let b = bld.new_block();
        let c = bld.new_block();
        bld.set_term(e, Terminator::Jump(c));
        bld.set_term(a, Terminator::Return(None));
        bld.set_term(b, Terminator::Return(None));
        bld.set_term(c, Terminator::Return(None));
        let f = bld.finish();
        let w = EdgeWeights::from_block_counts(&f, &[[9, 0], [0, 0], [0, 0], [9, 0]]);
        let p = LayoutParams {
            move_budget: 0,
            ..LayoutParams::default()
        };
        let mut order: Vec<BlockId> = (0..4).map(BlockId).collect();
        let before = order.clone();
        refine(&f, &w, &p, &mut order);
        assert_eq!(order, before);
    }
}
