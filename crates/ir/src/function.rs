//! Blocks and functions.

use std::fmt;

use crate::inst::{Inst, Operand, Reg, Terminator};

/// Identifier of a basic block within one function.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Index into the function's block vector.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// A basic block: straight-line instructions closed by one terminator.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Block {
    /// Straight-line body.
    pub insts: Vec<Inst>,
    /// The block's single control transfer.
    pub term: Terminator,
}

impl Block {
    /// An empty block ending in `term`.
    pub fn new(term: Terminator) -> Block {
        Block {
            insts: Vec::new(),
            term,
        }
    }

    /// Position of the last `Cmp` instruction, if any.
    ///
    /// The condition codes tested by a [`Terminator::Branch`] are those set
    /// by this compare (compares are the only cc-writing instruction).
    pub fn last_cmp(&self) -> Option<usize> {
        self.insts
            .iter()
            .rposition(|i| matches!(i, Inst::Cmp { .. }))
    }

    /// The operands of the final compare, if the block ends with one that
    /// reaches the terminator (i.e. the branch condition is `lhs ? rhs`).
    pub fn branch_compare(&self) -> Option<(Operand, Operand)> {
        let at = self.last_cmp()?;
        match &self.insts[at] {
            Inst::Cmp { lhs, rhs } => Some((*lhs, *rhs)),
            _ => unreachable!("last_cmp returned a non-cmp position"),
        }
    }
}

/// A function: a CFG of [`Block`]s plus register/frame bookkeeping.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Function {
    /// Human-readable name (used in diagnostics and printing).
    pub name: String,
    /// Blocks, indexed by [`BlockId`]. Unreachable blocks may exist until
    /// dead-code elimination runs.
    pub blocks: Vec<Block>,
    /// The entry block.
    pub entry: BlockId,
    /// Registers that receive the arguments, in order.
    pub param_regs: Vec<Reg>,
    /// Number of virtual registers used (all `Reg.0 <` this).
    pub num_regs: u32,
    /// Words of stack frame needed for local arrays.
    pub frame_size: u32,
}

impl Function {
    /// An empty function with a fresh entry block that returns.
    pub fn new(name: impl Into<String>) -> Function {
        Function {
            name: name.into(),
            blocks: vec![Block::new(Terminator::Return(None))],
            entry: BlockId(0),
            param_regs: Vec::new(),
            num_regs: 0,
            frame_size: 0,
        }
    }

    /// Immutable access to a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Mutable access to a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// Append a new block and return its id.
    pub fn add_block(&mut self, block: Block) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(block);
        id
    }

    /// Allocate a fresh virtual register.
    pub fn new_reg(&mut self) -> Reg {
        let r = Reg(self.num_regs);
        self.num_regs += 1;
        r
    }

    /// All block ids, in storage order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Total instruction count (static size), counting each terminator as
    /// one instruction, as a machine branch/jump would be.
    pub fn static_size(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len() + 1).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Cond, Operand};

    #[test]
    fn block_last_cmp_and_branch_compare() {
        let mut b = Block::new(Terminator::branch(Cond::Eq, BlockId(1), BlockId(2)));
        assert_eq!(b.last_cmp(), None);
        assert_eq!(b.branch_compare(), None);
        b.insts.push(Inst::Cmp {
            lhs: Operand::Reg(Reg(0)),
            rhs: Operand::Imm(10),
        });
        b.insts.push(Inst::Copy {
            dst: Reg(1),
            src: Operand::Imm(0),
        });
        assert_eq!(b.last_cmp(), Some(0));
        assert_eq!(
            b.branch_compare(),
            Some((Operand::Reg(Reg(0)), Operand::Imm(10)))
        );
    }

    #[test]
    fn function_grows_blocks_and_regs() {
        let mut f = Function::new("f");
        assert_eq!(f.entry, BlockId(0));
        let r0 = f.new_reg();
        let r1 = f.new_reg();
        assert_ne!(r0, r1);
        let b = f.add_block(Block::new(Terminator::Return(None)));
        assert_eq!(b, BlockId(1));
        assert_eq!(f.block_ids().count(), 2);
        assert_eq!(f.static_size(), 2);
    }
}
