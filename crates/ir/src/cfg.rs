//! Control-flow-graph utilities: successor/predecessor maps and traversal
//! orders over a [`Function`]'s blocks.

use std::collections::{HashSet, VecDeque};

use crate::function::{BlockId, Function};

/// Predecessor lists for every block, indexed by block index.
///
/// A block appears once per incoming *edge*, so a two-way branch whose
/// arms both target `b` contributes two entries (this matters to passes
/// that count or rewrite edges).
pub fn predecessors(f: &Function) -> Vec<Vec<BlockId>> {
    let mut preds = vec![Vec::new(); f.blocks.len()];
    for id in f.block_ids() {
        for succ in f.block(id).term.successors() {
            preds[succ.index()].push(id);
        }
    }
    preds
}

/// The set of blocks reachable from the entry.
pub fn reachable(f: &Function) -> HashSet<BlockId> {
    let mut seen = HashSet::new();
    let mut work = VecDeque::new();
    work.push_back(f.entry);
    seen.insert(f.entry);
    while let Some(b) = work.pop_front() {
        for s in f.block(b).term.successors() {
            if seen.insert(s) {
                work.push_back(s);
            }
        }
    }
    seen
}

/// Blocks in postorder of a depth-first search from the entry
/// (unreachable blocks omitted).
pub fn postorder(f: &Function) -> Vec<BlockId> {
    let mut out = Vec::with_capacity(f.blocks.len());
    let mut seen = vec![false; f.blocks.len()];
    // Iterative DFS carrying an explicit successor cursor.
    let mut stack: Vec<(BlockId, usize)> = vec![(f.entry, 0)];
    seen[f.entry.index()] = true;
    while let Some(&mut (b, ref mut next)) = stack.last_mut() {
        let succs = f.block(b).term.successors();
        if *next < succs.len() {
            let s = succs[*next];
            *next += 1;
            if !seen[s.index()] {
                seen[s.index()] = true;
                stack.push((s, 0));
            }
        } else {
            out.push(b);
            stack.pop();
        }
    }
    out
}

/// Blocks in reverse postorder (entry first; a topological order when the
/// CFG is acyclic).
pub fn reverse_postorder(f: &Function) -> Vec<BlockId> {
    let mut po = postorder(f);
    po.reverse();
    po
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::Block;
    use crate::inst::{Cond, Terminator};

    /// entry → (b1 | b2); b1 → b3; b2 → b3; b3 → ret; b4 unreachable.
    fn diamond() -> Function {
        let mut f = Function::new("d");
        let b3 = f.add_block(Block::new(Terminator::Return(None)));
        let b1 = f.add_block(Block::new(Terminator::Jump(b3)));
        let b2 = f.add_block(Block::new(Terminator::Jump(b3)));
        f.add_block(Block::new(Terminator::Return(None))); // unreachable
        f.block_mut(f.entry).term = Terminator::branch(Cond::Eq, b1, b2);
        f
    }

    #[test]
    fn predecessors_count_edges() {
        let f = diamond();
        let preds = predecessors(&f);
        assert_eq!(preds[0], Vec::<BlockId>::new());
        assert_eq!(preds[1].len(), 2); // b3 ← b1, b2
        assert_eq!(preds[2], vec![BlockId(0)]);
        assert_eq!(preds[3], vec![BlockId(0)]);
    }

    #[test]
    fn parallel_edges_counted_twice() {
        let mut f = Function::new("p");
        let t = f.add_block(Block::new(Terminator::Return(None)));
        f.block_mut(f.entry).term = Terminator::branch(Cond::Lt, t, t);
        let preds = predecessors(&f);
        assert_eq!(preds[t.index()], vec![f.entry, f.entry]);
    }

    #[test]
    fn reachable_excludes_orphans() {
        let f = diamond();
        let r = reachable(&f);
        assert_eq!(r.len(), 4);
        assert!(!r.contains(&BlockId(4)));
    }

    #[test]
    fn reverse_postorder_starts_at_entry_and_topo_sorts() {
        let f = diamond();
        let rpo = reverse_postorder(&f);
        assert_eq!(rpo[0], f.entry);
        assert_eq!(rpo.len(), 4);
        let pos = |b: BlockId| rpo.iter().position(|&x| x == b).unwrap();
        // join block b3 = BlockId(1) comes after both arms.
        assert!(pos(BlockId(1)) > pos(BlockId(2)));
        assert!(pos(BlockId(1)) > pos(BlockId(3)));
    }

    #[test]
    fn postorder_handles_cycles() {
        let mut f = Function::new("loop");
        let body = f.add_block(Block::new(Terminator::Jump(BlockId(0))));
        f.block_mut(f.entry).term = Terminator::Jump(body);
        let po = postorder(&f);
        assert_eq!(po.len(), 2);
        assert_eq!(*po.last().unwrap(), f.entry);
    }
}
