//! Textual IR printing for debugging and golden tests.

use std::fmt::Write as _;

use crate::function::Function;
use crate::inst::{Callee, Inst, Terminator};
use crate::module::Module;

/// Render one function as readable assembly-like text.
pub fn print_function(f: &Function) -> String {
    let mut out = String::new();
    let params: Vec<String> = f.param_regs.iter().map(|r| r.to_string()).collect();
    let _ = writeln!(
        out,
        "func {}({}) regs={} frame={} {{",
        f.name,
        params.join(", "),
        f.num_regs,
        f.frame_size
    );
    for id in f.block_ids() {
        let b = f.block(id);
        let entry_mark = if id == f.entry { " ; entry" } else { "" };
        let _ = writeln!(out, "{id}:{entry_mark}");
        for inst in &b.insts {
            let _ = writeln!(out, "    {}", print_inst(inst));
        }
        let _ = writeln!(out, "    {}", print_term(&b.term));
    }
    let _ = writeln!(out, "}}");
    out
}

fn print_inst(inst: &Inst) -> String {
    match inst {
        Inst::Copy { dst, src } => format!("mov {dst}, {src}"),
        Inst::Bin { op, dst, lhs, rhs } => {
            format!("{} {dst}, {lhs}, {rhs}", op.mnemonic())
        }
        Inst::Un { op, dst, src } => format!("{} {dst}, {src}", op.mnemonic()),
        Inst::Cmp { lhs, rhs } => format!("cmp {lhs}, {rhs}"),
        Inst::Load { dst, base, index } => format!("ld {dst}, [{base}+{index}]"),
        Inst::Store { base, index, src } => format!("st [{base}+{index}], {src}"),
        Inst::FrameAddr { dst, offset } => format!("lea {dst}, frame+{offset}"),
        Inst::Call { dst, callee, args } => {
            let args: Vec<String> = args.iter().map(|a| a.to_string()).collect();
            let callee = match callee {
                Callee::Func(id) => format!("{id:?}"),
                Callee::Intrinsic(i) => i.name().to_string(),
            };
            match dst {
                Some(d) => format!("call {d}, {callee}({})", args.join(", ")),
                None => format!("call {callee}({})", args.join(", ")),
            }
        }
        Inst::ProfileRanges { seq, var } => format!("profile {seq:?}, {var}"),
        Inst::ProfileOutcomes { seq, conds } => {
            let cs: Vec<String> = conds
                .iter()
                .map(|(l, r, c)| format!("{l} {} {r}", c.mnemonic()))
                .collect();
            format!("profile-outcomes {seq:?} [{}]", cs.join(", "))
        }
    }
}

fn print_term(term: &Terminator) -> String {
    match term {
        Terminator::Branch {
            cond,
            taken,
            not_taken,
        } => format!("{} {taken} else {not_taken}", cond.mnemonic()),
        Terminator::Jump(t) => format!("jmp {t}"),
        Terminator::IndirectJump { index, targets } => {
            let ts: Vec<String> = targets.iter().map(|t| t.to_string()).collect();
            format!("ijmp {index}, [{}]", ts.join(", "))
        }
        Terminator::Return(Some(v)) => format!("ret {v}"),
        Terminator::Return(None) => "ret".to_string(),
    }
}

/// Render a whole module. The output is complete enough to be read back
/// by [`crate::parse_module`] (globals with initializers, profile plans,
/// and the `main` designation included).
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    for g in &m.globals {
        let init: Vec<String> = g.init.iter().map(|v| v.to_string()).collect();
        let _ = writeln!(
            out,
            "global {} @{} size={} init=[{}]",
            g.name,
            g.addr,
            g.size,
            init.join(", ")
        );
    }
    for (i, plan) in m.profile_plans.iter().enumerate() {
        match &plan.kind {
            crate::module::PlanKind::Ranges(ranges) => {
                let rs: Vec<String> = ranges
                    .iter()
                    .map(|(lo, hi)| format!("{lo}..{hi}"))
                    .collect();
                let _ = writeln!(
                    out,
                    "plan seq{i} func={} head={} ranges=[{}]",
                    plan.func.0,
                    plan.head.0,
                    rs.join(", ")
                );
            }
            crate::module::PlanKind::Outcomes(n) => {
                let _ = writeln!(
                    out,
                    "plan seq{i} func={} head={} outcomes={n}",
                    plan.func.0, plan.head.0
                );
            }
        }
    }
    if let Some(main) = m.main {
        let _ = writeln!(out, "main {main:?}");
    }
    for f in &m.functions {
        out.push_str(&print_function(f));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::inst::{Cond, Operand, Reg};

    #[test]
    fn printed_function_mentions_every_block_and_inst() {
        let mut b = FuncBuilder::new("show");
        let x = b.new_reg();
        b.set_param_regs(vec![x]);
        let e = b.entry();
        let t = b.new_block();
        let f_ = b.new_block();
        b.cmp_branch(e, x, 5i64, Cond::Eq, t, f_);
        b.set_term(t, Terminator::Return(Some(Operand::Imm(1))));
        b.set_term(f_, Terminator::Return(Some(Operand::Reg(Reg(0)))));
        let text = print_function(&b.finish());
        assert!(text.contains("func show(r0)"));
        assert!(text.contains("cmp r0, 5"));
        assert!(text.contains("beq b1 else b2"));
        assert!(text.contains("ret 1"));
        assert!(text.contains("ret r0"));
    }
}
