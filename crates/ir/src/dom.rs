//! Dominator analysis and natural-loop detection.
//!
//! Implements the Cooper–Harvey–Kennedy iterative dominator algorithm
//! over the reverse postorder, plus back-edge-based natural loop
//! discovery. Used by loop-invariant code motion in `br-opt` and
//! available for any client analysis.

use std::collections::HashSet;

use crate::cfg::{predecessors, reverse_postorder};
use crate::function::{BlockId, Function};

/// Immediate-dominator tree for one function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dominators {
    /// `idom[b]` is the immediate dominator of block `b`; the entry maps
    /// to itself; unreachable blocks map to `None`.
    idom: Vec<Option<BlockId>>,
    entry: BlockId,
}

impl Dominators {
    /// Compute dominators for `f`.
    pub fn compute(f: &Function) -> Dominators {
        let rpo = reverse_postorder(f);
        let mut order_index = vec![usize::MAX; f.blocks.len()];
        for (i, &b) in rpo.iter().enumerate() {
            order_index[b.index()] = i;
        }
        let preds = predecessors(f);
        let mut idom: Vec<Option<BlockId>> = vec![None; f.blocks.len()];
        idom[f.entry.index()] = Some(f.entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                // First processed predecessor as the seed.
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b.index()] {
                    if idom[p.index()].is_none() {
                        continue; // unreachable or not yet processed
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &order_index, p, cur),
                    });
                }
                if new_idom != idom[b.index()] && new_idom.is_some() {
                    idom[b.index()] = new_idom;
                    changed = true;
                }
            }
        }
        Dominators {
            idom,
            entry: f.entry,
        }
    }

    /// The immediate dominator of `b` (`None` for the entry and for
    /// unreachable blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        match self.idom[b.index()] {
            Some(d) if b != self.entry => Some(d),
            _ => None,
        }
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.index()] {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }
}

fn intersect(idom: &[Option<BlockId>], order: &[usize], mut a: BlockId, mut b: BlockId) -> BlockId {
    while a != b {
        while order[a.index()] > order[b.index()] {
            a = idom[a.index()].expect("processed block");
        }
        while order[b.index()] > order[a.index()] {
            b = idom[b.index()].expect("processed block");
        }
    }
    a
}

/// A natural loop: the smallest set of blocks containing a back edge's
/// target (the header) and source, where every block can reach the back
/// edge without passing through the header.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NaturalLoop {
    /// Loop header (dominates every block of the loop).
    pub header: BlockId,
    /// All blocks of the loop, header included.
    pub blocks: HashSet<BlockId>,
}

impl NaturalLoop {
    /// Whether the loop contains `b`.
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.contains(&b)
    }
}

/// Find the natural loops of `f`. Loops sharing a header are merged (as
/// in classical loop analysis); results are ordered by header id.
pub fn natural_loops(f: &Function, doms: &Dominators) -> Vec<NaturalLoop> {
    let mut by_header: std::collections::BTreeMap<BlockId, HashSet<BlockId>> = Default::default();
    for b in f.block_ids() {
        if doms.idom[b.index()].is_none() {
            continue; // unreachable
        }
        for succ in f.block(b).term.successors() {
            if doms.dominates(succ, b) {
                // Back edge b -> succ: walk predecessors from b up to the
                // header.
                let blocks = by_header.entry(succ).or_default();
                blocks.insert(succ);
                let mut work = vec![b];
                while let Some(n) = work.pop() {
                    if blocks.insert(n) {
                        for &p in &predecessors(f)[n.index()] {
                            if doms.idom[p.index()].is_some() {
                                work.push(p);
                            }
                        }
                    }
                }
            }
        }
    }
    by_header
        .into_iter()
        .map(|(header, blocks)| NaturalLoop { header, blocks })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::inst::{Cond, Terminator};

    /// entry -> head; head -> (body | exit); body -> head.
    fn simple_loop() -> (Function, BlockId, BlockId, BlockId) {
        let mut b = FuncBuilder::new("loop");
        let x = b.new_reg();
        b.set_param_regs(vec![x]);
        let e = b.entry();
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.set_term(e, Terminator::Jump(head));
        b.cmp_branch(head, x, 0i64, Cond::Eq, exit, body);
        b.set_term(body, Terminator::Jump(head));
        b.set_term(exit, Terminator::Return(None));
        (b.finish(), head, body, exit)
    }

    #[test]
    fn idoms_of_a_diamond() {
        let mut b = FuncBuilder::new("d");
        let x = b.new_reg();
        b.set_param_regs(vec![x]);
        let e = b.entry();
        let l = b.new_block();
        let r = b.new_block();
        let j = b.new_block();
        b.cmp_branch(e, x, 0i64, Cond::Eq, l, r);
        b.set_term(l, Terminator::Jump(j));
        b.set_term(r, Terminator::Jump(j));
        b.set_term(j, Terminator::Return(None));
        let f = b.finish();
        let doms = Dominators::compute(&f);
        assert_eq!(doms.idom(l), Some(e));
        assert_eq!(doms.idom(r), Some(e));
        assert_eq!(doms.idom(j), Some(e), "join dominated by the fork");
        assert!(doms.dominates(e, j));
        assert!(!doms.dominates(l, j));
        assert!(doms.dominates(j, j), "reflexive");
    }

    #[test]
    fn entry_has_no_idom() {
        let (f, ..) = simple_loop();
        let doms = Dominators::compute(&f);
        assert_eq!(doms.idom(f.entry), None);
    }

    #[test]
    fn natural_loop_found_with_correct_blocks() {
        let (f, head, body, exit) = simple_loop();
        let doms = Dominators::compute(&f);
        let loops = natural_loops(&f, &doms);
        assert_eq!(loops.len(), 1);
        let l = &loops[0];
        assert_eq!(l.header, head);
        assert!(l.contains(head) && l.contains(body));
        assert!(!l.contains(exit) && !l.contains(f.entry));
    }

    #[test]
    fn nested_loops_are_separate() {
        // outer: h1 -> (h2 | exit); inner: h2 -> (b2 | back-to-h1);
        // b2 -> h2.
        let mut b = FuncBuilder::new("nest");
        let x = b.new_reg();
        b.set_param_regs(vec![x]);
        let e = b.entry();
        let h1 = b.new_block();
        let h2 = b.new_block();
        let b2 = b.new_block();
        let exit = b.new_block();
        b.set_term(e, Terminator::Jump(h1));
        b.cmp_branch(h1, x, 0i64, Cond::Eq, exit, h2);
        b.cmp_branch(h2, x, 1i64, Cond::Eq, h1, b2);
        b.set_term(b2, Terminator::Jump(h2));
        b.set_term(exit, Terminator::Return(None));
        let f = b.finish();
        let doms = Dominators::compute(&f);
        let loops = natural_loops(&f, &doms);
        assert_eq!(loops.len(), 2);
        let outer = loops.iter().find(|l| l.header == h1).unwrap();
        let inner = loops.iter().find(|l| l.header == h2).unwrap();
        assert!(outer.contains(h2) && outer.contains(b2));
        assert!(inner.contains(b2) && !inner.contains(h1));
    }

    #[test]
    fn unreachable_blocks_do_not_confuse_analysis() {
        let (mut f, head, ..) = simple_loop();
        // Unreachable block pointing into the loop.
        f.add_block(crate::function::Block::new(Terminator::Jump(head)));
        let doms = Dominators::compute(&f);
        let loops = natural_loops(&f, &doms);
        assert_eq!(loops.len(), 1);
    }
}
