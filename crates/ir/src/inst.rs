//! Instruction set: operands, ALU operations, compares, calls, memory, and
//! block terminators.

use std::fmt;

use crate::function::BlockId;
use crate::module::{FuncId, SeqId};

/// A virtual register.
///
/// Functions use an unbounded supply of virtual registers; the interpreter
/// gives each call frame its own register file. Register 0..k hold the
/// incoming parameters (see [`crate::Function::param_regs`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u32);

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Either a register or an immediate constant.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Value of a virtual register.
    Reg(Reg),
    /// Immediate signed constant.
    Imm(i64),
}

impl Operand {
    /// The register this operand reads, if any.
    pub fn reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }

    /// The immediate this operand carries, if any.
    pub fn imm(self) -> Option<i64> {
        match self {
            Operand::Reg(_) => None,
            Operand::Imm(i) => Some(i),
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(i: i64) -> Self {
        Operand::Imm(i)
    }
}

impl fmt::Debug for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(i) => write!(f, "{i}"),
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Binary ALU operation. All arithmetic is wrapping two's-complement on
/// `i64`; division and remainder by zero trap at run time.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
}

impl BinOp {
    /// Mnemonic used by the printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
        }
    }

    /// Evaluate the operation on constants. Returns `None` for division or
    /// remainder by zero (which the interpreter treats as a trap).
    pub fn eval(self, a: i64, b: i64) -> Option<i64> {
        Some(match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 {
                    return None;
                }
                a.wrapping_div(b)
            }
            BinOp::Rem => {
                if b == 0 {
                    return None;
                }
                a.wrapping_rem(b)
            }
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl((b & 63) as u32),
            BinOp::Shr => a.wrapping_shr((b & 63) as u32),
        })
    }
}

/// Unary ALU operation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Bitwise complement.
    Not,
}

impl UnOp {
    /// Mnemonic used by the printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnOp::Neg => "neg",
            UnOp::Not => "not",
        }
    }

    /// Evaluate the operation on a constant.
    pub fn eval(self, a: i64) -> i64 {
        match self {
            UnOp::Neg => a.wrapping_neg(),
            UnOp::Not => !a,
        }
    }
}

/// Condition code tested by a conditional branch, in signed comparison
/// semantics, mirroring SPARC's `be/bne/bl/ble/bg/bge`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Cond {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl Cond {
    /// Mnemonic used by the printer (`beq`, `bne`, ...).
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "beq",
            Cond::Ne => "bne",
            Cond::Lt => "blt",
            Cond::Le => "ble",
            Cond::Gt => "bgt",
            Cond::Ge => "bge",
        }
    }

    /// The condition that is true exactly when `self` is false.
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::Ge => Cond::Lt,
        }
    }

    /// The condition with operand order swapped: `a ? b` ⇔ `b ?.swap() a`.
    pub fn swap(self) -> Cond {
        match self {
            Cond::Eq => Cond::Eq,
            Cond::Ne => Cond::Ne,
            Cond::Lt => Cond::Gt,
            Cond::Le => Cond::Ge,
            Cond::Gt => Cond::Lt,
            Cond::Ge => Cond::Le,
        }
    }

    /// Evaluate the condition for `lhs ? rhs`.
    pub fn eval(self, lhs: i64, rhs: i64) -> bool {
        match self {
            Cond::Eq => lhs == rhs,
            Cond::Ne => lhs != rhs,
            Cond::Lt => lhs < rhs,
            Cond::Le => lhs <= rhs,
            Cond::Gt => lhs > rhs,
            Cond::Ge => lhs >= rhs,
        }
    }
}

/// Built-in runtime operations, standing in for the C run-time library
/// calls the paper's benchmark programs make.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Intrinsic {
    /// Read the next byte of input; `-1` at end of input.
    GetChar,
    /// Write one byte of output.
    PutChar,
    /// Write a decimal integer to the output.
    PutInt,
    /// Abort execution with the given error code (run-time trap).
    Abort,
}

impl Intrinsic {
    /// Name used by the printer and the front end.
    pub fn name(self) -> &'static str {
        match self {
            Intrinsic::GetChar => "getchar",
            Intrinsic::PutChar => "putchar",
            Intrinsic::PutInt => "putint",
            Intrinsic::Abort => "abort",
        }
    }

    /// Number of arguments the intrinsic expects.
    pub fn arity(self) -> usize {
        match self {
            Intrinsic::GetChar => 0,
            Intrinsic::PutChar | Intrinsic::PutInt | Intrinsic::Abort => 1,
        }
    }
}

/// Call target: a user function or a runtime intrinsic.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Callee {
    Func(FuncId),
    Intrinsic(Intrinsic),
}

/// A non-terminating instruction.
///
/// Memory is word-addressed: addresses index a flat array of `i64` cells.
/// Global data lives at low addresses; each call frame's local arrays are
/// placed above the caller's (see [`crate::Function::frame_size`]).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Inst {
    /// `dst = src`.
    Copy { dst: Reg, src: Operand },
    /// `dst = lhs op rhs`.
    Bin {
        op: BinOp,
        dst: Reg,
        lhs: Operand,
        rhs: Operand,
    },
    /// `dst = op src`.
    Un { op: UnOp, dst: Reg, src: Operand },
    /// Set the condition codes from `lhs - rhs` (SPARC `cmp`).
    Cmp { lhs: Operand, rhs: Operand },
    /// `dst = memory[base + index]`.
    Load {
        dst: Reg,
        base: Operand,
        index: Operand,
    },
    /// `memory[base + index] = src`.
    Store {
        base: Operand,
        index: Operand,
        src: Operand,
    },
    /// `dst = &frame[offset]`: address of a local array slot.
    FrameAddr { dst: Reg, offset: u32 },
    /// Call a function or intrinsic; `dst` receives the return value.
    Call {
        dst: Option<Reg>,
        callee: Callee,
        args: Vec<Operand>,
    },
    /// Profiling probe: record which of the registered ranges of sequence
    /// `seq` contains the current value of `var`. Free of architectural
    /// cost; exists only in instrumented builds (the paper's profiling
    /// pass). See [`crate::ProfilePlan`].
    ProfileRanges { seq: SeqId, var: Reg },
    /// Profiling probe for a common-successor sequence: evaluate every
    /// listed condition and bump the counter indexed by the bitmask of
    /// outcomes (bit `i` set when condition `i` holds). Conditions are
    /// pure register/immediate compares, so early evaluation is safe.
    /// Free of architectural cost. See [`crate::PlanKind::Outcomes`].
    ProfileOutcomes {
        seq: SeqId,
        conds: Vec<(Operand, Operand, Cond)>,
    },
}

impl Inst {
    /// The register this instruction defines, if any.
    pub fn def(&self) -> Option<Reg> {
        match self {
            Inst::Copy { dst, .. }
            | Inst::Bin { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::FrameAddr { dst, .. } => Some(*dst),
            Inst::Call { dst, .. } => *dst,
            Inst::Cmp { .. }
            | Inst::Store { .. }
            | Inst::ProfileRanges { .. }
            | Inst::ProfileOutcomes { .. } => None,
        }
    }

    /// The registers this instruction reads.
    pub fn uses(&self) -> Vec<Reg> {
        let mut out = Vec::new();
        let mut push = |op: &Operand| {
            if let Operand::Reg(r) = op {
                out.push(*r);
            }
        };
        match self {
            Inst::Copy { src, .. } => push(src),
            Inst::Bin { lhs, rhs, .. } => {
                push(lhs);
                push(rhs);
            }
            Inst::Un { src, .. } => push(src),
            Inst::Cmp { lhs, rhs } => {
                push(lhs);
                push(rhs);
            }
            Inst::Load { base, index, .. } => {
                push(base);
                push(index);
            }
            Inst::Store { base, index, src } => {
                push(base);
                push(index);
                push(src);
            }
            Inst::FrameAddr { .. } => {}
            Inst::Call { args, .. } => {
                for a in args {
                    push(a);
                }
            }
            Inst::ProfileRanges { var, .. } => out.push(*var),
            Inst::ProfileOutcomes { conds, .. } => {
                for (lhs, rhs, _) in conds {
                    push(lhs);
                    push(rhs);
                }
            }
        }
        out
    }

    /// Whether the instruction has an effect beyond defining its `def()`
    /// register: memory writes, I/O, traps, or profiling side tables.
    ///
    /// This is the IR-level notion behind the paper's Definition 6 ("side
    /// effect in a range condition"): an instruction whose update can reach
    /// a use outside the range condition. Loads are *pure* here (they only
    /// define a register), but note that moving a load past a store still
    /// requires care — the reordering transformation only moves
    /// instructions en bloc, preserving their relative order, which keeps
    /// load/store ordering intact.
    pub fn has_side_effect(&self) -> bool {
        match self {
            Inst::Store { .. }
            | Inst::Call { .. }
            | Inst::ProfileRanges { .. }
            | Inst::ProfileOutcomes { .. } => true,
            Inst::Copy { .. }
            | Inst::Bin { .. }
            | Inst::Un { .. }
            | Inst::Cmp { .. }
            | Inst::Load { .. }
            | Inst::FrameAddr { .. } => false,
        }
    }

    /// Whether this instruction may trap at run time (division by zero).
    pub fn may_trap(&self) -> bool {
        matches!(
            self,
            Inst::Bin {
                op: BinOp::Div | BinOp::Rem,
                ..
            }
        )
    }
}

/// Block terminator: the single control-transfer at the end of each block.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Terminator {
    /// Conditional branch on the current condition codes.
    Branch {
        cond: Cond,
        taken: BlockId,
        not_taken: BlockId,
    },
    /// Unconditional jump.
    Jump(BlockId),
    /// Indirect jump through a dense table: transfers to
    /// `targets[index_reg]`. Front ends must emit bounds checks; an
    /// out-of-range index traps.
    IndirectJump { index: Reg, targets: Vec<BlockId> },
    /// Return from the function.
    Return(Option<Operand>),
}

impl Terminator {
    /// Convenience constructor for a conditional branch.
    pub fn branch(cond: Cond, taken: BlockId, not_taken: BlockId) -> Terminator {
        Terminator::Branch {
            cond,
            taken,
            not_taken,
        }
    }

    /// All successor blocks, in a deterministic order.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Branch {
                taken, not_taken, ..
            } => vec![*taken, *not_taken],
            Terminator::Jump(t) => vec![*t],
            Terminator::IndirectJump { targets, .. } => {
                let mut seen = Vec::new();
                for &t in targets {
                    if !seen.contains(&t) {
                        seen.push(t);
                    }
                }
                seen
            }
            Terminator::Return(_) => Vec::new(),
        }
    }

    /// Rewrite every successor through `f` (used by branch chaining and
    /// block duplication).
    pub fn map_successors(&mut self, mut f: impl FnMut(BlockId) -> BlockId) {
        match self {
            Terminator::Branch {
                taken, not_taken, ..
            } => {
                *taken = f(*taken);
                *not_taken = f(*not_taken);
            }
            Terminator::Jump(t) => *t = f(*t),
            Terminator::IndirectJump { targets, .. } => {
                for t in targets {
                    *t = f(*t);
                }
            }
            Terminator::Return(_) => {}
        }
    }

    /// The registers this terminator reads.
    pub fn uses(&self) -> Vec<Reg> {
        match self {
            Terminator::IndirectJump { index, .. } => vec![*index],
            Terminator::Return(Some(Operand::Reg(r))) => vec![*r],
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_eval_wraps_and_traps() {
        assert_eq!(BinOp::Add.eval(i64::MAX, 1), Some(i64::MIN));
        assert_eq!(BinOp::Div.eval(7, 2), Some(3));
        assert_eq!(BinOp::Div.eval(7, 0), None);
        assert_eq!(BinOp::Rem.eval(7, 0), None);
        assert_eq!(BinOp::Shl.eval(1, 3), Some(8));
    }

    #[test]
    fn cond_negate_is_involution_and_complements() {
        for c in [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Le, Cond::Gt, Cond::Ge] {
            assert_eq!(c.negate().negate(), c);
            for (a, b) in [(1, 2), (2, 1), (3, 3)] {
                assert_eq!(c.eval(a, b), !c.negate().eval(a, b));
                assert_eq!(c.eval(a, b), c.swap().eval(b, a));
            }
        }
    }

    #[test]
    fn inst_def_use_classification() {
        let i = Inst::Bin {
            op: BinOp::Add,
            dst: Reg(3),
            lhs: Operand::Reg(Reg(1)),
            rhs: Operand::Imm(5),
        };
        assert_eq!(i.def(), Some(Reg(3)));
        assert_eq!(i.uses(), vec![Reg(1)]);
        assert!(!i.has_side_effect());

        let s = Inst::Store {
            base: Operand::Reg(Reg(0)),
            index: Operand::Imm(2),
            src: Operand::Reg(Reg(4)),
        };
        assert_eq!(s.def(), None);
        assert!(s.has_side_effect());
        assert_eq!(s.uses(), vec![Reg(0), Reg(4)]);
    }

    #[test]
    fn terminator_successors_dedup() {
        let t = Terminator::IndirectJump {
            index: Reg(0),
            targets: vec![BlockId(1), BlockId(2), BlockId(1)],
        };
        assert_eq!(t.successors(), vec![BlockId(1), BlockId(2)]);
    }

    #[test]
    fn terminator_map_successors_rewrites_all() {
        let mut t = Terminator::branch(Cond::Eq, BlockId(1), BlockId(2));
        t.map_successors(|b| BlockId(b.0 + 10));
        assert_eq!(t.successors(), vec![BlockId(11), BlockId(12)]);
    }
}
