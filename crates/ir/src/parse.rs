//! A parser for the textual IR produced by [`crate::print_module`],
//! giving the IR a round-trippable serialization format: dump a module
//! with `print_module`, edit or store it, and read it back with
//! [`parse_module`].

use std::fmt;

use crate::function::{Block, BlockId, Function};
use crate::inst::{BinOp, Callee, Cond, Inst, Intrinsic, Operand, Reg, Terminator, UnOp};
use crate::module::{FuncId, GlobalData, Module, PlanKind, ProfilePlan, SeqId};

/// A textual-IR parse error with its 1-based line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseIrError {
    /// Line the error was found on.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseIrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseIrError {}

/// Parse the output of [`crate::print_module`] back into a [`Module`].
///
/// # Errors
///
/// Returns a [`ParseIrError`] naming the offending line.
pub fn parse_module(text: &str) -> Result<Module, ParseIrError> {
    Parser {
        lines: text.lines().collect(),
        at: 0,
    }
    .module()
}

struct Parser<'t> {
    lines: Vec<&'t str>,
    at: usize,
}

impl<'t> Parser<'t> {
    fn err(&self, message: impl Into<String>) -> ParseIrError {
        ParseIrError {
            line: self.at + 1,
            message: message.into(),
        }
    }

    fn peek(&mut self) -> Option<&'t str> {
        while self.at < self.lines.len() && self.lines[self.at].trim().is_empty() {
            self.at += 1;
        }
        self.lines.get(self.at).map(|l| l.trim())
    }

    fn bump(&mut self) -> Option<&'t str> {
        let line = self.peek()?;
        self.at += 1;
        Some(line)
    }

    fn module(&mut self) -> Result<Module, ParseIrError> {
        let mut m = Module::new();
        while let Some(line) = self.peek() {
            if let Some(rest) = line.strip_prefix("global ") {
                self.bump();
                m.globals.push(self.global(rest)?);
            } else if let Some(rest) = line.strip_prefix("plan ") {
                self.bump();
                m.profile_plans.push(self.plan(rest)?);
            } else if let Some(rest) = line.strip_prefix("main ") {
                self.bump();
                let id: u32 = rest
                    .trim()
                    .strip_prefix('f')
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| self.err("bad main id"))?;
                m.main = Some(FuncId(id));
            } else if line.starts_with("func ") {
                let f = self.function()?;
                m.functions.push(f);
            } else {
                return Err(self.err(format!("unexpected line `{line}`")));
            }
        }
        Ok(m)
    }

    fn global(&self, rest: &str) -> Result<GlobalData, ParseIrError> {
        // NAME @ADDR size=N init=[a, b, c]
        let mut parts = rest.splitn(2, " @");
        let name = parts.next().unwrap_or("").to_string();
        let tail = parts.next().ok_or_else(|| self.err("global missing @"))?;
        let (addr_s, tail) = tail
            .split_once(" size=")
            .ok_or_else(|| self.err("global missing size"))?;
        let (size_s, init_s) = tail
            .split_once(" init=[")
            .ok_or_else(|| self.err("global missing init"))?;
        let addr: i64 = addr_s.trim().parse().map_err(|_| self.err("bad addr"))?;
        let size: u32 = size_s.trim().parse().map_err(|_| self.err("bad size"))?;
        let init_body = init_s.trim_end_matches(']').trim();
        let init = if init_body.is_empty() {
            Vec::new()
        } else {
            init_body
                .split(',')
                .map(|v| v.trim().parse::<i64>())
                .collect::<Result<Vec<_>, _>>()
                .map_err(|_| self.err("bad init value"))?
        };
        Ok(GlobalData {
            name,
            addr,
            init,
            size,
        })
    }

    fn plan(&self, rest: &str) -> Result<ProfilePlan, ParseIrError> {
        // seqN func=F head=B ranges=[lo..hi, ...] | outcomes=N
        let fields: Vec<&str> = rest.split_whitespace().collect();
        let get =
            |prefix: &str| -> Option<&str> { fields.iter().find_map(|f| f.strip_prefix(prefix)) };
        let func: u32 = get("func=")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| self.err("plan missing func"))?;
        let head: u32 = get("head=")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| self.err("plan missing head"))?;
        let kind = if let Some(n) = get("outcomes=") {
            PlanKind::Outcomes(n.parse().map_err(|_| self.err("bad outcomes"))?)
        } else if let Some(start) = rest.find("ranges=[") {
            let body = rest[start + "ranges=[".len()..]
                .trim_end_matches(']')
                .trim();
            let mut ranges = Vec::new();
            if !body.is_empty() {
                for r in body.split(", ") {
                    let (lo, hi) = r
                        .split_once("..")
                        .ok_or_else(|| self.err("bad range in plan"))?;
                    ranges.push((
                        lo.parse().map_err(|_| self.err("bad range lo"))?,
                        hi.parse().map_err(|_| self.err("bad range hi"))?,
                    ));
                }
            }
            PlanKind::Ranges(ranges)
        } else {
            return Err(self.err("plan missing ranges/outcomes"));
        };
        Ok(ProfilePlan {
            func: FuncId(func),
            head: BlockId(head),
            kind,
        })
    }

    fn function(&mut self) -> Result<Function, ParseIrError> {
        // func NAME(r0, r1) regs=N frame=M {
        let header = self.bump().ok_or_else(|| self.err("missing header"))?;
        let rest = header
            .strip_prefix("func ")
            .ok_or_else(|| self.err("bad func header"))?;
        let open = rest.find('(').ok_or_else(|| self.err("missing ("))?;
        let close = rest.find(')').ok_or_else(|| self.err("missing )"))?;
        let name = rest[..open].to_string();
        let params: Vec<Reg> = rest[open + 1..close]
            .split(',')
            .map(str::trim)
            .filter(|p| !p.is_empty())
            .map(|p| self.reg(p))
            .collect::<Result<_, _>>()?;
        let tail = &rest[close + 1..];
        let num_regs: u32 = field(tail, "regs=").ok_or_else(|| self.err("missing regs="))?;
        let frame_size: u32 = field(tail, "frame=").ok_or_else(|| self.err("missing frame="))?;

        let mut blocks: Vec<Block> = Vec::new();
        let mut entry = BlockId(0);
        let mut current: Option<(BlockId, Vec<Inst>, Option<Terminator>)> = None;
        loop {
            let line = self
                .bump()
                .ok_or_else(|| self.err("unterminated function"))?;
            if line == "}" {
                if let Some((id, insts, term)) = current.take() {
                    self.close_block(&mut blocks, id, insts, term)?;
                }
                break;
            }
            if let Some(label) = line.strip_suffix(": ; entry") {
                let id = self.block_id(label)?;
                if let Some((pid, insts, term)) = current.take() {
                    self.close_block(&mut blocks, pid, insts, term)?;
                }
                entry = id;
                current = Some((id, Vec::new(), None));
            } else if let Some(label) = line.strip_suffix(':') {
                let id = self.block_id(label)?;
                if let Some((pid, insts, term)) = current.take() {
                    self.close_block(&mut blocks, pid, insts, term)?;
                }
                current = Some((id, Vec::new(), None));
            } else {
                let Some((_, insts, term)) = current.as_mut() else {
                    return Err(self.err("instruction outside a block"));
                };
                if term.is_some() {
                    return Err(self.err("instruction after terminator"));
                }
                match self.terminator(line)? {
                    Some(t) => *term = Some(t),
                    None => insts.push(self.inst(line)?),
                }
            }
        }
        Ok(Function {
            name,
            blocks,
            entry,
            param_regs: params,
            num_regs,
            frame_size,
        })
    }

    fn close_block(
        &self,
        blocks: &mut Vec<Block>,
        id: BlockId,
        insts: Vec<Inst>,
        term: Option<Terminator>,
    ) -> Result<(), ParseIrError> {
        if id.index() != blocks.len() {
            return Err(self.err(format!(
                "blocks must appear in order: expected b{}, got {id}",
                blocks.len()
            )));
        }
        let term = term.ok_or_else(|| self.err(format!("block {id} lacks a terminator")))?;
        blocks.push(Block { insts, term });
        Ok(())
    }

    fn block_id(&self, text: &str) -> Result<BlockId, ParseIrError> {
        text.trim()
            .strip_prefix('b')
            .and_then(|s| s.parse().ok())
            .map(BlockId)
            .ok_or_else(|| self.err(format!("bad block id `{text}`")))
    }

    fn reg(&self, text: &str) -> Result<Reg, ParseIrError> {
        text.trim()
            .strip_prefix('r')
            .and_then(|s| s.parse().ok())
            .map(Reg)
            .ok_or_else(|| self.err(format!("bad register `{text}`")))
    }

    fn operand(&self, text: &str) -> Result<Operand, ParseIrError> {
        let t = text.trim();
        if t.starts_with('r') {
            self.reg(t).map(Operand::Reg)
        } else {
            t.parse::<i64>()
                .map(Operand::Imm)
                .map_err(|_| self.err(format!("bad operand `{t}`")))
        }
    }

    /// Parse a terminator line, or `None` if the line is an instruction.
    fn terminator(&self, line: &str) -> Result<Option<Terminator>, ParseIrError> {
        let mut words = line.split_whitespace();
        let Some(head) = words.next() else {
            return Err(self.err("empty line"));
        };
        let cond = match head {
            "beq" => Some(Cond::Eq),
            "bne" => Some(Cond::Ne),
            "blt" => Some(Cond::Lt),
            "ble" => Some(Cond::Le),
            "bgt" => Some(Cond::Gt),
            "bge" => Some(Cond::Ge),
            _ => None,
        };
        if let Some(cond) = cond {
            // beq bN else bM
            let rest: Vec<&str> = words.collect();
            if rest.len() != 3 || rest[1] != "else" {
                return Err(self.err("malformed branch"));
            }
            return Ok(Some(Terminator::Branch {
                cond,
                taken: self.block_id(rest[0])?,
                not_taken: self.block_id(rest[2])?,
            }));
        }
        match head {
            "jmp" => {
                let t = words.next().ok_or_else(|| self.err("jmp target"))?;
                Ok(Some(Terminator::Jump(self.block_id(t)?)))
            }
            "ijmp" => {
                // ijmp rI, [b1, b2, ...]
                let rest = line["ijmp".len()..].trim();
                let (reg_s, table) = rest
                    .split_once(',')
                    .ok_or_else(|| self.err("ijmp needs a table"))?;
                let index = self.reg(reg_s)?;
                let body = table.trim().trim_start_matches('[').trim_end_matches(']');
                let targets = body
                    .split(',')
                    .map(|t| self.block_id(t))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Some(Terminator::IndirectJump { index, targets }))
            }
            "ret" => {
                let v = line["ret".len()..].trim();
                Ok(Some(Terminator::Return(if v.is_empty() {
                    None
                } else {
                    Some(self.operand(v)?)
                })))
            }
            _ => Ok(None),
        }
    }

    fn inst(&self, line: &str) -> Result<Inst, ParseIrError> {
        let (mnemonic, rest) = line.split_once(' ').unwrap_or((line, ""));
        let args: Vec<&str> = rest.split(',').map(str::trim).collect();
        let bin = |op: BinOp| -> Result<Inst, ParseIrError> {
            if args.len() != 3 {
                return Err(self.err(format!("{mnemonic} wants 3 operands")));
            }
            Ok(Inst::Bin {
                op,
                dst: self.reg(args[0])?,
                lhs: self.operand(args[1])?,
                rhs: self.operand(args[2])?,
            })
        };
        match mnemonic {
            "mov" => Ok(Inst::Copy {
                dst: self.reg(args.first().ok_or_else(|| self.err("mov dst"))?)?,
                src: self.operand(args.get(1).ok_or_else(|| self.err("mov src"))?)?,
            }),
            "add" => bin(BinOp::Add),
            "sub" => bin(BinOp::Sub),
            "mul" => bin(BinOp::Mul),
            "div" => bin(BinOp::Div),
            "rem" => bin(BinOp::Rem),
            "and" => bin(BinOp::And),
            "or" => bin(BinOp::Or),
            "xor" => bin(BinOp::Xor),
            "shl" => bin(BinOp::Shl),
            "shr" => bin(BinOp::Shr),
            "neg" | "not" => Ok(Inst::Un {
                op: if mnemonic == "neg" {
                    UnOp::Neg
                } else {
                    UnOp::Not
                },
                dst: self.reg(args.first().ok_or_else(|| self.err("un dst"))?)?,
                src: self.operand(args.get(1).ok_or_else(|| self.err("un src"))?)?,
            }),
            "cmp" => Ok(Inst::Cmp {
                lhs: self.operand(args.first().ok_or_else(|| self.err("cmp lhs"))?)?,
                rhs: self.operand(args.get(1).ok_or_else(|| self.err("cmp rhs"))?)?,
            }),
            "ld" => {
                // ld rD, [base+index]
                let dst = self.reg(args.first().ok_or_else(|| self.err("ld dst"))?)?;
                let (base, index) = self.address(args.get(1).copied().unwrap_or(""))?;
                Ok(Inst::Load { dst, base, index })
            }
            "st" => {
                // st [base+index], src
                let (base, index) = self.address(args.first().copied().unwrap_or(""))?;
                let src = self.operand(args.get(1).ok_or_else(|| self.err("st src"))?)?;
                Ok(Inst::Store { base, index, src })
            }
            "lea" => {
                // lea rD, frame+OFF
                let dst = self.reg(args.first().ok_or_else(|| self.err("lea dst"))?)?;
                let off = args
                    .get(1)
                    .and_then(|a| a.strip_prefix("frame+"))
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| self.err("lea offset"))?;
                Ok(Inst::FrameAddr { dst, offset: off })
            }
            "call" => self.call(rest),
            "profile" => {
                // profile seqN, rV
                let seq = args
                    .first()
                    .and_then(|a| a.strip_prefix("seq"))
                    .and_then(|s| s.parse().ok())
                    .map(SeqId)
                    .ok_or_else(|| self.err("profile seq"))?;
                let var = self.reg(args.get(1).ok_or_else(|| self.err("profile var"))?)?;
                Ok(Inst::ProfileRanges { seq, var })
            }
            "profile-outcomes" => {
                // profile-outcomes seqN [a OP b, ...]
                let (seq_s, body) = rest
                    .split_once('[')
                    .ok_or_else(|| self.err("profile-outcomes list"))?;
                let seq = seq_s
                    .trim()
                    .strip_prefix("seq")
                    .and_then(|s| s.parse().ok())
                    .map(SeqId)
                    .ok_or_else(|| self.err("profile-outcomes seq"))?;
                let body = body.trim_end_matches(']');
                let mut conds = Vec::new();
                for part in body.split(',').map(str::trim).filter(|p| !p.is_empty()) {
                    let words: Vec<&str> = part.split_whitespace().collect();
                    if words.len() != 3 {
                        return Err(self.err("bad outcome condition"));
                    }
                    let cond = match words[1] {
                        "beq" => Cond::Eq,
                        "bne" => Cond::Ne,
                        "blt" => Cond::Lt,
                        "ble" => Cond::Le,
                        "bgt" => Cond::Gt,
                        "bge" => Cond::Ge,
                        other => return Err(self.err(format!("bad cond `{other}`"))),
                    };
                    conds.push((self.operand(words[0])?, self.operand(words[2])?, cond));
                }
                Ok(Inst::ProfileOutcomes { seq, conds })
            }
            other => Err(self.err(format!("unknown mnemonic `{other}`"))),
        }
    }

    /// `[base+index]` with a signed index (base may itself be negative).
    fn address(&self, text: &str) -> Result<(Operand, Operand), ParseIrError> {
        let body = text
            .trim()
            .strip_prefix('[')
            .and_then(|t| t.strip_suffix(']'))
            .ok_or_else(|| self.err(format!("bad address `{text}`")))?;
        // Split at the LAST '+' that separates base and index (the base
        // never contains '+', and the printer always emits one).
        let plus = body
            .rfind('+')
            .ok_or_else(|| self.err(format!("bad address `{body}`")))?;
        // Guard against the '+' belonging to a negative index like
        // `[r0+-3]`: rfind handles it (the separator precedes the sign).
        let (base, index) = body.split_at(plus);
        Ok((self.operand(base)?, self.operand(&index[1..])?))
    }

    fn call(&self, rest: &str) -> Result<Inst, ParseIrError> {
        // call rD, callee(arg, ...)  |  call callee(arg, ...)
        let open = rest.find('(').ok_or_else(|| self.err("call missing ("))?;
        let close = rest.rfind(')').ok_or_else(|| self.err("call missing )"))?;
        let head = rest[..open].trim();
        let (dst, callee_s) = match head.split_once(',') {
            Some((d, c)) => (Some(self.reg(d)?), c.trim()),
            None => (None, head),
        };
        let callee = if let Some(id) = callee_s.strip_prefix('f') {
            if let Ok(n) = id.parse::<u32>() {
                Callee::Func(FuncId(n))
            } else {
                self.intrinsic(callee_s)?
            }
        } else {
            self.intrinsic(callee_s)?
        };
        let args = rest[open + 1..close]
            .split(',')
            .map(str::trim)
            .filter(|a| !a.is_empty())
            .map(|a| self.operand(a))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Inst::Call { dst, callee, args })
    }

    fn intrinsic(&self, name: &str) -> Result<Callee, ParseIrError> {
        Ok(Callee::Intrinsic(match name {
            "getchar" => Intrinsic::GetChar,
            "putchar" => Intrinsic::PutChar,
            "putint" => Intrinsic::PutInt,
            "abort" => Intrinsic::Abort,
            other => return Err(self.err(format!("unknown callee `{other}`"))),
        }))
    }
}

fn field<T: std::str::FromStr>(text: &str, prefix: &str) -> Option<T> {
    text.split_whitespace()
        .find_map(|w| w.strip_prefix(prefix))
        .and_then(|v| v.parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::print::print_module;

    fn sample_module() -> Module {
        let mut m = Module::new();
        m.add_global("tab", vec![1, -2, 3], 5);
        let mut b = FuncBuilder::new("main");
        let x = b.new_reg();
        let y = b.new_reg();
        let e = b.entry();
        let t = b.new_block();
        let n = b.new_block();
        b.push(
            e,
            Inst::Call {
                dst: Some(x),
                callee: Callee::Intrinsic(Intrinsic::GetChar),
                args: vec![],
            },
        );
        b.load(e, y, 0i64, x);
        b.bin(e, BinOp::Mul, y, y, 4i64);
        b.store(e, 0i64, 1i64, y);
        b.cmp_branch(e, x, -1i64, Cond::Eq, t, n);
        b.set_term(t, Terminator::Return(Some(Operand::Imm(0))));
        b.un(n, UnOp::Neg, y, y);
        b.push(n, Inst::FrameAddr { dst: x, offset: 0 });
        b.set_term(
            n,
            Terminator::IndirectJump {
                index: y,
                targets: vec![BlockId(1), BlockId(2)],
            },
        );
        let mut f = b.finish();
        f.frame_size = 2;
        m.main = Some(m.add_function(f));
        m.add_profile_plan(ProfilePlan {
            func: FuncId(0),
            head: BlockId(0),
            kind: PlanKind::Ranges(vec![(i64::MIN, -1), (0, i64::MAX)]),
        });
        m
    }

    #[test]
    fn round_trip_is_identity_on_text() {
        let m = sample_module();
        let text = print_module(&m);
        let parsed = parse_module(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(print_module(&parsed), text);
    }

    #[test]
    fn round_trip_preserves_structure() {
        let m = sample_module();
        let parsed = parse_module(&print_module(&m)).unwrap();
        assert_eq!(parsed.functions.len(), 1);
        assert_eq!(parsed.main, m.main);
        assert_eq!(parsed.globals, m.globals);
        assert_eq!(parsed.profile_plans, m.profile_plans);
        assert_eq!(parsed.functions[0].blocks, m.functions[0].blocks);
        assert_eq!(parsed.functions[0].num_regs, m.functions[0].num_regs);
        assert_eq!(parsed.functions[0].frame_size, m.functions[0].frame_size);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_module("func broken( regs=0 frame=0 {\n}").unwrap_err();
        assert!(e.line <= 2, "{e}");
        let e = parse_module("nonsense").unwrap_err();
        assert!(e.message.contains("unexpected"));
    }

    #[test]
    fn negative_indices_in_addresses() {
        let text = "func f() regs=2 frame=0 {\nb0: ; entry\n    ld r1, [r0+-3]\n    ret\n}\n";
        let m = parse_module(text).unwrap();
        assert_eq!(
            m.functions[0].blocks[0].insts[0],
            Inst::Load {
                dst: Reg(1),
                base: Operand::Reg(Reg(0)),
                index: Operand::Imm(-3)
            }
        );
    }
}

#[cfg(test)]
mod outcome_probe_tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::print::print_module;

    #[test]
    fn profile_outcomes_round_trip() {
        let mut m = Module::new();
        let mut b = FuncBuilder::new("main");
        let x = b.new_reg();
        let y = b.new_reg();
        b.set_param_regs(vec![x, y]);
        let e = b.entry();
        b.push(
            e,
            Inst::ProfileOutcomes {
                seq: SeqId(0),
                conds: vec![
                    (Operand::Reg(Reg(0)), Operand::Imm(5), Cond::Lt),
                    (Operand::Reg(Reg(1)), Operand::Reg(Reg(0)), Cond::Eq),
                ],
            },
        );
        b.cmp(e, x, 0i64);
        b.set_term(e, Terminator::branch(Cond::Eq, BlockId(0), BlockId(0)));
        m.main = Some(m.add_function(b.finish()));
        m.add_profile_plan(ProfilePlan {
            func: FuncId(0),
            head: BlockId(0),
            kind: PlanKind::Outcomes(2),
        });
        let text = print_module(&m);
        let parsed = parse_module(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(print_module(&parsed), text);
        assert_eq!(parsed.profile_plans, m.profile_plans);
        assert_eq!(
            parsed.functions[0].blocks[0].insts[0],
            m.functions[0].blocks[0].insts[0]
        );
    }
}
