//! A structural IR verifier, run after construction and after every
//! transformation in tests to catch malformed CFGs early.

use std::fmt;

use crate::function::{BlockId, Function};
use crate::inst::{Callee, Inst, Terminator};
use crate::module::Module;

/// A verification failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyError {
    /// Function name the error was found in.
    pub function: String,
    /// Offending block, when applicable.
    pub block: Option<BlockId>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.block {
            Some(b) => write!(f, "in {} at {}: {}", self.function, b, self.message),
            None => write!(f, "in {}: {}", self.function, self.message),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verify a single function against structural invariants:
///
/// * every successor block id is in range;
/// * every register mentioned is `< num_regs`;
/// * every `FrameAddr` offset is `< frame_size`;
/// * every conditional branch sees defined condition codes: on every path
///   from the entry, a `Cmp` executes before the branch with no
///   intervening `Call` (calls clobber the condition codes). The compare
///   may live in a *predecessor* block — the paper's redundant-comparison
///   elimination (its Figure 9) relies on exactly that;
/// * indirect jump tables are non-empty.
///
/// # Errors
///
/// Returns the first violation found. Use [`verify_function_all`] to
/// collect every violation, e.g. for diagnostic listings.
pub fn verify_function(f: &Function, module: Option<&Module>) -> Result<(), VerifyError> {
    match verify_function_all(f, module).into_iter().next() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Verify a single function and return *every* violation found, in a
/// deterministic order (structural checks in block order, then the
/// condition-code dataflow check). An empty vector means the function is
/// well-formed. This is what `brc lint` uses to show the full list at
/// once instead of fix-one-rerun loops.
pub fn verify_function_all(f: &Function, module: Option<&Module>) -> Vec<VerifyError> {
    let mut out = Vec::new();
    let mut push = |block: Option<BlockId>, message: String| {
        out.push(VerifyError {
            function: f.name.clone(),
            block,
            message,
        });
    };
    if f.entry.index() >= f.blocks.len() {
        push(None, format!("entry {} out of range", f.entry));
        // With an invalid entry the CFG walks below would be meaningless.
        return out;
    }
    for &p in &f.param_regs {
        if p.0 >= f.num_regs {
            push(None, format!("param reg {p} out of range"));
        }
    }
    let mut successors_ok = true;
    for id in f.block_ids() {
        let b = f.block(id);
        for inst in &b.insts {
            if let Some(d) = inst.def() {
                if d.0 >= f.num_regs {
                    push(Some(id), format!("def of out-of-range reg {d}"));
                }
            }
            for u in inst.uses() {
                if u.0 >= f.num_regs {
                    push(Some(id), format!("use of out-of-range reg {u}"));
                }
            }
            match inst {
                Inst::FrameAddr { offset, .. } if *offset >= f.frame_size.max(1) => {
                    push(Some(id), format!("frame offset {offset} out of range"));
                }
                Inst::Call { callee, args, .. } => match callee {
                    Callee::Intrinsic(i) => {
                        if args.len() != i.arity() {
                            push(
                                Some(id),
                                format!(
                                    "intrinsic {} wants {} args, got {}",
                                    i.name(),
                                    i.arity(),
                                    args.len()
                                ),
                            );
                        }
                    }
                    Callee::Func(fid) => {
                        if let Some(m) = module {
                            if fid.index() >= m.functions.len() {
                                push(Some(id), format!("call to unknown {fid:?}"));
                            } else {
                                let callee_f = m.function(*fid);
                                if callee_f.param_regs.len() != args.len() {
                                    push(
                                        Some(id),
                                        format!(
                                            "call to {} wants {} args, got {}",
                                            callee_f.name,
                                            callee_f.param_regs.len(),
                                            args.len()
                                        ),
                                    );
                                }
                            }
                        }
                    }
                },
                Inst::ProfileRanges { seq, .. } => {
                    if let Some(m) = module {
                        match m.profile_plans.get(seq.index()) {
                            None => push(Some(id), format!("unknown profile {seq:?}")),
                            Some(plan) => {
                                if !matches!(plan.kind, crate::module::PlanKind::Ranges(_)) {
                                    push(
                                        Some(id),
                                        format!("ranges probe {seq:?} refers to an outcomes plan"),
                                    );
                                }
                            }
                        }
                    }
                }
                Inst::ProfileOutcomes { seq, conds } => {
                    // An unknown or mismatched outcomes probe passes a
                    // naive structural check but makes the interpreter
                    // index `2^conds.len()` counters into a plan that
                    // allocated a different count — an out-of-bounds
                    // panic at run time, not a verifier diagnostic.
                    if let Some(m) = module {
                        match m.profile_plans.get(seq.index()) {
                            None => push(Some(id), format!("unknown profile {seq:?}")),
                            Some(plan) => match plan.kind {
                                crate::module::PlanKind::Outcomes(n) if n != conds.len() => {
                                    push(
                                        Some(id),
                                        format!(
                                            "outcomes probe {seq:?} has {} conditions, \
                                             plan counts {n}",
                                            conds.len()
                                        ),
                                    );
                                }
                                crate::module::PlanKind::Outcomes(_) => {}
                                crate::module::PlanKind::Ranges(_) => {
                                    push(
                                        Some(id),
                                        format!("outcomes probe {seq:?} refers to a ranges plan"),
                                    );
                                }
                            },
                        }
                    }
                }
                _ => {}
            }
        }
        for s in b.term.successors() {
            if s.index() >= f.blocks.len() {
                push(Some(id), format!("successor {s} out of range"));
                successors_ok = false;
            }
        }
        match &b.term {
            Terminator::Branch { .. } => {}
            Terminator::IndirectJump { index, targets } => {
                if targets.is_empty() {
                    push(Some(id), "empty indirect jump table".to_string());
                }
                if index.0 >= f.num_regs {
                    push(Some(id), format!("ijmp index reg {index} OOR"));
                }
            }
            _ => {}
        }
        for u in b.term.uses() {
            if u.0 >= f.num_regs {
                push(Some(id), format!("terminator uses OOR reg {u}"));
            }
        }
    }
    // The cc dataflow check walks successor edges; only run it on a CFG
    // whose edges all land in range.
    if successors_ok {
        collect_cc_errors(f, &mut out);
    }
    out
}

/// Effect of a block's body on the "condition codes defined" fact.
#[derive(Clone, Copy, PartialEq, Eq)]
enum CcEffect {
    /// Body neither sets nor clobbers the condition codes.
    Transparent,
    /// Body leaves the condition codes defined (final cc-writer is a `Cmp`).
    Defines,
    /// Body leaves them clobbered (final cc-writer is a `Call`).
    Clobbers,
}

fn cc_effect(b: &crate::function::Block) -> CcEffect {
    let mut eff = CcEffect::Transparent;
    for inst in &b.insts {
        match inst {
            Inst::Cmp { .. } => eff = CcEffect::Defines,
            Inst::Call { .. } => eff = CcEffect::Clobbers,
            _ => {}
        }
    }
    eff
}

/// Forward must-analysis: every conditional branch must be reached with
/// condition codes defined on all paths from the entry. Appends one error
/// per offending branch block.
fn collect_cc_errors(f: &Function, out: &mut Vec<VerifyError>) {
    let n = f.blocks.len();
    // cc state at block entry: true = definitely defined on all paths seen.
    // Optimistic initialization with iteration to a fixed point; start with
    // "defined" everywhere except the entry and intersect over predecessors.
    let mut entry_state = vec![true; n];
    entry_state[f.entry.index()] = false;
    let order = crate::cfg::reverse_postorder(f);
    let reach = crate::cfg::reachable(f);
    // Only reachable predecessors contribute paths; unreachable blocks may
    // linger with stale edges between a transformation and its DCE pass.
    let mut preds = crate::cfg::predecessors(f);
    for ps in &mut preds {
        ps.retain(|p| reach.contains(p));
    }
    loop {
        let mut changed = false;
        for &b in &order {
            let state = if b == f.entry {
                false
            } else {
                let ps = &preds[b.index()];
                !ps.is_empty()
                    && ps.iter().all(|p| match cc_effect(f.block(*p)) {
                        CcEffect::Defines => true,
                        CcEffect::Clobbers => false,
                        CcEffect::Transparent => entry_state[p.index()],
                    })
            };
            if state != entry_state[b.index()] {
                entry_state[b.index()] = state;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for &b in &order {
        if matches!(f.block(b).term, Terminator::Branch { .. }) {
            let at_term = match cc_effect(f.block(b)) {
                CcEffect::Defines => true,
                CcEffect::Clobbers => false,
                CcEffect::Transparent => entry_state[b.index()],
            };
            if !at_term {
                out.push(VerifyError {
                    function: f.name.clone(),
                    block: Some(b),
                    message: "conditional branch with undefined condition codes".to_string(),
                });
            }
        }
    }
}

/// Verify every function of a module, plus module-level invariants
/// (designated `main` exists; globals are packed without overlap).
///
/// # Errors
///
/// Returns the first violation found. Use [`verify_module_all`] to
/// collect every violation across the whole module.
pub fn verify_module(m: &Module) -> Result<(), VerifyError> {
    match verify_module_all(m).into_iter().next() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Verify every function of a module and return *every* violation found:
/// module-level invariants first, then per-function structural errors in
/// function order. An empty vector means the module is well-formed.
pub fn verify_module_all(m: &Module) -> Vec<VerifyError> {
    let mut out = Vec::new();
    let mut module_err = |message: String| {
        out.push(VerifyError {
            function: "<module>".to_string(),
            block: None,
            message,
        });
    };
    if let Some(main) = m.main {
        if main.index() >= m.functions.len() {
            module_err(format!("main {main:?} out of range"));
        }
    }
    let mut cursor = 0i64;
    for g in &m.globals {
        if g.addr < cursor {
            module_err(format!("global {} overlaps predecessor", g.name));
        }
        if (g.init.len() as u32) > g.size {
            module_err(format!("global {} init exceeds size", g.name));
        }
        cursor = cursor.max(g.addr + g.size as i64);
    }
    for f in &m.functions {
        out.extend(verify_function_all(f, Some(m)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::function::Block;
    use crate::inst::{Cond, Operand, Reg};

    #[test]
    fn accepts_well_formed_function() {
        let mut b = FuncBuilder::new("ok");
        let x = b.new_reg();
        b.set_param_regs(vec![x]);
        let e = b.entry();
        let t = b.new_block();
        let f_ = b.new_block();
        b.cmp_branch(e, x, 0i64, Cond::Lt, t, f_);
        b.set_term(t, Terminator::Return(Some(Operand::Imm(-1))));
        b.set_term(f_, Terminator::Return(Some(Operand::Imm(1))));
        assert_eq!(verify_function(&b.finish(), None), Ok(()));
    }

    #[test]
    fn rejects_branch_without_cmp() {
        let mut f = Function::new("bad");
        let t = f.add_block(Block::new(Terminator::Return(None)));
        f.block_mut(f.entry).term = Terminator::branch(Cond::Eq, t, t);
        let e = verify_function(&f, None).unwrap_err();
        assert!(e.message.contains("undefined condition codes"));
    }

    #[test]
    fn accepts_branch_with_cmp_in_predecessor() {
        // Figure 9 of the paper: redundant-comparison elimination leaves a
        // branch whose cmp lives in the predecessor block.
        let mut b = FuncBuilder::new("fig9");
        let x = b.new_reg();
        b.set_param_regs(vec![x]);
        let e = b.entry();
        let second = b.new_block();
        let t1 = b.new_block();
        let t2 = b.new_block();
        b.cmp_branch(e, x, 5i64, Cond::Gt, t1, second);
        // `second` has no cmp of its own; cc flow from `e` is still valid.
        b.set_term(second, Terminator::branch(Cond::Eq, t2, t1));
        b.set_term(t1, Terminator::Return(Some(Operand::Imm(1))));
        b.set_term(t2, Terminator::Return(Some(Operand::Imm(2))));
        assert_eq!(verify_function(&b.finish(), None), Ok(()));
    }

    #[test]
    fn rejects_cc_clobbered_by_call() {
        use crate::inst::{Callee, Intrinsic};
        let mut b = FuncBuilder::new("clobber");
        let x = b.new_reg();
        b.set_param_regs(vec![x]);
        let e = b.entry();
        let t = b.new_block();
        b.cmp(e, x, 0i64);
        b.push(
            e,
            Inst::Call {
                dst: Some(x),
                callee: Callee::Intrinsic(Intrinsic::GetChar),
                args: vec![],
            },
        );
        b.set_term(e, Terminator::branch(Cond::Eq, t, t));
        b.set_term(t, Terminator::Return(None));
        let err = verify_function(&b.finish(), None).unwrap_err();
        assert!(err.message.contains("undefined condition codes"));
    }

    #[test]
    fn rejects_out_of_range_successor() {
        let mut f = Function::new("bad");
        f.block_mut(f.entry).term = Terminator::Jump(BlockId(7));
        assert!(verify_function(&f, None).is_err());
    }

    #[test]
    fn rejects_out_of_range_register() {
        let mut f = Function::new("bad");
        f.block_mut(f.entry).insts.push(Inst::Copy {
            dst: Reg(3),
            src: Operand::Imm(0),
        });
        assert!(verify_function(&f, None).is_err());
    }

    #[test]
    fn rejects_bad_intrinsic_arity() {
        use crate::inst::{Callee, Intrinsic};
        let mut f = Function::new("bad");
        f.block_mut(f.entry).insts.push(Inst::Call {
            dst: None,
            callee: Callee::Intrinsic(Intrinsic::PutChar),
            args: vec![],
        });
        let e = verify_function(&f, None).unwrap_err();
        assert!(e.message.contains("putchar"));
    }

    #[test]
    fn module_checks_main_and_globals() {
        let mut m = Module::new();
        m.main = Some(crate::module::FuncId(0));
        assert!(verify_module(&m).is_err());
        let mut m = Module::new();
        m.add_global("a", vec![1], 1);
        m.add_global("b", vec![2], 1);
        assert_eq!(verify_module(&m), Ok(()));
    }

    #[test]
    fn rejects_unknown_and_mismatched_profile_outcomes_probes() {
        // Regression test for a verifier over-acceptance surfaced while
        // building the fuzzer's verify-every-module gate: only
        // `ProfileRanges` probes were checked against the module's
        // plans, so a module with a dangling or miscounted
        // `ProfileOutcomes` probe verified clean and then panicked the
        // interpreter with an out-of-bounds counter index.
        use crate::inst::Operand;
        use crate::module::{FuncId, PlanKind, ProfilePlan, SeqId};

        let probe = |seq: u32, n_conds: usize| Inst::ProfileOutcomes {
            seq: SeqId(seq),
            conds: (0..n_conds)
                .map(|_| (Operand::Imm(0), Operand::Imm(1), crate::inst::Cond::Lt))
                .collect(),
        };
        let module_with = |plans: Vec<ProfilePlan>, inst: Inst| {
            let mut m = Module::new();
            for p in plans {
                m.profile_plans.push(p);
            }
            let mut f = Function::new("main");
            f.block_mut(f.entry).insts.push(inst);
            m.main = Some(m.add_function(f));
            m
        };
        let plan = |kind: PlanKind| ProfilePlan {
            func: FuncId(0),
            head: BlockId(0),
            kind,
        };

        // Dangling seq id: no plan at all.
        let m = module_with(vec![], probe(0, 2));
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("unknown profile"), "{e}");

        // Counter-count mismatch: probe evaluates 3 conditions, plan
        // allocated 2^2 counters.
        let m = module_with(vec![plan(PlanKind::Outcomes(2))], probe(0, 3));
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("plan counts 2"), "{e}");

        // Kind mismatch in both directions.
        let m = module_with(
            vec![plan(PlanKind::Ranges(vec![(i64::MIN, i64::MAX)]))],
            probe(0, 2),
        );
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("refers to a ranges plan"), "{e}");
        let m = module_with(
            vec![plan(PlanKind::Outcomes(1))],
            Inst::ProfileRanges {
                seq: SeqId(0),
                var: Reg(0),
            },
        );
        let mut m = m;
        m.function_mut(FuncId(0)).num_regs = 1;
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("refers to an outcomes plan"), "{e}");

        // Matching probe and plan verify clean.
        let m = module_with(vec![plan(PlanKind::Outcomes(2))], probe(0, 2));
        assert_eq!(verify_module(&m), Ok(()));
    }

    #[test]
    fn collects_every_violation_at_once() {
        // Three independent problems in one function: an out-of-range
        // register def, a bad intrinsic arity, and a branch with
        // undefined condition codes. `verify_function` reports only the
        // first; `verify_function_all` reports all three.
        use crate::inst::{Callee, Intrinsic};
        let mut f = Function::new("multi");
        let t = f.add_block(Block::new(Terminator::Return(None)));
        let e = f.entry;
        f.block_mut(e).insts.push(Inst::Copy {
            dst: Reg(9),
            src: Operand::Imm(0),
        });
        f.block_mut(e).insts.push(Inst::Call {
            dst: None,
            callee: Callee::Intrinsic(Intrinsic::PutChar),
            args: vec![],
        });
        f.block_mut(e).term = Terminator::branch(Cond::Eq, t, t);
        let all = verify_function_all(&f, None);
        assert_eq!(all.len(), 3, "{all:?}");
        assert!(all[0].message.contains("out-of-range"));
        assert!(all[1].message.contains("putchar"));
        assert!(all[2].message.contains("undefined condition codes"));
        let first = verify_function(&f, None).unwrap_err();
        assert_eq!(first, all[0]);
    }
}
