//! A convenience builder for constructing [`Function`]s.

use crate::function::{Block, BlockId, Function};
use crate::inst::{BinOp, Callee, Cond, Inst, Operand, Reg, Terminator, UnOp};

/// Incrementally builds a [`Function`].
///
/// Blocks are created with [`FuncBuilder::new_block`] and filled in any
/// order; every block starts with a placeholder `Return` terminator that
/// callers overwrite with [`FuncBuilder::set_term`].
///
/// ```
/// use br_ir::{FuncBuilder, Operand, Terminator};
///
/// let mut b = FuncBuilder::new("const42");
/// let e = b.entry();
/// b.set_term(e, Terminator::Return(Some(Operand::Imm(42))));
/// let f = b.finish();
/// assert_eq!(f.name, "const42");
/// ```
#[derive(Debug)]
pub struct FuncBuilder {
    f: Function,
}

impl FuncBuilder {
    /// Start a new function with a fresh entry block.
    pub fn new(name: impl Into<String>) -> FuncBuilder {
        FuncBuilder {
            f: Function::new(name),
        }
    }

    /// The entry block's id.
    pub fn entry(&self) -> BlockId {
        self.f.entry
    }

    /// Allocate a fresh empty block (placeholder `Return(None)` terminator).
    pub fn new_block(&mut self) -> BlockId {
        self.f.add_block(Block::new(Terminator::Return(None)))
    }

    /// Allocate a fresh virtual register.
    pub fn new_reg(&mut self) -> Reg {
        self.f.new_reg()
    }

    /// Declare which registers receive the parameters.
    pub fn set_param_regs(&mut self, regs: Vec<Reg>) {
        self.f.param_regs = regs;
    }

    /// Reserve `words` of frame space, returning the slot offset.
    pub fn alloc_frame(&mut self, words: u32) -> u32 {
        let at = self.f.frame_size;
        self.f.frame_size += words;
        at
    }

    /// Append an arbitrary instruction to `block`.
    pub fn push(&mut self, block: BlockId, inst: Inst) {
        self.f.block_mut(block).insts.push(inst);
    }

    /// Append `dst = src`.
    pub fn copy(&mut self, block: BlockId, dst: Reg, src: impl Into<Operand>) {
        self.push(
            block,
            Inst::Copy {
                dst,
                src: src.into(),
            },
        );
    }

    /// Append `dst = lhs op rhs`.
    pub fn bin(
        &mut self,
        block: BlockId,
        op: BinOp,
        dst: Reg,
        lhs: impl Into<Operand>,
        rhs: impl Into<Operand>,
    ) {
        self.push(
            block,
            Inst::Bin {
                op,
                dst,
                lhs: lhs.into(),
                rhs: rhs.into(),
            },
        );
    }

    /// Append `dst = op src`.
    pub fn un(&mut self, block: BlockId, op: UnOp, dst: Reg, src: impl Into<Operand>) {
        self.push(
            block,
            Inst::Un {
                op,
                dst,
                src: src.into(),
            },
        );
    }

    /// Append a condition-code-setting compare.
    pub fn cmp(&mut self, block: BlockId, lhs: impl Into<Operand>, rhs: impl Into<Operand>) {
        self.push(
            block,
            Inst::Cmp {
                lhs: lhs.into(),
                rhs: rhs.into(),
            },
        );
    }

    /// Append `dst = memory[base + index]`.
    pub fn load(
        &mut self,
        block: BlockId,
        dst: Reg,
        base: impl Into<Operand>,
        index: impl Into<Operand>,
    ) {
        self.push(
            block,
            Inst::Load {
                dst,
                base: base.into(),
                index: index.into(),
            },
        );
    }

    /// Append `memory[base + index] = src`.
    pub fn store(
        &mut self,
        block: BlockId,
        base: impl Into<Operand>,
        index: impl Into<Operand>,
        src: impl Into<Operand>,
    ) {
        self.push(
            block,
            Inst::Store {
                base: base.into(),
                index: index.into(),
                src: src.into(),
            },
        );
    }

    /// Append a call.
    pub fn call(&mut self, block: BlockId, dst: Option<Reg>, callee: Callee, args: Vec<Operand>) {
        self.push(block, Inst::Call { dst, callee, args });
    }

    /// Set `block`'s terminator.
    pub fn set_term(&mut self, block: BlockId, term: Terminator) {
        self.f.block_mut(block).term = term;
    }

    /// Shorthand: `cmp lhs, rhs` then conditional branch.
    pub fn cmp_branch(
        &mut self,
        block: BlockId,
        lhs: impl Into<Operand>,
        rhs: impl Into<Operand>,
        cond: Cond,
        taken: BlockId,
        not_taken: BlockId,
    ) {
        self.cmp(block, lhs, rhs);
        self.set_term(block, Terminator::branch(cond, taken, not_taken));
    }

    /// Finish and return the function.
    pub fn finish(self) -> Function {
        self.f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_constructs_a_diamond() {
        let mut b = FuncBuilder::new("max");
        let x = b.new_reg();
        let y = b.new_reg();
        b.set_param_regs(vec![x, y]);
        let entry = b.entry();
        let yes = b.new_block();
        let no = b.new_block();
        b.cmp_branch(entry, x, y, Cond::Ge, yes, no);
        b.set_term(yes, Terminator::Return(Some(Operand::Reg(x))));
        b.set_term(no, Terminator::Return(Some(Operand::Reg(y))));
        let f = b.finish();
        assert_eq!(f.blocks.len(), 3);
        assert_eq!(f.block(f.entry).insts.len(), 1);
        assert_eq!(
            f.block(f.entry).term.successors(),
            vec![BlockId(1), BlockId(2)]
        );
    }

    #[test]
    fn frame_allocation_is_sequential() {
        let mut b = FuncBuilder::new("frames");
        assert_eq!(b.alloc_frame(4), 0);
        assert_eq!(b.alloc_frame(8), 4);
        assert_eq!(b.finish().frame_size, 12);
    }
}
