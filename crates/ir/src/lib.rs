//! # br-ir
//!
//! A small RISC-like register-transfer intermediate representation used by
//! the reproduction of *"Improving Performance by Branch Reordering"*
//! (Yang, Uh & Whalley, PLDI 1998).
//!
//! The IR deliberately mirrors the SPARC code the paper's `vpo` compiler
//! produced in the two properties the transformation depends on:
//!
//! * **Compare and branch are separate instructions.** A [`Inst::Cmp`]
//!   sets the (single, implicit) condition-code register and a block's
//!   [`Terminator::Branch`] tests it. This is what makes the paper's
//!   redundant-comparison elimination (its Figure 9) expressible.
//! * **Explicit fall-through successors.** Every conditional branch names
//!   both its taken and not-taken successor; a separate layout pass decides
//!   which control transfers are free fall-throughs and which cost an
//!   unconditional jump, as on a real machine.
//!
//! The building blocks are [`Module`] → [`Function`] → [`Block`] →
//! [`Inst`]/[`Terminator`], with [`FuncBuilder`] as the convenient way to
//! construct functions.
//!
//! ```
//! use br_ir::{FuncBuilder, Module, Operand, Cond, Terminator};
//!
//! let mut module = Module::new();
//! let mut b = FuncBuilder::new("abs");
//! let x = b.new_reg();
//! let entry = b.entry();
//! let neg = b.new_block();
//! let done = b.new_block();
//! b.set_param_regs(vec![x]);
//! b.cmp(entry, Operand::Reg(x), Operand::Imm(0));
//! b.set_term(entry, Terminator::branch(Cond::Lt, neg, done));
//! b.un(neg, br_ir::UnOp::Neg, x, Operand::Reg(x));
//! b.set_term(neg, Terminator::Jump(done));
//! b.set_term(done, Terminator::Return(Some(Operand::Reg(x))));
//! module.add_function(b.finish());
//! ```

mod builder;
mod cfg;
pub mod dom;
mod function;
mod inst;
mod module;
mod parse;
mod print;
mod verify;

pub use builder::FuncBuilder;
pub use cfg::{postorder, predecessors, reachable, reverse_postorder};
pub use function::{Block, BlockId, Function};
pub use inst::{BinOp, Callee, Cond, Inst, Intrinsic, Operand, Reg, Terminator, UnOp};
pub use module::{FuncId, GlobalData, Module, PlanKind, ProfilePlan, SeqId};
pub use parse::{parse_module, ParseIrError};
pub use print::{print_function, print_module};
pub use verify::{
    verify_function, verify_function_all, verify_module, verify_module_all, VerifyError,
};
