//! Modules: the compilation unit holding functions, global data, and
//! profiling side tables.

use std::fmt;

use crate::function::{BlockId, Function};

/// Identifier of a function within a [`Module`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(pub u32);

impl FuncId {
    /// Index into the module's function vector.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Identifier of an instrumented branch sequence (profiling).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SeqId(pub u32);

impl SeqId {
    /// Index into the module's profile-plan vector.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for SeqId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seq{}", self.0)
    }
}

/// Initialized global data (string literals, global arrays).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GlobalData {
    /// Name for diagnostics.
    pub name: String,
    /// Word address of the first cell in the global memory image.
    pub addr: i64,
    /// Initial contents; the global occupies `init.len()` words unless
    /// `size` is larger, in which case the rest is zero-filled.
    pub init: Vec<i64>,
    /// Total size in words (≥ `init.len()`).
    pub size: u32,
}

/// What a profiling probe records.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanKind {
    /// One counter per inclusive `(lo, hi)` range; together the ranges
    /// must cover all of `i64::MIN..=i64::MAX` and be pairwise disjoint.
    /// Used for range-condition sequences (the paper's Section 5).
    Ranges(Vec<(i64, i64)>),
    /// Joint-outcome counters for a chain of `n` conditions: counter
    /// index is the bitmask of branch outcomes, `2^n` counters in all.
    /// Used for common-successor sequences (the paper's Section 10,
    /// which proposes exactly this array of combination counters).
    Outcomes(usize),
}

/// The values instrumented for one reorderable branch sequence.
///
/// The paper inserts all profiling code at the head of a sequence. A
/// [`crate::Inst::ProfileRanges`] or [`crate::Inst::ProfileOutcomes`]
/// probe refers to one of these plans; the interpreter bumps the matching
/// counter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfilePlan {
    /// Function the sequence lives in (for diagnostics).
    pub func: FuncId,
    /// Block of the sequence head at instrumentation time (diagnostics).
    pub head: BlockId,
    /// What the probe records.
    pub kind: PlanKind,
}

impl ProfilePlan {
    /// Number of counters this plan needs.
    pub fn counter_count(&self) -> usize {
        match &self.kind {
            PlanKind::Ranges(ranges) => ranges.len(),
            PlanKind::Outcomes(n) => 1usize << n,
        }
    }

    /// Index of the range containing `v`, if any (ranges plans only).
    pub fn range_containing(&self, v: i64) -> Option<usize> {
        match &self.kind {
            PlanKind::Ranges(ranges) => ranges.iter().position(|&(lo, hi)| lo <= v && v <= hi),
            PlanKind::Outcomes(_) => None,
        }
    }
}

/// A compilation unit: functions, globals, and profiling plans.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Module {
    /// All functions; [`FuncId`] indexes this vector.
    pub functions: Vec<Function>,
    /// Initialized global data, non-overlapping, lowest address first.
    pub globals: Vec<GlobalData>,
    /// Profiling plans for instrumented sequences; [`SeqId`] indexes this.
    pub profile_plans: Vec<ProfilePlan>,
    /// The entry function, if one has been designated.
    pub main: Option<FuncId>,
}

impl Module {
    /// An empty module.
    pub fn new() -> Module {
        Module::default()
    }

    /// Append a function, returning its id.
    pub fn add_function(&mut self, f: Function) -> FuncId {
        let id = FuncId(self.functions.len() as u32);
        self.functions.push(f);
        id
    }

    /// Look up a function by name.
    pub fn function_named(&self, name: &str) -> Option<FuncId> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// Immutable access to a function.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.index()]
    }

    /// Mutable access to a function.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn function_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.functions[id.index()]
    }

    /// Reserve `size` words of global memory with the given initial
    /// contents, returning the word address.
    pub fn add_global(&mut self, name: impl Into<String>, init: Vec<i64>, size: u32) -> i64 {
        assert!(size as usize >= init.len(), "global size below init length");
        let addr = self.globals_end();
        self.globals.push(GlobalData {
            name: name.into(),
            addr,
            init,
            size,
        });
        addr
    }

    /// First word address past all globals (start of stack frames).
    pub fn globals_end(&self) -> i64 {
        self.globals
            .last()
            .map(|g| g.addr + g.size as i64)
            .unwrap_or(0)
    }

    /// Register a profiling plan, returning its sequence id.
    pub fn add_profile_plan(&mut self, plan: ProfilePlan) -> SeqId {
        let id = SeqId(self.profile_plans.len() as u32);
        self.profile_plans.push(id_plan_check(plan));
        id
    }

    /// Total static instruction count over all functions.
    pub fn static_size(&self) -> usize {
        self.functions.iter().map(|f| f.static_size()).sum()
    }
}

/// Debug-time validation of a profiling plan.
fn id_plan_check(plan: ProfilePlan) -> ProfilePlan {
    match &plan.kind {
        PlanKind::Ranges(ranges) => {
            debug_assert!(
                {
                    let mut sorted = ranges.clone();
                    sorted.sort_unstable();
                    let covers = !sorted.is_empty()
                        && sorted[0].0 == i64::MIN
                        && sorted.last().unwrap().1 == i64::MAX;
                    let contiguous = sorted.windows(2).all(|w| {
                        let (_, hi) = w[0];
                        let (lo, _) = w[1];
                        hi < lo && hi + 1 == lo
                    });
                    covers && contiguous
                },
                "profile plan ranges must partition the value space: {ranges:?}",
            );
        }
        PlanKind::Outcomes(n) => {
            debug_assert!(
                (1..=16).contains(n),
                "outcome plans support 1..=16 conditions, got {n}"
            );
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn globals_are_packed() {
        let mut m = Module::new();
        let a = m.add_global("a", vec![1, 2, 3], 3);
        let b = m.add_global("b", vec![], 5);
        assert_eq!(a, 0);
        assert_eq!(b, 3);
        assert_eq!(m.globals_end(), 8);
    }

    #[test]
    #[should_panic(expected = "global size below init length")]
    fn global_size_validated() {
        let mut m = Module::new();
        m.add_global("bad", vec![1, 2, 3], 2);
    }

    #[test]
    fn profile_plan_lookup() {
        let plan = ProfilePlan {
            func: FuncId(0),
            head: BlockId(0),
            kind: PlanKind::Ranges(vec![(i64::MIN, -1), (0, 9), (10, i64::MAX)]),
        };
        assert_eq!(plan.range_containing(-5), Some(0));
        assert_eq!(plan.range_containing(0), Some(1));
        assert_eq!(plan.range_containing(9), Some(1));
        assert_eq!(plan.range_containing(10), Some(2));
    }

    #[test]
    fn function_named_finds() {
        let mut m = Module::new();
        m.add_function(Function::new("alpha"));
        let beta = m.add_function(Function::new("beta"));
        assert_eq!(m.function_named("beta"), Some(beta));
        assert_eq!(m.function_named("gamma"), None);
    }
}
