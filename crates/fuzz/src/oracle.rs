//! The differential oracle: one spec, four lowerings, two VMs, and the
//! reordering pipeline, all cross-checked.
//!
//! Per heuristic set the oracle runs, in order:
//!
//! 1. **Verifier gate** — `br_ir::verify_module_all` on the lowered
//!    module; a generated module must always be verifier-clean.
//! 2. **Engine differential** — `run_reference` (tree-walker) vs. `run`
//!    (pre-decoded fast path) on every test input, compared field by
//!    field (exit, output, stats, profiles, predictors, traps).
//! 3. **Cross-lowering differential** — observable behavior (exit,
//!    output, trap) against the Set I lowering of the same spec; stats
//!    legitimately differ between lowerings, behavior must not.
//! 4. **Reorder differential** — train the pipeline, run the reordered
//!    module through both engines, and compare its behavior to the
//!    original's. Divergence while the translation validator said
//!    *clean* is the critical finding class
//!    (`validator-accepted-miscompile`); divergence the validator also
//!    flagged is recorded as caught. A validator rejection with *no*
//!    observed divergence is reported too — over-strict proofs hide
//!    real regressions behind noise.
//!
//! Pipeline panics (debug builds assert validation internally) are
//! caught and reported as findings rather than tearing down the run.

use std::panic::{catch_unwind, AssertUnwindSafe};

use br_ir::{print_module, verify_module_all, BlockId, Inst, Module, Terminator};
use br_minic::HeuristicSet;
use br_reorder::{reorder_module, ReorderOptions};
use br_vm::{run, run_reference, RunOutcome, Trap, VmOptions};

use crate::gen::Spec;

/// Step budget for every fuzz execution: far above what a generated
/// program needs (they execute a bounded number of blocks per input
/// byte), low enough that an injected infinite loop surfaces quickly as
/// a `StepLimitExceeded` divergence.
pub const FUZZ_MAX_STEPS: u64 = 3_000_000;

/// Test-only fault injection: after the pipeline (and its validator)
/// have produced the reordered module, swap the taken/not-taken targets
/// of a branch that compares against one of the spec's anchor
/// constants — a model of an emit-stage bug downstream of validation,
/// i.e. exactly the `validator-accepts-but-diverges` class the oracle
/// must catch.
#[derive(Clone, Copy, Debug)]
pub struct FaultInjection {
    /// Which anchor constant to target (wraps around the anchor list).
    pub anchor_index: usize,
}

/// How the injected fault resolved, recorded in repro files so replay
/// can re-apply the identical corruption.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSite {
    /// Swapped the branch comparing against this constant.
    Anchor(i64),
    /// No anchor compare found; swapped the last conditional branch.
    LastBranch,
}

/// Oracle knobs.
#[derive(Clone, Debug)]
pub struct OracleOptions {
    /// Random test inputs per seed.
    pub tests_per_seed: usize,
    /// Bytes per test input.
    pub input_len: usize,
    /// Bytes of training input for the reordering pipeline.
    pub train_len: usize,
    /// Test-only fault injection (see [`FaultInjection`]).
    pub fault: Option<FaultInjection>,
}

impl Default for OracleOptions {
    fn default() -> OracleOptions {
        OracleOptions {
            tests_per_seed: 3,
            input_len: 384,
            train_len: 512,
            fault: None,
        }
    }
}

impl OracleOptions {
    /// Faster settings for CI smoke runs and debug-build tests.
    pub fn smoke() -> OracleOptions {
        OracleOptions {
            tests_per_seed: 2,
            input_len: 160,
            train_len: 224,
            ..OracleOptions::default()
        }
    }
}

/// One divergence (or cross-check failure) the oracle observed.
#[derive(Clone, Debug)]
pub struct Finding {
    pub seed: u64,
    /// Heuristic set the offending module was lowered under.
    pub set: &'static str,
    /// Finding class, e.g. `fast-path-divergence`.
    pub kind: String,
    /// `validator-accepted-miscompile` findings are critical: the proof
    /// said yes and the machine said no.
    pub critical: bool,
    /// Stable identity for dedup and for the reducer's invariant:
    /// `kind/set/first-divergent-field`.
    pub fingerprint: String,
    pub detail: String,
    /// The abstract program; the reducer mutates this.
    pub spec: Spec,
    /// Printed IR of the offending module (pre-reorder lowering).
    pub module_text: String,
    /// The diverging test input (empty when not input-dependent).
    pub input: Vec<u8>,
    pub train: Vec<u8>,
    /// Resolved fault site when injection was on.
    pub fault_site: Option<FaultSite>,
}

/// VM options used for every fuzz execution.
pub fn fuzz_vm_options() -> VmOptions {
    VmOptions {
        max_steps: FUZZ_MAX_STEPS,
        ..VmOptions::default()
    }
}

/// First differing `RunOutcome` field between two engines on the same
/// module, or `None` when equal. Ordered so the most meaningful label
/// wins (a wrong exit usually drags stats along with it).
fn diff_full(a: &Result<RunOutcome, Trap>, b: &Result<RunOutcome, Trap>) -> Option<&'static str> {
    match (a, b) {
        (Ok(x), Ok(y)) => {
            if x.exit != y.exit {
                Some("exit")
            } else if x.output != y.output {
                Some("output")
            } else if x.stats != y.stats {
                Some("stats")
            } else if x.profiles != y.profiles {
                Some("profiles")
            } else if x.predictor_results != y.predictor_results {
                Some("predictors")
            } else {
                None
            }
        }
        (Err(x), Err(y)) => (x != y).then_some("trap-kind"),
        _ => Some("trap"),
    }
}

/// First differing *observable behavior* field between runs of two
/// different modules (exit, output, trap): the comparison used across
/// lowerings and across the reordering, where stats legitimately move.
fn diff_behavior(
    a: &Result<RunOutcome, Trap>,
    b: &Result<RunOutcome, Trap>,
) -> Option<&'static str> {
    match (a, b) {
        (Ok(x), Ok(y)) => {
            if x.exit != y.exit {
                Some("exit")
            } else if x.output != y.output {
                Some("output")
            } else {
                None
            }
        }
        (Err(x), Err(y)) => (x != y).then_some("trap-kind"),
        _ => Some("trap"),
    }
}

fn describe(r: &Result<RunOutcome, Trap>) -> String {
    match r {
        Ok(o) => format!("exit={} output={} bytes", o.exit, o.output.len()),
        Err(t) => format!("trap: {t}"),
    }
}

/// Run a panicking-prone closure, turning a panic into its message.
fn guarded<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|e| {
        if let Some(s) = e.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = e.downcast_ref::<String>() {
            s.clone()
        } else {
            "<non-string panic>".to_string()
        }
    })
}

/// Swap the taken/not-taken successors of a conditional branch in
/// `main` whose final compare tests one of `anchors` (starting the
/// search at `anchor_index`); falls back to the last conditional
/// branch. Returns where the fault landed, or `None` if `main` has no
/// conditional branch at all.
pub fn inject_fault(m: &mut Module, anchors: &[i64], anchor_index: usize) -> Option<FaultSite> {
    let main = m.main?;
    let f = m.function_mut(main);
    let cmp_anchor = |insts: &[Inst]| -> Option<i64> {
        match insts.last() {
            Some(Inst::Cmp { lhs, rhs }) => rhs.imm().or_else(|| lhs.imm()),
            _ => None,
        }
    };
    let swappable = |f: &br_ir::Function, id: BlockId| {
        matches!(
            f.block(id).term,
            Terminator::Branch { taken, not_taken, .. } if taken != not_taken
        )
    };
    let ids: Vec<BlockId> = f.block_ids().collect();
    for k in 0..anchors.len() {
        let a = anchors[(anchor_index + k) % anchors.len()];
        for &id in &ids {
            if swappable(f, id) && cmp_anchor(&f.block(id).insts) == Some(a) {
                if let Terminator::Branch {
                    taken, not_taken, ..
                } = &mut f.block_mut(id).term
                {
                    std::mem::swap(taken, not_taken);
                }
                return Some(FaultSite::Anchor(a));
            }
        }
    }
    for &id in ids.iter().rev() {
        if swappable(f, id) {
            if let Terminator::Branch {
                taken, not_taken, ..
            } = &mut f.block_mut(id).term
            {
                std::mem::swap(taken, not_taken);
            }
            return Some(FaultSite::LastBranch);
        }
    }
    None
}

/// Check one seed end to end: generate, then run [`check_spec_io`] with
/// inputs derived from the spec.
pub fn check_seed(seed: u64, gcfg: &crate::gen::GenConfig, opts: &OracleOptions) -> Vec<Finding> {
    let spec = Spec::generate(seed, gcfg);
    let train = spec.input(u64::MAX, opts.train_len);
    let tests: Vec<Vec<u8>> = (0..opts.tests_per_seed)
        .map(|i| spec.input(i as u64, opts.input_len))
        .collect();
    check_spec_io(&spec, &train, &tests, opts)
}

/// The full oracle over explicit inputs (the reducer re-enters here
/// with shrunken specs and inputs).
pub fn check_spec_io(
    spec: &Spec,
    train: &[u8],
    tests: &[Vec<u8>],
    opts: &OracleOptions,
) -> Vec<Finding> {
    let vm = fuzz_vm_options();
    let mut findings = Vec::new();
    let mut baseline: Option<Vec<Result<RunOutcome, Trap>>> = None;
    let make = |set: &'static str,
                kind: &str,
                critical: bool,
                field: &str,
                detail: String,
                module_text: String,
                input: Vec<u8>,
                fault_site: Option<FaultSite>| Finding {
        seed: spec.seed,
        set,
        kind: kind.to_string(),
        critical,
        fingerprint: if field.is_empty() {
            format!("{kind}/{set}")
        } else {
            format!("{kind}/{set}/{field}")
        },
        detail,
        spec: spec.clone(),
        module_text,
        input,
        train: train.to_vec(),
        fault_site,
    };

    for set in HeuristicSet::ALL {
        let set_name = set.name;
        let module = match guarded(|| {
            let mut m = spec.lower(set);
            if spec.optimize {
                br_opt::optimize(&mut m);
            }
            m
        }) {
            Ok(m) => m,
            Err(msg) => {
                findings.push(make(
                    set_name,
                    "lowering-panic",
                    false,
                    "",
                    msg,
                    String::new(),
                    Vec::new(),
                    None,
                ));
                continue;
            }
        };
        let errs = verify_module_all(&module);
        if !errs.is_empty() {
            findings.push(make(
                set_name,
                "verifier-reject",
                false,
                "",
                errs.iter()
                    .map(|e| e.to_string())
                    .collect::<Vec<_>>()
                    .join("; "),
                print_module(&module),
                Vec::new(),
                None,
            ));
            continue;
        }
        let text = print_module(&module);

        // Engine differential on the original module.
        let refs: Vec<_> = tests
            .iter()
            .map(|t| run_reference(&module, t, &vm))
            .collect();
        let fasts: Vec<_> = tests.iter().map(|t| run(&module, t, &vm)).collect();
        let mut engine_diverged = false;
        for (i, (r, f)) in refs.iter().zip(&fasts).enumerate() {
            if let Some(field) = diff_full(r, f) {
                findings.push(make(
                    set_name,
                    "fast-path-divergence",
                    false,
                    &format!("orig-{field}"),
                    format!("reference {} vs fast {}", describe(r), describe(f)),
                    text.clone(),
                    tests[i].clone(),
                    None,
                ));
                engine_diverged = true;
                break;
            }
        }
        // Generated programs are trap-free by construction; a trap in
        // both engines means the generator's own invariant broke.
        if !engine_diverged {
            if let Some((i, t)) = refs
                .iter()
                .enumerate()
                .find_map(|(i, r)| r.as_ref().err().map(|t| (i, t.clone())))
            {
                findings.push(make(
                    set_name,
                    "unexpected-trap",
                    false,
                    "",
                    format!("original module trapped: {t}"),
                    text.clone(),
                    tests[i].clone(),
                    None,
                ));
            }
        }

        // Cross-lowering differential against the Set I baseline.
        if let Some(base) = &baseline {
            for (i, (r, b)) in refs.iter().zip(base).enumerate() {
                if let Some(field) = diff_behavior(r, b) {
                    findings.push(make(
                        set_name,
                        "lowering-divergence",
                        false,
                        field,
                        format!("set {set_name} {} vs set I {}", describe(r), describe(b)),
                        text.clone(),
                        tests[i].clone(),
                        None,
                    ));
                    break;
                }
            }
        } else {
            baseline = Some(refs.clone());
        }

        // Reordering differential with the validator cross-check. The
        // set's own dispatch flag rides along, so Set IV runs exercise
        // the optimal-tree / jump-table emitter too.
        let ropts = ReorderOptions {
            vm: vm.clone(),
            validate: true,
            opt_tree: set.opt_tree,
            ..ReorderOptions::default()
        };
        let report = match guarded(|| reorder_module(&module, train, &ropts)) {
            Ok(Ok(r)) => r,
            Ok(Err(t)) => {
                findings.push(make(
                    set_name,
                    "train-trap",
                    false,
                    "",
                    format!("training run trapped: {t}"),
                    text.clone(),
                    Vec::new(),
                    None,
                ));
                continue;
            }
            Err(msg) => {
                findings.push(make(
                    set_name,
                    "pipeline-panic",
                    false,
                    "",
                    msg,
                    text.clone(),
                    Vec::new(),
                    None,
                ));
                continue;
            }
        };
        let vclean = report
            .validation
            .as_ref()
            .map(|s| s.is_clean())
            .unwrap_or(true);
        let vdetail = report
            .validation
            .as_ref()
            .map(|s| {
                s.failures
                    .iter()
                    .map(|f| f.to_string())
                    .collect::<Vec<_>>()
                    .join("; ")
            })
            .unwrap_or_default();
        let mut reordered = report.module;
        let fault_site = opts
            .fault
            .and_then(|f| inject_fault(&mut reordered, &spec.anchors(), f.anchor_index));

        let rrefs: Vec<_> = tests
            .iter()
            .map(|t| run_reference(&reordered, t, &vm))
            .collect();
        let rfasts: Vec<_> = tests.iter().map(|t| run(&reordered, t, &vm)).collect();
        for (i, (r, f)) in rrefs.iter().zip(&rfasts).enumerate() {
            if let Some(field) = diff_full(r, f) {
                findings.push(make(
                    set_name,
                    "fast-path-divergence",
                    false,
                    &format!("reord-{field}"),
                    format!("reference {} vs fast {}", describe(r), describe(f)),
                    text.clone(),
                    tests[i].clone(),
                    fault_site,
                ));
                break;
            }
        }
        let mut behavior_diverged = false;
        for (i, (r, o)) in rrefs.iter().zip(&refs).enumerate() {
            if let Some(field) = diff_behavior(r, o) {
                behavior_diverged = true;
                if vclean {
                    findings.push(make(
                        set_name,
                        "validator-accepted-miscompile",
                        true,
                        field,
                        format!(
                            "validator clean, yet reordered {} vs original {}",
                            describe(r),
                            describe(o)
                        ),
                        text.clone(),
                        tests[i].clone(),
                        fault_site,
                    ));
                } else {
                    findings.push(make(
                        set_name,
                        "reorder-divergence-caught",
                        false,
                        field,
                        format!(
                            "validator flagged it ({vdetail}); reordered {} vs original {}",
                            describe(r),
                            describe(o)
                        ),
                        text.clone(),
                        tests[i].clone(),
                        fault_site,
                    ));
                }
                break;
            }
        }
        if !vclean && !behavior_diverged {
            findings.push(make(
                set_name,
                "validator-reject",
                false,
                "",
                format!("validator rejected but behavior agreed on all tests: {vdetail}"),
                text.clone(),
                Vec::new(),
                None,
            ));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GenConfig;

    #[test]
    fn clean_seeds_produce_no_findings() {
        let gcfg = GenConfig::smoke();
        let opts = OracleOptions::smoke();
        for seed in 0..12 {
            let findings = check_seed(seed, &gcfg, &opts);
            assert!(
                findings.is_empty(),
                "seed {seed}: {:?}",
                findings
                    .iter()
                    .map(|f| (&f.fingerprint, &f.detail))
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn injected_fault_is_detected() {
        let gcfg = GenConfig::smoke();
        let opts = OracleOptions {
            fault: Some(FaultInjection { anchor_index: 0 }),
            ..OracleOptions::smoke()
        };
        let mut hit = false;
        for seed in 0..12 {
            let findings = check_seed(seed, &gcfg, &opts);
            if findings
                .iter()
                .any(|f| f.kind == "validator-accepted-miscompile" && f.critical)
            {
                hit = true;
                break;
            }
        }
        assert!(hit, "no seed in 0..12 caught the injected miscompile");
    }

    #[test]
    fn fault_injection_prefers_anchor_compares() {
        let spec = Spec::generate(5, &GenConfig::smoke());
        let mut m = spec.lower(HeuristicSet::SET_I);
        let anchors = spec.anchors();
        let site = inject_fault(&mut m, &anchors, 0).expect("fault lands");
        assert!(matches!(site, FaultSite::Anchor(a) if anchors.contains(&a)));
    }
}
