//! # br-fuzz
//!
//! Generative differential testing for the branch-reordering pipeline
//! and the dual-path VM.
//!
//! The paper's transformation (Figure 4 detection, Figure 10
//! restructuring, Theorem 2 side-effect motion) is exactly the kind of
//! pass where rare CFG shapes hide miscompiles, and the pre-decoded VM
//! fast path doubled the execution surface. This crate closes the loop
//! Rustlantis-style:
//!
//! * [`gen`] — a seeded generator emitting verifier-clean IR modules
//!   biased toward reorderable range-condition sequences, with knobs
//!   for sequence length, range Forms 1–4, intervening side effects,
//!   default-target tails, and switch density. The same abstract spec
//!   lowers its switches per heuristic Sets I/II/III, so a cross-set
//!   run is a genuine differential of three lowerings of one program.
//! * [`oracle`] — runs each program × random inputs through
//!   `run_reference`, the fast path, and the reordered module, flagging
//!   any `RunOutcome` or trap divergence and cross-checking the
//!   translation validator's verdict against observed behavior
//!   (validator-accepts-but-diverges is the critical class).
//! * [`reduce`] — a delta-debugging reducer that shrinks failing specs
//!   and inputs while preserving the divergence fingerprint.
//!
//! [`run_fuzz`] schedules seeds across cores with the sweep crate's
//! atomic-cursor scheduler, dedups findings by fingerprint, reduces
//! each survivor, and writes a minimized `.bir` repro (with a one-line
//! replay command) into the corpus directory. [`replay_file`] re-runs a
//! repro and reports whether it still reproduces.
//!
//! ```
//! use br_fuzz::{run_fuzz, FuzzConfig};
//!
//! let mut cfg = FuzzConfig::smoke();
//! cfg.seeds = 5;
//! cfg.jobs = 1;
//! let outcome = run_fuzz(&cfg);
//! assert_eq!(outcome.seeds_run, 5);
//! assert!(outcome.findings.is_empty());
//! ```

pub mod gen;
pub mod oracle;
pub mod reduce;

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use br_ir::{parse_module, print_module, verify_module_all, Module};
use br_minic::HeuristicSet;
use br_reorder::{reorder_module, ReorderOptions};
use br_sweep::scheduler::{default_threads, parallel_map};
use br_vm::{run, run_reference};

pub use gen::{GenConfig, Spec};
pub use oracle::{
    check_seed, check_spec_io, fuzz_vm_options, inject_fault, FaultInjection, FaultSite, Finding,
    OracleOptions,
};
pub use reduce::{reduce_finding, Reduced};

/// Configuration for one fuzzing campaign.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Seeds to try, starting at `start_seed`.
    pub seeds: u64,
    pub start_seed: u64,
    /// Worker threads; 0 means one per available core.
    pub jobs: usize,
    /// Stop scheduling new seeds after this long.
    pub time_limit: Option<Duration>,
    pub gen: GenConfig,
    pub oracle: OracleOptions,
    /// Where minimized repros go; `None` disables corpus writing.
    pub corpus_dir: Option<PathBuf>,
    /// Delta-debug each deduped finding before writing it out.
    pub reduce: bool,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            seeds: 1000,
            start_seed: 0,
            jobs: 0,
            time_limit: None,
            gen: GenConfig::default(),
            oracle: OracleOptions::default(),
            corpus_dir: Some(PathBuf::from("fuzz/corpus")),
            reduce: true,
        }
    }
}

impl FuzzConfig {
    /// Small fast programs and inputs for CI smoke runs.
    pub fn smoke() -> FuzzConfig {
        FuzzConfig {
            gen: GenConfig::smoke(),
            oracle: OracleOptions::smoke(),
            corpus_dir: None,
            ..FuzzConfig::default()
        }
    }
}

/// One deduplicated finding with its reduction and repro artifact.
#[derive(Clone, Debug)]
pub struct CampaignFinding {
    pub finding: Finding,
    pub reduced: Option<Reduced>,
    pub repro_path: Option<PathBuf>,
}

/// Result of a fuzzing campaign.
#[derive(Clone, Debug)]
pub struct FuzzOutcome {
    pub seeds_run: u64,
    /// Seeds skipped because the time limit expired.
    pub seeds_skipped: u64,
    pub elapsed: Duration,
    /// Fingerprint-deduplicated findings (first seed wins; the result
    /// is deterministic regardless of thread count).
    pub findings: Vec<CampaignFinding>,
}

impl FuzzOutcome {
    /// Whether any critical (validator-accepted miscompile) finding
    /// survived.
    pub fn has_critical(&self) -> bool {
        self.findings.iter().any(|f| f.finding.critical)
    }
}

/// Run a fuzzing campaign: fan seeds across threads, dedup findings by
/// fingerprint, reduce, and write corpus repros.
pub fn run_fuzz(cfg: &FuzzConfig) -> FuzzOutcome {
    let start = Instant::now();
    let deadline = cfg.time_limit.map(|d| start + d);
    let seeds: Vec<u64> = (cfg.start_seed..cfg.start_seed.saturating_add(cfg.seeds)).collect();
    let threads = if cfg.jobs == 0 {
        default_threads()
    } else {
        cfg.jobs
    };
    let gen = cfg.gen.clone();
    let oracle = cfg.oracle.clone();
    let results = parallel_map(&seeds, threads, move |_, &seed| {
        if deadline.is_some_and(|d| Instant::now() >= d) {
            return None;
        }
        Some(check_seed(seed, &gen, &oracle))
    });

    let seeds_skipped = results.iter().filter(|r| r.is_none()).count() as u64;
    let mut deduped: BTreeMap<String, Finding> = BTreeMap::new();
    for finding in results.into_iter().flatten().flatten() {
        deduped
            .entry(finding.fingerprint.clone())
            .or_insert(finding);
    }

    let mut findings = Vec::new();
    for (_, finding) in deduped {
        let reduced = cfg.reduce.then(|| reduce_finding(&finding, &cfg.oracle));
        let repro_path = cfg.corpus_dir.as_deref().and_then(|dir| {
            write_repro(dir, &finding, reduced.as_ref())
                .map_err(|e| eprintln!("br-fuzz: cannot write repro: {e}"))
                .ok()
        });
        findings.push(CampaignFinding {
            finding,
            reduced,
            repro_path,
        });
    }
    FuzzOutcome {
        seeds_run: cfg.seeds - seeds_skipped,
        seeds_skipped,
        elapsed: start.elapsed(),
        findings,
    }
}

fn hex(bytes: &[u8]) -> String {
    if bytes.is_empty() {
        return "-".to_string();
    }
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn unhex(s: &str) -> Option<Vec<u8>> {
    if s == "-" {
        return Some(Vec::new());
    }
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).ok())
        .collect()
}

fn slug(fingerprint: &str) -> String {
    fingerprint
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect()
}

/// Write a minimized, self-contained `.bir` repro. Metadata rides in
/// `#`-prefixed lines ahead of the module text (the IR parser never
/// sees them; [`replay_file`] strips them).
fn write_repro(dir: &Path, finding: &Finding, reduced: Option<&Reduced>) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    // Re-derive the minimized module and its expected (pre-divergence)
    // behavior from the reduced spec, falling back to the original
    // finding when reduction is off.
    let (spec, train, input) = match reduced {
        Some(r) => (&r.spec, &r.train, &r.input),
        None => (&finding.spec, &finding.train, &finding.input),
    };
    let set = HeuristicSet::ALL
        .into_iter()
        .find(|s| s.name == finding.set)
        .unwrap_or(HeuristicSet::SET_I);
    let mut module = spec.lower(set);
    if spec.optimize {
        br_opt::optimize(&mut module);
    }
    let text = print_module(&module);
    // Expected behavior: the agreed-correct run. For cross-lowering
    // findings that is the Set I lowering's output; otherwise the
    // module's own (original, unreordered) reference run.
    let expect_module = if finding.kind == "lowering-divergence" {
        let mut m = spec.lower(HeuristicSet::SET_I);
        if spec.optimize {
            br_opt::optimize(&mut m);
        }
        m
    } else {
        module
    };
    let expect = run_reference(&expect_module, input, &fuzz_vm_options());
    let expect_line = match &expect {
        Ok(o) => format!("exit={} output={}", o.exit, hex(&o.output)),
        Err(t) => format!("trap={t}"),
    };
    let fault_line = match finding.fault_site {
        Some(FaultSite::Anchor(a)) => format!("# fault anchor={a}\n"),
        Some(FaultSite::LastBranch) => "# fault last\n".to_string(),
        None => String::new(),
    };
    // Set IV findings went through the dispatch emitter; record that so
    // replay re-runs the pipeline with the same structures enabled.
    let opttree_line = if set.opt_tree { "# opttree 1\n" } else { "" };
    let name = format!("{}-s{}.bir", slug(&finding.fingerprint), finding.seed);
    let path = dir.join(&name);
    let contents = format!(
        "# br-fuzz repro v1\n\
         # seed {}\n\
         # set {}\n\
         # kind {}\n\
         # fingerprint {}\n\
         # detail {}\n\
         # train {}\n\
         # input {}\n\
         {fault_line}\
         {opttree_line}\
         # expect {}\n\
         # replay brc fuzz --replay {}\n\
         {}",
        finding.seed,
        finding.set,
        finding.kind,
        finding.fingerprint,
        finding.detail.replace('\n', " "),
        hex(train),
        hex(input),
        expect_line,
        path.display(),
        text,
    );
    std::fs::write(&path, contents)?;
    Ok(path)
}

/// Result of replaying one repro file.
#[derive(Clone, Debug)]
pub struct ReplayReport {
    /// Whether any divergence reproduced.
    pub reproduced: bool,
    /// One line per check performed.
    pub checks: Vec<String>,
}

/// Re-run a corpus repro: parse the embedded module, re-run the
/// verifier, both engines, the expectation comparison, and (when a
/// training input is recorded) the reordering differential with the
/// recorded fault re-applied.
pub fn replay_file(path: &Path) -> io::Result<ReplayReport> {
    let contents = std::fs::read_to_string(path)?;
    let mut train = Vec::new();
    let mut input = Vec::new();
    let mut expect: Option<String> = None;
    let mut fault: Option<Option<i64>> = None; // Some(None) = last-branch
    let mut opt_tree = false;
    let mut module_text = String::new();
    for line in contents.lines() {
        if let Some(meta) = line.strip_prefix('#') {
            let meta = meta.trim();
            if let Some(v) = meta.strip_prefix("train ") {
                train = unhex(v).unwrap_or_default();
            } else if let Some(v) = meta.strip_prefix("input ") {
                input = unhex(v).unwrap_or_default();
            } else if let Some(v) = meta.strip_prefix("expect ") {
                expect = Some(v.to_string());
            } else if let Some(v) = meta.strip_prefix("fault ") {
                fault = Some(v.strip_prefix("anchor=").and_then(|a| a.parse().ok()));
            } else if let Some(v) = meta.strip_prefix("opttree ") {
                opt_tree = v.trim() == "1";
            }
        } else {
            module_text.push_str(line);
            module_text.push('\n');
        }
    }
    let module = parse_module(&module_text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("IR parse error: {e}")))?;
    Ok(replay_module(
        &module,
        &train,
        &input,
        expect.as_deref(),
        fault,
        opt_tree,
    ))
}

fn behavior_line(r: &Result<br_vm::RunOutcome, br_vm::Trap>) -> String {
    match r {
        Ok(o) => format!("exit={} output={}", o.exit, hex(&o.output)),
        Err(t) => format!("trap={t}"),
    }
}

fn replay_module(
    module: &Module,
    train: &[u8],
    input: &[u8],
    expect: Option<&str>,
    fault: Option<Option<i64>>,
    opt_tree: bool,
) -> ReplayReport {
    let vm = fuzz_vm_options();
    let mut checks = Vec::new();
    let mut reproduced = false;
    let mut check = |name: &str, bad: bool, detail: String| {
        checks.push(format!(
            "{name}: {}{}",
            if bad { "DIVERGED" } else { "ok" },
            if detail.is_empty() {
                String::new()
            } else {
                format!(" — {detail}")
            }
        ));
        reproduced |= bad;
    };

    let errs = verify_module_all(module);
    check(
        "verify",
        !errs.is_empty(),
        errs.first().map(|e| e.to_string()).unwrap_or_default(),
    );

    let r = run_reference(module, input, &vm);
    let f = run(module, input, &vm);
    let engines_diverge = match (&r, &f) {
        (Ok(a), Ok(b)) => {
            a.exit != b.exit
                || a.output != b.output
                || a.stats != b.stats
                || a.profiles != b.profiles
        }
        (Err(a), Err(b)) => a != b,
        _ => true,
    };
    check(
        "reference vs fast path",
        engines_diverge,
        format!("{} vs {}", behavior_line(&r), behavior_line(&f)),
    );

    if let Some(want) = expect {
        let got = behavior_line(&r);
        check("expected behavior", got != want, format!("{got} vs {want}"));
    }

    if !train.is_empty() || fault.is_some() {
        let ropts = ReorderOptions {
            vm: vm.clone(),
            validate: true,
            opt_tree,
            ..ReorderOptions::default()
        };
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            reorder_module(module, train, &ropts)
        })) {
            Err(_) => check("reorder pipeline", true, "panicked".to_string()),
            Ok(Err(t)) => check("reorder pipeline", true, format!("training trapped: {t}")),
            Ok(Ok(report)) => {
                let vclean = report
                    .validation
                    .as_ref()
                    .map(|s| s.is_clean())
                    .unwrap_or(true);
                // A rejection is a finding on its own (validator-reject
                // when behavior agrees below, miscompile when it moves).
                check(
                    "validator verdict",
                    !vclean,
                    report
                        .validation
                        .as_ref()
                        .map(|s| s.to_string())
                        .unwrap_or_default(),
                );
                let mut rm = report.module;
                if let Some(site) = fault {
                    let anchors: Vec<i64> = site.into_iter().collect();
                    inject_fault(&mut rm, &anchors, 0);
                }
                let rr = run_reference(&rm, input, &vm);
                let rf = run(&rm, input, &vm);
                let reord_engines = behavior_line(&rr) != behavior_line(&rf);
                check(
                    "reordered: reference vs fast path",
                    reord_engines,
                    format!("{} vs {}", behavior_line(&rr), behavior_line(&rf)),
                );
                let behavior_moved = behavior_line(&rr) != behavior_line(&r);
                check(
                    if vclean {
                        "reordered vs original (validator clean)"
                    } else {
                        "reordered vs original (validator flagged)"
                    },
                    behavior_moved,
                    format!("{} vs {}", behavior_line(&rr), behavior_line(&r)),
                );
            }
        }
    }
    ReplayReport { reproduced, checks }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrip() {
        for bytes in [vec![], vec![0u8], vec![255, 0, 17, 4]] {
            assert_eq!(unhex(&hex(&bytes)).unwrap(), bytes);
        }
        assert_eq!(unhex("zz"), None);
        assert_eq!(unhex("abc"), None);
    }

    #[test]
    fn clean_campaign_has_no_findings_and_is_deterministic() {
        let mut cfg = FuzzConfig::smoke();
        cfg.seeds = 8;
        cfg.jobs = 2;
        let a = run_fuzz(&cfg);
        assert_eq!(a.seeds_run, 8);
        assert_eq!(a.seeds_skipped, 0);
        assert!(a.findings.is_empty(), "{:?}", a.findings);
        cfg.jobs = 1;
        let b = run_fuzz(&cfg);
        assert!(b.findings.is_empty());
    }

    #[test]
    fn time_limit_skips_seeds() {
        let mut cfg = FuzzConfig::smoke();
        cfg.seeds = 64;
        cfg.jobs = 1;
        cfg.time_limit = Some(Duration::from_secs(0));
        let out = run_fuzz(&cfg);
        assert_eq!(out.seeds_run + out.seeds_skipped, 64);
        assert!(out.seeds_skipped > 0);
    }
}
