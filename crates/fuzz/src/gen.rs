//! Seeded generation of IR modules biased toward reorderable
//! range-condition sequences.
//!
//! The generator works in two stages. [`Spec::generate`] draws an
//! abstract program — a list of *dispatch sites*, each either a chain of
//! range conditions (the paper's Forms 1–4) or a dense `switch` — from a
//! [`SmallRng`] stream. [`Spec::lower`] then turns the spec into a
//! [`Module`] under a chosen [`HeuristicSet`], so the same abstract
//! program yields three genuinely different lowerings (linear chain,
//! binary search, bounds-checked jump table) exactly as the paper's
//! Table 2 prescribes. Keeping the spec around (rather than only the
//! module) is what makes delta-debugging natural: the reducer mutates
//! the spec and re-lowers.
//!
//! Every generated program has the shape
//!
//! ```text
//! acc = 0;
//! while ((c = getchar()) != -1) { site_0(c); site_1(c); ... }
//! putint(scratch[0..4]); return acc;
//! ```
//!
//! so any finite input terminates, every site executes once per input
//! byte (profile coverage is guaranteed), and no generated instruction
//! can trap: arithmetic wraps, all memory accesses hit the fixed
//! `scratch` global, and indirect jumps are guarded by explicit bounds
//! checks. A trap anywhere is therefore itself a finding.

use br_ir::{
    BinOp, Callee, Cond, FuncBuilder, FuncId, Intrinsic, Module, Operand, Reg, Terminator,
};
use br_minic::switchgen::Strategy;
use br_minic::HeuristicSet;
use br_workloads::rng::SmallRng;

/// Knobs for the generator, tuned so Figure 4 / Figure 10 edge cases
/// (bounded pairs, negated equalities, intervening side effects, fat
/// default tails) appear often enough to matter.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Dispatch sites per program (uniform in `1..=max_sites`).
    pub max_sites: usize,
    /// Conditions per range-sequence site (uniform in `2..=max_conds`).
    pub max_conds: usize,
    /// Probability a range site gets an unbounded relational arm
    /// (Form 3: `v < k` / `v >= k`).
    pub form3_prob: f64,
    /// Probability an interval is multi-valued (Form 4 bounded pair)
    /// instead of a singleton.
    pub form4_prob: f64,
    /// Probability a singleton lowers as `Ne` with the match on the
    /// fall-through edge (Form 2).
    pub negate_prob: f64,
    /// Probability a non-head condition carries intervening side
    /// effects (stores / output before its compare).
    pub side_effect_prob: f64,
    /// Probability a site is a dense `switch` rather than a range chain.
    pub switch_prob: f64,
    /// Dense switch width (uniform in `4..=max_switch_cases`).
    pub max_switch_cases: usize,
    /// Probability the module is run through `br_opt::optimize` before
    /// the oracle sees it.
    pub optimize_prob: f64,
    /// Probability the program gets a callable helper function.
    pub helper_prob: f64,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            max_sites: 3,
            max_conds: 6,
            form3_prob: 0.35,
            form4_prob: 0.45,
            negate_prob: 0.30,
            side_effect_prob: 0.35,
            switch_prob: 0.35,
            max_switch_cases: 20,
            optimize_prob: 0.25,
            helper_prob: 0.30,
        }
    }
}

impl GenConfig {
    /// Smaller programs for CI smoke runs and debug-build tests.
    pub fn smoke() -> GenConfig {
        GenConfig {
            max_sites: 2,
            max_conds: 4,
            max_switch_cases: 10,
            ..GenConfig::default()
        }
    }
}

/// What a matched arm (or the default path) does. Every field is
/// trap-free and observable: `acc` feeds the exit value, stores feed the
/// `putint` dump at exit, `emit` is order-sensitive output.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tail {
    /// `acc += add`.
    pub add: i64,
    /// Further pure ALU ops on `acc`.
    pub extra: Vec<(BinOp, i64)>,
    /// Route `acc` through the helper function (when the spec has one).
    pub call_helper: bool,
    /// `scratch[slot] = acc` (slot in `0..4`).
    pub store_slot: Option<i64>,
    /// `putchar(byte)`.
    pub emit: Option<i64>,
}

impl Tail {
    fn gen(rng: &mut SmallRng, cfg: &GenConfig, helper: bool) -> Tail {
        let n_extra = rng.gen_range(0usize..=2);
        let extra = (0..n_extra)
            .map(|_| {
                let op = match rng.gen_range(0u32..4) {
                    0 => BinOp::Sub,
                    1 => BinOp::Xor,
                    _ => BinOp::Add,
                };
                (op, rng.gen_range(1i64..=31))
            })
            .collect();
        Tail {
            add: rng.gen_range(-40i64..=40),
            extra,
            call_helper: helper && rng.gen_bool(0.25),
            store_slot: rng.gen_bool(0.4).then(|| rng.gen_range(0i64..=3)),
            emit: rng
                .gen_bool(cfg.side_effect_prob)
                .then(|| rng.gen_range(33i64..=126)),
        }
    }

    /// A do-almost-nothing tail (used when a site must still terminate).
    pub fn nop() -> Tail {
        Tail {
            add: 1,
            extra: Vec::new(),
            call_helper: false,
            store_slot: None,
            emit: None,
        }
    }
}

/// One range condition of a range-sequence site, in test order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArmRange {
    /// Form 1 (`Eq`, match taken) or Form 2 (`negated`: `Ne`, match on
    /// the fall-through edge).
    Singleton { value: i64, negated: bool },
    /// Form 3: `v < bound`.
    Below { bound: i64 },
    /// Form 3: `v >= bound`.
    AtLeast { bound: i64 },
    /// Form 4 bounded pair: `lo <= v <= hi`, lowered as two compares
    /// sharing the out-of-range successor.
    Between { lo: i64, hi: i64 },
}

impl ArmRange {
    /// Constants this arm compares against.
    pub fn anchors(&self) -> Vec<i64> {
        match *self {
            ArmRange::Singleton { value, .. } => vec![value],
            ArmRange::Below { bound } | ArmRange::AtLeast { bound } => vec![bound],
            ArmRange::Between { lo, hi } => vec![lo, hi],
        }
    }
}

/// An intervening side effect executed when control *reaches* a
/// condition's test (Theorem 2 duplicates exactly these on reordering).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SideEffect {
    /// `scratch[slot] = acc`.
    Store { slot: i64 },
    /// `putchar(byte)` — a call, so it also clobbers condition codes.
    Emit { ch: i64 },
}

/// One condition of a range-sequence site plus its action.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Arm {
    pub range: ArmRange,
    /// Emitted before this arm's compare, in its test block.
    pub side_effects: Vec<SideEffect>,
    pub tail: Tail,
}

/// The control structure of one dispatch site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SiteKind {
    /// A chain of range conditions tested in order; first match wins.
    Ranges { arms: Vec<Arm>, default_tail: Tail },
    /// A dense switch over `base, base+stride, ...`; lowered per the
    /// heuristic set's Table 2 strategy.
    Switch {
        base: i64,
        stride: i64,
        cases: Vec<Tail>,
        default_tail: Tail,
    },
}

/// One dispatch site: `v = c + offset`, then the site's control
/// structure over `v`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Site {
    pub offset: i64,
    pub kind: SiteKind,
}

impl Site {
    /// All comparison constants of this site.
    pub fn anchors(&self) -> Vec<i64> {
        match &self.kind {
            SiteKind::Ranges { arms, .. } => arms.iter().flat_map(|a| a.range.anchors()).collect(),
            SiteKind::Switch {
                base,
                stride,
                cases,
                ..
            } => (0..cases.len() as i64).map(|j| base + stride * j).collect(),
        }
    }

    /// Number of conditions the site contributes.
    pub fn cond_count(&self) -> usize {
        match &self.kind {
            SiteKind::Ranges { arms, .. } => arms.len(),
            SiteKind::Switch { cases, .. } => cases.len(),
        }
    }
}

/// An abstract generated program; `lower` turns it into IR under a
/// heuristic set, and the reducer mutates it structurally.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Spec {
    pub seed: u64,
    /// Program includes a callable helper function.
    pub helper: bool,
    /// Run `br_opt::optimize` on the lowered module.
    pub optimize: bool,
    pub sites: Vec<Site>,
}

/// Input domain of `c` (getchar yields a byte or -1, and -1 exits the
/// loop before any site runs).
const DOMAIN: i64 = 255;

impl Spec {
    /// Draw a spec from the seed. Same seed, same spec, on every
    /// platform — the differential runs and the replay files depend on
    /// that.
    pub fn generate(seed: u64, cfg: &GenConfig) -> Spec {
        let mut rng = SmallRng::seed_from_u64(seed);
        let helper = rng.gen_bool(cfg.helper_prob);
        let optimize = rng.gen_bool(cfg.optimize_prob);
        let n_sites = rng.gen_range(1usize..=cfg.max_sites.max(1));
        let sites = (0..n_sites)
            .map(|_| Site::gen(&mut rng, cfg, helper))
            .collect();
        Spec {
            seed,
            helper,
            optimize,
            sites,
        }
    }

    /// Total conditions across all sites (the reducer's size metric).
    pub fn cond_count(&self) -> usize {
        self.sites.iter().map(Site::cond_count).sum()
    }

    /// All comparison constants across all sites, deduplicated.
    pub fn anchors(&self) -> Vec<i64> {
        let mut out: Vec<i64> = self.sites.iter().flat_map(Site::anchors).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Input bytes that land on or next to a comparison anchor of some
    /// site (mapped back through that site's offset).
    fn interesting_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for site in &self.sites {
            for a in site.anchors() {
                for d in [-1i64, 0, 1] {
                    let c = a - site.offset + d;
                    if (0..=DOMAIN).contains(&c) {
                        out.push(c as u8);
                    }
                }
            }
        }
        if out.is_empty() {
            out.push(b'A');
        }
        out
    }

    /// A deterministic input stream for this spec: `stream` selects
    /// independent streams (training vs. each test input). Bytes are
    /// biased toward the spec's comparison anchors so arms and their
    /// boundaries are actually exercised.
    pub fn input(&self, stream: u64, len: usize) -> Vec<u8> {
        let mut rng =
            SmallRng::seed_from_u64(self.seed.wrapping_mul(0x1_0001).wrapping_add(stream));
        let interesting = self.interesting_bytes();
        (0..len)
            .map(|_| {
                if rng.gen_bool(0.75) {
                    interesting[rng.gen_range(0usize..interesting.len())]
                } else {
                    rng.gen_range(0u8..=255)
                }
            })
            .collect()
    }

    /// Lower the spec to a module under one heuristic set. Lowering is
    /// deterministic; the only set-dependent part is the switch
    /// strategy, so cross-set behavioral divergence isolates a
    /// lowering-strategy bug.
    pub fn lower(&self, set: HeuristicSet) -> Module {
        let mut m = Module::new();
        let scratch = m.add_global("scratch", Vec::new(), 4);
        let helper = self.helper.then(|| m.add_function(build_helper()));

        let mut b = FuncBuilder::new("main");
        let c = b.new_reg();
        let acc = b.new_reg();
        let entry = b.entry();
        let head = b.new_block();
        let exit = b.new_block();
        b.copy(entry, acc, 0i64);
        b.set_term(entry, Terminator::Jump(head));

        let site_heads: Vec<_> = self.sites.iter().map(|_| b.new_block()).collect();
        let first = site_heads.first().copied().unwrap_or(head);
        b.call(head, Some(c), Callee::Intrinsic(Intrinsic::GetChar), vec![]);
        b.cmp(head, c, -1i64);
        b.set_term(head, Terminator::branch(Cond::Eq, exit, first));

        let ctx = LowerCtx {
            c,
            acc,
            scratch,
            helper,
            set,
        };
        for (i, site) in self.sites.iter().enumerate() {
            let cont = site_heads.get(i + 1).copied().unwrap_or(head);
            lower_site(&mut b, &ctx, site, site_heads[i], cont);
        }

        for slot in 0..4i64 {
            let t = b.new_reg();
            b.load(exit, t, Operand::Imm(scratch), Operand::Imm(slot));
            b.call(
                exit,
                None,
                Callee::Intrinsic(Intrinsic::PutInt),
                vec![Operand::Reg(t)],
            );
        }
        b.set_term(exit, Terminator::Return(Some(Operand::Reg(acc))));

        m.main = Some(m.add_function(b.finish()));
        m
    }
}

impl Site {
    fn gen(rng: &mut SmallRng, cfg: &GenConfig, helper: bool) -> Site {
        let offset = rng.gen_range(-8i64..=8);
        let kind = if rng.gen_bool(cfg.switch_prob) {
            let stride = match rng.gen_range(0u32..6) {
                0 => 2,
                1 => 4,
                _ => 1,
            };
            let n = rng.gen_range(4usize..=cfg.max_switch_cases.max(4));
            // Keep every case value reachable from a byte input.
            let span = stride * (n as i64 - 1) + 1;
            let base = offset + rng.gen_range(1i64..=(DOMAIN - span).max(1));
            SiteKind::Switch {
                base,
                stride,
                cases: (0..n).map(|_| Tail::gen(rng, cfg, helper)).collect(),
                default_tail: Tail::gen(rng, cfg, helper),
            }
        } else {
            SiteKind::Ranges {
                arms: gen_arms(rng, cfg, helper, offset),
                default_tail: Tail::gen(rng, cfg, helper),
            }
        };
        Site { offset, kind }
    }
}

/// Draw the disjoint intervals of a range site, convert them to arms
/// (Forms 1–4), and shuffle the test order.
fn gen_arms(rng: &mut SmallRng, cfg: &GenConfig, helper: bool, offset: i64) -> Vec<Arm> {
    let n = rng.gen_range(2usize..=cfg.max_conds.max(2));
    let mut intervals: Vec<(i64, i64)> = Vec::new();
    let mut cur = offset + rng.gen_range(1i64..=30);
    for _ in 0..n {
        let lo = cur + rng.gen_range(0i64..=12);
        let width = if rng.gen_bool(cfg.form4_prob) {
            rng.gen_range(2i64..=9)
        } else {
            1
        };
        let hi = lo + width - 1;
        if hi > offset + DOMAIN - 5 {
            break;
        }
        intervals.push((lo, hi));
        cur = hi + 1 + rng.gen_range(1i64..=10);
    }
    if intervals.is_empty() {
        intervals.push((offset + 40, offset + 40));
    }
    let mut ranges: Vec<ArmRange> = intervals
        .iter()
        .map(|&(lo, hi)| {
            if lo == hi {
                ArmRange::Singleton {
                    value: lo,
                    negated: rng.gen_bool(cfg.negate_prob),
                }
            } else {
                ArmRange::Between { lo, hi }
            }
        })
        .collect();
    // At most one unbounded relational arm, claiming one end of the
    // domain so disjointness is preserved.
    if rng.gen_bool(cfg.form3_prob) {
        if rng.gen_bool(0.5) {
            let hi = intervals[0].1;
            ranges[0] = ArmRange::Below { bound: hi + 1 };
        } else {
            let last = ranges.len() - 1;
            let lo = intervals[last].0;
            ranges[last] = ArmRange::AtLeast { bound: lo };
        }
    }
    shuffle(rng, &mut ranges);
    ranges
        .into_iter()
        .enumerate()
        .map(|(i, range)| {
            let mut side_effects = Vec::new();
            if i > 0 && rng.gen_bool(cfg.side_effect_prob) {
                for _ in 0..rng.gen_range(1usize..=2) {
                    side_effects.push(if rng.gen_bool(0.7) {
                        SideEffect::Store {
                            slot: rng.gen_range(0i64..=3),
                        }
                    } else {
                        SideEffect::Emit {
                            ch: rng.gen_range(33i64..=126),
                        }
                    });
                }
            }
            Arm {
                range,
                side_effects,
                tail: Tail::gen(rng, cfg, helper),
            }
        })
        .collect()
}

fn shuffle<T>(rng: &mut SmallRng, v: &mut [T]) {
    for i in (1..v.len()).rev() {
        let j = rng.gen_range(0usize..=i);
        v.swap(i, j);
    }
}

/// `mix(a, b) = (a * 3 + b) ^ 5` — a pure helper whose call clobbers
/// condition codes at every use site.
fn build_helper() -> br_ir::Function {
    let mut b = FuncBuilder::new("mix");
    let a = b.new_reg();
    let y = b.new_reg();
    b.set_param_regs(vec![a, y]);
    let e = b.entry();
    b.bin(e, BinOp::Mul, a, a, 3i64);
    b.bin(e, BinOp::Add, a, a, y);
    b.bin(e, BinOp::Xor, a, a, 5i64);
    b.set_term(e, Terminator::Return(Some(Operand::Reg(a))));
    b.finish()
}

struct LowerCtx {
    c: Reg,
    acc: Reg,
    scratch: i64,
    helper: Option<FuncId>,
    set: HeuristicSet,
}

fn lower_side_effect(b: &mut FuncBuilder, ctx: &LowerCtx, block: br_ir::BlockId, s: &SideEffect) {
    match *s {
        SideEffect::Store { slot } => b.store(
            block,
            Operand::Imm(ctx.scratch),
            Operand::Imm(slot.rem_euclid(4)),
            Operand::Reg(ctx.acc),
        ),
        SideEffect::Emit { ch } => b.call(
            block,
            None,
            Callee::Intrinsic(Intrinsic::PutChar),
            vec![Operand::Imm(ch)],
        ),
    }
}

fn lower_tail(
    b: &mut FuncBuilder,
    ctx: &LowerCtx,
    block: br_ir::BlockId,
    tail: &Tail,
    cont: br_ir::BlockId,
) {
    b.bin(block, BinOp::Add, ctx.acc, ctx.acc, tail.add);
    for &(op, k) in &tail.extra {
        b.bin(block, op, ctx.acc, ctx.acc, k);
    }
    if tail.call_helper {
        if let Some(h) = ctx.helper {
            b.call(
                block,
                Some(ctx.acc),
                Callee::Func(h),
                vec![Operand::Reg(ctx.acc), Operand::Imm(tail.add)],
            );
        }
    }
    if let Some(slot) = tail.store_slot {
        b.store(
            block,
            Operand::Imm(ctx.scratch),
            Operand::Imm(slot.rem_euclid(4)),
            Operand::Reg(ctx.acc),
        );
    }
    if let Some(ch) = tail.emit {
        b.call(
            block,
            None,
            Callee::Intrinsic(Intrinsic::PutChar),
            vec![Operand::Imm(ch)],
        );
    }
    b.set_term(block, Terminator::Jump(cont));
}

fn lower_site(
    b: &mut FuncBuilder,
    ctx: &LowerCtx,
    site: &Site,
    head: br_ir::BlockId,
    cont: br_ir::BlockId,
) {
    let v = b.new_reg();
    b.bin(head, BinOp::Add, v, ctx.c, site.offset);
    match &site.kind {
        SiteKind::Ranges { arms, default_tail } => {
            lower_ranges(b, ctx, v, arms, default_tail, head, cont);
        }
        SiteKind::Switch {
            base,
            stride,
            cases,
            default_tail,
        } => {
            lower_switch(b, ctx, v, *base, *stride, cases, default_tail, head, cont);
        }
    }
}

fn lower_ranges(
    b: &mut FuncBuilder,
    ctx: &LowerCtx,
    v: Reg,
    arms: &[Arm],
    default_tail: &Tail,
    head: br_ir::BlockId,
    cont: br_ir::BlockId,
) {
    if arms.is_empty() {
        lower_tail(b, ctx, head, default_tail, cont);
        return;
    }
    let default_blk = b.new_block();
    let mut cur = head;
    for (i, arm) in arms.iter().enumerate() {
        let next = if i + 1 == arms.len() {
            default_blk
        } else {
            b.new_block()
        };
        let tail_blk = b.new_block();
        lower_tail(b, ctx, tail_blk, &arm.tail, cont);
        for s in &arm.side_effects {
            lower_side_effect(b, ctx, cur, s);
        }
        match arm.range {
            ArmRange::Singleton {
                value,
                negated: false,
            } => b.cmp_branch(cur, v, value, Cond::Eq, tail_blk, next),
            ArmRange::Singleton {
                value,
                negated: true,
            } => b.cmp_branch(cur, v, value, Cond::Ne, next, tail_blk),
            ArmRange::Below { bound } => b.cmp_branch(cur, v, bound, Cond::Lt, tail_blk, next),
            ArmRange::AtLeast { bound } => b.cmp_branch(cur, v, bound, Cond::Ge, tail_blk, next),
            ArmRange::Between { lo, hi } => {
                // Form 4: two compares sharing the out-of-range successor.
                let second = b.new_block();
                b.cmp_branch(cur, v, lo, Cond::Ge, second, next);
                b.cmp_branch(second, v, hi, Cond::Le, tail_blk, next);
            }
        }
        cur = next;
    }
    lower_tail(b, ctx, default_blk, default_tail, cont);
}

#[allow(clippy::too_many_arguments)]
fn lower_switch(
    b: &mut FuncBuilder,
    ctx: &LowerCtx,
    v: Reg,
    base: i64,
    stride: i64,
    cases: &[Tail],
    default_tail: &Tail,
    head: br_ir::BlockId,
    cont: br_ir::BlockId,
) {
    if cases.is_empty() {
        lower_tail(b, ctx, head, default_tail, cont);
        return;
    }
    let default_blk = b.new_block();
    lower_tail(b, ctx, default_blk, default_tail, cont);
    let tails: Vec<_> = cases
        .iter()
        .map(|t| {
            let blk = b.new_block();
            lower_tail(b, ctx, blk, t, cont);
            blk
        })
        .collect();
    let n = cases.len() as i64;
    let span = stride * (n - 1) + 1;
    match ctx.set.choose(n as u64, span as u128) {
        Strategy::LinearSearch => {
            let mut cur = head;
            for (j, &tail_blk) in tails.iter().enumerate() {
                let next = if j + 1 == tails.len() {
                    default_blk
                } else {
                    b.new_block()
                };
                b.cmp_branch(cur, v, base + stride * j as i64, Cond::Eq, tail_blk, next);
                cur = next;
            }
        }
        Strategy::BinarySearch => {
            let values: Vec<i64> = (0..n).map(|j| base + stride * j).collect();
            build_tree(b, v, head, &values, &tails, default_blk);
        }
        Strategy::IndirectJump => {
            let in_lo = b.new_block();
            let dispatch = b.new_block();
            b.cmp_branch(head, v, base, Cond::Lt, default_blk, in_lo);
            b.cmp_branch(in_lo, v, base + span - 1, Cond::Gt, default_blk, dispatch);
            let idx = b.new_reg();
            b.bin(dispatch, BinOp::Sub, idx, v, base);
            let targets: Vec<_> = (0..span)
                .map(|j| {
                    if j % stride == 0 {
                        tails[(j / stride) as usize]
                    } else {
                        default_blk
                    }
                })
                .collect();
            b.set_term(
                dispatch,
                Terminator::IndirectJump {
                    index: idx,
                    targets,
                },
            );
        }
    }
}

/// Balanced compare tree with small linear leaves (the front end's
/// binary-search strategy, mirrored at IR level).
fn build_tree(
    b: &mut FuncBuilder,
    v: Reg,
    blk: br_ir::BlockId,
    values: &[i64],
    tails: &[br_ir::BlockId],
    default_blk: br_ir::BlockId,
) {
    if values.len() <= 3 {
        let mut cur = blk;
        for (j, (&val, &tail)) in values.iter().zip(tails).enumerate() {
            let next = if j + 1 == values.len() {
                default_blk
            } else {
                b.new_block()
            };
            b.cmp_branch(cur, v, val, Cond::Eq, tail, next);
            cur = next;
        }
        return;
    }
    let mid = values.len() / 2;
    let left = b.new_block();
    let right = b.new_block();
    b.cmp_branch(blk, v, values[mid], Cond::Lt, left, right);
    build_tree(b, v, left, &values[..mid], &tails[..mid], default_blk);
    build_tree(b, v, right, &values[mid..], &tails[mid..], default_blk);
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_ir::print_module;

    #[test]
    fn generated_modules_verify_clean_under_all_sets() {
        let cfg = GenConfig::default();
        for seed in 0..60 {
            let spec = Spec::generate(seed, &cfg);
            for set in HeuristicSet::ALL {
                let m = spec.lower(set);
                let errs = br_ir::verify_module_all(&m);
                assert!(errs.is_empty(), "seed {seed} set {}: {errs:?}", set.name);
            }
        }
    }

    #[test]
    fn generation_and_lowering_are_deterministic() {
        let cfg = GenConfig::default();
        for seed in [0u64, 7, 991] {
            let a = Spec::generate(seed, &cfg);
            let b = Spec::generate(seed, &cfg);
            assert_eq!(a, b);
            assert_eq!(
                print_module(&a.lower(HeuristicSet::SET_II)),
                print_module(&b.lower(HeuristicSet::SET_II))
            );
            assert_eq!(a.input(3, 64), b.input(3, 64));
        }
    }

    #[test]
    fn sets_produce_different_switch_lowerings() {
        // Find a seed with a wide dense switch and check the three
        // lowerings actually differ (that is the cross-set oracle's
        // entire value).
        let cfg = GenConfig {
            switch_prob: 1.0,
            max_switch_cases: 20,
            optimize_prob: 0.0,
            ..GenConfig::default()
        };
        let mut seen_diff = false;
        for seed in 0..20 {
            let spec = Spec::generate(seed, &cfg);
            let p1 = print_module(&spec.lower(HeuristicSet::SET_I));
            let p3 = print_module(&spec.lower(HeuristicSet::SET_III));
            if p1 != p3 {
                seen_diff = true;
                break;
            }
        }
        assert!(seen_diff, "no seed produced set-dependent lowering");
    }

    #[test]
    fn generated_programs_contain_reorderable_sequences() {
        let cfg = GenConfig {
            switch_prob: 0.0,
            optimize_prob: 0.0,
            ..GenConfig::default()
        };
        let mut detected = 0usize;
        for seed in 0..30 {
            let spec = Spec::generate(seed, &cfg);
            let m = spec.lower(HeuristicSet::SET_I);
            let main = m.main.expect("main");
            detected += br_reorder::detect_sequences(m.function(main)).len();
        }
        assert!(detected >= 20, "only {detected} sequences over 30 seeds");
    }
}
