//! Delta-debugging reduction of failing specs.
//!
//! The reducer shrinks at the *spec* level (drop sites, drop arms and
//! switch cases, strip side effects and tails, collapse bounded ranges
//! to singletons) and at the *input* level (chunked byte removal over
//! the diverging test input and the training input), accepting a
//! candidate only when [`check_spec_io`] still yields a finding with
//! the original fingerprint. The fingerprint — finding kind, heuristic
//! set, first divergent field — is the reducer's invariant: the
//! minimized repro fails the same way, not merely *somehow*.
//!
//! Passes iterate to a fixed point under a candidate budget, so the
//! reducer terminates even on pathological shapes.

use crate::gen::{ArmRange, SiteKind, Spec, Tail};
use crate::oracle::{check_spec_io, OracleOptions};

/// Result of reducing one finding.
#[derive(Clone, Debug)]
pub struct Reduced {
    /// The minimized spec (still failing with the same fingerprint).
    pub spec: Spec,
    pub train: Vec<u8>,
    pub input: Vec<u8>,
    /// The preserved fingerprint.
    pub fingerprint: String,
    /// Candidates evaluated (a cost/progress indicator).
    pub tried: usize,
}

/// Upper bound on candidate evaluations per finding.
const BUDGET: usize = 2500;

struct Ctx<'a> {
    opts: &'a OracleOptions,
    fingerprint: &'a str,
    tried: usize,
}

impl Ctx<'_> {
    fn still_fails(&mut self, spec: &Spec, train: &[u8], input: &[u8]) -> bool {
        self.tried += 1;
        let tests = vec![input.to_vec()];
        check_spec_io(spec, train, &tests, self.opts)
            .iter()
            .any(|f| f.fingerprint == self.fingerprint)
    }

    fn over_budget(&self) -> bool {
        self.tried >= BUDGET
    }
}

/// Shrink `finding`'s spec and inputs while preserving its fingerprint.
pub fn reduce_finding(finding: &crate::oracle::Finding, opts: &OracleOptions) -> Reduced {
    let mut spec = finding.spec.clone();
    let mut train = finding.train.clone();
    let mut input = finding.input.clone();
    let mut ctx = Ctx {
        opts,
        fingerprint: &finding.fingerprint,
        tried: 0,
    };
    // The finding may have been produced with several test inputs; make
    // sure the single recorded input alone still reproduces before
    // shrinking against it. If it does not (it always should), return
    // the original unshrunk.
    if !ctx.still_fails(&spec, &train, &input) {
        return Reduced {
            spec,
            train,
            input,
            fingerprint: finding.fingerprint.clone(),
            tried: ctx.tried,
        };
    }
    for _round in 0..8 {
        let mut changed = false;
        changed |= shrink_structure(&mut ctx, &mut spec, &train, &input);
        changed |= shrink_bytes(&mut ctx, &spec, &mut train, &mut input);
        if !changed || ctx.over_budget() {
            break;
        }
    }
    Reduced {
        spec,
        train,
        input,
        fingerprint: finding.fingerprint.clone(),
        tried: ctx.tried,
    }
}

/// Try one spec mutation; keep it if the fingerprint survives.
fn attempt(
    ctx: &mut Ctx,
    spec: &mut Spec,
    train: &[u8],
    input: &[u8],
    mutate: impl FnOnce(&mut Spec),
) -> bool {
    if ctx.over_budget() {
        return false;
    }
    let mut cand = spec.clone();
    mutate(&mut cand);
    if cand == *spec {
        return false;
    }
    if ctx.still_fails(&cand, train, input) {
        *spec = cand;
        true
    } else {
        false
    }
}

fn shrink_structure(ctx: &mut Ctx, spec: &mut Spec, train: &[u8], input: &[u8]) -> bool {
    let mut changed = false;

    // Drop whole sites, last first (later sites rarely matter to an
    // earlier site's divergence).
    let mut i = spec.sites.len();
    while i > 0 {
        i -= 1;
        if spec.sites.len() > 1 {
            changed |= attempt(ctx, spec, train, input, |s| {
                s.sites.remove(i);
            });
        }
    }

    // Global simplifications.
    changed |= attempt(ctx, spec, train, input, |s| s.helper = false);
    changed |= attempt(ctx, spec, train, input, |s| s.optimize = false);

    for si in 0..spec.sites.len() {
        changed |= attempt(ctx, spec, train, input, |s| s.sites[si].offset = 0);
        // Convert a switch to an equivalent singleton chain: strategy-
        // independent, and usually much smaller once cases drop out.
        changed |= attempt(ctx, spec, train, input, |s| {
            if let SiteKind::Switch {
                base,
                stride,
                cases,
                default_tail,
            } = &s.sites[si].kind
            {
                let arms = cases
                    .iter()
                    .enumerate()
                    .map(|(j, tail)| crate::gen::Arm {
                        range: ArmRange::Singleton {
                            value: base + stride * j as i64,
                            negated: false,
                        },
                        side_effects: Vec::new(),
                        tail: tail.clone(),
                    })
                    .collect();
                s.sites[si].kind = SiteKind::Ranges {
                    arms,
                    default_tail: default_tail.clone(),
                };
            }
        });
        changed |= shrink_site(ctx, spec, si, train, input);
    }
    changed
}

fn shrink_site(ctx: &mut Ctx, spec: &mut Spec, si: usize, train: &[u8], input: &[u8]) -> bool {
    let mut changed = false;
    let count = spec.sites[si].cond_count();
    // Drop conditions/cases one at a time, last first.
    let mut j = count;
    while j > 0 {
        j -= 1;
        changed |= attempt(ctx, spec, train, input, |s| match &mut s.sites[si].kind {
            SiteKind::Ranges { arms, .. } => {
                if j < arms.len() {
                    arms.remove(j);
                }
            }
            SiteKind::Switch { cases, .. } => {
                if j < cases.len() && cases.len() > 1 {
                    cases.remove(j);
                }
            }
        });
    }
    // Per-condition simplifications on whatever survived.
    let count = spec.sites[si].cond_count();
    for j in 0..count {
        changed |= attempt(ctx, spec, train, input, |s| {
            if let SiteKind::Ranges { arms, .. } = &mut s.sites[si].kind {
                if let Some(arm) = arms.get_mut(j) {
                    arm.side_effects.clear();
                    arm.range = match arm.range {
                        ArmRange::Between { lo, .. } => ArmRange::Singleton {
                            value: lo,
                            negated: false,
                        },
                        ArmRange::Below { bound } => ArmRange::Singleton {
                            value: bound - 1,
                            negated: false,
                        },
                        ArmRange::AtLeast { bound } => ArmRange::Singleton {
                            value: bound,
                            negated: false,
                        },
                        ArmRange::Singleton { value, .. } => ArmRange::Singleton {
                            value,
                            negated: false,
                        },
                    };
                }
            }
        });
        changed |= attempt(ctx, spec, train, input, |s| {
            if let Some(t) = site_tail_mut(&mut s.sites[si].kind, j) {
                simplify_tail(t);
            }
        });
    }
    changed |= attempt(ctx, spec, train, input, |s| match &mut s.sites[si].kind {
        SiteKind::Ranges { default_tail, .. } | SiteKind::Switch { default_tail, .. } => {
            simplify_tail(default_tail);
        }
    });
    changed
}

fn site_tail_mut(kind: &mut SiteKind, j: usize) -> Option<&mut Tail> {
    match kind {
        SiteKind::Ranges { arms, .. } => arms.get_mut(j).map(|a| &mut a.tail),
        SiteKind::Switch { cases, .. } => cases.get_mut(j),
    }
}

fn simplify_tail(t: &mut Tail) {
    t.extra.clear();
    t.call_helper = false;
    t.store_slot = None;
    t.emit = None;
    if t.add.abs() > 1 {
        t.add = t.add.signum();
    }
}

/// Chunked byte removal (ddmin-lite) over the test input, then the
/// training input, then cheap wholesale replacements.
fn shrink_bytes(ctx: &mut Ctx, spec: &Spec, train: &mut Vec<u8>, input: &mut Vec<u8>) -> bool {
    let mut changed = false;
    changed |= shrink_one(ctx, spec, train, input, Which::Input);
    changed |= shrink_one(ctx, spec, train, input, Which::Train);
    // An empty training input means "no training profile": often enough
    // for verifier/lowering findings and a big simplification.
    if !train.is_empty() && ctx.still_fails(spec, &[], input) {
        train.clear();
        changed = true;
    }
    changed
}

#[derive(Clone, Copy, PartialEq)]
enum Which {
    Train,
    Input,
}

fn shrink_one(
    ctx: &mut Ctx,
    spec: &Spec,
    train: &mut Vec<u8>,
    input: &mut Vec<u8>,
    which: Which,
) -> bool {
    let mut changed = false;
    let mut chunk = match which {
        Which::Train => train.len(),
        Which::Input => input.len(),
    }
    .max(1)
        / 2;
    while chunk >= 1 {
        let len = match which {
            Which::Train => train.len(),
            Which::Input => input.len(),
        };
        let mut start = 0;
        while start < len && !ctx.over_budget() {
            let cur_len = match which {
                Which::Train => train.len(),
                Which::Input => input.len(),
            };
            if start >= cur_len {
                break;
            }
            let end = (start + chunk).min(cur_len);
            let (cand_train, cand_input) = match which {
                Which::Train => {
                    let mut t = train.clone();
                    t.drain(start..end);
                    (t, input.clone())
                }
                Which::Input => {
                    let mut i = input.clone();
                    i.drain(start..end);
                    (train.clone(), i)
                }
            };
            if ctx.still_fails(spec, &cand_train, &cand_input) {
                *train = cand_train;
                *input = cand_input;
                changed = true;
                // Same start now names the next chunk; do not advance.
            } else {
                start += chunk;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GenConfig;
    use crate::oracle::{check_seed, FaultInjection, OracleOptions};

    #[test]
    fn reduces_injected_fault_to_a_small_spec() {
        let gcfg = GenConfig::smoke();
        let opts = OracleOptions {
            fault: Some(FaultInjection { anchor_index: 0 }),
            ..OracleOptions::smoke()
        };
        let finding = (0..12)
            .flat_map(|seed| check_seed(seed, &gcfg, &opts))
            .find(|f| f.critical)
            .expect("an injected miscompile is found");
        let before = finding.spec.cond_count();
        let red = reduce_finding(&finding, &opts);
        assert!(red.spec.sites.len() <= finding.spec.sites.len());
        assert!(red.spec.cond_count() <= before);
        assert!(red.input.len() <= finding.input.len());
        // The reduced spec must still reproduce the same fingerprint.
        let tests = vec![red.input.clone()];
        assert!(check_spec_io(&red.spec, &red.train, &tests, &opts)
            .iter()
            .any(|f| f.fingerprint == red.fingerprint));
    }
}
