//! End-to-end oracle self-test (the fuzzer fuzzing itself).
//!
//! A test-only fault-injection hook miscompiles one range's target in
//! the reordered module *after* the pipeline (and its translation
//! validator) signed off — the `validator-accepts-but-diverges` class
//! the oracle exists to catch. The campaign must catch it, the reducer
//! must shrink it to a tiny repro, and the written `.bir` corpus file
//! must replay.

use std::path::PathBuf;

use br_fuzz::{replay_file, run_fuzz, FaultInjection, FuzzConfig};

fn temp_corpus(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("br-fuzz-{tag}-{}", std::process::id()))
}

#[test]
fn injected_miscompile_is_caught_reduced_and_replayable() {
    let dir = temp_corpus("selftest");
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = FuzzConfig::smoke();
    cfg.seeds = 24;
    cfg.jobs = 2;
    cfg.reduce = true;
    cfg.corpus_dir = Some(dir.clone());
    cfg.oracle.fault = Some(FaultInjection { anchor_index: 0 });

    let out = run_fuzz(&cfg);
    assert_eq!(out.seeds_run, 24);
    assert!(
        out.has_critical(),
        "no validator-accepted miscompile caught: {:?}",
        out.findings
            .iter()
            .map(|f| &f.finding.fingerprint)
            .collect::<Vec<_>>()
    );

    let critical = out
        .findings
        .iter()
        .find(|f| f.finding.critical)
        .expect("critical finding");
    let reduced = critical.reduced.as_ref().expect("reduction ran");

    // The reducer must shrink the program to at most 3 sequences (it
    // almost always lands on a single site with a couple of arms).
    assert!(
        reduced.spec.sites.len() <= 3,
        "reduced to {} sites",
        reduced.spec.sites.len()
    );
    assert!(
        reduced.spec.cond_count() <= critical.finding.spec.cond_count(),
        "reduction grew the spec"
    );
    assert!(reduced.input.len() <= critical.finding.input.len());

    // The corpus repro must exist and reproduce the divergence on
    // replay.
    let path = critical.repro_path.as_ref().expect("repro written");
    assert!(path.exists(), "{} missing", path.display());
    let report = replay_file(path).expect("replay parses");
    assert!(
        report.reproduced,
        "repro did not reproduce: {:?}",
        report.checks
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn clean_campaign_replay_of_missing_divergence() {
    // Without fault injection a smoke campaign over fresh seeds must be
    // silent — this is the same assertion CI's fuzz-smoke job makes.
    let mut cfg = FuzzConfig::smoke();
    cfg.seeds = 16;
    cfg.start_seed = 1000;
    cfg.jobs = 2;
    let out = run_fuzz(&cfg);
    assert_eq!(out.seeds_run, 16);
    assert!(
        out.findings.is_empty(),
        "unexpected findings: {:?}",
        out.findings
            .iter()
            .map(|f| (&f.finding.fingerprint, &f.finding.detail))
            .collect::<Vec<_>>()
    );
}
