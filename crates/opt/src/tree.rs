//! Minimum-expected-cost dispatch synthesis: the planner behind
//! heuristic **Set IV**.
//!
//! The paper's Theorem 3 greedy (and the exhaustive search behind it)
//! optimizes over *chains*: every candidate tests ranges one after
//! another until one hits. Following Baer's observation that a
//! dynamic-programming construction yields a provably minimum-cost
//! *comparison tree* over the same range partition, this module plans
//! two further dispatch structures for a profiled range-exit sequence:
//!
//! * [`plan_tree`] — the minimum-expected-cost **comparison tree** over
//!   the sorted range partition, by dynamic programming (recurrence
//!   below);
//! * [`plan_table`] — a bounds-checked **jump table** (indirect
//!   dispatch) over the dense finite window of the partition, scored
//!   under the same cost model.
//!
//! Neither family subsumes the chains the greedy searches: a chain may
//! test a *hot middle singleton* first (one test for the hot mass),
//! which no tree over the sorted partition can do in fewer than two.
//! Set IV therefore takes the **minimum of three candidates** — the
//! paper's chain ordering, the DP tree, and the jump table — which is
//! what structurally guarantees Set IV never plans worse than Set III.
//!
//! # The DP recurrence
//!
//! Let the sorted partition be items `0..n` (disjoint ranges tiling
//! `i64`, each with a profiled weight), `W(i,j)` the weight of the run
//! `[i..j)`, and `t` the cost of one compare-and-branch test. A
//! dispatch tree for a contiguous run may:
//!
//! * stop — a single item needs no test: `C(i, i+1) = 0`;
//! * split with `v <= items[k].hi` at any interior boundary `k`:
//!   `W(i,j)·t + C(i, k+1) + C(k+1, j)`;
//! * peel a **boundary singleton** with an equality test (only boundary
//!   singletons keep the remainder contiguous):
//!   `W(i,j)·t + C(i+1, j)` (or `C(i, j-1)` at the high end).
//!
//! `C(i,j)` is the minimum over those choices; `C(0,n)` is the optimal
//! tree, reconstructed from the argmin table in `O(n³)` time overall.
//!
//! # The cost model, measured
//!
//! Costs are expressed in the chain planner's unit (one
//! compare-and-branch test = 2.0 expected instructions) so the three
//! candidates are directly comparable. The price of the table's
//! indirect dispatch relative to a test — the selection threshold — is
//! **measured** by [`CostModel::measured`]: it builds two micro-modules
//! (a compare chain and a subtract-plus-indirect-jump dispatch), runs
//! both in the VM, and derives the per-structure cycle costs from the
//! observed [`br_vm::ExecStats`] under a [`br_vm::TimeModel`], instead
//! of asserting an instruction count.
//!
//! ```
//! use br_opt::tree::{plan_table, plan_tree, CostModel, TreeItem};
//!
//! // 32 singleton cases with a flat profile, default ranges around
//! // them: a dense window wide enough that the table's fixed dispatch
//! // price beats the tree's log-depth compares.
//! let mut items = vec![TreeItem::new(i64::MIN, -1, 0.01, 0)];
//! for v in 0..32 {
//!     items.push(TreeItem::new(v, v, 0.03, items.len()));
//! }
//! items.push(TreeItem::new(32, i64::MAX, 0.01, items.len()));
//! let model = CostModel::measured();
//! let tree = plan_tree(&items, &model).expect("plannable");
//! let table = plan_table(&items, &model).expect("dense window");
//! assert!(table.cost < tree.cost);
//! ```

use std::collections::BTreeMap;

use br_ir::{Block, BlockId, Callee, Cond, Function, Inst, Intrinsic, Module, Operand, Terminator};
use br_vm::{run, TimeModel, VmOptions};

/// One item of the sorted range partition a sequence dispatches over:
/// the range `[lo, hi]`, its profiled probability mass, and the caller's
/// identifying index (the planner never reorders the slice it is given;
/// plans refer to items by this index).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TreeItem {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
    /// Profiled probability mass of the range (non-negative; the slice
    /// need not sum to one — costs scale linearly).
    pub weight: f64,
    /// Caller's item index, echoed back in plans.
    pub index: usize,
}

impl TreeItem {
    /// A new item.
    pub fn new(lo: i64, hi: i64, weight: f64, index: usize) -> TreeItem {
        TreeItem {
            lo,
            hi,
            weight,
            index,
        }
    }

    /// Whether the range is a single value.
    pub fn is_singleton(&self) -> bool {
        self.lo == self.hi
    }
}

/// Per-structure costs in the chain planner's unit (one test = 2.0
/// expected instructions), plus the table-size guard.
///
/// Obtain one from [`CostModel::measured`] (runs VM micro-benchmarks)
/// or [`CostModel::reference`] (the documented paper-derived constants,
/// used as the deterministic fallback).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Cost of one compare-and-branch test. Fixed at 2.0 by
    /// normalization so tree and chain costs share a unit.
    pub test_units: f64,
    /// Cost of the table dispatch itself (index subtract + indirect
    /// jump, including the machine's extra indirect-jump cycles),
    /// normalized to the same unit. Excludes the two bounds-check
    /// tests, which are priced as ordinary tests.
    pub table_units: f64,
    /// Hard cap on jump-table entries: a window wider than this is not
    /// *dense* and [`plan_table`] refuses it.
    pub max_table_span: i64,
}

impl CostModel {
    /// The documented reference constants: a test is a compare plus a
    /// branch (2 instructions); the dispatch is an index subtract plus
    /// an indirect jump (1 + 3 instructions) plus one extra cycle, per
    /// the SPARC IPC numbers the VM defaults model.
    pub fn reference() -> CostModel {
        CostModel {
            test_units: 2.0,
            table_units: 5.0,
            max_table_span: 512,
        }
    }

    /// Measure the model from the VM under the IPC time model (the
    /// machine whose Table 2 heuristics Set I reproduces).
    pub fn measured() -> CostModel {
        CostModel::measured_with(&TimeModel::sparc_ipc())
    }

    /// Measure the model from the VM: build a compare-chain
    /// micro-module and an indirect-dispatch micro-module, run both,
    /// and derive per-structure cycle costs from the observed event
    /// counts under `tm`. Costs are normalized so one test is 2.0
    /// units; the table/test *ratio* — the selection threshold — is the
    /// measured quantity. Falls back to [`CostModel::reference`] if a
    /// micro-run traps (it never does on a correct VM).
    pub fn measured_with(tm: &TimeModel) -> CostModel {
        const CHAIN_TESTS: u64 = 8;
        let Some(base) = micro_cycles(&micro_chain(0), tm) else {
            return CostModel::reference();
        };
        let Some(chain) = micro_cycles(&micro_chain(CHAIN_TESTS as usize), tm) else {
            return CostModel::reference();
        };
        let Some(table) = micro_cycles(&micro_table(), tm) else {
            return CostModel::reference();
        };
        let test_cycles = (chain.saturating_sub(base)) as f64 / CHAIN_TESTS as f64;
        let table_cycles = table.saturating_sub(base) as f64;
        if test_cycles <= 0.0 || table_cycles <= 0.0 {
            return CostModel::reference();
        }
        // Normalize: one test = 2.0 units, matching the chain planner.
        let scale = 2.0 / test_cycles;
        CostModel {
            test_units: 2.0,
            table_units: table_cycles * scale,
            max_table_span: 512,
        }
    }
}

/// Core cycles of one micro-module run on a single input byte, under
/// `tm` with no predictors (the micro-branches are never taken, so
/// prediction does not perturb the measurement).
fn micro_cycles(m: &Module, tm: &TimeModel) -> Option<u64> {
    let out = run(m, b"A", &VmOptions::default()).ok()?;
    Some(tm.core_cycles(&out.stats, 0))
}

/// `main: v = getchar(); k never-taken tests; ret 0` — each test is a
/// compare of `v` against a constant above the input byte plus a
/// fall-through branch to the adjacent block.
fn micro_chain(k: usize) -> Module {
    let mut f = Function::new("main");
    let v = f.new_reg();
    f.block_mut(f.entry).insts.push(Inst::Call {
        dst: Some(v),
        callee: Callee::Intrinsic(Intrinsic::GetChar),
        args: vec![],
    });
    f.block_mut(f.entry).term = Terminator::Return(Some(Operand::Imm(0)));
    if k > 0 {
        // Blocks are laid out in creation order, so each fall-through
        // successor is adjacent and costs no jump: blocks 0..k carry
        // the tests, block k returns, and the never-taken target sits
        // past the end.
        for _ in 0..k {
            f.add_block(Block::new(Terminator::Return(Some(Operand::Imm(0)))));
        }
        let taken = f.add_block(Block::new(Terminator::Return(Some(Operand::Imm(1)))));
        for i in 0..k {
            let b = BlockId(i as u32);
            f.block_mut(b).insts.push(Inst::Cmp {
                lhs: Operand::Reg(v),
                rhs: Operand::Imm(500),
            });
            f.block_mut(b).term = Terminator::branch(Cond::Ge, taken, BlockId(i as u32 + 1));
        }
    }
    let mut m = Module::new();
    m.main = Some(m.add_function(f));
    m
}

/// `main: v = getchar(); idx = v - 'A'; ijump [t0..t3]` — the dispatch
/// body of a jump table without its bounds checks (those are ordinary
/// tests and are priced as such).
fn micro_table() -> Module {
    let mut f = Function::new("main");
    let v = f.new_reg();
    let idx = f.new_reg();
    f.block_mut(f.entry).insts.push(Inst::Call {
        dst: Some(v),
        callee: Callee::Intrinsic(Intrinsic::GetChar),
        args: vec![],
    });
    f.block_mut(f.entry).insts.push(Inst::Bin {
        op: br_ir::BinOp::Sub,
        dst: idx,
        lhs: Operand::Reg(v),
        rhs: Operand::Imm(i64::from(b'A')),
    });
    let targets: Vec<BlockId> = (0..4)
        .map(|i| f.add_block(Block::new(Terminator::Return(Some(Operand::Imm(i))))))
        .collect();
    f.block_mut(f.entry).term = Terminator::IndirectJump {
        index: idx,
        targets,
    };
    let mut m = Module::new();
    m.main = Some(m.add_function(f));
    m
}

/// One node of a planned comparison tree. Item references are the
/// [`TreeItem::index`] values of the planner's input.
#[derive(Clone, Debug, PartialEq)]
pub enum TreeNode {
    /// The run has narrowed to one item: dispatch to it, no test.
    Leaf {
        /// The arriving item.
        item: usize,
    },
    /// `v <= boundary` splits the run.
    Le {
        /// The inclusive split boundary (the `hi` of the last item of
        /// the below-half).
        boundary: i64,
        /// Subtree for `v <= boundary`.
        below: Box<TreeNode>,
        /// Subtree for `v > boundary`.
        above: Box<TreeNode>,
    },
    /// `v == value` peels a boundary singleton off the run.
    Eq {
        /// The singleton's value.
        value: i64,
        /// Item taken on equality.
        hit: usize,
        /// Subtree for the rest of the run.
        miss: Box<TreeNode>,
    },
}

impl TreeNode {
    /// Number of tests (inner nodes) in the tree.
    pub fn tests(&self) -> usize {
        match self {
            TreeNode::Leaf { .. } => 0,
            TreeNode::Le { below, above, .. } => 1 + below.tests() + above.tests(),
            TreeNode::Eq { miss, .. } => 1 + miss.tests(),
        }
    }
}

/// A planned comparison tree with its expected cost in model units.
#[derive(Clone, Debug, PartialEq)]
pub struct TreePlan {
    /// The tree.
    pub root: TreeNode,
    /// Expected cost (Σ weight · tests-on-path · test cost).
    pub cost: f64,
}

/// A planned bounds-checked jump table with its expected cost.
#[derive(Clone, Debug, PartialEq)]
pub struct TablePlan {
    /// First value covered by the table window.
    pub base: i64,
    /// Last value covered by the table window.
    pub limit: i64,
    /// Item index per window slot (`slots[k]` handles `base + k`).
    pub slots: Vec<usize>,
    /// Item handling `v < base` (the partition's `-∞` side).
    pub below: usize,
    /// Item handling `v > limit` (the partition's `+∞` side).
    pub above: usize,
    /// Expected cost: window mass pays two bounds tests plus the
    /// dispatch; the below mass one test; the above mass two.
    pub cost: f64,
}

/// Whether `items` is a sorted partition tiling all of `i64`.
fn is_tiling(items: &[TreeItem]) -> bool {
    if items.is_empty()
        || items[0].lo != i64::MIN
        || items[items.len() - 1].hi != i64::MAX
        || items.iter().any(|it| it.lo > it.hi || it.weight < 0.0)
    {
        return false;
    }
    items
        .windows(2)
        .all(|w| w[0].hi != i64::MAX && w[0].hi + 1 == w[1].lo)
}

#[derive(Clone, Copy, Debug)]
enum Choice {
    Leaf,
    Le(usize),
    EqLo,
    EqHi,
}

/// Plan the minimum-expected-cost comparison tree over `items` by
/// dynamic programming. Returns `None` unless `items` is a sorted
/// partition tiling `i64` with at least two items.
pub fn plan_tree(items: &[TreeItem], model: &CostModel) -> Option<TreePlan> {
    let n = items.len();
    if n < 2 || !is_tiling(items) {
        return None;
    }
    let mut prefix = vec![0.0f64; n + 1];
    for (i, it) in items.iter().enumerate() {
        prefix[i + 1] = prefix[i] + it.weight;
    }
    let weight = |i: usize, j: usize| prefix[j] - prefix[i];

    // cost[i][j] and choice[i][j] for the run [i..j), keyed j-i >= 1.
    let mut cost = vec![vec![0.0f64; n + 1]; n + 1];
    let mut choice = vec![vec![Choice::Leaf; n + 1]; n + 1];
    for len in 2..=n {
        for i in 0..=(n - len) {
            let j = i + len;
            let w = weight(i, j) * model.test_units;
            let mut best = f64::INFINITY;
            let mut pick = Choice::Leaf;
            for k in i..j - 1 {
                let c = w + cost[i][k + 1] + cost[k + 1][j];
                if c < best {
                    best = c;
                    pick = Choice::Le(k);
                }
            }
            if items[i].is_singleton() {
                let c = w + cost[i + 1][j];
                if c < best {
                    best = c;
                    pick = Choice::EqLo;
                }
            }
            if items[j - 1].is_singleton() {
                let c = w + cost[i][j - 1];
                if c < best {
                    best = c;
                    pick = Choice::EqHi;
                }
            }
            cost[i][j] = best;
            choice[i][j] = pick;
        }
    }
    let root = rebuild(items, &choice, 0, n);
    Some(TreePlan {
        root,
        cost: cost[0][n],
    })
}

fn rebuild(items: &[TreeItem], choice: &[Vec<Choice>], i: usize, j: usize) -> TreeNode {
    if j - i == 1 {
        return TreeNode::Leaf {
            item: items[i].index,
        };
    }
    match choice[i][j] {
        Choice::Le(k) => TreeNode::Le {
            boundary: items[k].hi,
            below: Box::new(rebuild(items, choice, i, k + 1)),
            above: Box::new(rebuild(items, choice, k + 1, j)),
        },
        Choice::EqLo => TreeNode::Eq {
            value: items[i].lo,
            hit: items[i].index,
            miss: Box::new(rebuild(items, choice, i + 1, j)),
        },
        Choice::EqHi => TreeNode::Eq {
            value: items[j - 1].lo,
            hit: items[j - 1].index,
            miss: Box::new(rebuild(items, choice, i, j - 1)),
        },
        Choice::Leaf => unreachable!("runs of length >= 2 always test"),
    }
}

/// Plan a bounds-checked jump table over the dense finite window of
/// `items` (everything between the two unbounded end ranges). Returns
/// `None` when the partition is malformed, has no finite window, or the
/// window is wider than [`CostModel::max_table_span`] — the *dense*
/// criterion; whether the table is actually chosen over a tree or chain
/// is then purely its cost under the model — the *flat* criterion,
/// since a skewed profile makes some chain or tree test sequence
/// cheaper than the table's fixed dispatch price.
pub fn plan_table(items: &[TreeItem], model: &CostModel) -> Option<TablePlan> {
    let n = items.len();
    if n < 3 || !is_tiling(items) {
        return None;
    }
    let base = items[1].lo;
    let limit = items[n - 2].hi;
    let span = limit as i128 - base as i128 + 1;
    if span < 1 || span > model.max_table_span as i128 {
        return None;
    }
    let mut slots = Vec::with_capacity(span as usize);
    for it in &items[1..n - 1] {
        let len = (it.hi as i128 - it.lo as i128 + 1) as usize;
        slots.extend(std::iter::repeat_n(it.index, len));
    }
    debug_assert_eq!(slots.len(), span as usize);
    let w_below = items[0].weight;
    let w_above = items[n - 1].weight;
    let w_mid: f64 = items[1..n - 1].iter().map(|it| it.weight).sum();
    let t = model.test_units;
    let cost = w_mid * (2.0 * t + model.table_units) + w_below * t + w_above * 2.0 * t;
    Some(TablePlan {
        base,
        limit,
        slots,
        below: items[0].index,
        above: items[n - 1].index,
        cost,
    })
}

/// Expected cost of an arbitrary tree in the planner's family over
/// `items`, computed by walking every item's range down the tree —
/// an accounting independent of the DP (used as its test oracle, and
/// by the pipeline to re-price a reconstructed plan).
pub fn tree_cost(root: &TreeNode, items: &[TreeItem], model: &CostModel) -> f64 {
    items
        .iter()
        .map(|it| model.test_units * it.weight * path_tests(root, it) as f64)
        .sum()
}

fn path_tests(node: &TreeNode, item: &TreeItem) -> usize {
    match node {
        TreeNode::Leaf { .. } => 0,
        TreeNode::Le {
            boundary,
            below,
            above,
        } => {
            1 + if item.hi <= *boundary {
                path_tests(below, item)
            } else {
                path_tests(above, item)
            }
        }
        TreeNode::Eq { value, miss, .. } => {
            if item.is_singleton() && item.lo == *value {
                1
            } else {
                1 + path_tests(miss, item)
            }
        }
    }
}

/// Every tree of the planner's family over the run `[i..j)` — for test
/// oracles only (exponential; callers cap `items.len()`).
#[cfg(test)]
fn enumerate_family(items: &[TreeItem], i: usize, j: usize) -> Vec<TreeNode> {
    if j - i == 1 {
        return vec![TreeNode::Leaf {
            item: items[i].index,
        }];
    }
    let mut out = Vec::new();
    for k in i..j - 1 {
        for below in enumerate_family(items, i, k + 1) {
            for above in enumerate_family(items, k + 1, j) {
                out.push(TreeNode::Le {
                    boundary: items[k].hi,
                    below: Box::new(below.clone()),
                    above: Box::new(above),
                });
            }
        }
    }
    if items[i].is_singleton() {
        for miss in enumerate_family(items, i + 1, j) {
            out.push(TreeNode::Eq {
                value: items[i].lo,
                hit: items[i].index,
                miss: Box::new(miss),
            });
        }
    }
    if items[j - 1].is_singleton() {
        for miss in enumerate_family(items, i, j - 1) {
            out.push(TreeNode::Eq {
                value: items[j - 1].lo,
                hit: items[j - 1].index,
                miss: Box::new(miss),
            });
        }
    }
    out
}

/// The targets a [`TablePlan`] dispatches to, grouped: slot ranges per
/// item index, in window order (adjacent equal slots merged). Handy for
/// emitters and reports.
pub fn table_groups(plan: &TablePlan) -> Vec<(i64, i64, usize)> {
    let mut out: Vec<(i64, i64, usize)> = Vec::new();
    for (k, &item) in plan.slots.iter().enumerate() {
        let v = plan.base + k as i64;
        match out.last_mut() {
            Some((_, hi, last)) if *last == item && *hi + 1 == v => *hi = v,
            _ => out.push((v, v, item)),
        }
    }
    out
}

/// A deterministic summary of how often each structure would win over a
/// batch of partitions — used by reports.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StructureTally {
    /// Partitions where the chain candidate won.
    pub chains: usize,
    /// Partitions where the DP tree won.
    pub trees: usize,
    /// Partitions where the jump table won.
    pub tables: usize,
}

impl StructureTally {
    /// Record one winner by name ("chain" | "tree" | "table").
    pub fn record(&mut self, winner: &str) {
        match winner {
            "tree" => self.trees += 1,
            "table" => self.tables += 1,
            _ => self.chains += 1,
        }
    }
}

impl std::fmt::Display for StructureTally {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} chains, {} trees, {} tables",
            self.chains, self.trees, self.tables
        )
    }
}

/// Dump a tree as a stable one-line s-expression (for logs and tests).
pub fn render_tree(node: &TreeNode) -> String {
    match node {
        TreeNode::Leaf { item } => format!("#{item}"),
        TreeNode::Le {
            boundary,
            below,
            above,
        } => format!(
            "(le {boundary} {} {})",
            render_tree(below),
            render_tree(above)
        ),
        TreeNode::Eq { value, hit, miss } => {
            format!("(eq {value} #{hit} {})", render_tree(miss))
        }
    }
}

/// Parse [`render_tree`] output back into a tree (artifact round-trips).
///
/// # Errors
///
/// Returns a description of the first syntax error.
pub fn parse_tree(text: &str) -> Result<TreeNode, String> {
    let mut toks = tokenize(text);
    let node = parse_node(&mut toks)?;
    if toks.next().is_some() {
        return Err("trailing tokens after tree".to_string());
    }
    Ok(node)
}

fn tokenize(text: &str) -> std::vec::IntoIter<String> {
    text.replace('(', " ( ")
        .replace(')', " ) ")
        .split_whitespace()
        .map(str::to_string)
        .collect::<Vec<_>>()
        .into_iter()
}

fn parse_node(toks: &mut std::vec::IntoIter<String>) -> Result<TreeNode, String> {
    let tok = toks.next().ok_or("unexpected end of tree")?;
    if let Some(item) = tok.strip_prefix('#') {
        return Ok(TreeNode::Leaf {
            item: item.parse().map_err(|_| format!("bad leaf `{tok}`"))?,
        });
    }
    if tok != "(" {
        return Err(format!("expected `(` or leaf, found `{tok}`"));
    }
    let kind = toks.next().ok_or("missing node kind")?;
    let node = match kind.as_str() {
        "le" => {
            let b = toks.next().ok_or("missing boundary")?;
            let boundary = b.parse().map_err(|_| format!("bad boundary `{b}`"))?;
            let below = Box::new(parse_node(toks)?);
            let above = Box::new(parse_node(toks)?);
            TreeNode::Le {
                boundary,
                below,
                above,
            }
        }
        "eq" => {
            let v = toks.next().ok_or("missing value")?;
            let value = v.parse().map_err(|_| format!("bad value `{v}`"))?;
            let h = toks.next().ok_or("missing hit item")?;
            let hit = h
                .strip_prefix('#')
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| format!("bad hit `{h}`"))?;
            let miss = Box::new(parse_node(toks)?);
            TreeNode::Eq { value, hit, miss }
        }
        other => return Err(format!("unknown node kind `{other}`")),
    };
    match toks.next().as_deref() {
        Some(")") => Ok(node),
        other => Err(format!("expected `)`, found {other:?}")),
    }
}

/// Group items by a key — a tiny helper the tests and emitters share.
pub fn items_by_index(items: &[TreeItem]) -> BTreeMap<usize, TreeItem> {
    items.iter().map(|it| (it.index, *it)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// xorshift64* — the tests' own deterministic generator.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0.max(1);
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    /// A random sorted partition of `i64` into `n` items with random
    /// weights; boundaries drawn from a small window so singletons are
    /// common (exercising the Eq choices).
    fn random_items(rng: &mut Rng, n: usize) -> Vec<TreeItem> {
        let mut cuts: Vec<i64> = (0..n - 1).map(|_| rng.below(24) as i64).collect();
        cuts.sort_unstable();
        cuts.dedup();
        let mut items = Vec::new();
        let mut lo = i64::MIN;
        for &c in &cuts {
            items.push(TreeItem::new(lo, c, 0.0, items.len()));
            lo = c + 1;
        }
        items.push(TreeItem::new(lo, i64::MAX, 0.0, items.len()));
        for it in &mut items {
            it.weight = rng.below(100) as f64 / 100.0;
        }
        items
    }

    #[test]
    fn dp_agrees_with_exhaustive_enumeration() {
        let model = CostModel::reference();
        let mut rng = Rng(42);
        let mut nontrivial = 0;
        for _ in 0..256 {
            let n = 2 + rng.below(4) as usize;
            let items = random_items(&mut rng, n);
            if items.len() > 2 {
                nontrivial += 1;
            }
            let plan = plan_tree(&items, &model).expect("tiling partition plans");
            // Oracle 1: the DP's claimed cost equals the independently
            // walked cost of the tree it built.
            let walked = tree_cost(&plan.root, &items, &model);
            assert!((walked - plan.cost).abs() < 1e-9, "{items:?}");
            // Oracle 2: no tree in the family beats the DP's cost.
            let best = enumerate_family(&items, 0, items.len())
                .iter()
                .map(|t| tree_cost(t, &items, &model))
                .fold(f64::INFINITY, f64::min);
            assert!(
                (best - plan.cost).abs() < 1e-9,
                "DP cost {} vs enumerated best {best}: {items:?}",
                plan.cost
            );
        }
        assert!(nontrivial > 50, "generator degenerated");
    }

    #[test]
    fn dp_prefers_hot_singleton_first() {
        // 0..=9 flat except value 7 is hot: the optimal tree peels 7
        // with an equality test before splitting the rest.
        let model = CostModel::reference();
        let mut items = vec![TreeItem::new(i64::MIN, -1, 0.01, 0)];
        for v in 0..10 {
            let w = if v == 7 { 0.9 } else { 0.01 };
            items.push(TreeItem::new(v, v, w, items.len()));
        }
        items.push(TreeItem::new(10, i64::MAX, 0.01, items.len()));
        // A boundary singleton only: 7 is interior, so the root cannot
        // peel it directly — but the plan must still route 7's mass
        // through at most 2 tests (split at 6 or 7, then peel).
        let plan = plan_tree(&items, &model).unwrap();
        let hot = TreeItem::new(7, 7, 0.9, 8);
        assert!(
            path_tests(&plan.root, &hot) <= 2,
            "{}",
            render_tree(&plan.root)
        );
    }

    #[test]
    fn chain_family_is_not_subsumed_by_trees() {
        // Hot interior singleton: a chain tests it first (1 test for
        // the hot mass), the sorted-partition tree needs 2. This is why
        // Set IV takes min(chain, tree, table) instead of trusting the
        // tree alone.
        let model = CostModel::reference();
        let items = vec![
            TreeItem::new(i64::MIN, 6, 0.05, 0),
            TreeItem::new(7, 7, 0.9, 1),
            TreeItem::new(8, i64::MAX, 0.05, 2),
        ];
        let plan = plan_tree(&items, &model).unwrap();
        let chain_cost = model.test_units * (0.9 + 2.0 * 0.1); // eq 7 first
        assert!(plan.cost > chain_cost + 1e-9);
    }

    #[test]
    fn table_wins_on_dense_flat_profiles_only() {
        let model = CostModel::reference();
        // Dense flat window 0..=29: wide enough that log-depth compares
        // cost more than the table's fixed dispatch price (two bounds
        // tests plus the measured dispatch ~ 4.5 tests' worth).
        let mut flat = vec![TreeItem::new(i64::MIN, -1, 0.01, 0)];
        for v in 0..30 {
            flat.push(TreeItem::new(v, v, 0.032, flat.len()));
        }
        flat.push(TreeItem::new(30, i64::MAX, 0.03, flat.len()));
        let tree = plan_tree(&flat, &model).unwrap();
        let table = plan_table(&flat, &model).unwrap();
        assert!(table.cost < tree.cost, "flat dense: table must win");
        assert_eq!(table.slots.len(), 30);
        assert_eq!(table_groups(&table).len(), 30);

        // Same window, skewed profile: the cheap structures win.
        let mut hot = flat.clone();
        for it in &mut hot {
            it.weight = 0.001;
        }
        hot[1].weight = 0.99;
        let tree = plan_tree(&hot, &model).unwrap();
        let table = plan_table(&hot, &model).unwrap();
        assert!(tree.cost < table.cost, "skewed: tree must win");
    }

    #[test]
    fn jump_table_never_fires_on_sparse_domains() {
        let model = CostModel::reference();
        let mut rng = Rng(7);
        for _ in 0..256 {
            // Two finite ranges separated by a gap wider than the cap:
            // the window spans the gap, so the table must refuse.
            let gap = model.max_table_span + 1 + rng.below(1 << 20) as i64;
            let a = rng.below(100) as i64;
            let items = vec![
                TreeItem::new(i64::MIN, a - 1, 0.2, 0),
                TreeItem::new(a, a, 0.3, 1),
                TreeItem::new(a + 1, a + gap - 1, 0.1, 2),
                TreeItem::new(a + gap, a + gap, 0.3, 3),
                TreeItem::new(a + gap + 1, i64::MAX, 0.1, 4),
            ];
            assert!(is_tiling(&items), "{items:?}");
            assert!(
                plan_table(&items, &model).is_none(),
                "sparse window planned a table: {items:?}"
            );
        }
    }

    #[test]
    fn measured_model_is_sane_and_orders_machines() {
        let ipc = CostModel::measured_with(&TimeModel::sparc_ipc());
        let ultra = CostModel::measured_with(&TimeModel::ultra_sparc());
        assert_eq!(ipc.test_units, 2.0);
        assert!(ipc.table_units.is_finite() && ipc.table_units > 0.0);
        // The Ultra's indirect jumps are far more expensive — the
        // measured threshold must reflect that ordering.
        assert!(
            ultra.table_units > ipc.table_units,
            "ultra {} <= ipc {}",
            ultra.table_units,
            ipc.table_units
        );
        // The IPC dispatch is sub + 3-instruction ijump + 1 extra cycle
        // against 2-instruction tests: the measured ratio should land
        // near the documented reference constant.
        let reference = CostModel::reference();
        assert!(
            (ipc.table_units - reference.table_units).abs() <= 2.0,
            "measured {} far from reference {}",
            ipc.table_units,
            reference.table_units
        );
    }

    #[test]
    fn malformed_partitions_are_refused() {
        let model = CostModel::reference();
        // Gap.
        let gap = vec![
            TreeItem::new(i64::MIN, 0, 0.5, 0),
            TreeItem::new(2, i64::MAX, 0.5, 1),
        ];
        assert!(plan_tree(&gap, &model).is_none());
        // Not anchored at the extremes.
        let loose = vec![
            TreeItem::new(0, 1, 0.5, 0),
            TreeItem::new(2, i64::MAX, 0.5, 1),
        ];
        assert!(plan_tree(&loose, &model).is_none());
        assert!(plan_table(&loose, &model).is_none());
        // Single item: nothing to dispatch.
        let one = vec![TreeItem::new(i64::MIN, i64::MAX, 1.0, 0)];
        assert!(plan_tree(&one, &model).is_none());
    }

    #[test]
    fn tree_render_round_trips() {
        let model = CostModel::reference();
        let mut rng = Rng(99);
        for _ in 0..64 {
            let n = 2 + rng.below(5) as usize;
            let items = random_items(&mut rng, n);
            let plan = plan_tree(&items, &model).unwrap();
            let text = render_tree(&plan.root);
            let back = parse_tree(&text).expect(&text);
            assert_eq!(back, plan.root, "{text}");
        }
        assert!(parse_tree("(le 3 #0").is_err());
        assert!(parse_tree("(xx 3 #0 #1)").is_err());
        assert!(parse_tree("#1 #2").is_err());
    }

    #[test]
    fn items_by_index_is_total() {
        let items = vec![
            TreeItem::new(i64::MIN, 0, 0.5, 3),
            TreeItem::new(1, i64::MAX, 0.5, 1),
        ];
        let map = items_by_index(&items);
        assert_eq!(map[&3].hi, 0);
        assert_eq!(map[&1].lo, 1);
    }
}
