//! Dead code elimination: dead definitions, dead compares, and
//! unreachable blocks.

use std::collections::HashSet;

use br_ir::{reachable, BlockId, Function, Inst, Terminator};

/// Remove pure instructions whose results are never used anywhere in the
/// function, and compares whose condition codes no branch can observe.
/// Iterates to a local fixed point. Returns whether anything changed.
pub fn eliminate_dead_code(f: &mut Function) -> bool {
    let mut any = false;
    loop {
        let mut changed = false;
        // Global "some instruction reads this register" set. Not a real
        // liveness analysis, but sound: a def with zero reads anywhere is
        // certainly dead.
        let mut used = HashSet::new();
        for b in &f.blocks {
            for i in &b.insts {
                used.extend(i.uses());
            }
            used.extend(b.term.uses());
        }
        let cc_needed = cc_needed_on_exit(f);
        for (bi, block) in f.blocks.iter_mut().enumerate() {
            let n_before = block.insts.len();
            let last_cmp = block
                .insts
                .iter()
                .rposition(|i| matches!(i, Inst::Cmp { .. }));
            let mut idx = 0usize;
            block.insts.retain(|inst| {
                let keep = match inst {
                    Inst::Cmp { .. } => {
                        // A shadowed compare (another follows in-block) is
                        // dead; the final one is live only if the block's
                        // own branch or some cc-transparent successor path
                        // consumes it.
                        Some(idx) == last_cmp && cc_needed[bi]
                    }
                    _ => {
                        inst.has_side_effect()
                            || inst.may_trap()
                            || inst.def().is_none_or(|d| used.contains(&d))
                    }
                };
                idx += 1;
                keep
            });
            if block.insts.len() != n_before {
                changed = true;
            }
        }
        any |= changed;
        if !changed {
            return any;
        }
    }
}

/// For each block: does the condition-code value at the block's *end* need
/// to be preserved? True if the block's terminator is a conditional branch,
/// or if any successor consumes the incoming cc before writing it
/// (transitively).
fn cc_needed_on_exit(f: &Function) -> Vec<bool> {
    let n = f.blocks.len();
    // needs_in[b]: block b's behaviour depends on cc at entry.
    let mut needs_in = vec![false; n];
    let mut needs_out = vec![false; n];
    loop {
        let mut changed = false;
        for b in (0..n).rev() {
            let block = &f.blocks[b];
            let has_cc_writer = block
                .insts
                .iter()
                .any(|i| matches!(i, Inst::Cmp { .. } | Inst::Call { .. }));
            let succ_needs = block.term.successors().iter().any(|s| needs_in[s.index()]);
            let out = matches!(block.term, Terminator::Branch { .. }) || succ_needs;
            let inn = if has_cc_writer { false } else { out };
            if out != needs_out[b] || inn != needs_in[b] {
                needs_out[b] = out;
                needs_in[b] = inn;
                changed = true;
            }
        }
        if !changed {
            return needs_out;
        }
    }
}

/// Delete blocks unreachable from the entry and compact/renumber the rest.
/// Returns whether anything changed.
pub fn remove_unreachable_blocks(f: &mut Function) -> bool {
    let live = reachable(f);
    if live.len() == f.blocks.len() {
        return false;
    }
    // Map old index -> new id, in storage order to keep layout stable.
    let mut map = vec![None; f.blocks.len()];
    let mut next = 0u32;
    for (i, slot) in map.iter_mut().enumerate() {
        if live.contains(&BlockId(i as u32)) {
            *slot = Some(BlockId(next));
            next += 1;
        }
    }
    let mut old_blocks = std::mem::take(&mut f.blocks);
    for (i, mut b) in old_blocks.drain(..).enumerate() {
        if map[i].is_some() {
            b.term
                .map_successors(|s| map[s.index()].expect("live successor"));
            f.blocks.push(b);
        }
    }
    f.entry = map[f.entry.index()].expect("entry is live");
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_ir::{BinOp, Cond, FuncBuilder, Operand, Reg};

    #[test]
    fn removes_unused_pure_def() {
        let mut b = FuncBuilder::new("f");
        let x = b.new_reg();
        let e = b.entry();
        b.bin(e, BinOp::Add, x, 1i64, 2i64);
        b.set_term(e, Terminator::Return(None));
        let mut f = b.finish();
        assert!(eliminate_dead_code(&mut f));
        assert!(f.blocks[0].insts.is_empty());
    }

    #[test]
    fn keeps_side_effects_and_traps() {
        let mut b = FuncBuilder::new("f");
        let x = b.new_reg();
        let e = b.entry();
        b.bin(e, BinOp::Div, x, 1i64, 0i64); // trap: must stay
        b.store(e, 0i64, 0i64, 7i64); // side effect: must stay
        b.set_term(e, Terminator::Return(None));
        let mut f = b.finish();
        eliminate_dead_code(&mut f);
        assert_eq!(f.blocks[0].insts.len(), 2);
    }

    #[test]
    fn removes_shadowed_and_unconsumed_cmps() {
        let mut b = FuncBuilder::new("f");
        let x = b.new_reg();
        b.set_param_regs(vec![x]);
        let e = b.entry();
        let t = b.new_block();
        let n = b.new_block();
        b.cmp(e, x, 1i64); // shadowed
        b.cmp(e, x, 2i64); // consumed by the branch
        b.set_term(e, Terminator::branch(Cond::Eq, t, n));
        b.cmp(t, x, 3i64); // never consumed
        b.set_term(t, Terminator::Return(None));
        b.set_term(n, Terminator::Return(None));
        let mut f = b.finish();
        assert!(eliminate_dead_code(&mut f));
        assert_eq!(f.blocks[0].insts.len(), 1);
        assert_eq!(
            f.blocks[0].insts[0],
            Inst::Cmp {
                lhs: Operand::Reg(x),
                rhs: Operand::Imm(2)
            }
        );
        assert!(f.blocks[1].insts.is_empty());
    }

    #[test]
    fn keeps_cmp_consumed_by_successor_branch() {
        // The shape left behind by redundant-comparison elimination:
        // cmp in one block, a second branch in the next block reuses it.
        let mut b = FuncBuilder::new("f");
        let x = b.new_reg();
        b.set_param_regs(vec![x]);
        let e = b.entry();
        let mid = b.new_block();
        let t1 = b.new_block();
        let t2 = b.new_block();
        b.cmp_branch(e, x, 5i64, Cond::Gt, t1, mid);
        b.set_term(mid, Terminator::branch(Cond::Eq, t2, t1)); // reuses cc
        b.set_term(t1, Terminator::Return(Some(Operand::Imm(1))));
        b.set_term(t2, Terminator::Return(Some(Operand::Imm(2))));
        let mut f = b.finish();
        eliminate_dead_code(&mut f);
        assert_eq!(f.blocks[0].insts.len(), 1, "cmp must survive");
    }

    #[test]
    fn dead_cmp_chain_follow_through_jump() {
        // cmp feeding a branch that sits behind an empty jump block.
        let mut b = FuncBuilder::new("f");
        let x = b.new_reg();
        b.set_param_regs(vec![x]);
        let e = b.entry();
        let hop = b.new_block();
        let brk = b.new_block();
        let t = b.new_block();
        b.cmp(e, x, 9i64);
        b.set_term(e, Terminator::Jump(hop));
        b.set_term(hop, Terminator::Jump(brk));
        b.set_term(brk, Terminator::branch(Cond::Lt, t, t));
        b.set_term(t, Terminator::Return(None));
        let mut f = b.finish();
        eliminate_dead_code(&mut f);
        assert_eq!(f.blocks[0].insts.len(), 1, "cmp feeds a distant branch");
    }

    #[test]
    fn unreachable_blocks_are_compacted() {
        let mut b = FuncBuilder::new("f");
        let e = b.entry();
        let dead = b.new_block();
        let live = b.new_block();
        b.set_term(e, Terminator::Jump(live));
        b.set_term(dead, Terminator::Return(Some(Operand::Imm(13))));
        b.set_term(live, Terminator::Return(Some(Operand::Imm(7))));
        let mut f = b.finish();
        assert!(remove_unreachable_blocks(&mut f));
        assert_eq!(f.blocks.len(), 2);
        assert_eq!(f.blocks[0].term, Terminator::Jump(BlockId(1)));
        assert_eq!(f.blocks[1].term, Terminator::Return(Some(Operand::Imm(7))));
        assert!(!remove_unreachable_blocks(&mut f), "idempotent");
        let _ = Reg(0);
    }
}
