//! Local constant propagation and folding.

use std::collections::HashMap;

use br_ir::{Function, Inst, Operand, Reg, Terminator};

/// Propagate constants within each block, fold constant ALU operations to
/// copies, and fold conditional branches whose compare has two known
/// constants into unconditional jumps. Returns whether anything changed.
///
/// Division/remainder by a constant zero is *not* folded away: the trap is
/// an observable effect the interpreter must still reach.
pub fn fold_constants(f: &mut Function) -> bool {
    let mut changed = false;
    for b in 0..f.blocks.len() {
        let block = &mut f.blocks[b];
        let mut consts: HashMap<Reg, i64> = HashMap::new();
        let mut last_cmp_consts: Option<(i64, i64)> = None;
        for inst in &mut block.insts {
            // Substitute known-constant registers into operands.
            let subst = |op: &mut Operand, consts: &HashMap<Reg, i64>, changed: &mut bool| {
                if let Operand::Reg(r) = op {
                    if let Some(&v) = consts.get(r) {
                        *op = Operand::Imm(v);
                        *changed = true;
                    }
                }
            };
            match inst {
                Inst::Copy { src, .. } => subst(src, &consts, &mut changed),
                Inst::Bin { lhs, rhs, .. } => {
                    subst(lhs, &consts, &mut changed);
                    subst(rhs, &consts, &mut changed);
                }
                Inst::Un { src, .. } => subst(src, &consts, &mut changed),
                Inst::Cmp { lhs, rhs } => {
                    subst(lhs, &consts, &mut changed);
                    subst(rhs, &consts, &mut changed);
                }
                Inst::Load { base, index, .. } => {
                    subst(base, &consts, &mut changed);
                    subst(index, &consts, &mut changed);
                }
                Inst::Store { base, index, src } => {
                    subst(base, &consts, &mut changed);
                    subst(index, &consts, &mut changed);
                    subst(src, &consts, &mut changed);
                }
                Inst::Call { args, .. } => {
                    for a in args {
                        subst(a, &consts, &mut changed);
                    }
                }
                Inst::FrameAddr { .. }
                | Inst::ProfileRanges { .. }
                | Inst::ProfileOutcomes { .. } => {}
            }
            // Fold fully-constant operations into copies.
            if let Inst::Bin {
                op,
                dst,
                lhs: Operand::Imm(a),
                rhs: Operand::Imm(b),
            } = inst
            {
                if let Some(v) = op.eval(*a, *b) {
                    *inst = Inst::Copy {
                        dst: *dst,
                        src: Operand::Imm(v),
                    };
                    changed = true;
                }
            }
            if let Inst::Un {
                op,
                dst,
                src: Operand::Imm(a),
            } = inst
            {
                *inst = Inst::Copy {
                    dst: *dst,
                    src: Operand::Imm(op.eval(*a)),
                };
                changed = true;
            }
            // Track the constant environment.
            match inst {
                Inst::Copy {
                    dst,
                    src: Operand::Imm(v),
                } => {
                    consts.insert(*dst, *v);
                }
                Inst::Cmp { lhs, rhs } => {
                    last_cmp_consts = match (lhs, rhs) {
                        (Operand::Imm(a), Operand::Imm(b)) => Some((*a, *b)),
                        _ => None,
                    };
                }
                Inst::Call { .. } => {
                    // Condition codes clobbered; a following branch would
                    // be malformed anyway, but stay conservative.
                    last_cmp_consts = None;
                    if let Some(d) = inst.def() {
                        consts.remove(&d);
                    }
                }
                _ => {
                    if let Some(d) = inst.def() {
                        consts.remove(&d);
                    }
                }
            }
        }
        if let Terminator::Branch {
            cond,
            taken,
            not_taken,
        } = block.term
        {
            // Only fold when the *last* compare of this very block is
            // constant; with cc flowing across blocks anything else would
            // need a global analysis.
            if let Some((a, b2)) = last_cmp_consts {
                block.term = Terminator::Jump(if cond.eval(a, b2) { taken } else { not_taken });
                changed = true;
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_ir::{BinOp, Cond, FuncBuilder};

    #[test]
    fn folds_constant_arithmetic_chains() {
        let mut b = FuncBuilder::new("f");
        let x = b.new_reg();
        let y = b.new_reg();
        let e = b.entry();
        b.copy(e, x, 6i64);
        b.bin(e, BinOp::Mul, y, x, 7i64);
        b.set_term(e, Terminator::Return(Some(Operand::Reg(y))));
        let mut f = b.finish();
        assert!(fold_constants(&mut f));
        assert_eq!(
            f.blocks[0].insts[1],
            Inst::Copy {
                dst: Reg(1),
                src: Operand::Imm(42)
            }
        );
    }

    #[test]
    fn folds_constant_branch_to_jump() {
        let mut b = FuncBuilder::new("f");
        let e = b.entry();
        let t = b.new_block();
        let n = b.new_block();
        b.cmp_branch(e, 3i64, 3i64, Cond::Eq, t, n);
        b.set_term(t, Terminator::Return(Some(Operand::Imm(1))));
        b.set_term(n, Terminator::Return(Some(Operand::Imm(0))));
        let mut f = b.finish();
        assert!(fold_constants(&mut f));
        assert_eq!(f.blocks[0].term, Terminator::Jump(br_ir::BlockId(1)));
    }

    #[test]
    fn does_not_fold_divide_by_zero() {
        let mut b = FuncBuilder::new("f");
        let x = b.new_reg();
        let e = b.entry();
        b.bin(e, BinOp::Div, x, 1i64, 0i64);
        b.set_term(e, Terminator::Return(None));
        let mut f = b.finish();
        fold_constants(&mut f);
        assert!(matches!(f.blocks[0].insts[0], Inst::Bin { .. }));
    }

    #[test]
    fn constants_do_not_survive_redefinition() {
        let mut b = FuncBuilder::new("f");
        let x = b.new_reg();
        let y = b.new_reg();
        let e = b.entry();
        b.copy(e, x, 5i64);
        b.push(
            e,
            Inst::Call {
                dst: Some(x),
                callee: br_ir::Callee::Intrinsic(br_ir::Intrinsic::GetChar),
                args: vec![],
            },
        );
        b.bin(e, BinOp::Add, y, x, 1i64);
        b.set_term(e, Terminator::Return(Some(Operand::Reg(y))));
        let mut f = b.finish();
        fold_constants(&mut f);
        // x is no longer the constant 5 after the call.
        assert!(matches!(
            f.blocks[0].insts[2],
            Inst::Bin {
                lhs: Operand::Reg(_),
                ..
            }
        ));
    }
}
