//! Code repositioning: physically order blocks so that likely control
//! transfers fall through. Storage order *is* layout order for the
//! interpreter's jump accounting, so this pass is what gives jumps and
//! branches realistic costs.

use br_ir::{reverse_postorder, BlockId, Function, Terminator};

/// Greedily lay out blocks in fall-through chains (entry first), then
/// invert conditional branches whose arms ended up the wrong way around.
pub fn reposition(f: &mut Function) {
    let n = f.blocks.len();
    let mut order: Vec<BlockId> = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    // Seed order: entry, then reverse postorder, then any stragglers
    // (unreachable blocks keep deterministic placement until DCE runs).
    let mut seeds = vec![f.entry];
    seeds.extend(reverse_postorder(f));
    seeds.extend(f.block_ids());
    for seed in seeds {
        let mut cur = seed;
        while !placed[cur.index()] {
            placed[cur.index()] = true;
            order.push(cur);
            // Extend the chain along the preferred fall-through edge.
            let next = match &f.blocks[cur.index()].term {
                Terminator::Jump(t) => Some(*t),
                Terminator::Branch {
                    taken, not_taken, ..
                } => {
                    if !placed[not_taken.index()] {
                        Some(*not_taken)
                    } else {
                        Some(*taken)
                    }
                }
                Terminator::IndirectJump { targets, .. } => targets.first().copied(),
                Terminator::Return(_) => None,
            };
            match next {
                Some(t) if !placed[t.index()] => cur = t,
                _ => break,
            }
        }
    }
    debug_assert_eq!(order.len(), n);
    apply_order(f, &order);
    invert_branches(f);
}

/// Physically permute blocks into `order` and renumber every reference.
fn apply_order(f: &mut Function, order: &[BlockId]) {
    let mut new_id = vec![BlockId(0); f.blocks.len()];
    for (new_idx, &old) in order.iter().enumerate() {
        new_id[old.index()] = BlockId(new_idx as u32);
    }
    let old_blocks = std::mem::take(&mut f.blocks);
    let mut slots: Vec<Option<br_ir::Block>> = old_blocks.into_iter().map(Some).collect();
    for &old in order {
        let mut b = slots[old.index()].take().expect("each block placed once");
        b.term.map_successors(|s| new_id[s.index()]);
        f.blocks.push(b);
    }
    f.entry = new_id[f.entry.index()];
}

/// Where a branch's taken arm is adjacent but its not-taken arm is not,
/// negate the condition and swap the arms so the adjacent block becomes
/// the fall-through.
fn invert_branches(f: &mut Function) {
    for i in 0..f.blocks.len() {
        if let Terminator::Branch {
            cond,
            taken,
            not_taken,
        } = f.blocks[i].term
        {
            let next = BlockId(i as u32 + 1);
            if not_taken != next && taken == next {
                f.blocks[i].term = Terminator::Branch {
                    cond: cond.negate(),
                    taken: not_taken,
                    not_taken: taken,
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_ir::{Cond, FuncBuilder, Operand};

    #[test]
    fn entry_is_always_first() {
        let mut b = FuncBuilder::new("f");
        let e = b.entry();
        let far = b.new_block();
        b.set_term(e, Terminator::Jump(far));
        b.set_term(far, Terminator::Return(None));
        let mut f = b.finish();
        // Move the entry away from slot 0 artificially.
        f.blocks.swap(0, 1);
        f.entry = BlockId(1);
        f.blocks[1].term = Terminator::Jump(BlockId(0));
        reposition(&mut f);
        assert_eq!(f.entry, BlockId(0));
        assert_eq!(f.blocks[0].term, Terminator::Jump(BlockId(1)));
    }

    #[test]
    fn chains_follow_not_taken_arms() {
        // entry branches: not_taken should be laid adjacent.
        let mut b = FuncBuilder::new("f");
        let x = b.new_reg();
        b.set_param_regs(vec![x]);
        let e = b.entry();
        let t = b.new_block();
        let nt = b.new_block();
        b.cmp_branch(e, x, 0i64, Cond::Eq, t, nt);
        b.set_term(t, Terminator::Return(Some(Operand::Imm(1))));
        b.set_term(nt, Terminator::Return(Some(Operand::Imm(0))));
        let mut f = b.finish();
        reposition(&mut f);
        match f.blocks[0].term {
            Terminator::Branch { not_taken, .. } => assert_eq!(not_taken, BlockId(1)),
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn inversion_fixes_backwards_arms() {
        let mut b = FuncBuilder::new("f");
        let x = b.new_reg();
        b.set_param_regs(vec![x]);
        let e = b.entry();
        let t = b.new_block();
        let nt = b.new_block();
        // Force both arms placed: nt's chain is taken first via a jump
        // block so the branch ends up with taken adjacent.
        b.cmp(e, x, 0i64);
        b.set_term(e, Terminator::branch(Cond::Lt, t, nt));
        b.set_term(t, Terminator::Jump(nt));
        b.set_term(nt, Terminator::Return(None));
        let mut f = b.finish();
        reposition(&mut f);
        // However blocks land, every branch must have its not-taken arm
        // adjacent or both arms non-adjacent.
        for (i, blk) in f.blocks.iter().enumerate() {
            if let Terminator::Branch {
                taken, not_taken, ..
            } = blk.term
            {
                let next = BlockId(i as u32 + 1);
                assert!(
                    not_taken == next || taken != next,
                    "invertible branch left uninverted at {i}"
                );
            }
        }
    }

    #[test]
    fn single_block_function_is_untouched() {
        let mut b = FuncBuilder::new("f");
        let e = b.entry();
        b.set_term(e, Terminator::Return(Some(Operand::Imm(3))));
        let mut f = b.finish();
        let before = format!("{f:?}");
        reposition(&mut f);
        assert_eq!(format!("{f:?}"), before);
        assert_eq!(f.entry, BlockId(0));
    }

    #[test]
    fn unreachable_blocks_keep_deterministic_placement() {
        // Two blocks no edge reaches: reposition runs before DCE on
        // freshly built functions, so it must place them (after the
        // reachable chain, in id order) rather than drop or reorder
        // them unpredictably.
        let mut b = FuncBuilder::new("f");
        let e = b.entry();
        let dead_a = b.new_block();
        let dead_b = b.new_block();
        let tail = b.new_block();
        b.set_term(e, Terminator::Jump(tail));
        b.set_term(dead_a, Terminator::Jump(dead_b));
        b.set_term(dead_b, Terminator::Return(None));
        b.set_term(tail, Terminator::Return(Some(Operand::Imm(1))));
        let mut f = b.finish();
        reposition(&mut f);
        assert_eq!(f.blocks.len(), 4, "no block may be dropped");
        // Reachable chain first: entry falls through to its target.
        assert_eq!(f.entry, BlockId(0));
        assert_eq!(f.blocks[0].term, Terminator::Jump(BlockId(1)));
        // The dead chain is placed behind it, still intact: dead_a
        // falls through to dead_b.
        assert_eq!(f.blocks[2].term, Terminator::Jump(BlockId(3)));
        assert_eq!(f.blocks[3].term, Terminator::Return(None));
        // Determinism: a second function built the same way lands the
        // same layout.
        let mut g = {
            let mut b = FuncBuilder::new("f");
            let e = b.entry();
            let dead_a = b.new_block();
            let dead_b = b.new_block();
            let tail = b.new_block();
            b.set_term(e, Terminator::Jump(tail));
            b.set_term(dead_a, Terminator::Jump(dead_b));
            b.set_term(dead_b, Terminator::Return(None));
            b.set_term(tail, Terminator::Return(Some(Operand::Imm(1))));
            b.finish()
        };
        reposition(&mut g);
        assert_eq!(format!("{g:?}"), format!("{f:?}"));
    }

    #[test]
    fn indirect_jump_with_first_target_placed_ends_the_chain() {
        // entry jumps to a dispatch block whose indirect-jump table
        // leads with the entry itself. The chain extension must notice
        // the first target is already placed and stop, not loop or
        // displace the remaining targets' chains.
        let mut b = FuncBuilder::new("f");
        let i = b.new_reg();
        b.set_param_regs(vec![i]);
        let e = b.entry();
        let dispatch = b.new_block();
        let case1 = b.new_block();
        b.set_term(e, Terminator::Jump(dispatch));
        b.set_term(
            dispatch,
            Terminator::IndirectJump {
                index: i,
                targets: vec![e, case1],
            },
        );
        b.set_term(case1, Terminator::Return(Some(Operand::Imm(1))));
        let mut f = b.finish();
        reposition(&mut f);
        assert_eq!(f.blocks.len(), 3);
        assert_eq!(f.entry, BlockId(0));
        // Layout is entry, dispatch, case1: the chain broke at the
        // placed first target and case1 was picked up by a later seed.
        assert_eq!(f.blocks[0].term, Terminator::Jump(BlockId(1)));
        match &f.blocks[1].term {
            Terminator::IndirectJump { targets, .. } => {
                assert_eq!(targets, &[BlockId(0), BlockId(2)]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn reposition_is_idempotent_including_branch_inversion() {
        // A shape where the first pass must both reorder and invert a
        // branch; a second pass then has nothing left to do. This pins
        // that inversion never flip-flops arms across passes.
        let mut b = FuncBuilder::new("f");
        let x = b.new_reg();
        b.set_param_regs(vec![x]);
        let e = b.entry();
        let t = b.new_block();
        let nt = b.new_block();
        b.cmp(e, x, 0i64);
        b.set_term(e, Terminator::branch(Cond::Lt, t, nt));
        b.set_term(t, Terminator::Jump(nt));
        b.set_term(nt, Terminator::Return(None));
        let mut f = b.finish();
        reposition(&mut f);
        let once = format!("{f:?}");
        reposition(&mut f);
        assert_eq!(format!("{f:?}"), once);
    }

    #[test]
    fn semantics_preserved_under_layout() {
        use br_vm::{run, VmOptions};
        // abs-like function: layout must not change results.
        let mut b = FuncBuilder::new("main");
        let x = b.new_reg();
        let e = b.entry();
        let neg = b.new_block();
        let pos = b.new_block();
        b.copy(e, x, -7i64);
        b.cmp_branch(e, x, 0i64, Cond::Ge, pos, neg);
        b.un(neg, br_ir::UnOp::Neg, x, x);
        b.set_term(neg, Terminator::Jump(pos));
        b.set_term(pos, Terminator::Return(Some(Operand::Reg(x))));
        let mut f = b.finish();
        let mut m = br_ir::Module::new();
        reposition(&mut f);
        br_ir::verify_function(&f, None).unwrap();
        m.main = Some(m.add_function(f));
        assert_eq!(run(&m, b"", &VmOptions::default()).unwrap().exit, 7);
    }
}
