//! Branch chaining: retarget control transfers that land on empty
//! jump-only blocks (the paper's "branch chaining to minimize
//! unconditional jumps").

use br_ir::{BlockId, Function, Terminator};

/// Follow chains of empty `jmp`-only blocks from every successor edge and
/// retarget the edge to the final destination. Returns whether anything
/// changed.
pub fn chain_branches(f: &mut Function) -> bool {
    // Resolve each block to its chain destination with cycle protection.
    let n = f.blocks.len();
    let mut resolved: Vec<BlockId> = (0..n as u32).map(BlockId).collect();
    for (start, slot) in resolved.iter_mut().enumerate() {
        let mut seen = vec![false; n];
        let mut cur = BlockId(start as u32);
        loop {
            seen[cur.index()] = true;
            let b = &f.blocks[cur.index()];
            match b.term {
                Terminator::Jump(next) if b.insts.is_empty() && !seen[next.index()] => {
                    cur = next;
                }
                _ => break,
            }
        }
        *slot = cur;
    }
    let mut changed = false;
    for b in &mut f.blocks {
        b.term.map_successors(|s| {
            let r = resolved[s.index()];
            if r != s {
                changed = true;
            }
            r
        });
    }
    if resolved[f.entry.index()] != f.entry {
        f.entry = resolved[f.entry.index()];
        changed = true;
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_ir::{Cond, FuncBuilder, Operand};

    #[test]
    fn jump_chains_collapse() {
        let mut b = FuncBuilder::new("f");
        let e = b.entry();
        let hop1 = b.new_block();
        let hop2 = b.new_block();
        let dest = b.new_block();
        b.set_term(e, Terminator::Jump(hop1));
        b.set_term(hop1, Terminator::Jump(hop2));
        b.set_term(hop2, Terminator::Jump(dest));
        b.set_term(dest, Terminator::Return(Some(Operand::Imm(1))));
        let mut f = b.finish();
        assert!(chain_branches(&mut f));
        assert_eq!(f.blocks[0].term, Terminator::Jump(dest));
    }

    #[test]
    fn branch_arms_are_chained() {
        let mut b = FuncBuilder::new("f");
        let x = b.new_reg();
        b.set_param_regs(vec![x]);
        let e = b.entry();
        let hop = b.new_block();
        let dest = b.new_block();
        let other = b.new_block();
        b.cmp_branch(e, x, 0i64, Cond::Eq, hop, other);
        b.set_term(hop, Terminator::Jump(dest));
        b.set_term(dest, Terminator::Return(None));
        b.set_term(other, Terminator::Return(None));
        let mut f = b.finish();
        assert!(chain_branches(&mut f));
        match f.blocks[0].term {
            Terminator::Branch { taken, .. } => assert_eq!(taken, dest),
            ref t => panic!("unexpected {t:?}"),
        }
    }

    #[test]
    fn non_empty_blocks_stop_the_chain() {
        let mut b = FuncBuilder::new("f");
        let x = b.new_reg();
        let e = b.entry();
        let hop = b.new_block();
        let dest = b.new_block();
        b.copy(e, x, 0i64);
        b.set_term(e, Terminator::Jump(hop));
        b.copy(hop, x, 5i64);
        b.set_term(hop, Terminator::Jump(dest));
        b.set_term(dest, Terminator::Return(Some(Operand::Reg(x))));
        let mut f = b.finish();
        assert!(!chain_branches(&mut f));
        assert_eq!(f.blocks[0].term, Terminator::Jump(hop));
    }

    #[test]
    fn self_loop_of_jumps_terminates() {
        let mut b = FuncBuilder::new("f");
        let e = b.entry();
        let a = b.new_block();
        let c = b.new_block();
        b.set_term(e, Terminator::Jump(a));
        b.set_term(a, Terminator::Jump(c));
        b.set_term(c, Terminator::Jump(a)); // cycle a <-> c
        let mut f = b.finish();
        chain_branches(&mut f); // must not hang
    }
}
