//! Linear-scan register allocation.
//!
//! The IR uses unlimited virtual registers; real machines do not. This
//! pass maps virtual registers onto a finite machine register file
//! (SPARC-like, configurable size), spilling excess live ranges to frame
//! slots. It is not part of the default measurement pipeline — the
//! paper's transformation is evaluated on register-transfer code — but
//! provides backend realism: allocated code runs identically, with the
//! extra loads/stores of spill code visible in the dynamic counts
//! (see the `register-pressure` ablation bench).
//!
//! Algorithm: classic linear scan over live intervals derived from
//! [`crate::liveness`] and the block linearization. The top three
//! machine registers are reserved as spill scratch (an instruction reads
//! at most three operands, and an instruction that also defines a
//! register reads at most two).

use std::collections::HashMap;

use br_ir::{Function, Inst, Operand, Reg, Terminator};

use crate::liveness;

/// Allocation parameters.
#[derive(Clone, Copy, Debug)]
pub struct RegAllocOptions {
    /// Machine registers available, including the three spill scratch
    /// registers. SPARC exposes roughly 24 usable integer registers per
    /// window.
    pub num_regs: u32,
}

impl Default for RegAllocOptions {
    fn default() -> RegAllocOptions {
        RegAllocOptions { num_regs: 24 }
    }
}

/// What allocation did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegAllocResult {
    /// Virtual registers spilled to frame slots.
    pub spilled: usize,
    /// Machine registers assigned (excluding scratch).
    pub used_regs: u32,
}

#[derive(Clone, Copy, Debug)]
struct Interval {
    vreg: Reg,
    start: u32,
    end: u32,
    is_param: bool,
}

/// Allocate `f`'s virtual registers onto `opts.num_regs` machine
/// registers, inserting spill code as needed.
///
/// Returns `None` — leaving the function untouched — if the function's
/// parameters alone exceed the allocatable registers.
///
/// # Panics
///
/// Panics if `opts.num_regs < 4` (three scratch plus at least one
/// allocatable register are required).
pub fn allocate_registers(f: &mut Function, opts: &RegAllocOptions) -> Option<RegAllocResult> {
    assert!(opts.num_regs >= 4, "need at least one allocatable register");
    let allocatable = opts.num_regs - 3;
    if f.param_regs.len() as u32 > allocatable {
        return None;
    }

    // ----- live intervals -----
    let live = liveness::analyze(f);
    let mut block_start = vec![0u32; f.blocks.len()];
    let mut block_end = vec![0u32; f.blocks.len()];
    let mut pos = 0u32;
    for (i, b) in f.blocks.iter().enumerate() {
        block_start[i] = pos;
        pos += b.insts.len() as u32 + 1;
        block_end[i] = pos - 1;
    }
    let mut ivs: HashMap<Reg, Interval> = HashMap::new();
    let mut touch = |r: Reg, at: u32| {
        let e = ivs.entry(r).or_insert(Interval {
            vreg: r,
            start: at,
            end: at,
            is_param: false,
        });
        e.start = e.start.min(at);
        e.end = e.end.max(at);
    };
    for (i, b) in f.blocks.iter().enumerate() {
        for &r in &live.live_in[i] {
            touch(r, block_start[i]);
        }
        for &r in &live.live_out[i] {
            touch(r, block_end[i]);
        }
        let mut at = block_start[i];
        for inst in &b.insts {
            for u in inst.uses() {
                touch(u, at);
            }
            if let Some(d) = inst.def() {
                touch(d, at);
            }
            at += 1;
        }
        for u in b.term.uses() {
            touch(u, at);
        }
    }
    for &p in &f.param_regs {
        let e = ivs.entry(p).or_insert(Interval {
            vreg: p,
            start: 0,
            end: 0,
            is_param: true,
        });
        e.is_param = true;
        e.start = 0;
    }

    // ----- linear scan -----
    let mut intervals: Vec<Interval> = ivs.into_values().collect();
    intervals.sort_by_key(|iv| (iv.start, iv.vreg.0));
    let mut active: Vec<(Interval, u32)> = Vec::new();
    let mut free: Vec<u32> = (0..allocatable).rev().collect();
    let mut assignment: HashMap<Reg, u32> = HashMap::new();
    let mut spilled: Vec<Reg> = Vec::new();
    let mut used_regs = 0u32;
    for iv in intervals {
        active.retain(|(a, phys)| {
            if a.end < iv.start {
                free.push(*phys);
                false
            } else {
                true
            }
        });
        if let Some(phys) = free.pop() {
            used_regs = used_regs.max(phys + 1);
            assignment.insert(iv.vreg, phys);
            active.push((iv, phys));
            continue;
        }
        // Evict the non-param active interval ending furthest away if it
        // outlives the current one; otherwise spill the current interval.
        let victim = active
            .iter()
            .enumerate()
            .filter(|(_, (a, _))| !a.is_param)
            .max_by_key(|(_, (a, _))| a.end)
            .map(|(i, _)| i);
        match victim {
            Some(idx) if active[idx].0.end > iv.end => {
                let (old, phys) = active.swap_remove(idx);
                assignment.remove(&old.vreg);
                spilled.push(old.vreg);
                assignment.insert(iv.vreg, phys);
                active.push((iv, phys));
            }
            _ => {
                debug_assert!(!iv.is_param, "params outnumber registers?");
                spilled.push(iv.vreg);
            }
        }
    }

    // ----- rewrite with spill code -----
    let scratch = [Reg(allocatable), Reg(allocatable + 1), Reg(allocatable + 2)];
    let mut slot_of: HashMap<Reg, u32> = HashMap::new();
    for &v in &spilled {
        slot_of.insert(v, f.frame_size);
        f.frame_size += 1;
    }
    let phys = |r: Reg| -> Reg { Reg(*assignment.get(&r).expect("assigned register")) };

    for b in 0..f.blocks.len() {
        let block = &mut f.blocks[b];
        let old = std::mem::take(&mut block.insts);
        let mut out: Vec<Inst> = Vec::with_capacity(old.len());
        for mut inst in old {
            let orig_def = inst.def();
            let mut next_scratch = 0usize;
            // Reload each distinct spilled use into its own scratch.
            let mut reload: HashMap<Reg, Reg> = HashMap::new();
            for u in inst.uses() {
                if let Some(&slot) = slot_of.get(&u) {
                    if reload.contains_key(&u) {
                        continue;
                    }
                    let s = scratch[next_scratch];
                    next_scratch += 1;
                    out.push(Inst::FrameAddr {
                        dst: s,
                        offset: slot,
                    });
                    out.push(Inst::Load {
                        dst: s,
                        base: Operand::Reg(s),
                        index: Operand::Imm(0),
                    });
                    reload.insert(u, s);
                }
            }
            // A spilled definition computes into a scratch of its own.
            let def_scratch = orig_def.and_then(|d| {
                slot_of.get(&d).map(|&slot| {
                    let s = scratch[next_scratch];
                    (d, s, slot)
                })
            });
            let map_use = |r: Reg| -> Reg {
                if let Some(&s) = reload.get(&r) {
                    s
                } else {
                    phys(r)
                }
            };
            let map_def = |r: Reg| -> Reg {
                if let Some((d, s, _)) = def_scratch {
                    if r == d {
                        return s;
                    }
                }
                phys(r)
            };
            rewrite_operands(&mut inst, &map_use, &map_def);
            out.push(inst);
            if let Some((_, s, slot)) = def_scratch {
                // Store the freshly computed value; the address register
                // may be any scratch other than `s` (all use-reloads are
                // dead past the instruction).
                let addr = *scratch.iter().find(|&&x| x != s).expect("3 scratch");
                out.push(Inst::FrameAddr {
                    dst: addr,
                    offset: slot,
                });
                out.push(Inst::Store {
                    base: Operand::Reg(addr),
                    index: Operand::Imm(0),
                    src: Operand::Reg(s),
                });
            }
        }
        // Terminator operands.
        let mut term = std::mem::replace(&mut block.term, Terminator::Return(None));
        let term_uses = term.uses();
        let mut reload: HashMap<Reg, Reg> = HashMap::new();
        let mut next_scratch = 0usize;
        for u in term_uses {
            if let Some(&slot) = slot_of.get(&u) {
                if reload.contains_key(&u) {
                    continue;
                }
                let s = scratch[next_scratch];
                next_scratch += 1;
                out.push(Inst::FrameAddr {
                    dst: s,
                    offset: slot,
                });
                out.push(Inst::Load {
                    dst: s,
                    base: Operand::Reg(s),
                    index: Operand::Imm(0),
                });
                reload.insert(u, s);
            }
        }
        rewrite_terminator(&mut term, &|r| {
            if let Some(&s) = reload.get(&r) {
                s
            } else {
                phys(r)
            }
        });
        block.term = term;
        block.insts = out;
    }
    f.param_regs = f.param_regs.iter().map(|&p| phys(p)).collect();
    f.num_regs = opts.num_regs;
    Some(RegAllocResult {
        spilled: spilled.len(),
        used_regs,
    })
}

fn rewrite_operands(inst: &mut Inst, map_use: &dyn Fn(Reg) -> Reg, map_def: &dyn Fn(Reg) -> Reg) {
    let mop = |op: &mut Operand| {
        if let Operand::Reg(r) = op {
            *r = map_use(*r);
        }
    };
    match inst {
        Inst::Copy { dst, src } => {
            mop(src);
            *dst = map_def(*dst);
        }
        Inst::Bin { dst, lhs, rhs, .. } => {
            mop(lhs);
            mop(rhs);
            *dst = map_def(*dst);
        }
        Inst::Un { dst, src, .. } => {
            mop(src);
            *dst = map_def(*dst);
        }
        Inst::Cmp { lhs, rhs } => {
            mop(lhs);
            mop(rhs);
        }
        Inst::Load { dst, base, index } => {
            mop(base);
            mop(index);
            *dst = map_def(*dst);
        }
        Inst::Store { base, index, src } => {
            mop(base);
            mop(index);
            mop(src);
        }
        Inst::FrameAddr { dst, .. } => *dst = map_def(*dst),
        Inst::Call { dst, args, .. } => {
            for a in args {
                mop(a);
            }
            if let Some(d) = dst {
                *d = map_def(*d);
            }
        }
        Inst::ProfileRanges { var, .. } => *var = map_use(*var),
        Inst::ProfileOutcomes { conds, .. } => {
            for (l, r, _) in conds {
                mop(l);
                mop(r);
            }
        }
    }
}

fn rewrite_terminator(term: &mut Terminator, map: &dyn Fn(Reg) -> Reg) {
    match term {
        Terminator::IndirectJump { index, .. } => *index = map(*index),
        Terminator::Return(Some(Operand::Reg(r))) => *r = map(*r),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_ir::{BinOp, Cond, FuncBuilder, Module};
    use br_vm::{run, VmOptions};

    /// A chain of k simultaneously-live values, summed at the end.
    fn pressure_module(k: usize) -> Module {
        let mut b = FuncBuilder::new("main");
        let regs: Vec<Reg> = (0..k).map(|_| b.new_reg()).collect();
        let sum = b.new_reg();
        let e = b.entry();
        for (i, &r) in regs.iter().enumerate() {
            b.copy(e, r, (i as i64 + 1) * 3);
        }
        b.copy(e, sum, 0i64);
        for &r in &regs {
            b.bin(e, BinOp::Add, sum, sum, r);
        }
        b.set_term(e, Terminator::Return(Some(br_ir::Operand::Reg(sum))));
        let mut m = Module::new();
        m.main = Some(m.add_function(b.finish()));
        m
    }

    fn check_alloc(mut m: Module, num_regs: u32) -> (i64, i64, RegAllocResult) {
        let before = run(&m, b"", &VmOptions::default()).unwrap().exit;
        let result = allocate_registers(&mut m.functions[0], &RegAllocOptions { num_regs })
            .expect("allocatable");
        br_ir::verify_function(&m.functions[0], None).unwrap();
        assert!(m.functions[0].num_regs == num_regs);
        // Every register mentioned is a machine register.
        for blk in &m.functions[0].blocks {
            for inst in &blk.insts {
                for u in inst.uses() {
                    assert!(u.0 < num_regs, "unallocated use {u}");
                }
                if let Some(d) = inst.def() {
                    assert!(d.0 < num_regs, "unallocated def {d}");
                }
            }
        }
        let after = run(&m, b"", &VmOptions::default()).unwrap().exit;
        (before, after, result)
    }

    #[test]
    fn no_spills_when_registers_suffice() {
        let (before, after, result) = check_alloc(pressure_module(5), 24);
        assert_eq!(before, after);
        assert_eq!(result.spilled, 0);
        assert!(result.used_regs >= 5);
    }

    #[test]
    fn spills_under_pressure_and_preserves_semantics() {
        // 30 simultaneously-live values through an 8-register machine.
        let (before, after, result) = check_alloc(pressure_module(30), 8);
        assert_eq!(before, after, "spill code must preserve the result");
        assert!(result.spilled > 0, "30 live values cannot fit 5 registers");
    }

    #[test]
    fn tiny_register_files_still_work() {
        let (before, after, _) = check_alloc(pressure_module(12), 4);
        assert_eq!(before, after);
    }

    #[test]
    fn too_many_params_is_refused() {
        let mut b = FuncBuilder::new("f");
        let params: Vec<Reg> = (0..6).map(|_| b.new_reg()).collect();
        b.set_param_regs(params);
        let e = b.entry();
        b.set_term(e, Terminator::Return(None));
        let mut f = b.finish();
        assert!(allocate_registers(&mut f, &RegAllocOptions { num_regs: 8 }).is_none());
    }

    #[test]
    fn loops_with_spilled_values_run_correctly() {
        // Loop-carried registers under extreme pressure.
        let mut b = FuncBuilder::new("main");
        let regs: Vec<Reg> = (0..10).map(|_| b.new_reg()).collect();
        let i = b.new_reg();
        let e = b.entry();
        let head = b.new_block();
        let body = b.new_block();
        let done = b.new_block();
        for (k, &r) in regs.iter().enumerate() {
            b.copy(e, r, k as i64);
        }
        b.copy(e, i, 0i64);
        b.set_term(e, Terminator::Jump(head));
        b.cmp_branch(head, i, 50i64, Cond::Ge, done, body);
        // Rotate values through the registers.
        for w in regs.windows(2) {
            b.bin(body, BinOp::Add, w[1], w[1], w[0]);
        }
        b.bin(body, BinOp::Add, i, i, 1i64);
        b.set_term(body, Terminator::Jump(head));
        let last = *regs.last().unwrap();
        b.set_term(done, Terminator::Return(Some(br_ir::Operand::Reg(last))));
        let mut m = Module::new();
        m.main = Some(m.add_function(b.finish()));
        let (before, after, result) = check_alloc(m, 6);
        assert_eq!(before, after);
        assert!(result.spilled > 0);
    }

    #[test]
    fn allocation_composes_with_optimized_minic_code() {
        use br_minic::{compile, Options};
        let src = "
            int main() {
                int c; int a; int b; int d; int e2; int f2; int g;
                a=0;b=0;d=0;e2=0;f2=0;g=0;
                c = getchar();
                while (c != -1) {
                    if (c == ' ') a += 1;
                    else if (c == '\\n') b += 1;
                    else if (c == '\\t') d += 1;
                    else { e2 += 1; f2 += c; g += c % 7; }
                    c = getchar();
                }
                putint(a); putint(b); putint(d); putint(e2);
                return f2 + g;
            }";
        let mut m = compile(src, &Options::default()).unwrap();
        crate::optimize(&mut m);
        let input = b"words and more words\nwith tabs\there\n".repeat(30);
        let base = run(&m, &input, &VmOptions::default()).unwrap();
        let mut allocated = m.clone();
        for f in &mut allocated.functions {
            allocate_registers(f, &RegAllocOptions { num_regs: 8 }).expect("fits");
        }
        br_ir::verify_module(&allocated).unwrap();
        let got = run(&allocated, &input, &VmOptions::default()).unwrap();
        assert_eq!(base.exit, got.exit);
        assert_eq!(base.output, got.output);
        // Spill code costs extra instructions; never fewer.
        assert!(got.stats.insts >= base.stats.insts);
    }
}
