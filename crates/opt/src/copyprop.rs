//! Local copy propagation.

use std::collections::HashMap;

use br_ir::{Function, Inst, Operand, Reg, Terminator};

/// Within each block, replace uses of a register that was last written by
/// `mov dst, src` with `src`, as long as neither side has been redefined
/// since. Returns whether anything changed.
pub fn propagate_copies(f: &mut Function) -> bool {
    let mut changed = false;
    for block in &mut f.blocks {
        // dst -> current operand to use instead.
        let mut copies: HashMap<Reg, Operand> = HashMap::new();
        let kill = |copies: &mut HashMap<Reg, Operand>, dead: Reg| {
            copies.remove(&dead);
            copies.retain(|_, v| v.reg() != Some(dead));
        };
        for inst in &mut block.insts {
            let subst = |op: &mut Operand, copies: &HashMap<Reg, Operand>, changed: &mut bool| {
                if let Operand::Reg(r) = op {
                    if let Some(&replacement) = copies.get(r) {
                        *op = replacement;
                        *changed = true;
                    }
                }
            };
            match inst {
                Inst::Copy { src, .. } => subst(src, &copies, &mut changed),
                Inst::Bin { lhs, rhs, .. } => {
                    subst(lhs, &copies, &mut changed);
                    subst(rhs, &copies, &mut changed);
                }
                Inst::Un { src, .. } => subst(src, &copies, &mut changed),
                Inst::Cmp { lhs, rhs } => {
                    subst(lhs, &copies, &mut changed);
                    subst(rhs, &copies, &mut changed);
                }
                Inst::Load { base, index, .. } => {
                    subst(base, &copies, &mut changed);
                    subst(index, &copies, &mut changed);
                }
                Inst::Store { base, index, src } => {
                    subst(base, &copies, &mut changed);
                    subst(index, &copies, &mut changed);
                    subst(src, &copies, &mut changed);
                }
                Inst::Call { args, .. } => {
                    for a in args {
                        subst(a, &copies, &mut changed);
                    }
                }
                // Profiling probes must keep watching the original
                // register: the probe's variable is not an Operand by
                // design, so nothing to do.
                Inst::FrameAddr { .. }
                | Inst::ProfileRanges { .. }
                | Inst::ProfileOutcomes { .. } => {}
            }
            if let Some(d) = inst.def() {
                kill(&mut copies, d);
                if let Inst::Copy { dst, src } = inst {
                    if src.reg() != Some(*dst) {
                        copies.insert(*dst, *src);
                    }
                }
            }
        }
        match &mut block.term {
            Terminator::Return(Some(op)) => {
                if let Operand::Reg(r) = op {
                    if let Some(&replacement) = copies.get(r) {
                        *op = replacement;
                        changed = true;
                    }
                }
            }
            Terminator::IndirectJump { index, .. } => {
                if let Some(&Operand::Reg(replacement)) = copies.get(index) {
                    *index = replacement;
                    changed = true;
                }
            }
            _ => {}
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_ir::{BinOp, FuncBuilder};

    #[test]
    fn propagates_through_a_chain() {
        let mut b = FuncBuilder::new("f");
        let x = b.new_reg();
        let y = b.new_reg();
        let z = b.new_reg();
        b.set_param_regs(vec![x]);
        let e = b.entry();
        b.copy(e, y, x);
        b.bin(e, BinOp::Add, z, y, 1i64);
        b.set_term(e, Terminator::Return(Some(Operand::Reg(z))));
        let mut f = b.finish();
        assert!(propagate_copies(&mut f));
        assert_eq!(
            f.blocks[0].insts[1],
            Inst::Bin {
                op: BinOp::Add,
                dst: z,
                lhs: Operand::Reg(x),
                rhs: Operand::Imm(1)
            }
        );
    }

    #[test]
    fn redefinition_of_source_kills_copy() {
        let mut b = FuncBuilder::new("f");
        let x = b.new_reg();
        let y = b.new_reg();
        b.set_param_regs(vec![x]);
        let e = b.entry();
        b.copy(e, y, x); // y = x
        b.bin(e, BinOp::Add, x, x, 1i64); // x changes
        b.cmp(e, y, 0i64); // must still compare y, not x
        b.set_term(e, Terminator::Return(Some(Operand::Reg(y))));
        let mut f = b.finish();
        propagate_copies(&mut f);
        assert_eq!(
            f.blocks[0].insts[2],
            Inst::Cmp {
                lhs: Operand::Reg(y),
                rhs: Operand::Imm(0)
            }
        );
    }

    #[test]
    fn propagates_into_return() {
        let mut b = FuncBuilder::new("f");
        let x = b.new_reg();
        let y = b.new_reg();
        b.set_param_regs(vec![x]);
        let e = b.entry();
        b.copy(e, y, x);
        b.set_term(e, Terminator::Return(Some(Operand::Reg(y))));
        let mut f = b.finish();
        propagate_copies(&mut f);
        assert_eq!(f.blocks[0].term, Terminator::Return(Some(Operand::Reg(x))));
    }

    #[test]
    fn self_copy_is_not_recorded() {
        let mut b = FuncBuilder::new("f");
        let x = b.new_reg();
        b.set_param_regs(vec![x]);
        let e = b.entry();
        b.copy(e, x, x);
        b.cmp(e, x, 0i64);
        b.set_term(e, Terminator::Return(Some(Operand::Reg(x))));
        let mut f = b.finish();
        propagate_copies(&mut f);
        assert_eq!(
            f.blocks[0].insts[1],
            Inst::Cmp {
                lhs: Operand::Reg(x),
                rhs: Operand::Imm(0)
            }
        );
    }
}
