//! Algebraic simplification and strength reduction.

use br_ir::{BinOp, Function, Inst, Operand, UnOp};

/// Rewrite instructions into cheaper equivalent forms:
///
/// * `x + 0`, `x - 0`, `x * 1`, `x / 1`, `x & -1`, `x | 0`, `x ^ 0`,
///   `x << 0`, `x >> 0` → copy;
/// * `x * 0`, `x & 0`, `x % 1` → constant 0;
/// * `x * 2^k` → `x << k` (strength reduction);
/// * `x * -1` → negate;
/// * `x - x`, `x ^ x` → 0; `x & x`, `x | x` → copy.
///
/// Signed division/remainder by powers of two are *not* rewritten to
/// shifts: rounding differs for negative operands. Returns whether
/// anything changed.
pub fn simplify_algebra(f: &mut Function) -> bool {
    let mut changed = false;
    for block in &mut f.blocks {
        for inst in &mut block.insts {
            let Inst::Bin { op, dst, lhs, rhs } = *inst else {
                continue;
            };
            let dst_copy = |src: Operand| Inst::Copy { dst, src };
            let replacement = match (op, lhs, rhs) {
                // Identity elements.
                (BinOp::Add, x, Operand::Imm(0)) | (BinOp::Add, Operand::Imm(0), x) => {
                    Some(dst_copy(x))
                }
                (BinOp::Sub, x, Operand::Imm(0)) => Some(dst_copy(x)),
                (BinOp::Mul, x, Operand::Imm(1)) | (BinOp::Mul, Operand::Imm(1), x) => {
                    Some(dst_copy(x))
                }
                (BinOp::Div, x, Operand::Imm(1)) => Some(dst_copy(x)),
                (BinOp::And, x, Operand::Imm(-1)) | (BinOp::And, Operand::Imm(-1), x) => {
                    Some(dst_copy(x))
                }
                (BinOp::Or, x, Operand::Imm(0))
                | (BinOp::Or, Operand::Imm(0), x)
                | (BinOp::Xor, x, Operand::Imm(0))
                | (BinOp::Xor, Operand::Imm(0), x) => Some(dst_copy(x)),
                (BinOp::Shl | BinOp::Shr, x, Operand::Imm(0)) => Some(dst_copy(x)),
                // Annihilators.
                (BinOp::Mul, _, Operand::Imm(0))
                | (BinOp::Mul, Operand::Imm(0), _)
                | (BinOp::And, _, Operand::Imm(0))
                | (BinOp::And, Operand::Imm(0), _)
                | (BinOp::Rem, _, Operand::Imm(1)) => Some(dst_copy(Operand::Imm(0))),
                // Same-operand folds.
                (BinOp::Sub | BinOp::Xor, a, b) if a == b && a.reg().is_some() => {
                    Some(dst_copy(Operand::Imm(0)))
                }
                (BinOp::And | BinOp::Or, a, b) if a == b && a.reg().is_some() => Some(dst_copy(a)),
                // Strength reduction: multiply by a power of two.
                (BinOp::Mul, x, Operand::Imm(k)) | (BinOp::Mul, Operand::Imm(k), x)
                    if k > 1 && (k & (k - 1)) == 0 =>
                {
                    Some(Inst::Bin {
                        op: BinOp::Shl,
                        dst,
                        lhs: x,
                        rhs: Operand::Imm(k.trailing_zeros() as i64),
                    })
                }
                // Multiply by -1.
                (BinOp::Mul, x, Operand::Imm(-1)) | (BinOp::Mul, Operand::Imm(-1), x) => {
                    Some(Inst::Un {
                        op: UnOp::Neg,
                        dst,
                        src: x,
                    })
                }
                _ => None,
            };
            if let Some(new_inst) = replacement {
                if *inst != new_inst {
                    *inst = new_inst;
                    changed = true;
                }
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_ir::{FuncBuilder, Reg, Terminator};

    fn one_inst(op: BinOp, lhs: impl Into<Operand>, rhs: impl Into<Operand>) -> Inst {
        let mut b = FuncBuilder::new("f");
        let x = b.new_reg();
        let d = b.new_reg();
        b.set_param_regs(vec![x]);
        let e = b.entry();
        b.bin(e, op, d, lhs, rhs);
        b.set_term(e, Terminator::Return(Some(Operand::Reg(d))));
        let mut f = b.finish();
        simplify_algebra(&mut f);
        f.blocks[0].insts[0].clone()
    }

    #[test]
    fn identities_become_copies() {
        let x = Operand::Reg(Reg(0));
        for (op, rhs) in [
            (BinOp::Add, 0i64),
            (BinOp::Sub, 0),
            (BinOp::Mul, 1),
            (BinOp::Div, 1),
            (BinOp::Or, 0),
            (BinOp::Xor, 0),
            (BinOp::Shl, 0),
            (BinOp::Shr, 0),
        ] {
            assert_eq!(
                one_inst(op, x, rhs),
                Inst::Copy {
                    dst: Reg(1),
                    src: x
                },
                "{op:?}"
            );
        }
    }

    #[test]
    fn annihilators_become_zero() {
        let x = Operand::Reg(Reg(0));
        for (op, rhs) in [(BinOp::Mul, 0i64), (BinOp::And, 0), (BinOp::Rem, 1)] {
            assert_eq!(
                one_inst(op, x, rhs),
                Inst::Copy {
                    dst: Reg(1),
                    src: Operand::Imm(0)
                },
                "{op:?}"
            );
        }
        assert_eq!(
            one_inst(BinOp::Sub, x, x),
            Inst::Copy {
                dst: Reg(1),
                src: Operand::Imm(0)
            }
        );
    }

    #[test]
    fn power_of_two_multiply_becomes_shift() {
        let x = Operand::Reg(Reg(0));
        assert_eq!(
            one_inst(BinOp::Mul, x, 8i64),
            Inst::Bin {
                op: BinOp::Shl,
                dst: Reg(1),
                lhs: x,
                rhs: Operand::Imm(3)
            }
        );
        // Non-power-of-two stays a multiply.
        assert!(matches!(
            one_inst(BinOp::Mul, x, 6i64),
            Inst::Bin { op: BinOp::Mul, .. }
        ));
    }

    #[test]
    fn division_is_not_strength_reduced() {
        let x = Operand::Reg(Reg(0));
        // -7 / 2 == -3 but -7 >> 1 == -4: must stay a division.
        assert!(matches!(
            one_inst(BinOp::Div, x, 2i64),
            Inst::Bin { op: BinOp::Div, .. }
        ));
        assert!(matches!(
            one_inst(BinOp::Rem, x, 2i64),
            Inst::Bin { op: BinOp::Rem, .. }
        ));
    }

    #[test]
    fn multiply_by_minus_one_negates() {
        let x = Operand::Reg(Reg(0));
        assert_eq!(
            one_inst(BinOp::Mul, x, -1i64),
            Inst::Un {
                op: UnOp::Neg,
                dst: Reg(1),
                src: x
            }
        );
    }
}
