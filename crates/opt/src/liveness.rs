//! Global liveness analysis: which virtual registers are live at block
//! boundaries. Backward iterative dataflow over the CFG.

use std::collections::HashSet;

use br_ir::{Function, Reg};

/// Per-block liveness sets.
#[derive(Clone, Debug)]
pub struct Liveness {
    /// Registers live on entry to each block.
    pub live_in: Vec<HashSet<Reg>>,
    /// Registers live on exit from each block.
    pub live_out: Vec<HashSet<Reg>>,
}

/// Compute liveness for `f`.
pub fn analyze(f: &Function) -> Liveness {
    let n = f.blocks.len();
    // Per-block gen (used before any def) and kill (defined) sets.
    let mut gen_set = vec![HashSet::new(); n];
    let mut kill = vec![HashSet::new(); n];
    for (i, block) in f.blocks.iter().enumerate() {
        for inst in &block.insts {
            for u in inst.uses() {
                if !kill[i].contains(&u) {
                    gen_set[i].insert(u);
                }
            }
            if let Some(d) = inst.def() {
                kill[i].insert(d);
            }
        }
        for u in block.term.uses() {
            if !kill[i].contains(&u) {
                gen_set[i].insert(u);
            }
        }
    }
    let mut live_in = vec![HashSet::new(); n];
    let mut live_out = vec![HashSet::new(); n];
    loop {
        let mut changed = false;
        for i in (0..n).rev() {
            let mut out: HashSet<Reg> = HashSet::new();
            for s in f.blocks[i].term.successors() {
                out.extend(live_in[s.index()].iter().copied());
            }
            let mut inn = gen_set[i].clone();
            for &r in &out {
                if !kill[i].contains(&r) {
                    inn.insert(r);
                }
            }
            if out != live_out[i] || inn != live_in[i] {
                live_out[i] = out;
                live_in[i] = inn;
                changed = true;
            }
        }
        if !changed {
            return Liveness { live_in, live_out };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_ir::{BinOp, Cond, FuncBuilder, Operand, Terminator};

    #[test]
    fn straight_line_liveness() {
        let mut b = FuncBuilder::new("f");
        let x = b.new_reg();
        let y = b.new_reg();
        b.set_param_regs(vec![x]);
        let e = b.entry();
        b.bin(e, BinOp::Add, y, x, 1i64);
        b.set_term(e, Terminator::Return(Some(Operand::Reg(y))));
        let f = b.finish();
        let l = analyze(&f);
        assert!(l.live_in[0].contains(&x));
        assert!(!l.live_in[0].contains(&y), "y is defined before use");
        assert!(l.live_out[0].is_empty());
    }

    #[test]
    fn loop_carried_values_stay_live() {
        // i and s are live around the loop; t only inside the body.
        let mut b = FuncBuilder::new("f");
        let i = b.new_reg();
        let s = b.new_reg();
        let t = b.new_reg();
        let e = b.entry();
        let head = b.new_block();
        let body = b.new_block();
        let done = b.new_block();
        b.copy(e, i, 0i64);
        b.copy(e, s, 0i64);
        b.set_term(e, Terminator::Jump(head));
        b.cmp_branch(head, i, 10i64, Cond::Ge, done, body);
        b.bin(body, BinOp::Mul, t, i, 2i64);
        b.bin(body, BinOp::Add, s, s, t);
        b.bin(body, BinOp::Add, i, i, 1i64);
        b.set_term(body, Terminator::Jump(head));
        b.set_term(done, Terminator::Return(Some(Operand::Reg(s))));
        let f = b.finish();
        let l = analyze(&f);
        let head_i = head.index();
        assert!(l.live_in[head_i].contains(&i));
        assert!(l.live_in[head_i].contains(&s));
        assert!(!l.live_in[head_i].contains(&t), "t is body-local");
        assert!(l.live_out[body.index()].contains(&i));
    }

    #[test]
    fn branch_arms_merge_liveness() {
        let mut b = FuncBuilder::new("f");
        let x = b.new_reg();
        let a = b.new_reg();
        let c = b.new_reg();
        b.set_param_regs(vec![x, a, c]);
        let e = b.entry();
        let l_ = b.new_block();
        let r = b.new_block();
        b.cmp_branch(e, x, 0i64, Cond::Eq, l_, r);
        b.set_term(l_, Terminator::Return(Some(Operand::Reg(a))));
        b.set_term(r, Terminator::Return(Some(Operand::Reg(c))));
        let f = b.finish();
        let l = analyze(&f);
        // Both a and c are live out of the entry (one per arm).
        assert!(l.live_out[0].contains(&a));
        assert!(l.live_out[0].contains(&c));
        assert!(l.live_in[l_.index()].contains(&a));
        assert!(!l.live_in[l_.index()].contains(&c));
    }
}
