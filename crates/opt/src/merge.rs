//! Straight-line block merging: a block ending in `jmp t` absorbs `t`
//! when that jump is `t`'s only incoming edge.

use br_ir::{predecessors, Function, Terminator};

/// Merge single-predecessor straight-line pairs. Returns whether anything
/// changed. (Leaves unreachable husks behind; run
/// [`crate::dce::remove_unreachable_blocks`] afterwards.)
pub fn merge_blocks(f: &mut Function) -> bool {
    let mut changed = false;
    loop {
        let preds = predecessors(f);
        let mut merged_one = false;
        for b in 0..f.blocks.len() {
            let Terminator::Jump(t) = f.blocks[b].term else {
                continue;
            };
            if t.index() == b || t == f.entry || preds[t.index()].len() != 1 {
                continue;
            }
            // Absorb t into b.
            let absorbed = std::mem::replace(
                &mut f.blocks[t.index()],
                br_ir::Block::new(Terminator::Return(None)),
            );
            let host = &mut f.blocks[b];
            host.insts.extend(absorbed.insts);
            host.term = absorbed.term;
            // The husk at t is now unreachable (its only pred was b).
            merged_one = true;
            changed = true;
            break; // predecessor lists are stale; recompute.
        }
        if !merged_one {
            return changed;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_ir::{BinOp, Cond, FuncBuilder, Operand};

    #[test]
    fn merges_a_linear_chain() {
        let mut b = FuncBuilder::new("f");
        let x = b.new_reg();
        let e = b.entry();
        let m1 = b.new_block();
        let m2 = b.new_block();
        b.copy(e, x, 1i64);
        b.set_term(e, Terminator::Jump(m1));
        b.bin(m1, BinOp::Add, x, x, 1i64);
        b.set_term(m1, Terminator::Jump(m2));
        b.bin(m2, BinOp::Add, x, x, 1i64);
        b.set_term(m2, Terminator::Return(Some(Operand::Reg(x))));
        let mut f = b.finish();
        assert!(merge_blocks(&mut f));
        assert_eq!(f.blocks[0].insts.len(), 3);
        assert_eq!(f.blocks[0].term, Terminator::Return(Some(Operand::Reg(x))));
    }

    #[test]
    fn join_points_are_not_merged() {
        let mut b = FuncBuilder::new("f");
        let x = b.new_reg();
        b.set_param_regs(vec![x]);
        let e = b.entry();
        let a = b.new_block();
        let join = b.new_block();
        b.cmp_branch(e, x, 0i64, Cond::Eq, a, join);
        b.set_term(a, Terminator::Jump(join)); // join has two preds
        b.set_term(join, Terminator::Return(None));
        let mut f = b.finish();
        assert!(!merge_blocks(&mut f));
    }

    #[test]
    fn self_loop_not_merged() {
        let mut b = FuncBuilder::new("f");
        let e = b.entry();
        let lp = b.new_block();
        b.set_term(e, Terminator::Jump(lp));
        b.copy(lp, br_ir::Reg(0), 1i64);
        let mut f = b.finish();
        f.num_regs = 1;
        f.blocks[lp.index()].term = Terminator::Jump(lp);
        // e -> lp is lp's only *external* edge but lp also loops to itself;
        // preds(lp) has two entries so no merge happens.
        assert!(!merge_blocks(&mut f));
    }
}
