//! # br-opt
//!
//! The "conventional optimizations" of the paper's compilation pipeline
//! (its Figure 2 applies all of `vpo`'s conventional optimizations before
//! branch reordering, and re-invokes clean-up passes afterwards):
//!
//! * [`fold`] — local constant propagation and folding, including folding
//!   conditional branches on constant compares.
//! * [`algebra`] — algebraic simplification and strength reduction.
//! * [`copyprop`] — local copy propagation.
//! * [`cse`] — local common-subexpression elimination.
//! * [`dce`] — dead instruction, dead compare, and unreachable-block
//!   elimination.
//! * [`chain`] — branch chaining: retargets control transfers that land on
//!   empty jump-only blocks.
//! * [`licm`] — conservative loop-invariant code motion.
//! * [`liveness`] — global liveness analysis.
//! * [`regalloc`] — linear-scan register allocation (optional backend
//!   realism; not part of the default pipeline).
//! * [`merge`] — merges single-predecessor straight-line block pairs.
//! * [`layout`] — code repositioning: physically orders blocks to maximize
//!   fall-through and inverts branches where that saves a jump (the
//!   paper's "code repositioning ... to minimize unconditional jumps").
//! * [`tree`] — minimum-expected-cost dispatch synthesis for heuristic
//!   Set IV: a dynamic-programming comparison-tree planner and a
//!   jump-table planner over profiled range partitions, scored under a
//!   VM-measured cost model.
//!
//! [`optimize`] runs the standard pre-reordering pipeline on a module;
//! [`cleanup`] runs the post-reordering pipeline (DCE, chaining,
//! repositioning), as the paper does after applying the transformation.

pub mod algebra;
pub mod chain;
pub mod copyprop;
pub mod cse;
pub mod dce;
pub mod fold;
pub mod layout;
pub mod licm;
pub mod liveness;
pub mod merge;
pub mod regalloc;
pub mod tree;

use br_ir::{Function, Module};

/// Run the full conventional-optimization pipeline on every function, then
/// lay the code out. Idempotent in practice; cheap enough to re-run.
pub fn optimize(module: &mut Module) {
    for f in &mut module.functions {
        optimize_function(f);
    }
}

/// The per-function pre-reordering pipeline.
pub fn optimize_function(f: &mut Function) {
    // To a fixed point of the cheap scalar/CFG passes (they enable each
    // other), then one layout pass at the end.
    for _ in 0..4 {
        let mut changed = false;
        changed |= fold::fold_constants(f);
        changed |= algebra::simplify_algebra(f);
        changed |= copyprop::propagate_copies(f);
        changed |= cse::eliminate_common_subexpressions(f);
        changed |= dce::eliminate_dead_code(f);
        changed |= chain::chain_branches(f);
        changed |= merge::merge_blocks(f);
        changed |= dce::remove_unreachable_blocks(f);
        changed |= licm::hoist_loop_invariants(f);
        if !changed {
            break;
        }
    }
    layout::reposition(f);
}

/// The post-reordering clean-up pipeline the paper re-invokes: dead code
/// elimination, branch chaining, and code repositioning.
pub fn cleanup(module: &mut Module) {
    for f in &mut module.functions {
        cleanup_function(f);
    }
}

/// [`cleanup`] without the final repositioning: the scalar/CFG clean-up
/// passes run, but blocks stay in whatever order the transformation left
/// them. This is the `--layout off` ablation baseline — it isolates how
/// much of the end-to-end win comes from layout rather than reordering.
pub fn cleanup_keep_order(module: &mut Module) {
    for f in &mut module.functions {
        cleanup_function_keep_order(f);
    }
}

/// Per-function post-reordering clean-up.
///
/// Deliberately excludes [`copyprop`]/[`fold`] rewrites of compares so the
/// reordered compare/branch structure (including deliberately shared
/// compares from redundant-comparison elimination) is preserved.
pub fn cleanup_function(f: &mut Function) {
    cleanup_function_keep_order(f);
    layout::reposition(f);
}

/// Per-function clean-up without repositioning (see [`cleanup_keep_order`]).
pub fn cleanup_function_keep_order(f: &mut Function) {
    for _ in 0..4 {
        let mut changed = false;
        changed |= dce::eliminate_dead_code(f);
        changed |= chain::chain_branches(f);
        changed |= merge::merge_blocks(f);
        changed |= dce::remove_unreachable_blocks(f);
        if !changed {
            break;
        }
    }
}
