//! Local common-subexpression elimination.

use std::collections::HashMap;

use br_ir::{BinOp, Function, Inst, Operand, Reg, UnOp};

/// An available pure computation.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum Expr {
    Bin(BinOp, Operand, Operand),
    Un(UnOp, Operand),
}

/// Within each block, reuse the result of an identical earlier pure ALU
/// computation instead of recomputing it. Loads are not considered (a
/// store or call could change memory between them). Returns whether
/// anything changed.
pub fn eliminate_common_subexpressions(f: &mut Function) -> bool {
    let mut changed = false;
    for block in &mut f.blocks {
        // expr -> register holding its value.
        let mut available: HashMap<Expr, Reg> = HashMap::new();
        for inst in &mut block.insts {
            let expr = match inst {
                Inst::Bin { op, lhs, rhs, .. } => {
                    // Canonicalize commutative operands for more hits.
                    let (a, b) = (*lhs, *rhs);
                    let (a, b) = if commutative(*op) && operand_key(b) < operand_key(a) {
                        (b, a)
                    } else {
                        (a, b)
                    };
                    Some(Expr::Bin(*op, a, b))
                }
                Inst::Un { op, src, .. } => Some(Expr::Un(*op, *src)),
                _ => None,
            };
            // Replace a recomputation before invalidating anything (the
            // expression reads the *old* operand values).
            let mut hit = false;
            if let (Some(expr), Some(dst)) = (&expr, inst.def()) {
                if let Some(&prev) = available.get(expr) {
                    hit = true;
                    if prev != dst {
                        *inst = Inst::Copy {
                            dst,
                            src: Operand::Reg(prev),
                        };
                        changed = true;
                    }
                }
            }
            // Any redefinition invalidates expressions mentioning the
            // register (including the table entries holding it).
            if let Some(d) = inst.def() {
                available.retain(|e, holder| {
                    *holder != d
                        && match e {
                            Expr::Bin(_, a, b) => a.reg() != Some(d) && b.reg() != Some(d),
                            Expr::Un(_, a) => a.reg() != Some(d),
                        }
                });
                // Record the fresh value — unless the expression reads
                // its own destination (`x = x + 3`), which no later
                // instruction can reproduce.
                if let (Some(expr), false) = (expr, hit) {
                    let self_ref = match expr {
                        Expr::Bin(_, a, b) => a.reg() == Some(d) || b.reg() == Some(d),
                        Expr::Un(_, a) => a.reg() == Some(d),
                    };
                    if !self_ref {
                        available.insert(expr, d);
                    }
                }
            }
        }
    }
    changed
}

fn commutative(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor
    )
}

/// A total order over operands for canonicalization.
fn operand_key(op: Operand) -> (u8, i64) {
    match op {
        Operand::Reg(r) => (0, r.0 as i64),
        Operand::Imm(i) => (1, i),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_ir::{FuncBuilder, Terminator};

    #[test]
    fn reuses_identical_computation() {
        let mut b = FuncBuilder::new("f");
        let x = b.new_reg();
        let y = b.new_reg();
        let z = b.new_reg();
        let s = b.new_reg();
        b.set_param_regs(vec![x]);
        let e = b.entry();
        b.bin(e, BinOp::Add, y, x, 3i64);
        b.bin(e, BinOp::Add, z, x, 3i64); // identical
        b.bin(e, BinOp::Add, s, y, z);
        b.set_term(e, Terminator::Return(Some(Operand::Reg(s))));
        let mut f = b.finish();
        assert!(eliminate_common_subexpressions(&mut f));
        assert_eq!(
            f.blocks[0].insts[1],
            Inst::Copy {
                dst: z,
                src: Operand::Reg(y)
            }
        );
    }

    #[test]
    fn commutative_operands_canonicalize() {
        let mut b = FuncBuilder::new("f");
        let x = b.new_reg();
        let w = b.new_reg();
        let y = b.new_reg();
        let z = b.new_reg();
        b.set_param_regs(vec![x, w]);
        let e = b.entry();
        b.bin(e, BinOp::Mul, y, x, w);
        b.bin(e, BinOp::Mul, z, w, x); // same product, swapped
        b.store(e, 0i64, 0i64, y);
        b.store(e, 0i64, 1i64, z);
        b.set_term(e, Terminator::Return(None));
        let mut f = b.finish();
        assert!(eliminate_common_subexpressions(&mut f));
        assert!(matches!(f.blocks[0].insts[1], Inst::Copy { .. }));
    }

    #[test]
    fn non_commutative_swapped_operands_differ() {
        let mut b = FuncBuilder::new("f");
        let x = b.new_reg();
        let w = b.new_reg();
        let y = b.new_reg();
        let z = b.new_reg();
        b.set_param_regs(vec![x, w]);
        let e = b.entry();
        b.bin(e, BinOp::Sub, y, x, w);
        b.bin(e, BinOp::Sub, z, w, x); // NOT the same
        b.store(e, 0i64, 0i64, y);
        b.store(e, 0i64, 1i64, z);
        b.set_term(e, Terminator::Return(None));
        let mut f = b.finish();
        assert!(!eliminate_common_subexpressions(&mut f));
    }

    #[test]
    fn redefinition_invalidates() {
        let mut b = FuncBuilder::new("f");
        let x = b.new_reg();
        let y = b.new_reg();
        let z = b.new_reg();
        b.set_param_regs(vec![x]);
        let e = b.entry();
        b.bin(e, BinOp::Add, y, x, 1i64);
        b.bin(e, BinOp::Add, x, x, 5i64); // x changes
        b.bin(e, BinOp::Add, z, x, 1i64); // must NOT reuse y
        b.store(e, 0i64, 0i64, y);
        b.store(e, 0i64, 1i64, z);
        b.set_term(e, Terminator::Return(None));
        let mut f = b.finish();
        eliminate_common_subexpressions(&mut f);
        assert!(matches!(f.blocks[0].insts[2], Inst::Bin { .. }));
    }

    #[test]
    fn holder_redefinition_invalidates() {
        let mut b = FuncBuilder::new("f");
        let x = b.new_reg();
        let y = b.new_reg();
        let z = b.new_reg();
        b.set_param_regs(vec![x]);
        let e = b.entry();
        b.bin(e, BinOp::Add, y, x, 1i64); // y = x+1
        b.copy(e, y, 0i64); // y clobbered
        b.bin(e, BinOp::Add, z, x, 1i64); // must recompute
        b.store(e, 0i64, 0i64, y);
        b.store(e, 0i64, 1i64, z);
        b.set_term(e, Terminator::Return(None));
        let mut f = b.finish();
        eliminate_common_subexpressions(&mut f);
        assert!(matches!(f.blocks[0].insts[2], Inst::Bin { .. }));
    }
}
