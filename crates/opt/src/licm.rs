//! Loop-invariant code motion (conservative, non-SSA-safe).
//!
//! Hoists an instruction out of a natural loop into a fresh preheader
//! when *all* of the following hold — conditions chosen so the move is
//! sound even though the IR is not SSA:
//!
//! * the instruction is pure and cannot trap (no loads: a store or call
//!   elsewhere in the loop could change what they read);
//! * every register it reads has **no definition anywhere in the loop**;
//! * its destination register is defined **exactly once in the whole
//!   function** (hoisting cannot interleave with another definition);
//! * every use of the destination is inside the loop (executing the
//!   instruction when the loop runs zero times only writes a register
//!   nobody else reads).

use std::collections::{HashMap, HashSet};

use br_ir::dom::{natural_loops, Dominators};
use br_ir::{predecessors, Block, BlockId, Function, Inst, Reg, Terminator};

/// Hoist loop-invariant instructions. Returns whether anything changed.
pub fn hoist_loop_invariants(f: &mut Function) -> bool {
    let doms = Dominators::compute(f);
    let loops = natural_loops(f, &doms);
    if loops.is_empty() {
        return false;
    }
    // Definition counts per register, and use-site blocks per register,
    // over the whole function.
    let mut def_count: HashMap<Reg, usize> = HashMap::new();
    let mut use_blocks: HashMap<Reg, HashSet<BlockId>> = HashMap::new();
    for b in f.block_ids() {
        let block = f.block(b);
        for inst in &block.insts {
            if let Some(d) = inst.def() {
                *def_count.entry(d).or_default() += 1;
            }
            for u in inst.uses() {
                use_blocks.entry(u).or_default().insert(b);
            }
        }
        for u in block.term.uses() {
            use_blocks.entry(u).or_default().insert(b);
        }
    }

    let mut changed = false;
    // Innermost-last ordering is not tracked; process each loop
    // independently (a second pass of the optimizer pipeline catches
    // anything newly exposed).
    for lp in &loops {
        // Registers defined anywhere in the loop.
        let mut defined_in_loop: HashSet<Reg> = HashSet::new();
        for &b in &lp.blocks {
            for inst in &f.block(b).insts {
                if let Some(d) = inst.def() {
                    defined_in_loop.insert(d);
                }
            }
        }
        // Collect hoistable instructions.
        let mut hoisted: Vec<Inst> = Vec::new();
        for &b in &lp.blocks {
            let block = f.block_mut(b);
            let mut kept = Vec::with_capacity(block.insts.len());
            for inst in block.insts.drain(..) {
                let hoistable = is_hoistable(&inst, lp, &defined_in_loop, &def_count, &use_blocks);
                if hoistable {
                    hoisted.push(inst);
                } else {
                    kept.push(inst);
                }
            }
            block.insts = kept;
        }
        if hoisted.is_empty() {
            continue;
        }
        changed = true;
        // Build a preheader: a fresh block holding the hoisted code,
        // jumping to the header; all non-back-edge predecessors are
        // redirected to it.
        let header = lp.header;
        let preheader = f.add_block(Block {
            insts: hoisted,
            term: Terminator::Jump(header),
        });
        let preds = predecessors(f);
        for &p in &preds[header.index()] {
            if p == preheader || lp.contains(p) {
                continue; // back edges stay on the header
            }
            f.block_mut(p)
                .term
                .map_successors(|s| if s == header { preheader } else { s });
        }
        if f.entry == header {
            f.entry = preheader;
        }
    }
    changed
}

fn is_hoistable(
    inst: &Inst,
    lp: &br_ir::dom::NaturalLoop,
    defined_in_loop: &HashSet<Reg>,
    def_count: &HashMap<Reg, usize>,
    use_blocks: &HashMap<Reg, HashSet<BlockId>>,
) -> bool {
    // Pure, non-trapping, non-memory.
    let pure = matches!(
        inst,
        Inst::Copy { .. } | Inst::Bin { .. } | Inst::Un { .. } | Inst::FrameAddr { .. }
    );
    if !pure || inst.may_trap() || inst.has_side_effect() {
        return false;
    }
    let Some(dst) = inst.def() else { return false };
    if def_count.get(&dst).copied().unwrap_or(0) != 1 {
        return false;
    }
    // Operands must not be defined in the loop (the single def of `dst`
    // is this instruction, so a self-reference also fails here).
    if inst.uses().iter().any(|u| defined_in_loop.contains(u)) {
        return false;
    }
    // All uses of dst stay inside the loop.
    match use_blocks.get(&dst) {
        None => true, // dead; DCE will remove it, hoisting is harmless
        Some(blocks) => blocks.iter().all(|b| lp.contains(*b)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_ir::{BinOp, Cond, FuncBuilder, Operand};
    use br_vm::{run, VmOptions};

    /// while (i < n) { t = k * 8; s += t; i += 1 }  — t is invariant.
    fn invariant_loop() -> (br_ir::Module, Reg) {
        let mut b = FuncBuilder::new("main");
        let i = b.new_reg();
        let n = b.new_reg();
        let k = b.new_reg();
        let t = b.new_reg();
        let s = b.new_reg();
        let e = b.entry();
        let head = b.new_block();
        let body = b.new_block();
        let done = b.new_block();
        b.copy(e, i, 0i64);
        b.copy(e, n, 100i64);
        b.copy(e, k, 7i64);
        b.copy(e, s, 0i64);
        b.set_term(e, Terminator::Jump(head));
        b.cmp_branch(head, i, n, Cond::Ge, done, body);
        b.bin(body, BinOp::Mul, t, k, 8i64); // invariant
        b.bin(body, BinOp::Add, s, s, t);
        b.bin(body, BinOp::Add, i, i, 1i64);
        b.set_term(body, Terminator::Jump(head));
        b.set_term(done, Terminator::Return(Some(Operand::Reg(s))));
        let mut m = br_ir::Module::new();
        m.main = Some(m.add_function(b.finish()));
        (m, t)
    }

    #[test]
    fn hoists_invariant_multiply() {
        let (mut m, t) = invariant_loop();
        let before = run(&m, b"", &VmOptions::default()).unwrap();
        assert!(hoist_loop_invariants(&mut m.functions[0]));
        br_ir::verify_function(&m.functions[0], None).unwrap();
        let after = run(&m, b"", &VmOptions::default()).unwrap();
        assert_eq!(before.exit, after.exit);
        assert!(
            after.stats.insts < before.stats.insts,
            "hoisting must reduce dynamic work: {} -> {}",
            before.stats.insts,
            after.stats.insts
        );
        // The multiply now executes once, not 100 times.
        let muls_in_loop: usize = m.functions[0]
            .blocks
            .iter()
            .take(4) // original blocks
            .map(|b| b.insts.iter().filter(|i| i.def() == Some(t)).count())
            .sum();
        assert_eq!(muls_in_loop, 0, "multiply must have left the loop body");
    }

    #[test]
    fn variant_operands_stay_put() {
        // t = i * 8 depends on the induction variable: not hoistable.
        let mut b = FuncBuilder::new("main");
        let i = b.new_reg();
        let t = b.new_reg();
        let s = b.new_reg();
        let e = b.entry();
        let head = b.new_block();
        let body = b.new_block();
        let done = b.new_block();
        b.copy(e, i, 0i64);
        b.copy(e, s, 0i64);
        b.set_term(e, Terminator::Jump(head));
        b.cmp_branch(head, i, 10i64, Cond::Ge, done, body);
        b.bin(body, BinOp::Mul, t, i, 8i64);
        b.bin(body, BinOp::Add, s, s, t);
        b.bin(body, BinOp::Add, i, i, 1i64);
        b.set_term(body, Terminator::Jump(head));
        b.set_term(done, Terminator::Return(Some(Operand::Reg(s))));
        let mut f = b.finish();
        assert!(!hoist_loop_invariants(&mut f));
    }

    #[test]
    fn division_is_never_hoisted() {
        // q = 100 / n is invariant but may trap (n could be 0 and the
        // loop may never run with n == 0 guarding it).
        let mut b = FuncBuilder::new("main");
        let i = b.new_reg();
        let n = b.new_reg();
        let q = b.new_reg();
        let s = b.new_reg();
        b.set_param_regs(vec![n]);
        let e = b.entry();
        let head = b.new_block();
        let body = b.new_block();
        let done = b.new_block();
        b.copy(e, i, 0i64);
        b.copy(e, s, 0i64);
        b.set_term(e, Terminator::Jump(head));
        b.cmp_branch(head, i, n, Cond::Ge, done, body);
        b.bin(body, BinOp::Div, q, 100i64, n);
        b.bin(body, BinOp::Add, s, s, q);
        b.bin(body, BinOp::Add, i, i, 1i64);
        b.set_term(body, Terminator::Jump(head));
        b.set_term(done, Terminator::Return(Some(Operand::Reg(s))));
        let mut f = b.finish();
        assert!(!hoist_loop_invariants(&mut f));
    }

    #[test]
    fn uses_outside_the_loop_block_hoisting() {
        // t = k * 8 is invariant but read after the loop: with the
        // loop possibly running zero times, hoisting would change the
        // observed value (non-SSA safety rule).
        let mut b = FuncBuilder::new("main");
        let i = b.new_reg();
        let k = b.new_reg();
        let t = b.new_reg();
        b.set_param_regs(vec![k]);
        let e = b.entry();
        let head = b.new_block();
        let body = b.new_block();
        let done = b.new_block();
        b.copy(e, i, 0i64);
        b.copy(e, t, -1i64);
        b.set_term(e, Terminator::Jump(head));
        b.cmp_branch(head, i, k, Cond::Ge, done, body);
        b.bin(body, BinOp::Mul, t, k, 8i64);
        b.bin(body, BinOp::Add, i, i, 1i64);
        b.set_term(body, Terminator::Jump(head));
        b.set_term(done, Terminator::Return(Some(Operand::Reg(t))));
        let mut f = b.finish();
        // t has TWO defs (init + loop), so the def-count rule also
        // rejects it; this test pins the behaviour.
        assert!(!hoist_loop_invariants(&mut f));
    }

    #[test]
    fn entry_header_loops_get_a_preheader() {
        // A loop whose header IS the entry block.
        let mut b = FuncBuilder::new("main");
        let i = b.new_reg();
        let t = b.new_reg();
        let e = b.entry();
        let done = b.new_block();
        b.bin(e, BinOp::Mul, t, 21i64, 2i64);
        b.bin(e, BinOp::Add, i, i, t);
        b.cmp(e, i, 420i64);
        b.set_term(e, Terminator::branch(Cond::Lt, e, done));
        b.set_term(done, Terminator::Return(Some(Operand::Reg(i))));
        let mut m = br_ir::Module::new();
        m.main = Some(m.add_function(b.finish()));
        let before = run(&m, b"", &VmOptions::default()).unwrap();
        let changed = hoist_loop_invariants(&mut m.functions[0]);
        br_ir::verify_function(&m.functions[0], None).unwrap();
        let after = run(&m, b"", &VmOptions::default()).unwrap();
        assert_eq!(before.exit, after.exit);
        assert!(changed);
        assert_ne!(m.functions[0].entry, BlockId(0), "entry moved to preheader");
    }
}
