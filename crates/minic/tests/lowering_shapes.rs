//! Structural checks on lowered IR: each switch-translation strategy
//! must produce its characteristic control-flow shape, since the whole
//! evaluation hinges on these shapes (indirect jumps are opaque to the
//! reorderer; linear chains are its feed).

use br_ir::{Inst, Module, Terminator};
use br_minic::{compile, HeuristicSet, Options};

fn dense_switch(n: usize) -> String {
    let mut arms = String::new();
    for i in 0..n {
        arms.push_str(&format!("case {i}: x += {}; break;\n", i + 1));
    }
    format!(
        "int main() {{ int c; int x; x = 0; c = getchar(); \
         while (c != -1) {{ switch (c) {{ {arms} }} c = getchar(); }} \
         return x; }}"
    )
}

fn sparse_switch(n: usize) -> String {
    let mut arms = String::new();
    for i in 0..n {
        arms.push_str(&format!("case {}: x += {}; break;\n", i * 50, i + 1));
    }
    format!(
        "int main() {{ int c; int x; x = 0; c = getchar(); \
         while (c != -1) {{ switch (c) {{ {arms} }} c = getchar(); }} \
         return x; }}"
    )
}

fn count_indirect_jumps(m: &Module) -> usize {
    m.functions
        .iter()
        .flat_map(|f| &f.blocks)
        .filter(|b| matches!(b.term, Terminator::IndirectJump { .. }))
        .count()
}

fn count_cond_branches(m: &Module) -> usize {
    m.functions
        .iter()
        .flat_map(|f| &f.blocks)
        .filter(|b| matches!(b.term, Terminator::Branch { .. }))
        .count()
}

#[test]
fn dense_switch_shapes_per_set() {
    let src = dense_switch(10); // n=10, span 10 <= 30
    let set1 = compile(&src, &Options::with_heuristics(HeuristicSet::SET_I)).unwrap();
    let set2 = compile(&src, &Options::with_heuristics(HeuristicSet::SET_II)).unwrap();
    let set3 = compile(&src, &Options::with_heuristics(HeuristicSet::SET_III)).unwrap();
    assert_eq!(count_indirect_jumps(&set1), 1, "Set I: indirect jump");
    assert_eq!(count_indirect_jumps(&set2), 0, "Set II: n < 16");
    assert_eq!(count_indirect_jumps(&set3), 0, "Set III: never");
    // Binary search (Set II) uses far fewer branches than linear (III)
    // on the hot path but similar statically; linear emits exactly n
    // equality branches for the dispatch.
    assert!(count_cond_branches(&set3) > count_cond_branches(&set1));
}

#[test]
fn sparse_switch_uses_binary_search_shape() {
    // n=10 sparse: Sets I/II use a binary search: some block must have a
    // conditional branch whose block carries no compare (the shared-cc
    // direction branch of a tree node).
    let src = sparse_switch(10);
    for h in [HeuristicSet::SET_I, HeuristicSet::SET_II] {
        let m = compile(&src, &Options::with_heuristics(h)).unwrap();
        assert_eq!(count_indirect_jumps(&m), 0, "{}", h.name);
        let has_shared_cc_branch = m.functions.iter().flat_map(|f| &f.blocks).any(|b| {
            matches!(b.term, Terminator::Branch { .. })
                && !b.insts.iter().any(|i| matches!(i, Inst::Cmp { .. }))
        });
        assert!(
            has_shared_cc_branch,
            "set {}: binary search nodes share one cmp across two branches",
            h.name
        );
    }
}

#[test]
fn indirect_jump_tables_have_bounds_checks() {
    let src = dense_switch(8);
    let m = compile(&src, &Options::with_heuristics(HeuristicSet::SET_I)).unwrap();
    // The dispatch block chain: two compare/branch blocks (min/max
    // bounds) leading to the indirect jump.
    let f = &m.functions[0];
    let (ijmp_block, _) = f
        .blocks
        .iter()
        .enumerate()
        .find(|(_, b)| matches!(b.term, Terminator::IndirectJump { .. }))
        .expect("has an indirect jump");
    // The table covers the full span.
    let Terminator::IndirectJump { targets, .. } = &f.blocks[ijmp_block].term else {
        unreachable!()
    };
    assert_eq!(targets.len(), 8);
    // A subtraction normalizes the scrutinee before the jump.
    assert!(f.blocks[ijmp_block].insts.iter().any(|i| matches!(
        i,
        Inst::Bin {
            op: br_ir::BinOp::Sub,
            ..
        }
    )));
}

#[test]
fn linear_switch_is_a_reorderable_sequence() {
    // The whole point: Set III's linear translation is detected by the
    // reorderer as one sequence with n conditions.
    let src = dense_switch(9);
    let mut m = compile(&src, &Options::with_heuristics(HeuristicSet::SET_III)).unwrap();
    br_opt::optimize(&mut m);
    let detections = br_reorder::profile::detect_all(&m);
    let max_conds = detections
        .iter()
        .map(|(_, s)| s.conds.len())
        .max()
        .unwrap_or(0);
    assert!(
        max_conds >= 9,
        "expected the 9-case dispatch (plus the EOF check) in one sequence, got {max_conds}"
    );
}

#[test]
fn scalar_locals_live_in_registers_not_memory() {
    // No loads/stores for scalar locals: the sequence variable must be a
    // stable register (the shape detection requires).
    let src = "int main() { int a; int b; a = 1; b = a + 2; return a * b; }";
    let m = compile(src, &Options::default()).unwrap();
    let f = &m.functions[0];
    let memory_ops = f
        .blocks
        .iter()
        .flat_map(|b| &b.insts)
        .filter(|i| matches!(i, Inst::Load { .. } | Inst::Store { .. }))
        .count();
    assert_eq!(memory_ops, 0);
}

#[test]
fn global_scalars_live_in_memory() {
    let src = "int g; int main() { g = 5; return g; }";
    let m = compile(src, &Options::default()).unwrap();
    let f = &m.functions[0];
    let stores = f
        .blocks
        .iter()
        .flat_map(|b| &b.insts)
        .filter(|i| matches!(i, Inst::Store { .. }))
        .count();
    let loads = f
        .blocks
        .iter()
        .flat_map(|b| &b.insts)
        .filter(|i| matches!(i, Inst::Load { .. }))
        .count();
    assert_eq!(stores, 1);
    assert_eq!(loads, 1);
}
