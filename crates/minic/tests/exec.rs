//! End-to-end front-end tests: compile mini-C, verify the IR, run it in
//! the VM (optimized and unoptimized), and check observable behaviour.

use br_minic::{compile, HeuristicSet, Options};
use br_vm::{run, VmOptions};

/// Compile, verify, run unoptimized AND optimized; assert both agree and
/// return (exit, output) of the optimized run.
fn exec_with(src: &str, input: &[u8], options: &Options) -> (i64, Vec<u8>) {
    let module = compile(src, options).expect("compiles");
    br_ir::verify_module(&module).expect("verifies after lowering");
    let raw = run(&module, input, &VmOptions::default()).expect("runs unoptimized");

    let mut optimized = module.clone();
    br_opt::optimize(&mut optimized);
    br_ir::verify_module(&optimized).expect("verifies after optimization");
    let opt = run(&optimized, input, &VmOptions::default()).expect("runs optimized");

    assert_eq!(raw.exit, opt.exit, "optimization changed the exit value");
    assert_eq!(raw.output, opt.output, "optimization changed the output");
    assert!(
        opt.stats.insts <= raw.stats.insts,
        "optimization made the program slower: {} -> {}",
        raw.stats.insts,
        opt.stats.insts
    );
    (opt.exit, opt.output)
}

fn exec(src: &str, input: &[u8]) -> (i64, Vec<u8>) {
    exec_with(src, input, &Options::default())
}

#[test]
fn arithmetic_and_precedence() {
    let (exit, _) = exec("int main() { return 2 + 3 * 4 - 20 / 4 % 3; }", b"");
    assert_eq!(exit, 2 + 3 * 4 - 20 / 4 % 3);
}

#[test]
fn division_truncates_toward_zero() {
    assert_eq!(exec("int main() { return -7 / 2; }", b"").0, -3);
    assert_eq!(exec("int main() { return -7 % 2; }", b"").0, -1);
}

#[test]
fn bitwise_and_shifts() {
    assert_eq!(
        exec("int main() { return (12 & 10) | (1 << 4) ^ 3; }", b"").0,
        (12 & 10) | (1 << 4) ^ 3
    );
    assert_eq!(exec("int main() { return ~5; }", b"").0, !5);
    assert_eq!(exec("int main() { return 256 >> 3; }", b"").0, 32);
}

#[test]
fn comparison_values_are_zero_one() {
    assert_eq!(
        exec("int main() { return (3 < 5) + (5 < 3) * 10; }", b"").0,
        1
    );
    assert_eq!(exec("int main() { return (4 == 4) + (4 != 4); }", b"").0, 1);
}

#[test]
fn logical_ops_short_circuit() {
    // Short-circuit must skip the side effect.
    let (exit, out) = exec(
        "int main() { int x; x = 0; (0 && (x = putchar('A'))); (1 || (x = putchar('B'))); return x; }",
        b"",
    );
    assert_eq!(exit, 0);
    assert_eq!(out, b"");
    let (exit, out) = exec(
        "int main() { int x; x = (1 && (putchar('C') == 'C')); return x; }",
        b"",
    );
    assert_eq!(exit, 1);
    assert_eq!(out, b"C");
}

#[test]
fn logical_not() {
    assert_eq!(exec("int main() { return !0 + !7 * 10 + !!9; }", b"").0, 2);
}

#[test]
fn ternary_expression() {
    assert_eq!(
        exec("int main() { int a; a = 7; return a > 5 ? a : -a; }", b"").0,
        7
    );
    assert_eq!(
        exec("int main() { int a; a = 3; return a > 5 ? a : -a; }", b"").0,
        -3
    );
}

#[test]
fn compound_assignment() {
    let (exit, _) = exec(
        "int main() { int a; a = 10; a += 5; a -= 3; a *= 2; a /= 4; a %= 4; return a; }",
        b"",
    );
    assert_eq!(exit, 2);
}

#[test]
fn while_and_do_while() {
    assert_eq!(
        exec(
            "int main() { int i; int s; i=0; s=0; while (i<5) { s += i; i += 1; } return s; }",
            b""
        )
        .0,
        10
    );
    assert_eq!(
        exec(
            "int main() { int i; i=9; do { i += 1; } while (i < 5); return i; }",
            b""
        )
        .0,
        10,
        "do-while body runs at least once"
    );
}

#[test]
fn for_loop_with_break_continue() {
    let (exit, _) = exec(
        "int main() { int i; int s; s = 0; \
         for (i = 0; i < 100; i += 1) { \
           if (i % 2 == 0) continue; \
           if (i > 10) break; \
           s += i; } \
         return s; }",
        b"",
    );
    assert_eq!(exit, 1 + 3 + 5 + 7 + 9);
}

#[test]
fn nested_loops_and_scoped_shadowing() {
    let (exit, _) = exec(
        "int main() { int i; int j; int s; s = 0; \
         for (i = 0; i < 3; i += 1) { \
           for (j = 0; j < 3; j += 1) { \
             int k; k = i * 3 + j; s += k; } } \
         { int s2; s2 = 100; } \
         return s; }",
        b"",
    );
    assert_eq!(exit, (0..9).sum::<i64>());
}

#[test]
fn global_scalars_and_arrays() {
    let (exit, _) = exec(
        "int counter = 5; int table[10]; \
         int bump(int by) { counter += by; return counter; } \
         int main() { int i; \
           for (i = 0; i < 10; i += 1) table[i] = i * i; \
           bump(2); bump(3); \
           return table[7] + counter; }",
        b"",
    );
    assert_eq!(exit, 49 + 10);
}

#[test]
fn local_arrays_are_per_activation() {
    let (exit, _) = exec(
        "int f(int n) { int buf[4]; buf[0] = n; if (n > 0) f(n - 1); return buf[0]; } \
         int main() { return f(3); }",
        b"",
    );
    assert_eq!(exit, 3, "recursive activations must not share frames");
}

#[test]
fn recursion_fibonacci() {
    let (exit, _) = exec(
        "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); } \
         int main() { return fib(12); }",
        b"",
    );
    assert_eq!(exit, 144);
}

#[test]
fn io_echo_upper() {
    let (_, out) = exec(
        "int main() { int c; \
           c = getchar(); \
           while (c != -1) { \
             if (c >= 'a' && c <= 'z') putchar(c - 32); else putchar(c); \
             c = getchar(); } \
           return 0; }",
        b"Hello, World!\n",
    );
    assert_eq!(out, b"HELLO, WORLD!\n");
}

#[test]
fn putint_format() {
    let (_, out) = exec(
        "int main() { putint(-42); putint(0); putint(7); return 0; }",
        b"",
    );
    assert_eq!(out, b"-42\n0\n7\n");
}

#[test]
fn if_else_chain() {
    let src = "int classify(int c) { \
         if (c == ' ') return 1; \
         else if (c == '\\n') return 2; \
         else if (c == '\\t') return 3; \
         else if (c == -1) return 4; \
         else return 5; } \
       int main() { return classify(10) * 10 + classify('x'); }";
    assert_eq!(exec(src, b"").0, 25);
}

fn switch_program() -> &'static str {
    // 5 dense cases: Set I turns this into an indirect jump, Set II into a
    // linear search (n < 16, n < 8), Set III linear.
    "int main() { int c; int total; total = 0; \
       c = getchar(); \
       while (c != -1) { \
         switch (c) { \
           case 'a': total += 1; break; \
           case 'b': total += 2; break; \
           case 'c': total += 3; \
           case 'd': total += 4; break; \
           case 'e': total += 5; break; \
           default: total += 100; \
         } \
         c = getchar(); } \
       return total; }"
}

/// a=1 b=2 c=3(+4 fall-through)=7 d=4 e=5 other=100.
fn switch_expected(input: &[u8]) -> i64 {
    input
        .iter()
        .map(|c| match c {
            b'a' => 1,
            b'b' => 2,
            b'c' => 7,
            b'd' => 4,
            b'e' => 5,
            _ => 100,
        })
        .sum()
}

#[test]
fn switch_same_semantics_under_all_heuristic_sets() {
    let input = b"abcdeabcxyz!";
    let expected = switch_expected(input);
    for h in HeuristicSet::ALL {
        let (exit, _) = exec_with(switch_program(), input, &Options::with_heuristics(h));
        assert_eq!(
            exit, expected,
            "heuristic set {} broke switch semantics",
            h.name
        );
    }
}

#[test]
fn switch_without_default_falls_to_end() {
    let (exit, _) = exec(
        "int main() { int x; x = 9; switch (x) { case 1: return 100; case 2: return 200; } return x; }",
        b"",
    );
    assert_eq!(exit, 9);
}

#[test]
fn switch_fallthrough_from_default() {
    let (exit, _) = exec(
        "int main() { int x; int t; x = 42; t = 0; \
           switch (x) { case 1: t += 1; default: t += 10; case 2: t += 100; } \
           return t; }",
        b"",
    );
    assert_eq!(exit, 110, "default falls through into case 2's body");
}

#[test]
fn sparse_switch_uses_binary_search_and_works() {
    // 9 sparse cases: Set I/II use a binary search.
    let src = "int main() { int c; int hits; hits = 0; \
         c = getchar(); \
         while (c != -1) { \
           switch (c * 10) { \
             case 10: hits += 1; break; \
             case 50: hits += 2; break; \
             case 90: hits += 3; break; \
             case 130: hits += 4; break; \
             case 170: hits += 5; break; \
             case 210: hits += 6; break; \
             case 250: hits += 7; break; \
             case 290: hits += 8; break; \
             case 330: hits += 9; break; \
           } \
           c = getchar(); } \
         return hits; }";
    let input: Vec<u8> = vec![1, 5, 9, 13, 17, 21, 25, 29, 33, 2, 40];
    let expected: i64 = (1..=9).sum();
    for h in HeuristicSet::ALL {
        let (exit, _) = exec_with(src, &input, &Options::with_heuristics(h));
        assert_eq!(exit, expected, "set {}", h.name);
    }
}

#[test]
fn switch_on_negative_values() {
    let (exit, _) = exec(
        "int main() { int x; x = -3; switch (x) { case -3: return 33; case 0: return 1; } return 0; }",
        b"",
    );
    assert_eq!(exit, 33);
}

#[test]
fn empty_input_programs() {
    assert_eq!(exec("int main() { return getchar(); }", b"").0, -1);
}

#[test]
fn global_initializers_apply() {
    assert_eq!(
        exec("int a = 3; int b = -4; int main() { return a * b; }", b"").0,
        -12
    );
}

#[test]
fn comments_and_char_escapes_compile() {
    let (_, out) = exec(
        "int main() { /* leading */ putchar('\\t'); // trailing\n putchar('\\n'); return 0; }",
        b"",
    );
    assert_eq!(out, b"\t\n");
}

#[test]
fn deep_expression_nesting() {
    assert_eq!(
        exec("int main() { return ((((((1+2)*3)-4)*5)+6)%7); }", b"").0,
        ((((1 + 2) * 3 - 4) * 5) + 6) % 7
    );
}

#[test]
fn abort_intrinsic_traps() {
    let module = compile("int main() { abort(3); return 0; }", &Options::default()).unwrap();
    let err = run(&module, b"", &VmOptions::default()).unwrap_err();
    assert_eq!(err, br_vm::Trap::Abort { code: 3 });
}

#[test]
fn increment_decrement_operators() {
    // Prefix yields the new value, postfix the old.
    let (exit, _) = exec(
        "int main() { int a; int b; int c; a = 5; b = ++a; c = a++; \
         return a * 100 + b * 10 + (c == 6); }",
        b"",
    );
    assert_eq!(exit, 7 * 100 + 6 * 10 + 1);
    let (exit, _) = exec(
        "int main() { int a; int b; a = 5; b = a--; return a * 10 + b; }",
        b"",
    );
    assert_eq!(exit, 4 * 10 + 5);
    let (exit, _) = exec("int main() { int a; a = 5; return --a; }", b"");
    assert_eq!(exit, 4);
}

#[test]
fn increment_on_array_elements() {
    let (exit, _) = exec(
        "int t[4]; int main() { int i; \
         for (i = 0; i < 4; i++) t[i] = i; \
         t[2]++; ++t[3]; \
         return t[0] + t[1] * 10 + t[2] * 100 + t[3] * 1000; }",
        b"",
    );
    assert_eq!(exit, 10 + 300 + 4000);
}

#[test]
fn increment_in_loop_headers() {
    let (exit, _) = exec(
        "int main() { int i; int s; s = 0; for (i = 0; i < 10; i++) s += i; return s; }",
        b"",
    );
    assert_eq!(exit, 45);
    let (exit, _) = exec(
        "int main() { int i; int s; i = 10; s = 0; while (i-- > 0) s += 1; return s * 100 + i; }",
        b"",
    );
    assert_eq!(exit, 10 * 100 - 1);
}

#[test]
fn increment_is_an_invalid_target_for_non_lvalues() {
    let err = compile("int main() { return ++5; }", &Options::default()).unwrap_err();
    assert!(err.message.contains("invalid assignment target"), "{err}");
}
