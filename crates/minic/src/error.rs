//! Compilation errors.

use std::fmt;

use crate::token::Pos;

/// A lexical, syntactic, or semantic error with its source position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CompileError {
    /// Position the error was detected at.
    pub pos: Pos,
    /// Human-readable description.
    pub message: String,
}

impl CompileError {
    /// Construct an error at `pos`.
    pub fn new(pos: Pos, message: impl Into<String>) -> CompileError {
        CompileError {
            pos,
            message: message.into(),
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.pos, self.message)
    }
}

impl std::error::Error for CompileError {}
