//! Semantic analysis: scope resolution and checking.
//!
//! Produces a *resolved* program in which every name reference has become
//! a [`VarRef`]/[`CalleeRef`], so lowering never deals with strings or
//! scopes.

use std::collections::HashMap;

use br_ir::Intrinsic;

use crate::ast::*;
use crate::error::CompileError;
use crate::token::Pos;

/// A resolved variable reference.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VarRef {
    /// Index into [`CheckedProgram::globals`] (scalar).
    GlobalScalar(usize),
    /// Index into [`CheckedProgram::globals`] (array).
    GlobalArray(usize),
    /// Scalar slot within the enclosing function (register-allocated).
    LocalScalar(usize),
    /// Array slot within the enclosing function (frame-allocated).
    LocalArray(usize),
}

/// A resolved call target.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CalleeRef {
    /// Index into [`CheckedProgram::functions`].
    Func(usize),
    /// A runtime built-in.
    Intrinsic(Intrinsic),
}

/// Resolved expressions (shapes mirror [`Expr`]).
#[derive(Clone, Debug, PartialEq)]
pub enum CExpr {
    Int(i64),
    Var(VarRef),
    Index {
        array: VarRef,
        index: Box<CExpr>,
    },
    Call {
        callee: CalleeRef,
        args: Vec<CExpr>,
    },
    Unary {
        op: UnaryOp,
        operand: Box<CExpr>,
    },
    Binary {
        op: BinaryOp,
        lhs: Box<CExpr>,
        rhs: Box<CExpr>,
    },
    Ternary {
        cond: Box<CExpr>,
        then_val: Box<CExpr>,
        else_val: Box<CExpr>,
    },
    Assign {
        op: AssignOp,
        target: CTarget,
        value: Box<CExpr>,
    },
    /// `++x` / `x--` and friends on a checked lvalue.
    IncDec {
        target: CTarget,
        increment: bool,
        prefix: bool,
    },
}

/// A resolved assignment target.
#[derive(Clone, Debug, PartialEq)]
pub enum CTarget {
    Scalar(VarRef),
    Element { array: VarRef, index: Box<CExpr> },
}

/// Resolved statements.
#[derive(Clone, Debug, PartialEq)]
pub enum CStmt {
    Expr(CExpr),
    If {
        cond: CExpr,
        then_branch: Vec<CStmt>,
        else_branch: Vec<CStmt>,
    },
    While {
        cond: CExpr,
        body: Vec<CStmt>,
    },
    DoWhile {
        body: Vec<CStmt>,
        cond: CExpr,
    },
    For {
        init: Option<CExpr>,
        cond: Option<CExpr>,
        step: Option<CExpr>,
        body: Vec<CStmt>,
    },
    Switch {
        scrutinee: CExpr,
        /// `(value, first-arm-index)` pairs, in source order.
        cases: Vec<(i64, usize)>,
        /// Index of the default arm, if any.
        default: Option<usize>,
        /// Arm bodies, in source order (C fall-through applies).
        arm_bodies: Vec<Vec<CStmt>>,
    },
    Break,
    Continue,
    Return(Option<CExpr>),
}

/// A checked function.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckedFunction {
    pub name: String,
    /// Number of parameters (all `int`; they occupy scalar slots `0..n`).
    pub num_params: usize,
    /// Total scalar slots (params + scalar locals).
    pub num_scalars: usize,
    /// Sizes of the function's local arrays, indexed by `LocalArray` slot.
    pub array_sizes: Vec<u32>,
    pub body: Vec<CStmt>,
}

/// A checked global.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckedGlobal {
    pub name: String,
    /// `None` = scalar, `Some(n)` = array of n words.
    pub array_size: Option<u32>,
    /// Scalar initializer (0 if absent).
    pub init: i64,
}

/// A fully resolved program.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckedProgram {
    pub globals: Vec<CheckedGlobal>,
    pub functions: Vec<CheckedFunction>,
    /// Index of `main` in `functions`.
    pub main: usize,
}

/// Check and resolve a parsed program.
///
/// # Errors
///
/// Reports (with positions): duplicate or conflicting definitions, missing
/// or mis-declared `main`, undeclared names, arrays used as scalars and
/// vice versa, unknown callees, call arity mismatches, invalid assignment
/// targets, `break`/`continue` outside loops or switches, and duplicate
/// `case`/`default` labels.
pub fn check(program: &Program) -> Result<CheckedProgram, CompileError> {
    let mut globals = Vec::new();
    let mut global_names: HashMap<String, usize> = HashMap::new();
    for g in &program.globals {
        if intrinsic_named(&g.name).is_some() {
            return Err(CompileError::new(
                g.pos,
                format!("`{}` is a built-in and cannot be redefined", g.name),
            ));
        }
        if global_names.insert(g.name.clone(), globals.len()).is_some() {
            return Err(CompileError::new(
                g.pos,
                format!("duplicate global `{}`", g.name),
            ));
        }
        globals.push(CheckedGlobal {
            name: g.name.clone(),
            array_size: g.array_size,
            init: g.init.unwrap_or(0),
        });
    }
    let mut func_ids: HashMap<String, usize> = HashMap::new();
    for (i, f) in program.functions.iter().enumerate() {
        if intrinsic_named(&f.name).is_some() {
            return Err(CompileError::new(
                f.pos,
                format!("`{}` is a built-in and cannot be redefined", f.name),
            ));
        }
        if global_names.contains_key(&f.name) {
            return Err(CompileError::new(
                f.pos,
                format!("`{}` is already a global variable", f.name),
            ));
        }
        if func_ids.insert(f.name.clone(), i).is_some() {
            return Err(CompileError::new(
                f.pos,
                format!("duplicate function `{}`", f.name),
            ));
        }
    }
    let Some(&main) = func_ids.get("main") else {
        return Err(CompileError::new(
            Pos::default(),
            "program has no `main` function",
        ));
    };
    if !program.functions[main].params.is_empty() {
        return Err(CompileError::new(
            program.functions[main].pos,
            "`main` must take no parameters",
        ));
    }
    let ctx = Context {
        globals: &globals,
        global_names: &global_names,
        func_ids: &func_ids,
        func_arity: program.functions.iter().map(|f| f.params.len()).collect(),
    };
    let functions = program
        .functions
        .iter()
        .map(|f| ctx.check_function(f))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(CheckedProgram {
        globals,
        functions,
        main,
    })
}

fn intrinsic_named(name: &str) -> Option<Intrinsic> {
    match name {
        "getchar" => Some(Intrinsic::GetChar),
        "putchar" => Some(Intrinsic::PutChar),
        "putint" => Some(Intrinsic::PutInt),
        "abort" => Some(Intrinsic::Abort),
        _ => None,
    }
}

struct Context<'p> {
    globals: &'p [CheckedGlobal],
    global_names: &'p HashMap<String, usize>,
    func_ids: &'p HashMap<String, usize>,
    func_arity: Vec<usize>,
}

/// Per-function mutable state: scope stack and slot counters.
struct FuncState {
    /// Innermost scope last; maps name -> resolved ref.
    scopes: Vec<HashMap<String, VarRef>>,
    num_scalars: usize,
    array_sizes: Vec<u32>,
    loop_depth: usize,
    switch_depth: usize,
}

impl FuncState {
    fn lookup(&self, name: &str) -> Option<VarRef> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }
}

impl<'p> Context<'p> {
    fn check_function(&self, f: &FunctionDecl) -> Result<CheckedFunction, CompileError> {
        let mut st = FuncState {
            scopes: vec![HashMap::new()],
            num_scalars: 0,
            array_sizes: Vec::new(),
            loop_depth: 0,
            switch_depth: 0,
        };
        for p in &f.params {
            if st.scopes[0].contains_key(p) {
                return Err(CompileError::new(
                    f.pos,
                    format!("duplicate parameter `{p}` in `{}`", f.name),
                ));
            }
            let slot = st.num_scalars;
            st.num_scalars += 1;
            st.scopes[0].insert(p.clone(), VarRef::LocalScalar(slot));
        }
        let body = self.check_stmts(&f.body, &mut st)?;
        Ok(CheckedFunction {
            name: f.name.clone(),
            num_params: f.params.len(),
            num_scalars: st.num_scalars,
            array_sizes: st.array_sizes,
            body,
        })
    }

    fn check_stmts(&self, stmts: &[Stmt], st: &mut FuncState) -> Result<Vec<CStmt>, CompileError> {
        st.scopes.push(HashMap::new());
        let result = self.check_stmts_in_current_scope(stmts, st);
        st.scopes.pop();
        result
    }

    fn check_stmts_in_current_scope(
        &self,
        stmts: &[Stmt],
        st: &mut FuncState,
    ) -> Result<Vec<CStmt>, CompileError> {
        let mut out = Vec::new();
        for s in stmts {
            match s {
                Stmt::Decl(d) => {
                    let scope = st.scopes.last_mut().expect("scope stack nonempty");
                    if scope.contains_key(&d.name) {
                        return Err(CompileError::new(
                            d.pos,
                            format!("duplicate declaration of `{}` in this scope", d.name),
                        ));
                    }
                    let r = match d.array_size {
                        None => {
                            let slot = st.num_scalars;
                            st.num_scalars += 1;
                            VarRef::LocalScalar(slot)
                        }
                        Some(n) => {
                            st.array_sizes.push(n);
                            VarRef::LocalArray(st.array_sizes.len() - 1)
                        }
                    };
                    st.scopes
                        .last_mut()
                        .expect("scope stack nonempty")
                        .insert(d.name.clone(), r);
                }
                Stmt::Expr(e) => out.push(CStmt::Expr(self.check_expr(e, st)?)),
                Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                    ..
                } => {
                    out.push(CStmt::If {
                        cond: self.check_expr(cond, st)?,
                        then_branch: self.check_stmts(then_branch, st)?,
                        else_branch: self.check_stmts(else_branch, st)?,
                    });
                }
                Stmt::While { cond, body, .. } => {
                    let cond = self.check_expr(cond, st)?;
                    st.loop_depth += 1;
                    let body = self.check_stmts(body, st)?;
                    st.loop_depth -= 1;
                    out.push(CStmt::While { cond, body });
                }
                Stmt::DoWhile { body, cond, .. } => {
                    st.loop_depth += 1;
                    let body = self.check_stmts(body, st)?;
                    st.loop_depth -= 1;
                    let cond = self.check_expr(cond, st)?;
                    out.push(CStmt::DoWhile { body, cond });
                }
                Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                    ..
                } => {
                    let init = init.as_ref().map(|e| self.check_expr(e, st)).transpose()?;
                    let cond = cond.as_ref().map(|e| self.check_expr(e, st)).transpose()?;
                    let step = step.as_ref().map(|e| self.check_expr(e, st)).transpose()?;
                    st.loop_depth += 1;
                    let body = self.check_stmts(body, st)?;
                    st.loop_depth -= 1;
                    out.push(CStmt::For {
                        init,
                        cond,
                        step,
                        body,
                    });
                }
                Stmt::Switch {
                    scrutinee,
                    arms,
                    pos,
                } => {
                    let scrutinee = self.check_expr(scrutinee, st)?;
                    let mut cases = Vec::new();
                    let mut default = None;
                    let mut arm_bodies = Vec::new();
                    st.switch_depth += 1;
                    for (i, arm) in arms.iter().enumerate() {
                        match arm.value {
                            Some(v) => {
                                if cases.iter().any(|&(cv, _)| cv == v) {
                                    st.switch_depth -= 1;
                                    return Err(CompileError::new(
                                        arm.pos,
                                        format!("duplicate case value {v}"),
                                    ));
                                }
                                cases.push((v, i));
                            }
                            None => {
                                if default.is_some() {
                                    st.switch_depth -= 1;
                                    return Err(CompileError::new(
                                        arm.pos,
                                        "multiple `default` labels",
                                    ));
                                }
                                default = Some(i);
                            }
                        }
                        match self.check_stmts(&arm.body, st) {
                            Ok(b) => arm_bodies.push(b),
                            Err(e) => {
                                st.switch_depth -= 1;
                                return Err(e);
                            }
                        }
                    }
                    st.switch_depth -= 1;
                    if arms.is_empty() {
                        return Err(CompileError::new(*pos, "empty switch"));
                    }
                    out.push(CStmt::Switch {
                        scrutinee,
                        cases,
                        default,
                        arm_bodies,
                    });
                }
                Stmt::Break(pos) => {
                    if st.loop_depth == 0 && st.switch_depth == 0 {
                        return Err(CompileError::new(*pos, "`break` outside loop or switch"));
                    }
                    out.push(CStmt::Break);
                }
                Stmt::Continue(pos) => {
                    if st.loop_depth == 0 {
                        return Err(CompileError::new(*pos, "`continue` outside loop"));
                    }
                    out.push(CStmt::Continue);
                }
                Stmt::Return(v, _) => {
                    let v = v.as_ref().map(|e| self.check_expr(e, st)).transpose()?;
                    out.push(CStmt::Return(v));
                }
                Stmt::Block(inner) => {
                    out.extend(self.check_stmts(inner, st)?);
                }
                Stmt::Empty => {}
            }
        }
        Ok(out)
    }

    fn resolve_var(&self, name: &str, pos: Pos, st: &FuncState) -> Result<VarRef, CompileError> {
        if let Some(r) = st.lookup(name) {
            return Ok(r);
        }
        if let Some(&g) = self.global_names.get(name) {
            return Ok(match self.globals[g].array_size {
                None => VarRef::GlobalScalar(g),
                Some(_) => VarRef::GlobalArray(g),
            });
        }
        Err(CompileError::new(
            pos,
            format!("undeclared variable `{name}`"),
        ))
    }

    fn check_expr(&self, e: &Expr, st: &mut FuncState) -> Result<CExpr, CompileError> {
        match e {
            Expr::Int(v, _) => Ok(CExpr::Int(*v)),
            Expr::Var(name, pos) => {
                let r = self.resolve_var(name, *pos, st)?;
                if matches!(r, VarRef::GlobalArray(_) | VarRef::LocalArray(_)) {
                    return Err(CompileError::new(
                        *pos,
                        format!("array `{name}` used as a scalar value"),
                    ));
                }
                Ok(CExpr::Var(r))
            }
            Expr::Index { array, index, pos } => {
                let r = self.resolve_var(array, *pos, st)?;
                if matches!(r, VarRef::GlobalScalar(_) | VarRef::LocalScalar(_)) {
                    return Err(CompileError::new(
                        *pos,
                        format!("`{array}` is not an array"),
                    ));
                }
                Ok(CExpr::Index {
                    array: r,
                    index: Box::new(self.check_expr(index, st)?),
                })
            }
            Expr::Call { callee, args, pos } => {
                let args_checked = args
                    .iter()
                    .map(|a| self.check_expr(a, st))
                    .collect::<Result<Vec<_>, _>>()?;
                if let Some(i) = intrinsic_named(callee) {
                    if args.len() != i.arity() {
                        return Err(CompileError::new(
                            *pos,
                            format!(
                                "`{callee}` takes {} argument(s), got {}",
                                i.arity(),
                                args.len()
                            ),
                        ));
                    }
                    return Ok(CExpr::Call {
                        callee: CalleeRef::Intrinsic(i),
                        args: args_checked,
                    });
                }
                let Some(&fid) = self.func_ids.get(callee) else {
                    return Err(CompileError::new(
                        *pos,
                        format!("call to undeclared function `{callee}`"),
                    ));
                };
                if self.func_arity[fid] != args.len() {
                    return Err(CompileError::new(
                        *pos,
                        format!(
                            "`{callee}` takes {} argument(s), got {}",
                            self.func_arity[fid],
                            args.len()
                        ),
                    ));
                }
                Ok(CExpr::Call {
                    callee: CalleeRef::Func(fid),
                    args: args_checked,
                })
            }
            Expr::Unary { op, operand, .. } => Ok(CExpr::Unary {
                op: *op,
                operand: Box::new(self.check_expr(operand, st)?),
            }),
            Expr::Binary { op, lhs, rhs, .. } => Ok(CExpr::Binary {
                op: *op,
                lhs: Box::new(self.check_expr(lhs, st)?),
                rhs: Box::new(self.check_expr(rhs, st)?),
            }),
            Expr::Ternary {
                cond,
                then_val,
                else_val,
                ..
            } => Ok(CExpr::Ternary {
                cond: Box::new(self.check_expr(cond, st)?),
                then_val: Box::new(self.check_expr(then_val, st)?),
                else_val: Box::new(self.check_expr(else_val, st)?),
            }),
            Expr::IncDec {
                target,
                increment,
                prefix,
                pos,
            } => {
                let target = self.check_target(target, *pos, st)?;
                Ok(CExpr::IncDec {
                    target,
                    increment: *increment,
                    prefix: *prefix,
                })
            }
            Expr::Assign {
                op,
                target,
                value,
                pos,
            } => {
                let target = self.check_target(target, *pos, st)?;
                Ok(CExpr::Assign {
                    op: *op,
                    target,
                    value: Box::new(self.check_expr(value, st)?),
                })
            }
        }
    }

    /// Resolve an assignment/increment target to a checked lvalue.
    fn check_target(
        &self,
        target: &Expr,
        pos: Pos,
        st: &mut FuncState,
    ) -> Result<CTarget, CompileError> {
        match target {
            Expr::Var(name, vpos) => {
                let r = self.resolve_var(name, *vpos, st)?;
                if matches!(r, VarRef::GlobalArray(_) | VarRef::LocalArray(_)) {
                    return Err(CompileError::new(
                        *vpos,
                        format!("cannot assign to array `{name}`"),
                    ));
                }
                Ok(CTarget::Scalar(r))
            }
            Expr::Index {
                array,
                index,
                pos: ipos,
            } => {
                let r = self.resolve_var(array, *ipos, st)?;
                if matches!(r, VarRef::GlobalScalar(_) | VarRef::LocalScalar(_)) {
                    return Err(CompileError::new(
                        *ipos,
                        format!("`{array}` is not an array"),
                    ));
                }
                Ok(CTarget::Element {
                    array: r,
                    index: Box::new(self.check_expr(index, st)?),
                })
            }
            _ => Err(CompileError::new(pos, "invalid assignment target")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn check_src(src: &str) -> Result<CheckedProgram, CompileError> {
        check(&parse(&lex(src).unwrap()).unwrap())
    }

    #[test]
    fn resolves_scopes_with_shadowing() {
        let p = check_src("int g; int main() { int x; x = 1; { int x; x = 2; } return x + g; }")
            .unwrap();
        assert_eq!(p.functions[p.main].num_scalars, 2);
    }

    #[test]
    fn missing_main_is_an_error() {
        let e = check_src("int f() { return 0; }").unwrap_err();
        assert!(e.message.contains("main"));
    }

    #[test]
    fn main_with_params_is_an_error() {
        let e = check_src("int main(int a) { return a; }").unwrap_err();
        assert!(e.message.contains("no parameters"));
    }

    #[test]
    fn undeclared_variable() {
        let e = check_src("int main() { return nope; }").unwrap_err();
        assert!(e.message.contains("undeclared"));
        assert_eq!(e.pos.line, 1);
    }

    #[test]
    fn array_misuse_is_caught_both_ways() {
        assert!(check_src("int a[3]; int main() { return a; }")
            .unwrap_err()
            .message
            .contains("used as a scalar"));
        assert!(check_src("int main() { int x; return x[0]; }")
            .unwrap_err()
            .message
            .contains("not an array"));
        assert!(check_src("int a[3]; int main() { a = 1; return 0; }")
            .unwrap_err()
            .message
            .contains("cannot assign to array"));
    }

    #[test]
    fn call_checks() {
        assert!(check_src("int main() { return f(); }")
            .unwrap_err()
            .message
            .contains("undeclared function"));
        assert!(
            check_src("int f(int a) { return a; } int main() { return f(); }")
                .unwrap_err()
                .message
                .contains("takes 1 argument")
        );
        assert!(check_src("int main() { return getchar(7); }")
            .unwrap_err()
            .message
            .contains("takes 0 argument"));
    }

    #[test]
    fn intrinsics_cannot_be_redefined() {
        assert!(
            check_src("int getchar() { return 0; } int main() { return 0; }")
                .unwrap_err()
                .message
                .contains("built-in")
        );
        assert!(check_src("int putchar; int main() { return 0; }")
            .unwrap_err()
            .message
            .contains("built-in"));
    }

    #[test]
    fn break_continue_placement() {
        assert!(check_src("int main() { break; return 0; }")
            .unwrap_err()
            .message
            .contains("break"));
        assert!(check_src("int main() { continue; return 0; }")
            .unwrap_err()
            .message
            .contains("continue"));
        // break legal in switch; continue is not.
        assert!(check_src("int main() { switch (1) { case 1: break; } return 0; }").is_ok());
        assert!(check_src("int main() { switch (1) { case 1: continue; } return 0; }").is_err());
        // continue legal in a loop containing the switch.
        assert!(check_src(
            "int main() { while (1) { switch (1) { case 1: continue; } } return 0; }"
        )
        .is_ok());
    }

    #[test]
    fn duplicate_cases_rejected() {
        let e = check_src("int main() { switch (1) { case 3: break; case 3: break; } return 0; }")
            .unwrap_err();
        assert!(e.message.contains("duplicate case"));
        let e =
            check_src("int main() { switch (1) { default: break; default: break; } return 0; }")
                .unwrap_err();
        assert!(e.message.contains("default"));
    }

    #[test]
    fn duplicate_definitions_rejected() {
        assert!(check_src("int g; int g; int main() { return 0; }").is_err());
        assert!(
            check_src("int f() {return 0;} int f() {return 0;} int main() { return 0; }").is_err()
        );
        assert!(check_src("int f; int f() {return 0;} int main() { return 0; }").is_err());
        assert!(check_src("int main() { int x; int x; return 0; }").is_err());
    }

    #[test]
    fn switch_collects_cases_and_default() {
        let p = check_src(
            "int main() { switch (2) { case 1: case 2: putint(1); break; default: putint(2); } return 0; }",
        )
        .unwrap();
        let CStmt::Switch {
            cases,
            default,
            arm_bodies,
            ..
        } = &p.functions[p.main].body[0]
        else {
            panic!("shape");
        };
        assert_eq!(cases, &[(1, 0), (2, 1)]);
        assert_eq!(*default, Some(2));
        assert_eq!(arm_bodies.len(), 3);
        assert!(arm_bodies[0].is_empty());
    }
}
