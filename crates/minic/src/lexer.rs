//! The lexer.

use crate::error::CompileError;
use crate::token::{Pos, Tok, Token};

/// Tokenize mini-C source. Handles `//` and `/* */` comments, decimal and
/// hexadecimal integers, and character literals with the usual escapes.
///
/// # Errors
///
/// Returns an error for unterminated comments/char literals and stray
/// characters.
pub fn lex(source: &str) -> Result<Vec<Token>, CompileError> {
    Lexer {
        chars: source.chars().collect(),
        at: 0,
        pos: Pos { line: 1, col: 1 },
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    at: usize,
    pos: Pos,
}

impl Lexer {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.at).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.at + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.at += 1;
        if c == '\n' {
            self.pos.line += 1;
            self.pos.col = 1;
        } else {
            self.pos.col += 1;
        }
        Some(c)
    }

    fn err(&self, msg: impl Into<String>) -> CompileError {
        CompileError::new(self.pos, msg)
    }

    fn run(mut self) -> Result<Vec<Token>, CompileError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let pos = self.pos;
            let Some(c) = self.peek() else {
                out.push(Token { tok: Tok::Eof, pos });
                return Ok(out);
            };
            let tok = if c.is_ascii_digit() {
                self.number()?
            } else if c.is_ascii_alphabetic() || c == '_' {
                self.ident_or_keyword()
            } else if c == '\'' {
                self.char_literal()?
            } else {
                self.operator()?
            };
            out.push(Token { tok, pos });
        }
    }

    fn skip_trivia(&mut self) -> Result<(), CompileError> {
        loop {
            match (self.peek(), self.peek2()) {
                (Some(c), _) if c.is_whitespace() => {
                    self.bump();
                }
                (Some('/'), Some('/')) => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                (Some('/'), Some('*')) => {
                    let open = self.pos;
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some('*'), Some('/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (None, _) => {
                                return Err(CompileError::new(open, "unterminated comment"));
                            }
                            _ => {
                                self.bump();
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn number(&mut self) -> Result<Tok, CompileError> {
        let mut text = String::new();
        if self.peek() == Some('0') && matches!(self.peek2(), Some('x') | Some('X')) {
            self.bump();
            self.bump();
            while let Some(c) = self.peek() {
                if c.is_ascii_hexdigit() {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            if text.is_empty() {
                return Err(self.err("hex literal needs digits"));
            }
            return i64::from_str_radix(&text, 16)
                .map(Tok::Int)
                .map_err(|_| self.err("hex literal out of range"));
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        text.parse::<i64>()
            .map(Tok::Int)
            .map_err(|_| self.err("integer literal out of range"))
    }

    fn ident_or_keyword(&mut self) -> Tok {
        let mut name = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                name.push(c);
                self.bump();
            } else {
                break;
            }
        }
        match name.as_str() {
            "int" => Tok::KwInt,
            "char" => Tok::KwChar,
            "if" => Tok::KwIf,
            "else" => Tok::KwElse,
            "while" => Tok::KwWhile,
            "do" => Tok::KwDo,
            "for" => Tok::KwFor,
            "switch" => Tok::KwSwitch,
            "case" => Tok::KwCase,
            "default" => Tok::KwDefault,
            "break" => Tok::KwBreak,
            "continue" => Tok::KwContinue,
            "return" => Tok::KwReturn,
            _ => Tok::Ident(name),
        }
    }

    fn char_literal(&mut self) -> Result<Tok, CompileError> {
        self.bump(); // opening quote
        let c = self
            .bump()
            .ok_or_else(|| self.err("unterminated character literal"))?;
        let value = if c == '\\' {
            let esc = self.bump().ok_or_else(|| self.err("unterminated escape"))?;
            match esc {
                'n' => 10,
                't' => 9,
                'r' => 13,
                '0' => 0,
                '\\' => 92,
                '\'' => 39,
                '"' => 34,
                other => return Err(self.err(format!("unknown escape \\{other}"))),
            }
        } else if c == '\'' {
            return Err(self.err("empty character literal"));
        } else {
            c as i64
        };
        if self.bump() != Some('\'') {
            return Err(self.err("unterminated character literal"));
        }
        Ok(Tok::Int(value))
    }

    fn operator(&mut self) -> Result<Tok, CompileError> {
        let c = self.bump().expect("caller checked peek");
        let two = |l: &mut Lexer, next: char, yes: Tok, no: Tok| {
            if l.peek() == Some(next) {
                l.bump();
                yes
            } else {
                no
            }
        };
        Ok(match c {
            '(' => Tok::LParen,
            ')' => Tok::RParen,
            '{' => Tok::LBrace,
            '}' => Tok::RBrace,
            '[' => Tok::LBracket,
            ']' => Tok::RBracket,
            ';' => Tok::Semi,
            ',' => Tok::Comma,
            ':' => Tok::Colon,
            '?' => Tok::Question,
            '~' => Tok::Tilde,
            '^' => Tok::Xor,
            '+' => match self.peek() {
                Some('=') => {
                    self.bump();
                    Tok::PlusAssign
                }
                Some('+') => {
                    self.bump();
                    Tok::PlusPlus
                }
                _ => Tok::Plus,
            },
            '-' => match self.peek() {
                Some('=') => {
                    self.bump();
                    Tok::MinusAssign
                }
                Some('-') => {
                    self.bump();
                    Tok::MinusMinus
                }
                _ => Tok::Minus,
            },
            '*' => two(self, '=', Tok::StarAssign, Tok::Star),
            '/' => two(self, '=', Tok::SlashAssign, Tok::Slash),
            '%' => two(self, '=', Tok::PercentAssign, Tok::Percent),
            '=' => two(self, '=', Tok::EqEq, Tok::Assign),
            '!' => two(self, '=', Tok::NotEq, Tok::Not),
            '|' => two(self, '|', Tok::OrOr, Tok::Or),
            '&' => two(self, '&', Tok::AndAnd, Tok::And),
            '<' => match self.peek() {
                Some('=') => {
                    self.bump();
                    Tok::Le
                }
                Some('<') => {
                    self.bump();
                    Tok::Shl
                }
                _ => Tok::Lt,
            },
            '>' => match self.peek() {
                Some('=') => {
                    self.bump();
                    Tok::Ge
                }
                Some('>') => {
                    self.bump();
                    Tok::Shr
                }
                _ => Tok::Gt,
            },
            other => return Err(self.err(format!("unexpected character `{other}`"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("int foo while whiley"),
            vec![
                Tok::KwInt,
                Tok::Ident("foo".into()),
                Tok::KwWhile,
                Tok::Ident("whiley".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn numbers_decimal_and_hex() {
        assert_eq!(
            toks("0 42 0x2A"),
            vec![Tok::Int(0), Tok::Int(42), Tok::Int(42), Tok::Eof]
        );
    }

    #[test]
    fn char_literals_and_escapes() {
        assert_eq!(
            toks(r"'a' '\n' '\t' '\\' '\'' ' '"),
            vec![
                Tok::Int(97),
                Tok::Int(10),
                Tok::Int(9),
                Tok::Int(92),
                Tok::Int(39),
                Tok::Int(32),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn multichar_operators_lex_greedily() {
        assert_eq!(
            toks("<= >= == != && || << >> += -="),
            vec![
                Tok::Le,
                Tok::Ge,
                Tok::EqEq,
                Tok::NotEq,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::Shl,
                Tok::Shr,
                Tok::PlusAssign,
                Tok::MinusAssign,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("a // line\n b /* block\nstill */ c"),
            vec![
                Tok::Ident("a".into()),
                Tok::Ident("b".into()),
                Tok::Ident("c".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn positions_track_lines() {
        let ts = lex("a\n  b").unwrap();
        assert_eq!(ts[0].pos.line, 1);
        assert_eq!(ts[1].pos.line, 2);
        assert_eq!(ts[1].pos.col, 3);
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(lex("/* never ends").is_err());
    }

    #[test]
    fn stray_character_errors() {
        let e = lex("int $x;").unwrap_err();
        assert!(e.message.contains('$'));
    }
}
