//! Switch-translation heuristics (the paper's Table 2).
//!
//! Let `n` be the number of cases in a `switch` and `nl` the number of
//! possible values between the first and last case (the span). The three
//! heuristic sets of the paper are:
//!
//! | Set | Indirect jump        | Binary search                | Linear search  |
//! |-----|----------------------|------------------------------|----------------|
//! | I   | `n >= 4 && nl <= 3n` | `!indirect && n >= 8`        | otherwise      |
//! | II  | `n >= 16 && nl <= 3n`| `!indirect && n >= 8`        | otherwise      |
//! | III | never                | never                        | always         |
//! | IV  | never (at compile)   | never                        | always         |
//!
//! Set I reproduces the pcc front-end heuristics used for the SPARC
//! IPC/20; Set II reflects the SPARC Ultra I, where the authors measured
//! indirect jumps to be about four times more expensive and raised the
//! threshold; Set III always produces a linear search, maximizing the
//! reordering opportunity.
//!
//! Set IV is this reproduction's extension beyond the paper's Table 2:
//! it compiles exactly like Set III (always a linear search, so the
//! profiler sees every range exit), then the *reorderer* replaces each
//! profiled sequence with the cheapest of the Theorem 3 chain, a
//! minimum-expected-cost comparison tree, or a jump table — scored under
//! a VM-measured cost model (see `br_opt::tree`). The [`opt_tree`] flag
//! carries that downstream decision; [`HeuristicSet::choose`] itself is
//! identical to Set III.
//!
//! [`opt_tree`]: HeuristicSet::opt_tree

/// How a particular `switch` should be translated.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Strategy {
    /// Bounds checks plus a dense jump table.
    IndirectJump,
    /// A balanced compare tree with linear leaves.
    BinarySearch,
    /// A chain of equality compares in source order.
    LinearSearch,
}

/// One of the paper's heuristic sets (Table 2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HeuristicSet {
    /// Short name for reports ("I", "II", "III", "IV").
    pub name: &'static str,
    /// Minimum case count for an indirect jump; `None` disables them.
    pub indirect_min_cases: Option<u64>,
    /// Maximum allowed span/cases density ratio for an indirect jump
    /// (`nl <= ratio * n`).
    pub indirect_max_span_ratio: u64,
    /// Minimum case count for a binary search; `None` disables it.
    pub binary_min_cases: Option<u64>,
    /// Whether the downstream reorderer should consider replacing each
    /// profiled sequence with a DP-optimal comparison tree or jump
    /// table (heuristic Set IV). Purely a downstream signal: it does
    /// not affect [`HeuristicSet::choose`].
    pub opt_tree: bool,
}

impl HeuristicSet {
    /// Set I: pcc front-end heuristics (SPARC IPC / SPARCstation 20).
    pub const SET_I: HeuristicSet = HeuristicSet {
        name: "I",
        indirect_min_cases: Some(4),
        indirect_max_span_ratio: 3,
        binary_min_cases: Some(8),
        opt_tree: false,
    };

    /// Set II: raised indirect-jump threshold (SPARC Ultra I).
    pub const SET_II: HeuristicSet = HeuristicSet {
        name: "II",
        indirect_min_cases: Some(16),
        indirect_max_span_ratio: 3,
        binary_min_cases: Some(8),
        opt_tree: false,
    };

    /// Set III: always a linear search.
    pub const SET_III: HeuristicSet = HeuristicSet {
        name: "III",
        indirect_min_cases: None,
        indirect_max_span_ratio: 3,
        binary_min_cases: None,
        opt_tree: false,
    };

    /// Set IV: compiles like Set III, but asks the reorderer to emit
    /// the cheapest of chain / DP tree / jump table per sequence.
    pub const SET_IV: HeuristicSet = HeuristicSet {
        name: "IV",
        indirect_min_cases: None,
        indirect_max_span_ratio: 3,
        binary_min_cases: None,
        opt_tree: true,
    };

    /// All four sets: the paper's three in paper order, then this
    /// reproduction's Set IV.
    pub const ALL: [HeuristicSet; 4] = [Self::SET_I, Self::SET_II, Self::SET_III, Self::SET_IV];

    /// Decide the strategy for a switch with `n` cases spanning `span`
    /// possible values (`max - min + 1`).
    pub fn choose(&self, n: u64, span: u128) -> Strategy {
        if let Some(min_n) = self.indirect_min_cases {
            if n >= min_n && span <= (self.indirect_max_span_ratio as u128) * (n as u128) {
                return Strategy::IndirectJump;
            }
        }
        if let Some(min_n) = self.binary_min_cases {
            if n >= min_n {
                return Strategy::BinarySearch;
            }
        }
        Strategy::LinearSearch
    }
}

impl Default for HeuristicSet {
    fn default() -> HeuristicSet {
        HeuristicSet::SET_I
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_i_matches_table_2() {
        let h = HeuristicSet::SET_I;
        assert_eq!(h.choose(4, 12), Strategy::IndirectJump); // dense, n>=4
        assert_eq!(h.choose(4, 13), Strategy::LinearSearch); // too sparse, n<8
        assert_eq!(h.choose(8, 100), Strategy::BinarySearch); // sparse, n>=8
        assert_eq!(h.choose(3, 3), Strategy::LinearSearch); // tiny
    }

    #[test]
    fn set_ii_raises_indirect_threshold() {
        let h = HeuristicSet::SET_II;
        assert_eq!(h.choose(8, 10), Strategy::BinarySearch); // dense but n<16
        assert_eq!(h.choose(16, 40), Strategy::IndirectJump);
        assert_eq!(h.choose(15, 15), Strategy::BinarySearch);
    }

    #[test]
    fn set_iii_is_always_linear() {
        let h = HeuristicSet::SET_III;
        for (n, span) in [(4u64, 4u128), (16, 16), (100, 100), (8, 1000)] {
            assert_eq!(h.choose(n, span), Strategy::LinearSearch);
        }
    }

    #[test]
    fn set_iv_compiles_like_set_iii_but_flags_opt_tree() {
        let h = HeuristicSet::SET_IV;
        for (n, span) in [(4u64, 4u128), (16, 16), (100, 100), (8, 1000)] {
            assert_eq!(h.choose(n, span), HeuristicSet::SET_III.choose(n, span));
            assert_eq!(h.choose(n, span), Strategy::LinearSearch);
        }
        assert!(h.opt_tree);
        assert!(HeuristicSet::ALL[..3].iter().all(|s| !s.opt_tree));
        assert_eq!(HeuristicSet::ALL.len(), 4);
    }

    #[test]
    fn huge_spans_do_not_overflow() {
        let h = HeuristicSet::SET_I;
        // span of the full i64 range
        assert_eq!(h.choose(20, u128::MAX / 2), Strategy::BinarySearch);
    }
}
