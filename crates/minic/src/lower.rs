//! Lowering the checked AST to [`br_ir`].
//!
//! Scalars (parameters and scalar locals) live in dedicated virtual
//! registers for their whole lifetime, as register-allocated variables
//! would on SPARC — this is what makes the branch variable of a
//! comparison sequence a stable register, the shape the reordering
//! transformation detects. Local arrays live in the frame; globals in the
//! module's data section.

use br_ir::{
    BinOp, BlockId, Callee, Cond, FuncBuilder, FuncId, Inst, Module, Operand, Reg, Terminator, UnOp,
};

use crate::ast::{AssignOp, BinaryOp, UnaryOp};
use crate::sema::{CExpr, CStmt, CTarget, CalleeRef, CheckedFunction, CheckedProgram, VarRef};
use crate::switchgen::Strategy;
use crate::Options;

/// Lower a checked program into an IR module with `main` designated.
pub fn lower(program: &CheckedProgram, options: &Options) -> Module {
    let mut module = Module::new();
    let mut global_addrs = Vec::with_capacity(program.globals.len());
    for g in &program.globals {
        let (init, size) = match g.array_size {
            None => (vec![g.init], 1),
            Some(n) => (Vec::new(), n),
        };
        global_addrs.push(module.add_global(g.name.clone(), init, size));
    }
    for (i, f) in program.functions.iter().enumerate() {
        let lowered = FnLowerer::new(f, &global_addrs, options).run(f);
        let id = module.add_function(lowered);
        debug_assert_eq!(id, FuncId(i as u32));
    }
    module.main = Some(FuncId(program.main as u32));
    module
}

struct FnLowerer<'a> {
    b: FuncBuilder,
    cur: BlockId,
    /// Dedicated register of each scalar slot.
    scalar_regs: Vec<Reg>,
    /// Frame offset of each local array slot.
    array_offsets: Vec<u32>,
    global_addrs: &'a [i64],
    /// Innermost-last stack of (break target, continue target).
    loop_stack: Vec<(BlockId, Option<BlockId>)>,
    options: &'a Options,
}

impl<'a> FnLowerer<'a> {
    fn new(f: &CheckedFunction, global_addrs: &'a [i64], options: &'a Options) -> FnLowerer<'a> {
        let mut b = FuncBuilder::new(f.name.clone());
        let scalar_regs: Vec<Reg> = (0..f.num_scalars).map(|_| b.new_reg()).collect();
        b.set_param_regs(scalar_regs[..f.num_params].to_vec());
        let array_offsets = f.array_sizes.iter().map(|&n| b.alloc_frame(n)).collect();
        let cur = b.entry();
        FnLowerer {
            b,
            cur,
            scalar_regs,
            array_offsets,
            global_addrs,
            loop_stack: Vec::new(),
            options,
        }
    }

    fn run(mut self, f: &CheckedFunction) -> br_ir::Function {
        self.stmts(&f.body);
        // Implicit `return 0` at the end of the body.
        self.b
            .set_term(self.cur, Terminator::Return(Some(Operand::Imm(0))));
        self.b.finish()
    }

    /// Continue emission in `block`.
    fn start(&mut self, block: BlockId) {
        self.cur = block;
    }

    /// Finish the current block with `term` and continue in `next`.
    fn seal(&mut self, term: Terminator, next: BlockId) {
        self.b.set_term(self.cur, term);
        self.start(next);
    }

    fn temp(&mut self) -> Reg {
        self.b.new_reg()
    }

    // ----- statements -----

    fn stmts(&mut self, stmts: &[CStmt]) {
        for s in stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &CStmt) {
        match s {
            CStmt::Expr(e) => {
                self.expr(e);
            }
            CStmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let then_b = self.b.new_block();
                let end_b = self.b.new_block();
                let else_b = if else_branch.is_empty() {
                    end_b
                } else {
                    self.b.new_block()
                };
                self.cond(cond, then_b, else_b);
                self.start(then_b);
                self.stmts(then_branch);
                self.seal(Terminator::Jump(end_b), end_b);
                if !else_branch.is_empty() {
                    self.start(else_b);
                    self.stmts(else_branch);
                    self.seal(Terminator::Jump(end_b), end_b);
                }
                self.start(end_b);
            }
            CStmt::While { cond, body } => {
                let head = self.b.new_block();
                let body_b = self.b.new_block();
                let end = self.b.new_block();
                self.seal(Terminator::Jump(head), head);
                self.cond(cond, body_b, end);
                self.start(body_b);
                self.loop_stack.push((end, Some(head)));
                self.stmts(body);
                self.loop_stack.pop();
                self.seal(Terminator::Jump(head), end);
            }
            CStmt::DoWhile { body, cond } => {
                let body_b = self.b.new_block();
                let cond_b = self.b.new_block();
                let end = self.b.new_block();
                self.seal(Terminator::Jump(body_b), body_b);
                self.loop_stack.push((end, Some(cond_b)));
                self.stmts(body);
                self.loop_stack.pop();
                self.seal(Terminator::Jump(cond_b), cond_b);
                self.cond(cond, body_b, end);
                self.start(end);
            }
            CStmt::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(e) = init {
                    self.expr(e);
                }
                let head = self.b.new_block();
                let body_b = self.b.new_block();
                let step_b = self.b.new_block();
                let end = self.b.new_block();
                self.seal(Terminator::Jump(head), head);
                match cond {
                    Some(c) => self.cond(c, body_b, end),
                    None => self.seal(Terminator::Jump(body_b), body_b),
                }
                self.start(body_b);
                self.loop_stack.push((end, Some(step_b)));
                self.stmts(body);
                self.loop_stack.pop();
                self.seal(Terminator::Jump(step_b), step_b);
                if let Some(e) = step {
                    self.expr(e);
                }
                self.seal(Terminator::Jump(head), end);
            }
            CStmt::Switch {
                scrutinee,
                cases,
                default,
                arm_bodies,
            } => self.switch(scrutinee, cases, *default, arm_bodies),
            CStmt::Break => {
                let (target, _) = *self.loop_stack.last().expect("sema checked break");
                let dead = self.b.new_block();
                self.seal(Terminator::Jump(target), dead);
            }
            CStmt::Continue => {
                let target = self
                    .loop_stack
                    .iter()
                    .rev()
                    .find_map(|(_, c)| *c)
                    .expect("sema checked continue");
                let dead = self.b.new_block();
                self.seal(Terminator::Jump(target), dead);
            }
            CStmt::Return(v) => {
                let op = match v {
                    Some(e) => self.expr(e),
                    None => Operand::Imm(0),
                };
                let dead = self.b.new_block();
                self.seal(Terminator::Return(Some(op)), dead);
            }
        }
    }

    fn switch(
        &mut self,
        scrutinee: &CExpr,
        cases: &[(i64, usize)],
        default: Option<usize>,
        arm_bodies: &[Vec<CStmt>],
    ) {
        let v = self.expr_in_reg(scrutinee);
        let end = self.b.new_block();
        // One entry block per arm; bodies fall through to the next arm.
        let arm_blocks: Vec<BlockId> = arm_bodies.iter().map(|_| self.b.new_block()).collect();
        let default_block = default.map(|i| arm_blocks[i]).unwrap_or(end);

        // Emit the dispatch in the current position.
        if cases.is_empty() {
            self.seal(Terminator::Jump(default_block), end);
        } else {
            let n = cases.len() as u64;
            let min = cases.iter().map(|&(v, _)| v).min().expect("nonempty");
            let max = cases.iter().map(|&(v, _)| v).max().expect("nonempty");
            let span = (max as i128 - min as i128 + 1) as u128;
            match self.options.heuristics.choose(n, span) {
                Strategy::LinearSearch => {
                    self.linear_dispatch(v, cases, &arm_blocks, default_block);
                }
                Strategy::BinarySearch => {
                    let mut sorted = cases.to_vec();
                    sorted.sort_unstable_by_key(|&(val, _)| val);
                    self.binary_dispatch(v, &sorted, &arm_blocks, default_block);
                }
                Strategy::IndirectJump => {
                    self.indirect_dispatch(v, cases, min, max, &arm_blocks, default_block);
                }
            }
        }

        // Emit the arm bodies with C fall-through.
        self.loop_stack.push((end, None));
        for (i, body) in arm_bodies.iter().enumerate() {
            self.start(arm_blocks[i]);
            self.stmts(body);
            let next = arm_blocks.get(i + 1).copied().unwrap_or(end);
            self.seal(Terminator::Jump(next), end);
        }
        self.loop_stack.pop();
        self.start(end);
    }

    /// `cmp v, c; beq arm` chain in source order — the shape the paper's
    /// reorderable sequences come from.
    fn linear_dispatch(
        &mut self,
        v: Reg,
        cases: &[(i64, usize)],
        arm_blocks: &[BlockId],
        default_block: BlockId,
    ) {
        for (i, &(val, arm)) in cases.iter().enumerate() {
            let next = if i + 1 == cases.len() {
                default_block
            } else {
                self.b.new_block()
            };
            self.b.cmp(self.cur, v, val);
            self.seal(Terminator::branch(Cond::Eq, arm_blocks[arm], next), next);
        }
        // `seal` left us positioned at default_block's id only notionally;
        // dispatch emission ends here and arms are emitted by the caller.
    }

    /// Balanced compare tree over sorted cases; leaves of up to 3 cases
    /// are linear chains. Inner nodes share one compare between the
    /// equality and direction branches, as SPARC codegen would.
    fn binary_dispatch(
        &mut self,
        v: Reg,
        sorted: &[(i64, usize)],
        arm_blocks: &[BlockId],
        default_block: BlockId,
    ) {
        if sorted.len() <= 3 {
            self.linear_dispatch(v, sorted, arm_blocks, default_block);
            return;
        }
        let mid = sorted.len() / 2;
        let (mid_val, mid_arm) = sorted[mid];
        let left = self.b.new_block();
        let right = self.b.new_block();
        let dir = self.b.new_block();
        // cmp v, mid: beq arm(mid); blt left-half; else right-half.
        self.b.cmp(self.cur, v, mid_val);
        self.seal(Terminator::branch(Cond::Eq, arm_blocks[mid_arm], dir), dir);
        // `dir` reuses the condition codes of the compare above.
        self.seal(Terminator::branch(Cond::Lt, left, right), left);
        self.binary_dispatch(v, &sorted[..mid], arm_blocks, default_block);
        self.start(right);
        self.binary_dispatch(v, &sorted[mid + 1..], arm_blocks, default_block);
    }

    /// Bounds checks plus a dense jump table (holes go to the default).
    fn indirect_dispatch(
        &mut self,
        v: Reg,
        cases: &[(i64, usize)],
        min: i64,
        max: i64,
        arm_blocks: &[BlockId],
        default_block: BlockId,
    ) {
        let hi_check = self.b.new_block();
        let table_b = self.b.new_block();
        self.b.cmp(self.cur, v, min);
        self.seal(
            Terminator::branch(Cond::Lt, default_block, hi_check),
            hi_check,
        );
        self.b.cmp(self.cur, v, max);
        self.seal(
            Terminator::branch(Cond::Gt, default_block, table_b),
            table_b,
        );
        let idx = self.temp();
        self.b.bin(self.cur, BinOp::Sub, idx, v, min);
        let span = (max - min + 1) as usize;
        let mut targets = vec![default_block; span];
        for &(val, arm) in cases {
            targets[(val - min) as usize] = arm_blocks[arm];
        }
        let dead = self.b.new_block();
        self.seal(
            Terminator::IndirectJump {
                index: idx,
                targets,
            },
            dead,
        );
    }

    // ----- conditions (control context) -----

    /// Lower `e` as a condition: transfer to `then_b` if nonzero, else to
    /// `else_b`. Short-circuit forms become branch chains; relational
    /// forms become a compare and branch directly.
    fn cond(&mut self, e: &CExpr, then_b: BlockId, else_b: BlockId) {
        match e {
            CExpr::Int(v) => {
                let target = if *v != 0 { then_b } else { else_b };
                let dead = self.b.new_block();
                self.seal(Terminator::Jump(target), dead);
            }
            CExpr::Unary {
                op: UnaryOp::LogicalNot,
                operand,
            } => self.cond(operand, else_b, then_b),
            CExpr::Binary { op, lhs, rhs } => match relational_cond(*op) {
                Some(cc) => {
                    let a = self.expr(lhs);
                    let b2 = self.expr(rhs);
                    self.b.cmp(self.cur, a, b2);
                    let dead = self.b.new_block();
                    self.seal(Terminator::branch(cc, then_b, else_b), dead);
                }
                None => match op {
                    BinaryOp::LogicalAnd => {
                        let mid = self.b.new_block();
                        self.cond(lhs, mid, else_b);
                        self.start(mid);
                        self.cond(rhs, then_b, else_b);
                    }
                    BinaryOp::LogicalOr => {
                        let mid = self.b.new_block();
                        self.cond(lhs, then_b, mid);
                        self.start(mid);
                        self.cond(rhs, then_b, else_b);
                    }
                    _ => self.truthiness(e, then_b, else_b),
                },
            },
            _ => self.truthiness(e, then_b, else_b),
        }
    }

    /// Generic `e != 0` test.
    fn truthiness(&mut self, e: &CExpr, then_b: BlockId, else_b: BlockId) {
        let v = self.expr(e);
        self.b.cmp(self.cur, v, 0i64);
        let dead = self.b.new_block();
        self.seal(Terminator::branch(Cond::Ne, then_b, else_b), dead);
    }

    // ----- expressions (value context) -----

    /// Lower `e`, materializing its value into a register.
    fn expr_in_reg(&mut self, e: &CExpr) -> Reg {
        match self.expr(e) {
            Operand::Reg(r) => r,
            imm => {
                let t = self.temp();
                self.b.copy(self.cur, t, imm);
                t
            }
        }
    }

    /// Lower `e` to an operand.
    fn expr(&mut self, e: &CExpr) -> Operand {
        match e {
            CExpr::Int(v) => Operand::Imm(*v),
            CExpr::Var(r) => self.read_var(*r),
            CExpr::Index { array, index } => {
                let idx = self.expr(index);
                let base = self.array_base(*array);
                let dst = self.temp();
                self.b.load(self.cur, dst, base, idx);
                Operand::Reg(dst)
            }
            CExpr::Call { callee, args } => {
                let arg_ops: Vec<Operand> = args.iter().map(|a| self.expr(a)).collect();
                let dst = self.temp();
                let callee = match callee {
                    CalleeRef::Func(i) => Callee::Func(FuncId(*i as u32)),
                    CalleeRef::Intrinsic(i) => Callee::Intrinsic(*i),
                };
                self.b.call(self.cur, Some(dst), callee, arg_ops);
                Operand::Reg(dst)
            }
            CExpr::Unary { op, operand } => match op {
                UnaryOp::Neg => {
                    let v = self.expr(operand);
                    let dst = self.temp();
                    self.b.un(self.cur, UnOp::Neg, dst, v);
                    Operand::Reg(dst)
                }
                UnaryOp::BitNot => {
                    let v = self.expr(operand);
                    let dst = self.temp();
                    self.b.un(self.cur, UnOp::Not, dst, v);
                    Operand::Reg(dst)
                }
                UnaryOp::LogicalNot => self.materialize_bool(e),
            },
            CExpr::Binary { op, lhs, rhs } => {
                if let Some(bin) = arith_op(*op) {
                    let a = self.expr(lhs);
                    let b2 = self.expr(rhs);
                    let dst = self.temp();
                    self.b.bin(self.cur, bin, dst, a, b2);
                    Operand::Reg(dst)
                } else {
                    // Relational or logical in value context: 0/1.
                    self.materialize_bool(e)
                }
            }
            CExpr::Ternary {
                cond,
                then_val,
                else_val,
            } => {
                let dst = self.temp();
                let then_b = self.b.new_block();
                let else_b = self.b.new_block();
                let end = self.b.new_block();
                self.cond(cond, then_b, else_b);
                self.start(then_b);
                let tv = self.expr(then_val);
                self.b.copy(self.cur, dst, tv);
                self.seal(Terminator::Jump(end), else_b);
                let ev = self.expr(else_val);
                self.b.copy(self.cur, dst, ev);
                self.seal(Terminator::Jump(end), end);
                Operand::Reg(dst)
            }
            CExpr::Assign { op, target, value } => self.assign(*op, target, value),
            CExpr::IncDec {
                target,
                increment,
                prefix,
            } => self.inc_dec(target, *increment, *prefix),
        }
    }

    /// `++x`/`x--` and friends: read, add ±1, write back; the expression
    /// value is the new value (prefix) or the old one (postfix).
    fn inc_dec(&mut self, target: &CTarget, increment: bool, prefix: bool) -> Operand {
        let delta: i64 = if increment { 1 } else { -1 };
        match target {
            CTarget::Scalar(r) => {
                let old = self.read_var(*r);
                // Postfix needs the old value preserved past the update.
                let saved = if prefix {
                    None
                } else {
                    let t = self.temp();
                    self.b.copy(self.cur, t, old);
                    Some(Operand::Reg(t))
                };
                let new_val = self.temp();
                self.b.bin(self.cur, BinOp::Add, new_val, old, delta);
                self.write_var(*r, Operand::Reg(new_val));
                saved.unwrap_or(Operand::Reg(new_val))
            }
            CTarget::Element { array, index } => {
                let idx = self.expr_in_reg(index);
                let base = self.array_base(*array);
                let old = self.temp();
                self.b.load(self.cur, old, base, idx);
                let new_val = self.temp();
                self.b.bin(self.cur, BinOp::Add, new_val, old, delta);
                self.b.store(self.cur, base, idx, new_val);
                if prefix {
                    Operand::Reg(new_val)
                } else {
                    Operand::Reg(old)
                }
            }
        }
    }

    /// Materialize a boolean expression as 0/1 via a diamond.
    fn materialize_bool(&mut self, e: &CExpr) -> Operand {
        let dst = self.temp();
        let t = self.b.new_block();
        let f = self.b.new_block();
        let end = self.b.new_block();
        self.cond(e, t, f);
        self.start(t);
        self.b.copy(self.cur, dst, 1i64);
        self.seal(Terminator::Jump(end), f);
        self.b.copy(self.cur, dst, 0i64);
        self.seal(Terminator::Jump(end), end);
        Operand::Reg(dst)
    }

    fn assign(&mut self, op: AssignOp, target: &CTarget, value: &CExpr) -> Operand {
        match target {
            CTarget::Scalar(r) => {
                let new_val = match assign_bin(op) {
                    None => self.expr(value),
                    Some(bin) => {
                        let old = self.read_var(*r);
                        let rhs = self.expr(value);
                        let t = self.temp();
                        self.b.bin(self.cur, bin, t, old, rhs);
                        Operand::Reg(t)
                    }
                };
                self.write_var(*r, new_val);
                new_val
            }
            CTarget::Element { array, index } => {
                let idx = self.expr_in_reg(index);
                let base = self.array_base(*array);
                let new_val = match assign_bin(op) {
                    None => self.expr(value),
                    Some(bin) => {
                        let old = self.temp();
                        self.b.load(self.cur, old, base, idx);
                        let rhs = self.expr(value);
                        let t = self.temp();
                        self.b.bin(self.cur, bin, t, old, rhs);
                        Operand::Reg(t)
                    }
                };
                self.b.store(self.cur, base, idx, new_val);
                new_val
            }
        }
    }

    fn read_var(&mut self, r: VarRef) -> Operand {
        match r {
            VarRef::LocalScalar(slot) => Operand::Reg(self.scalar_regs[slot]),
            VarRef::GlobalScalar(g) => {
                let dst = self.temp();
                self.b.load(self.cur, dst, self.global_addrs[g], 0i64);
                Operand::Reg(dst)
            }
            VarRef::GlobalArray(_) | VarRef::LocalArray(_) => {
                unreachable!("sema rejects arrays in scalar position")
            }
        }
    }

    fn write_var(&mut self, r: VarRef, val: Operand) {
        match r {
            VarRef::LocalScalar(slot) => {
                let dst = self.scalar_regs[slot];
                if val != Operand::Reg(dst) {
                    self.b.copy(self.cur, dst, val);
                }
            }
            VarRef::GlobalScalar(g) => {
                self.b.store(self.cur, self.global_addrs[g], 0i64, val);
            }
            VarRef::GlobalArray(_) | VarRef::LocalArray(_) => {
                unreachable!("sema rejects assignment to arrays")
            }
        }
    }

    /// Base-address operand of an array.
    fn array_base(&mut self, r: VarRef) -> Operand {
        match r {
            VarRef::GlobalArray(g) => Operand::Imm(self.global_addrs[g]),
            VarRef::LocalArray(slot) => {
                let dst = self.temp();
                self.b.push(
                    self.cur,
                    Inst::FrameAddr {
                        dst,
                        offset: self.array_offsets[slot],
                    },
                );
                Operand::Reg(dst)
            }
            VarRef::GlobalScalar(_) | VarRef::LocalScalar(_) => {
                unreachable!("sema rejects indexing scalars")
            }
        }
    }
}

fn relational_cond(op: BinaryOp) -> Option<Cond> {
    Some(match op {
        BinaryOp::Eq => Cond::Eq,
        BinaryOp::Ne => Cond::Ne,
        BinaryOp::Lt => Cond::Lt,
        BinaryOp::Le => Cond::Le,
        BinaryOp::Gt => Cond::Gt,
        BinaryOp::Ge => Cond::Ge,
        _ => return None,
    })
}

fn arith_op(op: BinaryOp) -> Option<BinOp> {
    Some(match op {
        BinaryOp::Add => BinOp::Add,
        BinaryOp::Sub => BinOp::Sub,
        BinaryOp::Mul => BinOp::Mul,
        BinaryOp::Div => BinOp::Div,
        BinaryOp::Rem => BinOp::Rem,
        BinaryOp::BitAnd => BinOp::And,
        BinaryOp::BitOr => BinOp::Or,
        BinaryOp::BitXor => BinOp::Xor,
        BinaryOp::Shl => BinOp::Shl,
        BinaryOp::Shr => BinOp::Shr,
        _ => return None,
    })
}

fn assign_bin(op: AssignOp) -> Option<BinOp> {
    Some(match op {
        AssignOp::Set => return None,
        AssignOp::Add => BinOp::Add,
        AssignOp::Sub => BinOp::Sub,
        AssignOp::Mul => BinOp::Mul,
        AssignOp::Div => BinOp::Div,
        AssignOp::Rem => BinOp::Rem,
    })
}
