//! Abstract syntax tree.

use crate::token::Pos;

/// A whole translation unit.
#[derive(Clone, Debug, PartialEq)]
pub struct Program {
    pub globals: Vec<GlobalDecl>,
    pub functions: Vec<FunctionDecl>,
}

/// A file-scope variable.
#[derive(Clone, Debug, PartialEq)]
pub struct GlobalDecl {
    pub name: String,
    /// `None` for a scalar, `Some(n)` for `int name[n]`.
    pub array_size: Option<u32>,
    /// Optional scalar initializer (constant).
    pub init: Option<i64>,
    pub pos: Pos,
}

/// A function definition.
#[derive(Clone, Debug, PartialEq)]
pub struct FunctionDecl {
    pub name: String,
    pub params: Vec<String>,
    pub body: Vec<Stmt>,
    pub pos: Pos,
}

/// A block-scope declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct LocalDecl {
    pub name: String,
    pub array_size: Option<u32>,
    pub pos: Pos,
}

/// Statements.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    Decl(LocalDecl),
    Expr(Expr),
    If {
        cond: Expr,
        then_branch: Vec<Stmt>,
        else_branch: Vec<Stmt>,
        pos: Pos,
    },
    While {
        cond: Expr,
        body: Vec<Stmt>,
        pos: Pos,
    },
    DoWhile {
        body: Vec<Stmt>,
        cond: Expr,
        pos: Pos,
    },
    For {
        init: Option<Expr>,
        cond: Option<Expr>,
        step: Option<Expr>,
        body: Vec<Stmt>,
        pos: Pos,
    },
    Switch {
        scrutinee: Expr,
        arms: Vec<SwitchArm>,
        pos: Pos,
    },
    Break(Pos),
    Continue(Pos),
    Return(Option<Expr>, Pos),
    Block(Vec<Stmt>),
    /// Empty statement (`;`).
    Empty,
}

/// One `case`/`default` arm of a switch (C semantics: bodies fall
/// through into the following arm unless they `break`).
#[derive(Clone, Debug, PartialEq)]
pub struct SwitchArm {
    /// `None` for `default:`.
    pub value: Option<i64>,
    pub body: Vec<Stmt>,
    pub pos: Pos,
}

/// Binary operators (short-circuit forms are separate variants).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    LogicalAnd,
    LogicalOr,
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnaryOp {
    Neg,
    LogicalNot,
    BitNot,
}

/// Compound-assignment operators (`x op= e`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AssignOp {
    Set,
    Add,
    Sub,
    Mul,
    Div,
    Rem,
}

/// Expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    Int(i64, Pos),
    Var(String, Pos),
    Index {
        array: String,
        index: Box<Expr>,
        pos: Pos,
    },
    Call {
        callee: String,
        args: Vec<Expr>,
        pos: Pos,
    },
    Unary {
        op: UnaryOp,
        operand: Box<Expr>,
        pos: Pos,
    },
    Binary {
        op: BinaryOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
        pos: Pos,
    },
    Ternary {
        cond: Box<Expr>,
        then_val: Box<Expr>,
        else_val: Box<Expr>,
        pos: Pos,
    },
    Assign {
        op: AssignOp,
        target: Box<Expr>,
        value: Box<Expr>,
        pos: Pos,
    },
    /// `++x`, `--x`, `x++`, `x--`.
    IncDec {
        target: Box<Expr>,
        /// `+1` or `-1`.
        increment: bool,
        /// Prefix (value after update) vs postfix (value before).
        prefix: bool,
        pos: Pos,
    },
}

impl Expr {
    /// The source position of the expression.
    #[allow(dead_code)] // kept for diagnostics symmetry with statements
    pub fn pos(&self) -> Pos {
        match self {
            Expr::Int(_, p)
            | Expr::Var(_, p)
            | Expr::Index { pos: p, .. }
            | Expr::Call { pos: p, .. }
            | Expr::Unary { pos: p, .. }
            | Expr::Binary { pos: p, .. }
            | Expr::Ternary { pos: p, .. }
            | Expr::Assign { pos: p, .. }
            | Expr::IncDec { pos: p, .. } => *p,
        }
    }
}
