//! Tokens and source positions.

use std::fmt;

/// A line/column position in the source (both 1-based).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Pos {
    pub line: u32,
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Lexical token kinds.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Tok {
    // Literals and names.
    Int(i64),
    Ident(String),
    // Keywords.
    KwInt,
    KwChar,
    KwIf,
    KwElse,
    KwWhile,
    KwDo,
    KwFor,
    KwSwitch,
    KwCase,
    KwDefault,
    KwBreak,
    KwContinue,
    KwReturn,
    // Punctuation.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Colon,
    Question,
    // Operators.
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PercentAssign,
    OrOr,
    AndAnd,
    Or,
    Xor,
    And,
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    Shl,
    Shr,
    PlusPlus,
    MinusMinus,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Not,
    Tilde,
    /// End of input sentinel.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Tok::Int(v) => return write!(f, "integer literal {v}"),
            Tok::Ident(n) => return write!(f, "identifier `{n}`"),
            Tok::KwInt => "int",
            Tok::KwChar => "char",
            Tok::KwIf => "if",
            Tok::KwElse => "else",
            Tok::KwWhile => "while",
            Tok::KwDo => "do",
            Tok::KwFor => "for",
            Tok::KwSwitch => "switch",
            Tok::KwCase => "case",
            Tok::KwDefault => "default",
            Tok::KwBreak => "break",
            Tok::KwContinue => "continue",
            Tok::KwReturn => "return",
            Tok::LParen => "(",
            Tok::RParen => ")",
            Tok::LBrace => "{",
            Tok::RBrace => "}",
            Tok::LBracket => "[",
            Tok::RBracket => "]",
            Tok::Semi => ";",
            Tok::Comma => ",",
            Tok::Colon => ":",
            Tok::Question => "?",
            Tok::Assign => "=",
            Tok::PlusAssign => "+=",
            Tok::MinusAssign => "-=",
            Tok::StarAssign => "*=",
            Tok::SlashAssign => "/=",
            Tok::PercentAssign => "%=",
            Tok::OrOr => "||",
            Tok::AndAnd => "&&",
            Tok::Or => "|",
            Tok::Xor => "^",
            Tok::And => "&",
            Tok::EqEq => "==",
            Tok::NotEq => "!=",
            Tok::Lt => "<",
            Tok::Le => "<=",
            Tok::Gt => ">",
            Tok::Ge => ">=",
            Tok::Shl => "<<",
            Tok::Shr => ">>",
            Tok::PlusPlus => "++",
            Tok::MinusMinus => "--",
            Tok::Plus => "+",
            Tok::Minus => "-",
            Tok::Star => "*",
            Tok::Slash => "/",
            Tok::Percent => "%",
            Tok::Not => "!",
            Tok::Tilde => "~",
            Tok::Eof => "end of input",
        };
        write!(f, "`{s}`")
    }
}

/// A token with its source position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Token {
    pub tok: Tok,
    pub pos: Pos,
}
