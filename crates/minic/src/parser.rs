//! Recursive-descent parser.

use crate::ast::*;
use crate::error::CompileError;
use crate::token::{Pos, Tok, Token};

/// Parse a token stream into a [`Program`].
///
/// # Errors
///
/// Returns the first syntax error with its position.
pub fn parse(tokens: &[Token]) -> Result<Program, CompileError> {
    let mut p = Parser { tokens, at: 0 };
    p.program()
}

struct Parser<'t> {
    tokens: &'t [Token],
    at: usize,
}

impl<'t> Parser<'t> {
    fn peek(&self) -> &Tok {
        &self.tokens[self.at].tok
    }

    fn pos(&self) -> Pos {
        self.tokens[self.at].pos
    }

    fn bump(&mut self) -> &'t Token {
        let t = &self.tokens[self.at];
        if self.at + 1 < self.tokens.len() {
            self.at += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> CompileError {
        CompileError::new(self.pos(), msg)
    }

    fn expect(&mut self, tok: Tok) -> Result<Pos, CompileError> {
        if *self.peek() == tok {
            Ok(self.bump().pos)
        } else {
            Err(self.err(format!("expected {tok}, found {}", self.peek())))
        }
    }

    fn eat(&mut self, tok: Tok) -> bool {
        if *self.peek() == tok {
            self.bump();
            true
        } else {
            false
        }
    }

    fn type_keyword(&mut self) -> Result<(), CompileError> {
        if matches!(self.peek(), Tok::KwInt | Tok::KwChar) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected a type, found {}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<(String, Pos), CompileError> {
        match self.peek().clone() {
            Tok::Ident(name) => {
                let pos = self.bump().pos;
                Ok((name, pos))
            }
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    fn program(&mut self) -> Result<Program, CompileError> {
        let mut program = Program {
            globals: Vec::new(),
            functions: Vec::new(),
        };
        while *self.peek() != Tok::Eof {
            self.type_keyword()?;
            let (name, pos) = self.ident()?;
            if *self.peek() == Tok::LParen {
                program.functions.push(self.function(name, pos)?);
            } else {
                program.globals.push(self.global(name, pos)?);
            }
        }
        Ok(program)
    }

    fn global(&mut self, name: String, pos: Pos) -> Result<GlobalDecl, CompileError> {
        let array_size = self.array_suffix()?;
        let init = if self.eat(Tok::Assign) {
            if array_size.is_some() {
                return Err(self.err("array initializers are not supported"));
            }
            Some(self.const_int()?)
        } else {
            None
        };
        self.expect(Tok::Semi)?;
        Ok(GlobalDecl {
            name,
            array_size,
            init,
            pos,
        })
    }

    fn array_suffix(&mut self) -> Result<Option<u32>, CompileError> {
        if !self.eat(Tok::LBracket) {
            return Ok(None);
        }
        let n = self.const_int()?;
        if n <= 0 || n > 1 << 24 {
            return Err(self.err(format!("array size {n} out of range")));
        }
        self.expect(Tok::RBracket)?;
        Ok(Some(n as u32))
    }

    /// A (possibly negated) integer or character literal.
    fn const_int(&mut self) -> Result<i64, CompileError> {
        let neg = self.eat(Tok::Minus);
        match *self.peek() {
            Tok::Int(v) => {
                self.bump();
                Ok(if neg { -v } else { v })
            }
            ref other => Err(self.err(format!("expected constant, found {other}"))),
        }
    }

    fn function(&mut self, name: String, pos: Pos) -> Result<FunctionDecl, CompileError> {
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        if !self.eat(Tok::RParen) {
            loop {
                self.type_keyword()?;
                let (p, _) = self.ident()?;
                params.push(p);
                if !self.eat(Tok::Comma) {
                    break;
                }
            }
            self.expect(Tok::RParen)?;
        }
        self.expect(Tok::LBrace)?;
        let body = self.stmt_list_until_rbrace()?;
        Ok(FunctionDecl {
            name,
            params,
            body,
            pos,
        })
    }

    fn stmt_list_until_rbrace(&mut self) -> Result<Vec<Stmt>, CompileError> {
        let mut stmts = Vec::new();
        while !self.eat(Tok::RBrace) {
            if *self.peek() == Tok::Eof {
                return Err(self.err("unexpected end of input inside a block"));
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        match self.peek().clone() {
            Tok::KwInt | Tok::KwChar => {
                let pos = self.pos();
                self.type_keyword()?;
                let (name, _) = self.ident()?;
                let array_size = self.array_suffix()?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Decl(LocalDecl {
                    name,
                    array_size,
                    pos,
                }))
            }
            Tok::KwIf => self.if_stmt(),
            Tok::KwWhile => {
                let pos = self.bump().pos;
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let body = self.stmt_as_list()?;
                Ok(Stmt::While { cond, body, pos })
            }
            Tok::KwDo => {
                let pos = self.bump().pos;
                let body = self.stmt_as_list()?;
                self.expect(Tok::KwWhile)?;
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::DoWhile { body, cond, pos })
            }
            Tok::KwFor => {
                let pos = self.bump().pos;
                self.expect(Tok::LParen)?;
                let init = if *self.peek() == Tok::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(Tok::Semi)?;
                let cond = if *self.peek() == Tok::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(Tok::Semi)?;
                let step = if *self.peek() == Tok::RParen {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(Tok::RParen)?;
                let body = self.stmt_as_list()?;
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                    pos,
                })
            }
            Tok::KwSwitch => self.switch_stmt(),
            Tok::KwBreak => {
                let pos = self.bump().pos;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Break(pos))
            }
            Tok::KwContinue => {
                let pos = self.bump().pos;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Continue(pos))
            }
            Tok::KwReturn => {
                let pos = self.bump().pos;
                let value = if *self.peek() == Tok::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(Tok::Semi)?;
                Ok(Stmt::Return(value, pos))
            }
            Tok::LBrace => {
                self.bump();
                Ok(Stmt::Block(self.stmt_list_until_rbrace()?))
            }
            Tok::Semi => {
                self.bump();
                Ok(Stmt::Empty)
            }
            _ => {
                let e = self.expr()?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    /// A single statement treated as a list (branch/loop bodies).
    fn stmt_as_list(&mut self) -> Result<Vec<Stmt>, CompileError> {
        Ok(match self.stmt()? {
            Stmt::Block(stmts) => stmts,
            other => vec![other],
        })
    }

    fn if_stmt(&mut self) -> Result<Stmt, CompileError> {
        let pos = self.expect(Tok::KwIf)?;
        self.expect(Tok::LParen)?;
        let cond = self.expr()?;
        self.expect(Tok::RParen)?;
        let then_branch = self.stmt_as_list()?;
        let else_branch = if self.eat(Tok::KwElse) {
            self.stmt_as_list()?
        } else {
            Vec::new()
        };
        Ok(Stmt::If {
            cond,
            then_branch,
            else_branch,
            pos,
        })
    }

    fn switch_stmt(&mut self) -> Result<Stmt, CompileError> {
        let pos = self.expect(Tok::KwSwitch)?;
        self.expect(Tok::LParen)?;
        let scrutinee = self.expr()?;
        self.expect(Tok::RParen)?;
        self.expect(Tok::LBrace)?;
        let mut arms = Vec::new();
        loop {
            match self.peek().clone() {
                Tok::RBrace => {
                    self.bump();
                    break;
                }
                Tok::KwCase => {
                    let pos = self.bump().pos;
                    let value = self.const_int()?;
                    self.expect(Tok::Colon)?;
                    arms.push(SwitchArm {
                        value: Some(value),
                        body: self.arm_body()?,
                        pos,
                    });
                }
                Tok::KwDefault => {
                    let pos = self.bump().pos;
                    self.expect(Tok::Colon)?;
                    arms.push(SwitchArm {
                        value: None,
                        body: self.arm_body()?,
                        pos,
                    });
                }
                other => {
                    return Err(
                        self.err(format!("expected `case`, `default` or `}}`, found {other}"))
                    );
                }
            }
        }
        Ok(Stmt::Switch {
            scrutinee,
            arms,
            pos,
        })
    }

    /// Statements of one arm, up to the next `case`/`default`/`}`.
    fn arm_body(&mut self) -> Result<Vec<Stmt>, CompileError> {
        let mut body = Vec::new();
        loop {
            match self.peek() {
                Tok::KwCase | Tok::KwDefault | Tok::RBrace => return Ok(body),
                Tok::Eof => return Err(self.err("unexpected end of input inside switch")),
                _ => body.push(self.stmt()?),
            }
        }
    }

    // ----- expressions (precedence climbing) -----

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr, CompileError> {
        let lhs = self.ternary()?;
        let op = match self.peek() {
            Tok::Assign => AssignOp::Set,
            Tok::PlusAssign => AssignOp::Add,
            Tok::MinusAssign => AssignOp::Sub,
            Tok::StarAssign => AssignOp::Mul,
            Tok::SlashAssign => AssignOp::Div,
            Tok::PercentAssign => AssignOp::Rem,
            _ => return Ok(lhs),
        };
        let pos = self.bump().pos;
        let value = self.assignment()?; // right-associative
        Ok(Expr::Assign {
            op,
            target: Box::new(lhs),
            value: Box::new(value),
            pos,
        })
    }

    fn ternary(&mut self) -> Result<Expr, CompileError> {
        let cond = self.binary(0)?;
        if *self.peek() != Tok::Question {
            return Ok(cond);
        }
        let pos = self.bump().pos;
        let then_val = self.expr()?;
        self.expect(Tok::Colon)?;
        let else_val = self.ternary()?;
        Ok(Expr::Ternary {
            cond: Box::new(cond),
            then_val: Box::new(then_val),
            else_val: Box::new(else_val),
            pos,
        })
    }

    /// Binary operators via precedence climbing. Level 0 is `||`.
    fn binary(&mut self, level: usize) -> Result<Expr, CompileError> {
        const LEVELS: &[&[(Tok, BinaryOp)]] = &[
            &[(Tok::OrOr, BinaryOp::LogicalOr)],
            &[(Tok::AndAnd, BinaryOp::LogicalAnd)],
            &[(Tok::Or, BinaryOp::BitOr)],
            &[(Tok::Xor, BinaryOp::BitXor)],
            &[(Tok::And, BinaryOp::BitAnd)],
            &[(Tok::EqEq, BinaryOp::Eq), (Tok::NotEq, BinaryOp::Ne)],
            &[
                (Tok::Lt, BinaryOp::Lt),
                (Tok::Le, BinaryOp::Le),
                (Tok::Gt, BinaryOp::Gt),
                (Tok::Ge, BinaryOp::Ge),
            ],
            &[(Tok::Shl, BinaryOp::Shl), (Tok::Shr, BinaryOp::Shr)],
            &[(Tok::Plus, BinaryOp::Add), (Tok::Minus, BinaryOp::Sub)],
            &[
                (Tok::Star, BinaryOp::Mul),
                (Tok::Slash, BinaryOp::Div),
                (Tok::Percent, BinaryOp::Rem),
            ],
        ];
        if level >= LEVELS.len() {
            return self.unary();
        }
        let mut lhs = self.binary(level + 1)?;
        'outer: loop {
            for (tok, op) in LEVELS[level] {
                if self.peek() == tok {
                    let pos = self.bump().pos;
                    let rhs = self.binary(level + 1)?;
                    lhs = Expr::Binary {
                        op: *op,
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                        pos,
                    };
                    continue 'outer;
                }
            }
            return Ok(lhs);
        }
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        if matches!(self.peek(), Tok::PlusPlus | Tok::MinusMinus) {
            let increment = *self.peek() == Tok::PlusPlus;
            let pos = self.bump().pos;
            let target = self.unary()?;
            return Ok(Expr::IncDec {
                target: Box::new(target),
                increment,
                prefix: true,
                pos,
            });
        }
        let op = match self.peek() {
            Tok::Minus => Some(UnaryOp::Neg),
            Tok::Not => Some(UnaryOp::LogicalNot),
            Tok::Tilde => Some(UnaryOp::BitNot),
            _ => None,
        };
        if let Some(op) = op {
            let pos = self.bump().pos;
            let operand = self.unary()?;
            // Fold `-literal` immediately so INT64_MIN-adjacent constants
            // and case-label-like expressions behave.
            if let (UnaryOp::Neg, Expr::Int(v, _)) = (op, &operand) {
                return Ok(Expr::Int(-v, pos));
            }
            return Ok(Expr::Unary {
                op,
                operand: Box::new(operand),
                pos,
            });
        }
        let e = self.postfix()?;
        if matches!(self.peek(), Tok::PlusPlus | Tok::MinusMinus) {
            let increment = *self.peek() == Tok::PlusPlus;
            let pos = self.bump().pos;
            return Ok(Expr::IncDec {
                target: Box::new(e),
                increment,
                prefix: false,
                pos,
            });
        }
        Ok(e)
    }

    fn postfix(&mut self) -> Result<Expr, CompileError> {
        match self.peek().clone() {
            Tok::Int(v) => {
                let pos = self.bump().pos;
                Ok(Expr::Int(v, pos))
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => {
                let pos = self.bump().pos;
                match self.peek() {
                    Tok::LParen => {
                        self.bump();
                        let mut args = Vec::new();
                        if !self.eat(Tok::RParen) {
                            loop {
                                args.push(self.expr()?);
                                if !self.eat(Tok::Comma) {
                                    break;
                                }
                            }
                            self.expect(Tok::RParen)?;
                        }
                        Ok(Expr::Call {
                            callee: name,
                            args,
                            pos,
                        })
                    }
                    Tok::LBracket => {
                        self.bump();
                        let index = self.expr()?;
                        self.expect(Tok::RBracket)?;
                        Ok(Expr::Index {
                            array: name,
                            index: Box::new(index),
                            pos,
                        })
                    }
                    _ => Ok(Expr::Var(name, pos)),
                }
            }
            other => Err(self.err(format!("expected expression, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_ok(src: &str) -> Program {
        parse(&lex(src).unwrap()).unwrap()
    }

    fn parse_err(src: &str) -> CompileError {
        parse(&lex(src).unwrap()).unwrap_err()
    }

    #[test]
    fn parses_globals_and_functions() {
        let p = parse_ok("int g; int tab[10]; int zero = 0; int main() { return g; }");
        assert_eq!(p.globals.len(), 3);
        assert_eq!(p.globals[1].array_size, Some(10));
        assert_eq!(p.globals[2].init, Some(0));
        assert_eq!(p.functions.len(), 1);
    }

    #[test]
    fn precedence_binds_mul_tighter_than_add() {
        let p = parse_ok("int main() { return 1 + 2 * 3; }");
        let Stmt::Return(Some(Expr::Binary { op, rhs, .. }), _) = &p.functions[0].body[0] else {
            panic!("shape");
        };
        assert_eq!(*op, BinaryOp::Add);
        assert!(matches!(
            **rhs,
            Expr::Binary {
                op: BinaryOp::Mul,
                ..
            }
        ));
    }

    #[test]
    fn assignment_is_right_associative() {
        let p = parse_ok("int main() { int a; int b; a = b = 1; return a; }");
        let Stmt::Expr(Expr::Assign { value, .. }) = &p.functions[0].body[2] else {
            panic!("shape");
        };
        assert!(matches!(**value, Expr::Assign { .. }));
    }

    #[test]
    fn dangling_else_attaches_to_nearest_if() {
        let p = parse_ok("int main() { if (1) if (2) return 1; else return 2; return 0; }");
        let Stmt::If {
            then_branch,
            else_branch,
            ..
        } = &p.functions[0].body[0]
        else {
            panic!("shape");
        };
        assert!(else_branch.is_empty());
        let Stmt::If { else_branch, .. } = &then_branch[0] else {
            panic!("shape");
        };
        assert_eq!(else_branch.len(), 1);
    }

    #[test]
    fn switch_with_fallthrough_and_default() {
        let p = parse_ok(
            "int main() { int c; c = 0; switch (c) { case 1: case 2: c = 5; break; \
             default: c = 9; } return c; }",
        );
        let Stmt::Switch { arms, .. } = &p.functions[0].body[2] else {
            panic!("shape");
        };
        assert_eq!(arms.len(), 3);
        assert_eq!(arms[0].value, Some(1));
        assert!(arms[0].body.is_empty());
        assert_eq!(arms[2].value, None);
    }

    #[test]
    fn negative_case_labels() {
        let p = parse_ok("int main() { int c; c=0; switch (c) { case -1: break; } return 0; }");
        let Stmt::Switch { arms, .. } = &p.functions[0].body[2] else {
            panic!("shape");
        };
        assert_eq!(arms[0].value, Some(-1));
    }

    #[test]
    fn for_with_all_parts_optional() {
        parse_ok("int main() { for (;;) break; return 0; }");
        parse_ok("int main() { int i; for (i = 0; i < 9; i += 1) putint(i); return 0; }");
    }

    #[test]
    fn ternary_parses() {
        let p = parse_ok("int main() { int a; a = 1 ? 2 : 3; return a; }");
        let Stmt::Expr(Expr::Assign { value, .. }) = &p.functions[0].body[1] else {
            panic!("shape");
        };
        assert!(matches!(**value, Expr::Ternary { .. }));
    }

    #[test]
    fn error_on_missing_semi() {
        let e = parse_err("int main() { return 1 }");
        assert!(e.message.contains("`;`"), "{}", e.message);
    }

    #[test]
    fn error_on_stray_case_body() {
        let e = parse_err("int main() { switch (1) { int x; } return 0; }");
        assert!(e.message.contains("case"), "{}", e.message);
    }

    #[test]
    fn error_on_array_initializer() {
        let e = parse_err("int t[3] = 5; int main() { return 0; }");
        assert!(e.message.contains("array initializers"));
    }
}
