//! # br-minic
//!
//! A from-scratch front end for a C subset ("mini-C"), generating
//! [`br_ir`] modules. It stands in for the paper's pcc-derived C front
//! end: the benchmark kernels are written in mini-C, and the IR it emits
//! has exactly the shapes the branch-reordering transformation works on —
//! if/else chains, short-circuit `&&`/`||` chains, and `switch`
//! statements translated under the paper's Table 2 heuristic sets
//! ([`HeuristicSet`]).
//!
//! ## The language
//!
//! * Types: `int` (64-bit signed) and one-dimensional `int` arrays
//!   (`char` is accepted as a synonym for `int`).
//! * Declarations: global scalars/arrays, functions, block-scoped locals.
//! * Statements: `if`/`else`, `while`, `do`-`while`, `for`, `switch` with
//!   fall-through and `default`, `break`, `continue`, `return`, blocks,
//!   expression statements.
//! * Expressions: assignment (`=`, `+=`, `-=`, `*=`, `/=`, `%=`),
//!   ternary `?:`, `||`, `&&`, bitwise `| ^ &`, equality, relational,
//!   shifts, additive, multiplicative, unary `- ! ~`, array indexing,
//!   calls, integer and character literals.
//! * Built-ins: `getchar()`, `putchar(c)`, `putint(n)`, `abort(code)`.
//!
//! ```
//! use br_minic::{compile, Options};
//!
//! let m = compile(
//!     "int main() { int i; i = 0; while (i < 3) { putint(i); i = i + 1; } return i; }",
//!     &Options::default(),
//! ).expect("compiles");
//! let out = br_vm::run(&m, b"", &br_vm::VmOptions::default()).expect("runs");
//! assert_eq!(out.exit, 3);
//! assert_eq!(out.output, b"0\n1\n2\n");
//! ```

mod ast;
mod error;
mod lexer;
mod lower;
mod parser;
mod sema;
pub mod switchgen;
mod token;

pub use error::CompileError;
pub use switchgen::HeuristicSet;

use br_ir::Module;

/// Front-end configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct Options {
    /// How `switch` statements are translated (the paper's Table 2).
    pub heuristics: HeuristicSet,
}

impl Options {
    /// Options with the given switch heuristic set.
    pub fn with_heuristics(heuristics: HeuristicSet) -> Options {
        Options { heuristics }
    }
}

/// Compile mini-C source text into an IR [`Module`].
///
/// The module has `main` designated (compilation fails without a
/// zero-parameter `main`). No optimization is applied; run
/// `br_opt::optimize` for the paper's "conventional optimizations".
///
/// # Errors
///
/// Returns a [`CompileError`] carrying a line/column position for lexical,
/// syntactic, and semantic errors.
pub fn compile(source: &str, options: &Options) -> Result<Module, CompileError> {
    let tokens = lexer::lex(source)?;
    let program = parser::parse(&tokens)?;
    let checked = sema::check(&program)?;
    Ok(lower::lower(&checked, options))
}
