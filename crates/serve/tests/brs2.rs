//! `brs2` protocol end-to-end tests: a real daemon on a real socket,
//! exercised over the binary protocol.
//!
//! The contracts pinned here:
//!
//! * a `brs2` reorder response carries the **byte-identical** section
//!   stream a `brs1` client gets — including the `certs` proof
//!   section — whether computed fresh or resolved from hashes;
//! * module interning: a hash the shard has never seen draws a
//!   `need-module` error naming the hash; after one upload the same
//!   hash-only request succeeds, and survives a daemon **restart** via
//!   the shared artifact cache;
//! * batched requests answer item-for-item identically to unbatched;
//! * protocol mismatch (either direction) draws a structured error
//!   naming both versions, **in the sender's protocol**, and the same
//!   connection can immediately continue in the right one;
//! * an oversized frame is answered with an error and the connection
//!   stays usable;
//! * admission control under deterministic saturation: a wedged
//!   worker plus a full queue sheds exactly the overflow with the
//!   `shed` code, and every accepted request completes within its
//!   deadline (`deadline_expired` stays 0).

use std::io::Write as _;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use br_ir::print_module;
use br_minic::{compile, HeuristicSet, Options};
use br_serve::metrics::Metrics;
use br_serve::proto::{section, Client, Frame, Section, MAX_PAYLOAD};
use br_serve::proto2::{self, request_payload, Frame2, ModuleRef};
use br_serve::server::{ProtocolMode, ServeConfig, Server};
use br_serve::Client2;

fn start_daemon(mut config: ServeConfig) -> (std::thread::JoinHandle<()>, String) {
    config.addr = "127.0.0.1:0".to_string();
    let server = Server::start(config).expect("bind ephemeral port");
    let addr = server.addr().to_string();
    let handle = std::thread::spawn(move || server.wait().expect("clean shutdown"));
    (handle, addr)
}

fn shutdown_v1(addr: &str) {
    let mut client = Client::connect(addr).expect("connect for shutdown");
    let bye = client
        .call(&Frame::text("shutdown", ""))
        .expect("shutdown acknowledged");
    assert_eq!(bye.kind, "ok");
}

fn shutdown_v2(addr: &str) {
    let mut client = Client2::connect(addr).expect("connect for shutdown");
    let bye = client
        .call(&Frame2::request(proto2::kind::SHUTDOWN, &[]))
        .expect("shutdown acknowledged");
    assert_eq!(bye.kind, proto2::kind::OK, "{}", bye.payload_text());
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("br-serve-brs2-{tag}-{}", std::process::id()))
}

fn counter(addr: &str, name: &str) -> u64 {
    let mut client = Client::connect(addr).expect("connect for metrics");
    let response = client.call(&Frame::text("metrics", "")).expect("metrics");
    Metrics::parse_counter(&response.payload_text(), name)
        .unwrap_or_else(|| panic!("counter {name} missing from:\n{}", response.payload_text()))
}

fn workload_operands(name: &str, train_size: usize) -> (Arc<String>, Vec<u8>) {
    let w = br_workloads::by_name(name).expect("workload exists");
    let mut module =
        compile(w.source, &Options::with_heuristics(HeuristicSet::SET_I)).expect("compiles");
    br_opt::optimize(&mut module);
    (
        Arc::new(print_module(&module)),
        w.training_input(train_size),
    )
}

fn v1_reorder(client: &mut Client, module_text: &str, train: &[u8]) -> Frame {
    client
        .call(&Frame::structured(
            "reorder",
            &[
                Section {
                    name: "module",
                    bytes: module_text.as_bytes(),
                },
                Section {
                    name: "train",
                    bytes: train,
                },
            ],
        ))
        .expect("v1 call")
}

#[test]
fn brs2_response_is_byte_identical_to_brs1_including_certs() {
    // No cache: both protocols compute fresh, so equality checks the
    // normalization path, not a shared cache entry.
    let (daemon, addr) = start_daemon(ServeConfig {
        threads: 2,
        cache_dir: None,
        ..ServeConfig::default()
    });
    let mut v1 = Client::connect(&addr).expect("v1 connect");
    let mut v2 = Client2::connect(&addr).expect("v2 connect");
    for name in ["wc", "grep"] {
        let (module_text, train) = workload_operands(name, 512);
        let v1_response = v1_reorder(&mut v1, &module_text, &train);
        assert_eq!(v1_response.kind, "ok", "{}", v1_response.payload_text());

        let modules = vec![ModuleRef::new(
            proto2::sec::MODULE,
            Arc::clone(&module_text),
        )];
        let v2_response = v2
            .call_interned(
                proto2::kind::REORDER,
                &modules,
                &[(proto2::sec::TRAIN, &train)],
            )
            .expect("v2 call");
        assert_eq!(
            v2_response.kind,
            proto2::kind::OK,
            "{name}: {}",
            v2_response.payload_text()
        );
        assert_eq!(
            v2_response.payload, v1_response.payload,
            "{name}: brs2 OK payload must be the brs1 section stream, verbatim"
        );

        // The proof certificates travel in both answers.
        let as_v1 = Frame {
            kind: "ok".to_string(),
            payload: v2_response.payload.clone(),
        };
        let sections = as_v1.sections().expect("structured response");
        let certs = section(&sections, "certs").expect("certs section");
        assert!(
            !certs.bytes.is_empty(),
            "{name}: certs section must be populated"
        );

        // Steady state: the same request by hash only, no body, and the
        // answer is still byte-identical.
        let hash_only = v2
            .call_interned(
                proto2::kind::REORDER,
                &modules,
                &[(proto2::sec::TRAIN, &train)],
            )
            .expect("hash-only call");
        assert_eq!(hash_only.payload, v1_response.payload, "{name}");
    }
    shutdown_v1(&addr);
    daemon.join().expect("daemon thread");
}

#[test]
fn need_module_flow_uploads_once_and_survives_restart() {
    let cache = temp_dir("intern");
    let _ = std::fs::remove_dir_all(&cache);
    let (daemon, addr) = start_daemon(ServeConfig {
        threads: 1,
        cache_dir: Some(cache.clone()),
        ..ServeConfig::default()
    });
    let (module_text, train) = workload_operands("wc", 256);
    let modules = vec![ModuleRef::new(
        proto2::sec::MODULE,
        Arc::clone(&module_text),
    )];

    // A hash the daemon has never seen draws need-module, naming it.
    let mut v2 = Client2::connect(&addr).expect("connect");
    let optimistic = Frame2 {
        kind: proto2::kind::REORDER,
        flags: 0,
        code: 0,
        aux: 0,
        payload: request_payload(&modules, &[(proto2::sec::TRAIN, &train)], |_| true),
    };
    let refused = v2.call(&optimistic).expect("answered");
    assert_eq!(refused.kind, proto2::kind::ERROR);
    assert_eq!(
        refused.code,
        proto2::code::NEED_MODULE,
        "{}",
        refused.payload_text()
    );
    assert!(
        refused
            .payload_text()
            .contains(&format!("{:016x}", modules[0].hash)),
        "need-module must name the missing hash: {}",
        refused.payload_text()
    );
    assert_eq!(counter(&addr, "need_module"), 1);

    // One full upload, then hash-only succeeds — same bytes.
    let uploaded = v2
        .call_interned(
            proto2::kind::REORDER,
            &modules,
            &[(proto2::sec::TRAIN, &train)],
        )
        .expect("upload call");
    assert_eq!(
        uploaded.kind,
        proto2::kind::OK,
        "{}",
        uploaded.payload_text()
    );
    let by_hash = v2.call(&optimistic).expect("hash-only call");
    assert_eq!(by_hash.kind, proto2::kind::OK, "{}", by_hash.payload_text());
    assert_eq!(by_hash.payload, uploaded.payload);
    assert_eq!(counter(&addr, "need_module"), 1, "no second upload needed");
    shutdown_v1(&addr);
    daemon.join().expect("daemon thread");

    // Restart on the same cache directory: the interned body comes back
    // from disk, so the very first hash-only request succeeds.
    let (daemon, addr) = start_daemon(ServeConfig {
        threads: 1,
        cache_dir: Some(cache.clone()),
        ..ServeConfig::default()
    });
    let mut v2 = Client2::connect(&addr).expect("reconnect");
    let after_restart = v2.call(&optimistic).expect("hash-only after restart");
    assert_eq!(
        after_restart.kind,
        proto2::kind::OK,
        "interned module must survive restart via the artifact cache: {}",
        after_restart.payload_text()
    );
    assert_eq!(after_restart.payload, uploaded.payload);
    assert_eq!(counter(&addr, "need_module"), 0);
    shutdown_v1(&addr);
    daemon.join().expect("daemon thread");
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn batched_requests_answer_identically_to_unbatched() {
    let cache = temp_dir("batch");
    let _ = std::fs::remove_dir_all(&cache);
    let (daemon, addr) = start_daemon(ServeConfig {
        threads: 2,
        cache_dir: Some(cache.clone()),
        ..ServeConfig::default()
    });
    let (wc_text, wc_train) = workload_operands("wc", 256);
    let (cb_text, cb_train) = workload_operands("cb", 256);
    let wc_modules = vec![ModuleRef::new(proto2::sec::MODULE, wc_text)];
    let cb_modules = vec![ModuleRef::new(proto2::sec::MODULE, cb_text)];
    let wc_plain: Vec<(u8, &[u8])> = vec![(proto2::sec::TRAIN, &wc_train)];
    let cb_plain: Vec<(u8, &[u8])> = vec![(proto2::sec::TRAIN, &cb_train)];

    let mut batcher = Client2::connect(&addr).expect("connect");
    let items: Vec<proto2::BatchItem<'_>> = vec![
        (proto2::kind::REORDER, &wc_modules, &wc_plain),
        (proto2::kind::REORDER, &cb_modules, &cb_plain),
        (proto2::kind::REORDER, &wc_modules, &wc_plain),
    ];
    let replies = batcher.call_batch(&items).expect("batch call");
    assert_eq!(replies.len(), 3);
    for (i, reply) in replies.iter().enumerate() {
        assert_eq!(
            reply.kind,
            proto2::kind::OK,
            "item {i}: {:?}",
            reply.payload
        );
        assert_ne!(reply.aux, 0, "item {i}: cacheable response carries its key");
    }
    assert_eq!(
        replies[0].payload, replies[2].payload,
        "same request, same bytes"
    );
    assert_eq!(
        replies[0].aux, replies[2].aux,
        "same request, same cache key"
    );
    assert_eq!(counter(&addr, "batch_items"), 3);

    // A fresh unbatched client gets the same bytes per item.
    let mut single = Client2::connect(&addr).expect("connect");
    for (i, (k, modules, plain)) in items.iter().enumerate() {
        let lone = single.call_interned(*k, modules, plain).expect("call");
        assert_eq!(lone.kind, proto2::kind::OK);
        assert_eq!(
            lone.payload, replies[i].payload,
            "item {i}: batched and unbatched answers must be byte-identical"
        );
    }
    shutdown_v1(&addr);
    daemon.join().expect("daemon thread");
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn v1_frame_to_v2_only_endpoint_draws_structured_mismatch_and_connection_survives() {
    let (daemon, addr) = start_daemon(ServeConfig {
        threads: 1,
        cache_dir: None,
        protocols: ProtocolMode::V2Only,
        ..ServeConfig::default()
    });
    let mut stream = TcpStream::connect(&addr).expect("connect");
    Frame::text("health", "")
        .write_to(&mut stream)
        .expect("send v1");
    let refused = Frame::read_from(&mut stream)
        .expect("answered in v1")
        .expect("not EOF");
    assert_eq!(refused.kind, "error");
    let text = refused.payload_text();
    assert!(
        text.contains("brs2") && text.contains("brs1"),
        "mismatch error must name both protocol versions: {text}"
    );
    assert_eq!(counter_v2(&addr, "mismatch"), 1);

    // Same connection, correct protocol: served.
    Frame2::request(proto2::kind::HEALTH, &[])
        .write_to(&mut stream)
        .expect("send v2");
    let ok = Frame2::read_from(&mut stream).expect("v2 answer");
    assert_eq!(ok.kind, proto2::kind::OK);
    drop(stream);
    shutdown_v2(&addr);
    daemon.join().expect("daemon thread");
}

/// Metrics over `brs2`, for daemons that refuse `brs1`.
fn counter_v2(addr: &str, name: &str) -> u64 {
    let mut client = Client2::connect(addr).expect("connect for metrics");
    let response = client
        .call(&Frame2::request(proto2::kind::METRICS, &[]))
        .expect("metrics");
    assert_eq!(response.kind, proto2::kind::OK);
    Metrics::parse_counter(&response.payload_text(), name)
        .unwrap_or_else(|| panic!("counter {name} missing from:\n{}", response.payload_text()))
}

#[test]
fn v2_frame_to_v1_only_endpoint_draws_structured_mismatch_and_connection_survives() {
    let (daemon, addr) = start_daemon(ServeConfig {
        threads: 1,
        cache_dir: None,
        protocols: ProtocolMode::V1Only,
        ..ServeConfig::default()
    });
    let mut stream = TcpStream::connect(&addr).expect("connect");
    Frame2::request(proto2::kind::HEALTH, &[])
        .write_to(&mut stream)
        .expect("send v2");
    let refused = Frame2::read_from(&mut stream).expect("answered in v2");
    assert_eq!(refused.kind, proto2::kind::ERROR);
    assert_eq!(refused.code, proto2::code::PROTOCOL);
    let text = refused.payload_text();
    assert!(
        text.contains("brs1") && text.contains("brs2"),
        "mismatch error must name both protocol versions: {text}"
    );

    // Same connection, downgraded to brs1: served.
    Frame::text("health", "")
        .write_to(&mut stream)
        .expect("send v1");
    let ok = Frame::read_from(&mut stream)
        .expect("v1 answer")
        .expect("not EOF");
    assert_eq!(ok.kind, "ok");
    drop(stream);
    shutdown_v1(&addr);
    daemon.join().expect("daemon thread");
}

#[test]
fn oversized_frames_are_answered_and_connection_stays_usable() {
    let (daemon, addr) = start_daemon(ServeConfig {
        threads: 1,
        cache_dir: None,
        ..ServeConfig::default()
    });
    let oversize = MAX_PAYLOAD as u64 + 1;
    let chunk = vec![0u8; 1 << 20];
    let write_bulk = |stream: &mut TcpStream| {
        let mut left = oversize;
        while left > 0 {
            let n = (left as usize).min(chunk.len());
            stream.write_all(&chunk[..n]).expect("bulk write");
            left -= n as u64;
        }
    };

    // brs2: hand-built header declaring one byte past the limit.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    let mut header = Vec::new();
    header.extend_from_slice(b"brs2");
    header.push(proto2::kind::REORDER);
    header.push(0); // flags
    header.extend_from_slice(&0u16.to_le_bytes()); // code
    header.extend_from_slice(&0u64.to_le_bytes()); // aux
    header.extend_from_slice(&(oversize as u32).to_le_bytes());
    stream.write_all(&header).expect("header");
    write_bulk(&mut stream);
    let refused = Frame2::read_from(&mut stream).expect("answered");
    assert_eq!(refused.kind, proto2::kind::ERROR);
    assert_eq!(
        refused.code,
        proto2::code::OVERSIZED,
        "{}",
        refused.payload_text()
    );
    // The connection survived the drain and keeps serving.
    Frame2::request(proto2::kind::HEALTH, &[])
        .write_to(&mut stream)
        .expect("send health");
    let ok = Frame2::read_from(&mut stream).expect("health answer");
    assert_eq!(ok.kind, proto2::kind::OK);
    drop(stream);

    // brs1: same contract in the text protocol.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    writeln!(stream, "brs1 reorder {oversize}").expect("header");
    write_bulk(&mut stream);
    let refused = Frame::read_from(&mut stream)
        .expect("answered")
        .expect("not EOF");
    assert_eq!(refused.kind, "error");
    assert!(
        refused.payload_text().contains("oversized"),
        "{}",
        refused.payload_text()
    );
    Frame::text("health", "")
        .write_to(&mut stream)
        .expect("send health");
    let ok = Frame::read_from(&mut stream)
        .expect("health answer")
        .expect("not EOF");
    assert_eq!(ok.kind, "ok");
    drop(stream);

    assert_eq!(counter(&addr, "oversized"), 2);
    shutdown_v1(&addr);
    daemon.join().expect("daemon thread");
}

#[test]
fn saturated_admission_queue_sheds_exactly_the_overflow_and_accepted_work_meets_deadline() {
    let deadline_ms = 5_000;
    let (daemon, addr) = start_daemon(ServeConfig {
        threads: 1,
        queue: 1,
        deadline_ms,
        cache_dir: None,
        debug_endpoints: true,
        ..ServeConfig::default()
    });

    // Wedge the single worker with a slow request, then fill the
    // depth-1 queue — both over brs2.
    let occupy = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut c = Client2::connect(&addr).expect("connect");
            let mut sleep = Frame2::request(proto2::kind::SLEEP, &[]);
            sleep.payload = b"800".to_vec();
            c.call(&sleep).expect("slow request")
        })
    };
    std::thread::sleep(Duration::from_millis(200));
    let queued = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut c = Client2::connect(&addr).expect("connect");
            let mut sleep = Frame2::request(proto2::kind::SLEEP, &[]);
            sleep.payload = b"10".to_vec();
            c.call(&sleep).expect("queued request")
        })
    };
    std::thread::sleep(Duration::from_millis(200));

    // Worker busy, queue full: exactly these five must be shed, each
    // answered immediately with the shed code.
    const OVERFLOW: usize = 5;
    for i in 0..OVERFLOW {
        let mut c = Client2::connect(&addr).expect("connect");
        let mut sleep = Frame2::request(proto2::kind::SLEEP, &[]);
        sleep.payload = b"10".to_vec();
        let shed = c.call(&sleep).expect("shed answered");
        assert_eq!(shed.kind, proto2::kind::ERROR, "overflow request {i}");
        assert_eq!(
            shed.code,
            proto2::code::SHED,
            "overflow request {i}: {}",
            shed.payload_text()
        );
    }
    // And the same saturation over brs1 draws the overloaded frame.
    let mut v1 = Client::connect(&addr).expect("connect");
    let shed_v1 = v1.call(&Frame::text("sleep", "10")).expect("shed answered");
    assert_eq!(shed_v1.kind, "overloaded", "{}", shed_v1.payload_text());

    // Every accepted request completes fine and within deadline.
    let occupied = occupy.join().expect("occupier");
    assert_eq!(
        occupied.kind,
        proto2::kind::OK,
        "{}",
        occupied.payload_text()
    );
    let queued = queued.join().expect("queued");
    assert_eq!(queued.kind, proto2::kind::OK, "{}", queued.payload_text());

    assert_eq!(counter(&addr, "shed"), OVERFLOW as u64 + 1);
    assert_eq!(counter(&addr, "deadline_expired"), 0);
    shutdown_v1(&addr);
    daemon.join().expect("daemon thread");
}
