//! End-to-end service contract tests: a real daemon on a real socket.
//!
//! These are the acceptance criteria of the serving layer:
//!
//! * responses are byte-identical to the in-process pipeline, with the
//!   translation validator's verdict attached;
//! * a queue-depth-1 daemon under slow requests sheds excess load with
//!   `overloaded` frames instead of queueing it;
//! * a request that panics the pipeline yields an `error` frame while
//!   the daemon keeps serving;
//! * a warm 4-thread daemon sustains >= 1000 reorder requests/sec with
//!   p99 under the configured deadline;
//! * a `shutdown` frame drains the daemon cleanly.

use std::time::Duration;

use br_ir::print_module;
use br_minic::{compile, HeuristicSet, Options};
use br_reorder::{reorder_module, ReorderOptions};
use br_serve::proto::{section, Client, Frame, Section};
use br_serve::server::{ServeConfig, Server};
use br_serve::{run_loadgen, LoadgenConfig};

/// Start a daemon on an ephemeral port; returns the server thread's
/// join handle and the bound address.
fn start_daemon(mut config: ServeConfig) -> (std::thread::JoinHandle<()>, String) {
    config.addr = "127.0.0.1:0".to_string();
    let server = Server::start(config).expect("bind ephemeral port");
    let addr = server.addr().to_string();
    let handle = std::thread::spawn(move || server.wait().expect("clean shutdown"));
    (handle, addr)
}

fn shutdown(addr: &str) -> Frame {
    let mut client = Client::connect(addr).expect("connect for shutdown");
    client
        .call(&Frame::text("shutdown", ""))
        .expect("shutdown acknowledged")
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("br-serve-it-{tag}-{}", std::process::id()))
}

fn workload_module(name: &str) -> br_ir::Module {
    let w = br_workloads::by_name(name).expect("workload exists");
    let mut m =
        compile(w.source, &Options::with_heuristics(HeuristicSet::SET_I)).expect("compiles");
    br_opt::optimize(&mut m);
    m
}

fn reorder_request(module: &br_ir::Module, train: &[u8]) -> Frame {
    Frame::structured(
        "reorder",
        &[
            Section {
                name: "module",
                bytes: print_module(module).as_bytes(),
            },
            Section {
                name: "train",
                bytes: train,
            },
        ],
    )
}

#[test]
fn served_reorder_is_byte_identical_to_in_process_pipeline() {
    let (daemon, addr) = start_daemon(ServeConfig {
        threads: 2,
        cache_dir: None,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(&addr).expect("connect");
    for name in ["wc", "cb", "grep"] {
        let module = workload_module(name);
        let train = br_workloads::by_name(name).unwrap().training_input(512);
        let response = client
            .call(&reorder_request(&module, &train))
            .expect("call succeeds");
        assert_eq!(response.kind, "ok", "{name}: {}", response.payload_text());
        let sections = response.sections().expect("structured response");
        let served = section(&sections, "module").unwrap().text().unwrap();

        let opts = ReorderOptions {
            validate: true,
            ..ReorderOptions::default()
        };
        let local = reorder_module(&module, &train, &opts).expect("pipeline runs");
        assert_eq!(
            served,
            print_module(&local.module),
            "{name}: daemon and in-process pipeline must agree bit-for-bit"
        );

        // The verdict travels with the module, and it is clean.
        let verdict = section(&sections, "validation").unwrap().text().unwrap();
        assert!(verdict.starts_with("proven "), "{name}: {verdict}");
        assert!(verdict.contains("failures 0"), "{name}: {verdict}");
        let local_summary = local.validation.expect("validate on");
        assert!(
            verdict.contains(&format!("proven {}", local_summary.proven)),
            "{name}: proven count must match in-process run: {verdict}"
        );
    }
    assert_eq!(shutdown(&addr).kind, "ok");
    daemon.join().expect("daemon thread");
}

#[test]
fn queue_depth_one_sheds_excess_load_with_overloaded_frames() {
    let (daemon, addr) = start_daemon(ServeConfig {
        threads: 1,
        queue: 1,
        deadline_ms: 0,
        cache_dir: None,
        debug_endpoints: true,
        ..ServeConfig::default()
    });
    // Wedge the single worker, then fill the depth-1 queue.
    let occupy = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr).expect("connect");
            c.call(&Frame::text("sleep", "800")).expect("slow request")
        })
    };
    std::thread::sleep(Duration::from_millis(200));
    let queued = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr).expect("connect");
            c.call(&Frame::text("sleep", "10")).expect("queued request")
        })
    };
    std::thread::sleep(Duration::from_millis(200));
    // Worker busy, queue full: this request must be shed, immediately.
    let mut c = Client::connect(&addr).expect("connect");
    let response = c.call(&Frame::text("sleep", "10")).expect("shed request");
    assert_eq!(response.kind, "overloaded", "{}", response.payload_text());

    // The wedged and queued requests still complete normally.
    assert_eq!(occupy.join().expect("occupier").kind, "ok");
    assert_eq!(queued.join().expect("queued").kind, "ok");
    assert_eq!(shutdown(&addr).kind, "ok");
    daemon.join().expect("daemon thread");
}

#[test]
fn pipeline_panic_yields_error_frame_and_daemon_survives() {
    let (daemon, addr) = start_daemon(ServeConfig {
        threads: 2,
        cache_dir: None,
        debug_endpoints: true,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(&addr).expect("connect");
    let response = client
        .call(&Frame::text("panic", "poisoned module"))
        .expect("panic answered, not dropped");
    assert_eq!(response.kind, "error");
    assert!(
        response.payload_text().contains("poisoned module"),
        "{}",
        response.payload_text()
    );

    // Same connection, next request: the daemon is still serving.
    let module = workload_module("wc");
    let train = br_workloads::by_name("wc").unwrap().training_input(512);
    let ok = client
        .call(&reorder_request(&module, &train))
        .expect("daemon survived the panic");
    assert_eq!(ok.kind, "ok", "{}", ok.payload_text());
    assert_eq!(shutdown(&addr).kind, "ok");
    daemon.join().expect("daemon thread");
}

#[test]
fn health_and_metrics_report_live_state() {
    let (daemon, addr) = start_daemon(ServeConfig {
        threads: 1,
        cache_dir: None,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(&addr).expect("connect");
    let health = client.call(&Frame::text("health", "")).expect("health");
    assert_eq!(health.kind, "ok");
    assert_eq!(health.payload_text(), "ok\n");

    let module = workload_module("wc");
    let train = br_workloads::by_name("wc").unwrap().training_input(256);
    client
        .call(&reorder_request(&module, &train))
        .expect("reorder");
    let metrics = client.call(&Frame::text("metrics", "")).expect("metrics");
    let text = metrics.payload_text();
    assert!(
        text.contains("br_serve_requests_total{kind=\"reorder\"} 1"),
        "{text}"
    );
    assert!(text.contains("br_serve_ok_total 1"), "{text}");
    assert!(text.contains("br_serve_latency_us_p99"), "{text}");
    assert_eq!(shutdown(&addr).kind, "ok");
    daemon.join().expect("daemon thread");
}

#[test]
fn warm_daemon_sustains_1000_reorder_requests_per_second() {
    let deadline_ms = 5_000;
    let cache = temp_dir("throughput");
    let _ = std::fs::remove_dir_all(&cache);
    let (daemon, addr) = start_daemon(ServeConfig {
        threads: 4,
        queue: 256,
        deadline_ms,
        cache_dir: Some(cache.clone()),
        ..ServeConfig::default()
    });

    // Warm pass: populate the response cache (pipeline runs once per
    // distinct request; debug builds also pay validation here).
    let warm = LoadgenConfig {
        addr: addr.clone(),
        connections: 4,
        passes: 1,
        train_size: 512,
        input_size: 512,
        reorder_only: true,
        shutdown_after: false,
        ..LoadgenConfig::default()
    };
    let cold_report = run_loadgen(&warm).expect("warm-up pass");
    assert_eq!(cold_report.errors, 0, "{:?}", cold_report.error_samples);

    // Measured pass: the same corpus, many passes, all cache hits.
    let measured = LoadgenConfig { passes: 30, ..warm };
    let report = run_loadgen(&measured).expect("measured pass");
    assert_eq!(report.errors, 0, "{:?}", report.error_samples);
    assert_eq!(report.shed, 0, "shed under closed-loop warm load");
    assert!(
        report.throughput() >= 1000.0,
        "sustained {:.1} req/s < 1000 over {} requests in {:.2?}",
        report.throughput(),
        report.sent,
        report.elapsed
    );
    let p99 = report.latency.quantile(0.99).expect("latency recorded");
    assert!(
        p99 < Duration::from_millis(deadline_ms),
        "p99 {p99:?} breaches the {deadline_ms} ms deadline"
    );
    assert_eq!(shutdown(&addr).kind, "ok");
    daemon.join().expect("daemon thread");
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn deadline_expired_in_queue_is_an_error_frame() {
    let (daemon, addr) = start_daemon(ServeConfig {
        threads: 1,
        queue: 8,
        deadline_ms: 150,
        cache_dir: None,
        debug_endpoints: true,
        ..ServeConfig::default()
    });
    // Wedge the worker past the deadline of anything queued behind it.
    let occupy = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr).expect("connect");
            c.call(&Frame::text("sleep", "600")).expect("slow request")
        })
    };
    std::thread::sleep(Duration::from_millis(200));
    let mut c = Client::connect(&addr).expect("connect");
    let response = c.call(&Frame::text("sleep", "10")).expect("late request");
    assert_eq!(response.kind, "error", "{}", response.payload_text());
    assert!(
        response.payload_text().contains("deadline expired"),
        "{}",
        response.payload_text()
    );
    assert_eq!(occupy.join().expect("occupier").kind, "ok");
    assert_eq!(shutdown(&addr).kind, "ok");
    daemon.join().expect("daemon thread");
}

#[test]
fn graceful_drain_answers_in_flight_work_and_counts_are_consistent() {
    let (daemon, addr) = start_daemon(ServeConfig {
        threads: 2,
        cache_dir: None,
        ..ServeConfig::default()
    });
    let module = workload_module("wc");
    let train = br_workloads::by_name("wc").unwrap().training_input(256);
    let mut client = Client::connect(&addr).expect("connect");
    let ok = client
        .call(&reorder_request(&module, &train))
        .expect("reorder");
    assert_eq!(ok.kind, "ok");
    let bye = shutdown(&addr);
    assert_eq!(bye.kind, "ok");
    assert_eq!(bye.payload_text(), "draining\n");
    daemon.join().expect("daemon drains cleanly");
    // A post-drain connect must fail: the listener is gone.
    std::thread::sleep(Duration::from_millis(50));
    assert!(
        Client::connect(&addr).is_err(),
        "listener closed after drain"
    );
}
