//! Content-addressed module interning — the server half of `brs2`
//! delta upload.
//!
//! A repeat client sends the 8-byte FNV-1a hash of a module's printed
//! IR instead of the IR itself ([`crate::proto2::module_hash`]); the
//! shard resolves the hash here. The table is two-level:
//!
//! * an in-memory map for the hot path (one lock, `Arc<str>` bodies so
//!   resolution never copies module text), and
//! * a write-through to the shard's [`ArtifactCache`] directory, so an
//!   interned module survives a daemon restart and is visible to any
//!   process sharing the cache directory — the same shared read path
//!   the sweep engine and the response cache already use.
//!
//! A hash that resolves nowhere is *not* an error at this layer: the
//! endpoint turns it into a `need-module` response and the client
//! re-uploads the body once. Every full body that passes through a
//! shard is interned on sight, so `brs1` traffic also populates the
//! table for later `brs2` clients.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use br_sweep::cache::{fnv1a, ArtifactCache};

use crate::proto2::module_hash;

/// Disk key for an interned module body: distinct domain from response
/// artifacts, keyed only by the content hash itself.
fn disk_key(hash: u64) -> u64 {
    fnv1a(&[b"intern", &hash.to_le_bytes()])
}

/// The intern table. One per daemon, shared by every worker.
pub struct ModuleIntern {
    map: Mutex<HashMap<u64, Arc<str>>>,
    /// Hash resolutions served from memory or disk.
    pub hits: AtomicU64,
    /// Hash resolutions that failed (answered `need-module`).
    pub misses: AtomicU64,
}

impl Default for ModuleIntern {
    fn default() -> ModuleIntern {
        ModuleIntern {
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

impl ModuleIntern {
    /// Intern a module body, returning its content hash. Idempotent;
    /// the disk write happens only on first sight.
    pub fn insert(&self, text: &str, cache: &ArtifactCache) -> u64 {
        let hash = module_hash(text.as_bytes());
        let mut map = self.map.lock().expect("intern map poisoned");
        if map.contains_key(&hash) {
            return hash;
        }
        map.insert(hash, Arc::from(text));
        drop(map);
        cache.put(disk_key(hash), text);
        hash
    }

    /// Resolve a content hash to its module body, falling back to the
    /// shared cache directory (and promoting the body into memory).
    pub fn resolve(&self, hash: u64, cache: &ArtifactCache) -> Option<Arc<str>> {
        if let Some(text) = self
            .map
            .lock()
            .expect("intern map poisoned")
            .get(&hash)
            .cloned()
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(text);
        }
        // The disk lookup must verify content: the cache directory is
        // shared and a torn or foreign file must not impersonate a
        // module.
        if let Some(text) = cache.get(disk_key(hash)) {
            if module_hash(text.as_bytes()) == hash {
                let text: Arc<str> = Arc::from(text.as_str());
                self.map
                    .lock()
                    .expect("intern map poisoned")
                    .insert(hash, Arc::clone(&text));
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(text);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interned_modules_resolve_from_memory_and_disk() {
        let dir = std::env::temp_dir().join(format!("br-serve-intern-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ArtifactCache::at(&dir).expect("cache dir");
        let intern = ModuleIntern::default();
        let text = "func main() {\n}\n";
        let hash = intern.insert(text, &cache);
        assert_eq!(hash, module_hash(text.as_bytes()));
        assert_eq!(intern.resolve(hash, &cache).as_deref(), Some(text));
        assert!(intern.resolve(hash ^ 1, &cache).is_none());

        // A fresh table (simulating a restart) resolves via the shared
        // cache directory.
        let reborn = ModuleIntern::default();
        assert_eq!(reborn.resolve(hash, &cache).as_deref(), Some(text));
        // And a second resolve is served from memory (hit counter 2).
        assert_eq!(reborn.resolve(hash, &cache).as_deref(), Some(text));
        assert_eq!(reborn.hits.load(Ordering::Relaxed), 2);
        assert_eq!(reborn.misses.load(Ordering::Relaxed), 0);

        // A tampered disk entry is rejected, not trusted.
        let tampered = ModuleIntern::default();
        cache.put(super::disk_key(hash), "func evil() {\n}\n");
        assert!(tampered.resolve(hash, &cache).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
