//! The daemon's compute endpoints: `reorder`, `measure`, `profile`.
//!
//! Each handler is a pure function from a request frame to a response
//! frame — no connection state, no global state beyond the response
//! cache — which is what lets the worker pool run them on any thread
//! and `catch_unwind` treat a panic as just another error response.
//!
//! Payloads reuse the repo's existing text formats: modules travel as
//! printed IR (`br_ir::print_module` / `parse_module`), results as CSV
//! rows and the validator's `Display` lines. See [`crate::proto`] for
//! the framing.
//!
//! **Response cache.** Responses are content-addressed in a
//! [`br_sweep::cache::ArtifactCache`] — the same store, key scheme
//! (length-delimited FNV-1a) and format-version discipline the sweep
//! engine uses — keyed by (endpoint, module text, options, input
//! bytes). The pipeline is deterministic, so two requests that agree on
//! those bytes have byte-identical responses; a warm daemon answers
//! repeat traffic without touching the VM at all.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use br_ir::{parse_module, print_module, Module};
use br_reorder::pipeline::SequenceKind;
use br_reorder::profile::plan_ranges;
use br_reorder::{
    detect_all, instrument_module, profiles_from_run, reorder_module, ReorderOptions,
    SequenceOutcome,
};
use br_sweep::cache::{fnv1a, ArtifactCache, FORMAT_VERSION};
use br_vm::{function_counters, pct_change, run, VmOptions};

use crate::intern::ModuleIntern;
use crate::metrics::Metrics;
use crate::proto::{section, Frame, OwnedSection, Section};
use crate::proto2::code;

/// A handled request: the `brs1` response frame plus the structured
/// metadata `brs2` carries in its header.
///
/// `frame` is the whole story for a `brs1` client. A `brs2` endpoint
/// additionally sends `code` (stable error taxonomy) and `cache_key`
/// (the response-cache key, which a cluster router uses to replicate
/// the entry to a successor shard) in the binary header — the payload
/// bytes stay identical across protocols.
pub struct Response {
    /// The response frame (`ok` or `error`), protocol-v1 shaped.
    pub frame: Frame,
    /// Stable response code ([`crate::proto2::code`]).
    pub code: u16,
    /// Response-cache key; 0 when the response is not cacheable.
    pub cache_key: u64,
}

impl Response {
    /// A successful response.
    pub fn ok(payload: Vec<u8>, cache_key: u64) -> Response {
        Response {
            frame: Frame {
                kind: "ok".to_string(),
                payload,
            },
            code: code::OK,
            cache_key,
        }
    }

    /// An error response with a stable code.
    pub fn error(code: u16, message: &str) -> Response {
        Response {
            frame: Frame::text("error", message),
            code,
            cache_key: 0,
        }
    }
}

/// The shared endpoint state: response cache, metrics, debug gating.
pub struct Endpoints {
    cache: ArtifactCache,
    metrics: Arc<Metrics>,
    /// Content-addressed module intern table (`brs2` delta upload).
    pub intern: ModuleIntern,
    /// Expose the `sleep`/`panic` fault-injection endpoints (tests and
    /// operational drills only; off in normal service).
    pub debug_endpoints: bool,
}

/// Everything the VM contributes to a measure response, fixed here so
/// cache keys change when measurement semantics do.
fn measure_vm() -> (VmOptions, &'static str) {
    (VmOptions::default(), "vm=default ijump=3 preds=[]")
}

impl Endpoints {
    /// Endpoint state backed by a response cache at `cache_dir`
    /// (`None` disables caching).
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the cache directory cannot be
    /// created.
    pub fn new(
        cache_dir: Option<&std::path::Path>,
        metrics: Arc<Metrics>,
    ) -> std::io::Result<Endpoints> {
        let cache = match cache_dir {
            Some(dir) => ArtifactCache::at(dir)?,
            None => ArtifactCache::disabled(),
        };
        Ok(Endpoints {
            cache,
            metrics,
            intern: ModuleIntern::default(),
            debug_endpoints: false,
        })
    }

    /// Dispatch one compute request. Unknown kinds and malformed
    /// payloads come back as `error` frames; this function never
    /// panics on bad input (a panic here is a bug, and the pool still
    /// contains it).
    ///
    /// Content-hash pseudo-sections (`module#`, `original#`,
    /// `reordered#` — how `brs2` delta upload reaches the handler) are
    /// resolved against the intern table *before* anything else, so the
    /// response cache is keyed over resolved payloads and `brs1` and
    /// `brs2` clients share cache entries byte-for-byte.
    pub fn handle(&self, request: &Frame) -> Response {
        let request = match self.resolve_hashes(request) {
            Ok(resolved) => resolved,
            Err(response) => return response,
        };
        let result = match request.kind.as_str() {
            "reorder" => self.cached(&request, "reorder", reorder_endpoint),
            "measure" => self.cached(&request, "measure", measure_endpoint),
            "profile" => self.cached(&request, "profile", profile_endpoint),
            "cacheput" => return self.cacheput(&request),
            "sleep" if self.debug_endpoints => {
                return match sleep_endpoint(&request) {
                    Ok(frame) => Response {
                        frame,
                        code: code::OK,
                        cache_key: 0,
                    },
                    Err(message) => Response::error(code::BAD_REQUEST, &message),
                }
            }
            "panic" if self.debug_endpoints => {
                panic!("fault injection: {}", request.payload_text())
            }
            other => Err(format!("unknown request kind {other:?}")),
        };
        match result {
            Ok(response) => response,
            Err(message) => Response::error(code::BAD_REQUEST, &message),
        }
    }

    /// Resolve `name#` hash pseudo-sections to interned bodies and
    /// intern every full module body on sight. Requests without hash
    /// sections pass through with their payload untouched.
    fn resolve_hashes(&self, request: &Frame) -> Result<Frame, Response> {
        // `name# <len>\n` can only appear if some section name ends in
        // '#'; a cheap scan keeps the common full-body path parse-free.
        let structured = matches!(request.kind.as_str(), "reorder" | "measure" | "profile");
        if !structured {
            return Ok(request.clone());
        }
        let Ok(sections) = request.sections() else {
            // Leave malformed payloads for the endpoint's own error.
            return Ok(request.clone());
        };
        let mut missing: Vec<u64> = Vec::new();
        let mut resolved: Vec<(String, Vec<u8>)> = Vec::with_capacity(sections.len());
        let mut any_hash = false;
        for s in &sections {
            if let Some(body_name) = s.name.strip_suffix('#') {
                any_hash = true;
                if !matches!(body_name, "module" | "original" | "reordered") {
                    return Err(Response::error(
                        code::BAD_REQUEST,
                        &format!("unknown hash section {:?}", s.name),
                    ));
                }
                let bytes: [u8; 8] = match s.bytes.as_slice().try_into() {
                    Ok(bytes) => bytes,
                    Err(_) => {
                        return Err(Response::error(
                            code::BAD_REQUEST,
                            &format!("hash section {:?} must be exactly 8 bytes", s.name),
                        ))
                    }
                };
                let hash = u64::from_le_bytes(bytes);
                match self.intern.resolve(hash, &self.cache) {
                    Some(text) => {
                        resolved.push((body_name.to_string(), text.as_bytes().to_vec()));
                    }
                    None => missing.push(hash),
                }
            } else {
                if matches!(s.name.as_str(), "module" | "original" | "reordered") {
                    if let Ok(text) = s.text() {
                        self.intern.insert(text, &self.cache);
                    }
                }
                resolved.push((s.name.clone(), s.bytes.clone()));
            }
        }
        if !missing.is_empty() {
            self.metrics.need_module.fetch_add(1, Ordering::Relaxed);
            let list: Vec<String> = missing.iter().map(|h| format!("{h:016x}")).collect();
            return Err(Response::error(
                code::NEED_MODULE,
                &format!("need-module {}", list.join(" ")),
            ));
        }
        if !any_hash {
            return Ok(request.clone());
        }
        let borrowed: Vec<Section<'_>> = resolved
            .iter()
            .map(|(name, bytes)| Section { name, bytes })
            .collect();
        Ok(Frame::structured(&request.kind, &borrowed))
    }

    /// `cacheput`: install a replicated response-cache entry (cluster
    /// routers push hot entries to the successor shard through this).
    fn cacheput(&self, request: &Frame) -> Response {
        let parse = || -> Result<(u64, String), String> {
            let sections = request.sections()?;
            let key = u64::from_str_radix(section(&sections, "key")?.text()?.trim(), 16)
                .map_err(|_| "key section must be 16 hex digits".to_string())?;
            let body = section(&sections, "body")?.text()?.to_string();
            Ok((key, body))
        };
        match parse() {
            Ok((key, body)) => {
                self.cache.put(key, &body);
                self.metrics.replicated.fetch_add(1, Ordering::Relaxed);
                Response::ok(b"replicated\n".to_vec(), key)
            }
            Err(message) => Response::error(code::BAD_REQUEST, &message),
        }
    }

    /// Run `endpoint` through the response cache: key over the whole
    /// (hash-resolved) request payload, store the whole response
    /// payload. The key travels back on the response so a router can
    /// replicate the entry without re-deriving it.
    fn cached(
        &self,
        request: &Frame,
        tag: &str,
        endpoint: fn(&[OwnedSection]) -> Result<Vec<u8>, String>,
    ) -> Result<Response, String> {
        let key = fnv1a(&[
            b"serve",
            FORMAT_VERSION.as_bytes(),
            tag.as_bytes(),
            &request.payload,
        ]);
        if let Some(text) = self.cache.get(key) {
            self.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Response::ok(text.into_bytes(), key));
        }
        self.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
        let sections = request.sections()?;
        let payload = endpoint(&sections)?;
        // Responses are pure text (IR, CSV, validator lines), so the
        // string store the sweep cache offers fits as-is.
        if let Ok(text) = std::str::from_utf8(&payload) {
            self.cache.put(key, text);
        }
        Ok(Response::ok(payload, key))
    }
}

/// Parse and structurally verify a module section.
fn module_section(sections: &[OwnedSection], name: &str) -> Result<Module, String> {
    let text = section(sections, name)?.text()?;
    let module =
        parse_module(text).map_err(|e| format!("section {name}: IR parse error at {e}"))?;
    br_ir::verify_module(&module)
        .map_err(|e| format!("section {name}: module fails verification: {e}"))?;
    Ok(module)
}

/// Reorder options from the optional `options` section: lines of
/// `exhaustive|common|static|opttree 0|1`. Validation is not a knob — the
/// service contract is that every response carries a verdict, and the
/// pipeline runs in `certify` mode so every committed reordering also
/// carries a proof certificate whose hash the response exposes.
fn parse_options(sections: &[OwnedSection]) -> Result<ReorderOptions, String> {
    let mut opts = ReorderOptions {
        validate: true,
        certify: true,
        ..ReorderOptions::default()
    };
    let Ok(options) = section(sections, "options") else {
        return Ok(opts);
    };
    for line in options.text()?.lines() {
        let (key, value) = line
            .split_once(' ')
            .ok_or_else(|| format!("bad options line {line:?}"))?;
        let on = match value {
            "0" => false,
            "1" => true,
            _ => return Err(format!("bad options value {line:?} (expected 0 or 1)")),
        };
        match key {
            "exhaustive" => opts.exhaustive = on,
            "common" => opts.common_successor = on,
            "static" => opts.static_heuristic = on,
            "opttree" => opts.opt_tree = on,
            _ => return Err(format!("unknown option {key:?}")),
        }
    }
    Ok(opts)
}

/// `reorder`: printed-IR module + training bytes in; reordered module,
/// per-sequence records, the translation validator's verdict, and one
/// `func head sig` line per proof certificate out — the client can
/// demand the full certificate be re-derived locally and compare
/// content addresses.
fn reorder_endpoint(sections: &[OwnedSection]) -> Result<Vec<u8>, String> {
    let module = module_section(sections, "module")?;
    let train = &section(sections, "train")?.bytes;
    let opts = parse_options(sections)?;
    let report =
        reorder_module(&module, train, &opts).map_err(|t| format!("training run trapped: {t}"))?;

    let mut sequences = String::new();
    for s in &report.sequences {
        let kind = match s.kind {
            SequenceKind::RangeConditions => "range",
            SequenceKind::CommonSuccessor => "common",
        };
        let outcome = match s.outcome {
            SequenceOutcome::Reordered {
                new_branches,
                new_compares,
                original_cost,
                new_cost,
            } => format!("reordered {new_branches} {new_compares} {original_cost:?} {new_cost:?}"),
            SequenceOutcome::NeverExecuted => "never".to_string(),
            SequenceOutcome::NoImprovement => "noimp".to_string(),
        };
        sequences.push_str(&format!(
            "{kind} {} {} {} {} {} {} {outcome}\n",
            s.structure,
            s.func.0,
            s.head.0,
            s.original_branches,
            s.conditions,
            s.training_executions
        ));
    }

    let summary = report
        .validation
        .as_ref()
        .ok_or("internal error: pipeline returned no validation summary")?;
    let mut validation = format!(
        "proven {} value_classes {} failures {}\n",
        summary.proven,
        summary.value_classes,
        summary.failures.len()
    );
    for f in &summary.failures {
        validation.push_str(&format!("{f}\n"));
    }

    let mut certs = String::new();
    for c in &summary.certificates {
        certs.push_str(&format!("{} {} {:016x}\n", c.func.0, c.head.0, c.sig));
    }

    Ok(Frame::structured(
        "ok",
        &[
            Section {
                name: "module",
                bytes: print_module(&report.module).as_bytes(),
            },
            Section {
                name: "sequences",
                bytes: sequences.as_bytes(),
            },
            Section {
                name: "validation",
                bytes: validation.as_bytes(),
            },
            Section {
                name: "certs",
                bytes: certs.as_bytes(),
            },
        ],
    )
    .payload)
}

/// `measure`: two printed-IR modules plus one input; both run on the
/// VM fast path and the Table-4 event counters come back as CSV deltas.
/// After the 11 module-wide counters, one `fn:<name>:taken_branches`
/// and one `fn:<name>:delay_stalls` row per function attribute the
/// layout-sensitive events to the function that paid them. Divergent
/// observable behaviour (exit or output) is an error — the daemon
/// refuses to measure a miscompile as if it were a speedup.
fn measure_endpoint(sections: &[OwnedSection]) -> Result<Vec<u8>, String> {
    let original = module_section(sections, "original")?;
    let reordered = module_section(sections, "reordered")?;
    let input = &section(sections, "input")?.bytes;
    let (vm, _) = measure_vm();
    let a = run(&original, input, &vm).map_err(|t| format!("original run trapped: {t}"))?;
    let b = run(&reordered, input, &vm).map_err(|t| format!("reordered run trapped: {t}"))?;
    if a.exit != b.exit || a.output != b.output {
        return Err(format!(
            "observable behaviour differs: exit {} vs {}, {} vs {} output bytes",
            a.exit,
            b.exit,
            a.output.len(),
            b.output.len()
        ));
    }
    let mut csv = String::from("counter,original,reordered,pct_change\n");
    let rows: [(&str, u64, u64); 11] = [
        ("insts", a.stats.insts, b.stats.insts),
        (
            "cond_branches",
            a.stats.cond_branches,
            b.stats.cond_branches,
        ),
        (
            "taken_branches",
            a.stats.taken_branches,
            b.stats.taken_branches,
        ),
        ("uncond_jumps", a.stats.uncond_jumps, b.stats.uncond_jumps),
        (
            "indirect_jumps",
            a.stats.indirect_jumps,
            b.stats.indirect_jumps,
        ),
        ("compares", a.stats.compares, b.stats.compares),
        ("loads", a.stats.loads, b.stats.loads),
        ("stores", a.stats.stores, b.stats.stores),
        ("calls", a.stats.calls, b.stats.calls),
        ("returns", a.stats.returns, b.stats.returns),
        ("delay_stalls", a.stats.delay_stalls, b.stats.delay_stalls),
    ];
    for (name, orig, reord) in rows {
        csv.push_str(&format!(
            "{name},{orig},{reord},{:.4}\n",
            pct_change(orig, reord)
        ));
    }
    // Per-function layout counters after the global rows, so existing
    // clients that read the first 12 lines keep working. Functions are
    // paired by name; the pipeline never adds or removes functions, but
    // a function absent on one side simply counts zero there.
    let fa = function_counters(&original, &a);
    let fb = function_counters(&reordered, &b);
    for ca in &fa {
        let (taken_b, stalls_b) = fb
            .iter()
            .find(|cb| cb.name == ca.name)
            .map_or((0, 0), |cb| (cb.taken_branches, cb.delay_stalls));
        csv.push_str(&format!(
            "fn:{}:taken_branches,{},{},{:.4}\n",
            ca.name,
            ca.taken_branches,
            taken_b,
            pct_change(ca.taken_branches, taken_b)
        ));
        csv.push_str(&format!(
            "fn:{}:delay_stalls,{},{},{:.4}\n",
            ca.name,
            ca.delay_stalls,
            stalls_b,
            pct_change(ca.delay_stalls, stalls_b)
        ));
    }
    Ok(Frame::structured(
        "ok",
        &[Section {
            name: "csv",
            bytes: csv.as_bytes(),
        }],
    )
    .payload)
}

/// `profile`: instrument every detected sequence, run on the supplied
/// input, and return the per-range exit counts as CSV.
fn profile_endpoint(sections: &[OwnedSection]) -> Result<Vec<u8>, String> {
    let module = module_section(sections, "module")?;
    let input = &section(sections, "input")?.bytes;
    let mut instrumented = module.clone();
    let detections = detect_all(&instrumented);
    let ids = instrument_module(&mut instrumented, &detections);
    let out = run(&instrumented, input, &VmOptions::default())
        .map_err(|t| format!("profiling run trapped: {t}"))?;
    let profiles = profiles_from_run(&ids, &out.profiles);
    let mut csv = String::from("seq,func,head,range_lo,range_hi,count\n");
    for (i, (fid, seq)) in detections.iter().enumerate() {
        for (j, (range, _, _)) in plan_ranges(seq).iter().enumerate() {
            csv.push_str(&format!(
                "{i},{},{},{},{},{}\n",
                fid.0, seq.head.0, range.lo, range.hi, profiles[i].counts[j]
            ));
        }
    }
    Ok(Frame::structured(
        "ok",
        &[Section {
            name: "csv",
            bytes: csv.as_bytes(),
        }],
    )
    .payload)
}

/// Debug-only: hold a worker for N milliseconds — the knob tests and
/// drills use to wedge the pool and watch admission control shed load.
fn sleep_endpoint(request: &Frame) -> Result<Frame, String> {
    let ms: u64 = request
        .payload_text()
        .trim()
        .parse()
        .map_err(|_| "sleep payload must be milliseconds".to_string())?;
    std::thread::sleep(std::time::Duration::from_millis(ms.min(10_000)));
    Ok(Frame::text("ok", "slept"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_minic::{compile, HeuristicSet, Options};

    fn endpoints(cache: bool) -> (Endpoints, Arc<Metrics>, Option<std::path::PathBuf>) {
        let metrics = Arc::new(Metrics::default());
        let dir = cache.then(|| {
            std::env::temp_dir().join(format!(
                "br-serve-ep-test-{}-{:p}",
                std::process::id(),
                &metrics
            ))
        });
        let e = Endpoints::new(dir.as_deref(), Arc::clone(&metrics)).expect("cache dir");
        (e, metrics, dir)
    }

    fn wc_module() -> Module {
        let w = br_workloads::by_name("wc").expect("wc exists");
        let mut m =
            compile(w.source, &Options::with_heuristics(HeuristicSet::SET_I)).expect("wc compiles");
        br_opt::optimize(&mut m);
        m
    }

    fn reorder_request(module: &Module, train: &[u8]) -> Frame {
        Frame::structured(
            "reorder",
            &[
                Section {
                    name: "module",
                    bytes: print_module(module).as_bytes(),
                },
                Section {
                    name: "train",
                    bytes: train,
                },
            ],
        )
    }

    #[test]
    fn reorder_matches_in_process_pipeline() {
        let (e, metrics, dir) = endpoints(true);
        let module = wc_module();
        let train = br_workloads::by_name("wc").unwrap().training_input(512);
        let request = reorder_request(&module, &train);

        let response = e.handle(&request).frame;
        assert_eq!(response.kind, "ok", "{}", response.payload_text());
        let sections = response.sections().unwrap();
        let served = section(&sections, "module").unwrap().text().unwrap();

        let opts = ReorderOptions {
            validate: true,
            certify: true,
            ..ReorderOptions::default()
        };
        let local = reorder_module(&module, &train, &opts).expect("pipeline runs");
        assert_eq!(
            served,
            print_module(&local.module),
            "service must be bit-for-bit"
        );
        let verdict = section(&sections, "validation").unwrap().text().unwrap();
        assert!(verdict.contains("failures 0"), "{verdict}");

        // Certificate hashes: one line per committed reordering, equal
        // to the content addresses an in-process certify run derives.
        let local_summary = local.validation.as_ref().unwrap();
        assert!(
            !local_summary.certificates.is_empty(),
            "wc must commit at least one certified reordering"
        );
        let certs = section(&sections, "certs").unwrap().text().unwrap();
        assert_eq!(certs.lines().count(), local_summary.certificates.len());
        for (line, c) in certs.lines().zip(&local_summary.certificates) {
            assert_eq!(line, format!("{} {} {:016x}", c.func.0, c.head.0, c.sig));
        }

        // Identical request → cache hit with the identical payload.
        let again = e.handle(&request).frame;
        assert_eq!(again.payload, response.payload);
        assert_eq!(metrics.cache_hits.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.cache_misses.load(Ordering::Relaxed), 1);
        if let Some(dir) = dir {
            let _ = std::fs::remove_dir_all(dir);
        }
    }

    #[test]
    fn measure_reports_deltas_and_rejects_divergence() {
        let (e, _metrics, _) = endpoints(false);
        let module = wc_module();
        let w = br_workloads::by_name("wc").unwrap();
        let report = reorder_module(&module, &w.training_input(512), &ReorderOptions::default())
            .expect("pipeline runs");
        let input = w.test_input(768);
        let request = Frame::structured(
            "measure",
            &[
                Section {
                    name: "original",
                    bytes: print_module(&module).as_bytes(),
                },
                Section {
                    name: "reordered",
                    bytes: print_module(&report.module).as_bytes(),
                },
                Section {
                    name: "input",
                    bytes: &input,
                },
            ],
        );
        let response = e.handle(&request).frame;
        assert_eq!(response.kind, "ok", "{}", response.payload_text());
        let sections = response.sections().unwrap();
        let csv = section(&sections, "csv").unwrap().text().unwrap();
        assert!(csv.starts_with("counter,original,reordered,pct_change\n"));
        // Header + 11 global counters, then 2 per-function rows per
        // module function.
        assert_eq!(
            csv.lines().count(),
            12 + 2 * module.functions.len(),
            "{csv}"
        );
        assert!(csv.contains("\ncond_branches,"), "{csv}");

        // Two genuinely different programs: measurement must refuse.
        let other = {
            let w2 = br_workloads::by_name("cb").expect("cb exists");
            let mut m = compile(w2.source, &Options::with_heuristics(HeuristicSet::SET_I))
                .expect("cb compiles");
            br_opt::optimize(&mut m);
            m
        };
        let bad = Frame::structured(
            "measure",
            &[
                Section {
                    name: "original",
                    bytes: print_module(&module).as_bytes(),
                },
                Section {
                    name: "reordered",
                    bytes: print_module(&other).as_bytes(),
                },
                Section {
                    name: "input",
                    bytes: &input,
                },
            ],
        );
        let refused = e.handle(&bad);
        assert_eq!(refused.frame.kind, "error");
        assert_eq!(refused.code, crate::proto2::code::BAD_REQUEST);
        assert!(refused.frame.payload_text().contains("behaviour differs"));
    }

    #[test]
    fn measure_per_function_rows_pin_schema_and_sum_to_globals() {
        let (e, _metrics, _) = endpoints(false);
        let module = wc_module();
        let w = br_workloads::by_name("wc").unwrap();
        let report = reorder_module(&module, &w.training_input(512), &ReorderOptions::default())
            .expect("pipeline runs");
        let input = w.test_input(768);
        let request = Frame::structured(
            "measure",
            &[
                Section {
                    name: "original",
                    bytes: print_module(&module).as_bytes(),
                },
                Section {
                    name: "reordered",
                    bytes: print_module(&report.module).as_bytes(),
                },
                Section {
                    name: "input",
                    bytes: &input,
                },
            ],
        );
        let response = e.handle(&request).frame;
        assert_eq!(response.kind, "ok", "{}", response.payload_text());
        let sections = response.sections().unwrap();
        let csv = section(&sections, "csv").unwrap().text().unwrap();

        // Schema: the global block is pinned — line 1 header, lines 2–12
        // the 11 counters in fixed order — and every later line is a
        // per-function row `fn:<name>:<counter>,orig,reord,pct`.
        let lines: Vec<&str> = csv.lines().collect();
        let global: Vec<&str> = lines[1..12]
            .iter()
            .map(|l| l.split(',').next().unwrap())
            .collect();
        assert_eq!(
            global,
            [
                "insts",
                "cond_branches",
                "taken_branches",
                "uncond_jumps",
                "indirect_jumps",
                "compares",
                "loads",
                "stores",
                "calls",
                "returns",
                "delay_stalls"
            ]
        );
        let fn_rows: Vec<&str> = lines[12..].to_vec();
        assert!(!fn_rows.is_empty(), "{csv}");
        assert!(
            fn_rows.iter().all(|l| l.starts_with("fn:")),
            "per-function rows must come last: {csv}"
        );
        for f in &module.functions {
            assert!(
                fn_rows
                    .iter()
                    .any(|l| l.starts_with(&format!("fn:{}:taken_branches,", f.name))),
                "{csv}"
            );
            assert!(
                fn_rows
                    .iter()
                    .any(|l| l.starts_with(&format!("fn:{}:delay_stalls,", f.name))),
                "{csv}"
            );
        }

        // The attribution is exact: per-function rows sum to the global
        // counter, per column.
        let field =
            |line: &str, col: usize| -> u64 { line.split(',').nth(col).unwrap().parse().unwrap() };
        let global_row = |name: &str| {
            lines
                .iter()
                .find(|l| l.split(',').next() == Some(name))
                .copied()
                .unwrap()
        };
        for (counter, col) in [("taken_branches", 1), ("taken_branches", 2)] {
            let total: u64 = fn_rows
                .iter()
                .filter(|l| l.contains(&format!(":{counter},")))
                .map(|l| field(l, col))
                .sum();
            assert_eq!(total, field(global_row(counter), col), "{csv}");
        }
        for (counter, col) in [("delay_stalls", 1), ("delay_stalls", 2)] {
            let total: u64 = fn_rows
                .iter()
                .filter(|l| l.contains(&format!(":{counter},")))
                .map(|l| field(l, col))
                .sum();
            assert_eq!(total, field(global_row(counter), col), "{csv}");
        }
    }

    #[test]
    fn profile_returns_range_counts() {
        let (e, _metrics, _) = endpoints(false);
        let module = wc_module();
        let w = br_workloads::by_name("wc").unwrap();
        let input = w.training_input(512);
        let request = Frame::structured(
            "profile",
            &[
                Section {
                    name: "module",
                    bytes: print_module(&module).as_bytes(),
                },
                Section {
                    name: "input",
                    bytes: &input,
                },
            ],
        );
        let response = e.handle(&request).frame;
        assert_eq!(response.kind, "ok", "{}", response.payload_text());
        let sections = response.sections().unwrap();
        let csv = section(&sections, "csv").unwrap().text().unwrap();
        assert!(csv.starts_with("seq,func,head,range_lo,range_hi,count\n"));
        // wc's classifier loop runs once per input byte, so some range
        // must have accumulated real counts.
        let total: u64 = csv
            .lines()
            .skip(1)
            .map(|l| l.rsplit(',').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert!(total > 0, "profiling counted nothing:\n{csv}");
    }

    #[test]
    fn malformed_requests_are_errors_not_panics() {
        let (e, _metrics, _) = endpoints(false);
        for request in [
            Frame::text("reorder", "not sections"),
            Frame::structured(
                "reorder",
                &[Section {
                    name: "module",
                    bytes: b"garbage ir",
                }],
            ),
            Frame::text("unknown-kind", ""),
            Frame::text("sleep", "5"), // debug endpoints off by default
        ] {
            let response = e.handle(&request);
            assert_eq!(response.frame.kind, "error", "{}", request.kind);
        }
    }

    #[test]
    fn options_section_is_honoured() {
        let (e, _metrics, _) = endpoints(false);
        let module = wc_module();
        let train = br_workloads::by_name("wc").unwrap().training_input(512);
        let request = Frame::structured(
            "reorder",
            &[
                Section {
                    name: "module",
                    bytes: print_module(&module).as_bytes(),
                },
                Section {
                    name: "train",
                    bytes: &train,
                },
                Section {
                    name: "options",
                    bytes: b"exhaustive 1\nstatic 0\nopttree 1",
                },
            ],
        );
        let response = e.handle(&request).frame;
        assert_eq!(response.kind, "ok", "{}", response.payload_text());
        let bad = Frame::structured(
            "reorder",
            &[
                Section {
                    name: "module",
                    bytes: print_module(&module).as_bytes(),
                },
                Section {
                    name: "train",
                    bytes: &train,
                },
                Section {
                    name: "options",
                    bytes: b"warp-speed 1",
                },
            ],
        );
        assert_eq!(e.handle(&bad).frame.kind, "error");
    }
}
