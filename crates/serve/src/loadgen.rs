//! Closed-loop load generator (`brc loadgen`).
//!
//! Replays the 17 paper workloads against a running daemon from N
//! concurrent connections. *Closed loop* means each connection keeps
//! exactly one request in flight — send, wait, repeat — so offered load
//! adapts to service capacity and the reported latency is honest
//! (open-loop generators overstate throughput and understate latency
//! the moment a queue forms).
//!
//! The corpus is built in-process: every workload is compiled and
//! optimized, giving one `reorder` request (module + training input)
//! and one `measure` request (original vs locally-reordered module +
//! test input) per workload. A pass is one trip through the corpus.
//!
//! `--smoke` is the CI contract: two passes, the second expected to be
//! served from the daemon's response cache, with hard assertions — zero
//! error frames, zero shed frames, and a nonzero cache-hit delta on the
//! warm pass.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use br_ir::print_module;
use br_minic::{compile, HeuristicSet, Options};
use br_reorder::{reorder_module, ReorderOptions};

use crate::metrics::{Histogram, Metrics};
use crate::proto::{Client, Frame, Section};

/// Load-generator configuration (`brc loadgen` flags map here 1:1).
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Daemon address.
    pub addr: String,
    /// Concurrent connections.
    pub connections: usize,
    /// Corpus passes per connection.
    pub passes: usize,
    /// Training-input bytes per reorder request.
    pub train_size: usize,
    /// Test-input bytes per measure request.
    pub input_size: usize,
    /// Send only `reorder` requests (skip `measure`), for a pure
    /// pipeline-throughput number.
    pub reorder_only: bool,
    /// Send a `shutdown` frame after the run (graceful drain).
    pub shutdown_after: bool,
}

impl Default for LoadgenConfig {
    fn default() -> LoadgenConfig {
        LoadgenConfig {
            addr: "127.0.0.1:7411".to_string(),
            connections: 4,
            passes: 4,
            train_size: 2048,
            input_size: 2048,
            reorder_only: false,
            shutdown_after: false,
        }
    }
}

impl LoadgenConfig {
    /// The CI smoke shape: 8 connections x 2 passes over the full
    /// mixed corpus at small input sizes — ≥ 64 requests in flight
    /// across the run, cold pass then warm pass.
    pub fn smoke(addr: &str) -> LoadgenConfig {
        LoadgenConfig {
            addr: addr.to_string(),
            connections: 8,
            passes: 1, // per measured pass; smoke runs two passes itself
            train_size: 512,
            input_size: 512,
            reorder_only: false,
            shutdown_after: false,
        }
    }
}

/// Aggregated results of one generator run.
#[derive(Debug)]
pub struct LoadgenReport {
    /// Requests sent.
    pub sent: u64,
    /// `ok` responses.
    pub ok: u64,
    /// `error` responses.
    pub errors: u64,
    /// `overloaded` responses.
    pub shed: u64,
    /// Wall-clock time of the measured passes.
    pub elapsed: Duration,
    /// Client-observed request latency.
    pub latency: Histogram,
    /// Up to three example error payloads, for diagnosis.
    pub error_samples: Vec<String>,
    /// Server cache hits gained during this run (from the daemon's
    /// metrics endpoint), when it was reachable.
    pub cache_hit_delta: Option<u64>,
}

impl LoadgenReport {
    /// Achieved requests/second.
    pub fn throughput(&self) -> f64 {
        self.sent as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Shed responses as a fraction of requests sent.
    pub fn shed_rate(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.shed as f64 / self.sent as f64
        }
    }

    /// Human-readable summary: throughput, shed rate, latency histogram.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "loadgen: {} requests in {:.2?} — {:.1} req/s; {} ok, {} error(s), {} shed ({:.2}% shed rate)",
            self.sent,
            self.elapsed,
            self.throughput(),
            self.ok,
            self.errors,
            self.shed,
            self.shed_rate() * 100.0,
        );
        for (label, q) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99)] {
            if let Some(d) = self.latency.quantile(q) {
                let _ = writeln!(out, "latency {label}: <= {d:.0?}");
            }
        }
        let counts = self.latency.snapshot();
        for (i, c) in counts.iter().enumerate() {
            if *c > 0 {
                let _ = writeln!(out, "  <= {:>9} us: {c}", Histogram::bucket_bound_us(i));
            }
        }
        if let Some(delta) = self.cache_hit_delta {
            let _ = writeln!(out, "server cache hits gained: {delta}");
        }
        for e in &self.error_samples {
            let _ = writeln!(out, "error sample: {e}");
        }
        out
    }
}

/// One prepared request frame, ready to replay.
pub struct CorpusItem {
    /// Workload name plus request kind, for diagnostics.
    pub label: String,
    /// The request frame.
    pub frame: Frame,
}

/// Build the replay corpus from the 17 bundled workloads: a `reorder`
/// request per workload, plus (unless `reorder_only`) a `measure`
/// request comparing the original against a locally reordered module.
///
/// # Errors
///
/// A workload that fails to compile or train is a hard error — the
/// corpus ships with the repo, so that is a build break, not a load
/// condition.
pub fn build_corpus(config: &LoadgenConfig) -> Result<Vec<CorpusItem>, String> {
    let mut corpus = Vec::new();
    for w in br_workloads::all() {
        let mut module = compile(w.source, &Options::with_heuristics(HeuristicSet::SET_I))
            .map_err(|e| format!("{}: compile error: {e}", w.name))?;
        br_opt::optimize(&mut module);
        let module_text = print_module(&module);
        let train = w.training_input(config.train_size);
        corpus.push(CorpusItem {
            label: format!("{}/reorder", w.name),
            frame: Frame::structured(
                "reorder",
                &[
                    Section {
                        name: "module",
                        bytes: module_text.as_bytes(),
                    },
                    Section {
                        name: "train",
                        bytes: &train,
                    },
                ],
            ),
        });
        if config.reorder_only {
            continue;
        }
        let report = reorder_module(&module, &train, &ReorderOptions::default())
            .map_err(|t| format!("{}: training run trapped: {t}", w.name))?;
        let input = w.test_input(config.input_size);
        corpus.push(CorpusItem {
            label: format!("{}/measure", w.name),
            frame: Frame::structured(
                "measure",
                &[
                    Section {
                        name: "original",
                        bytes: module_text.as_bytes(),
                    },
                    Section {
                        name: "reordered",
                        bytes: print_module(&report.module).as_bytes(),
                    },
                    Section {
                        name: "input",
                        bytes: &input,
                    },
                ],
            ),
        });
    }
    Ok(corpus)
}

/// Read one server-side counter via the metrics endpoint.
fn server_counter(addr: &str, name: &str) -> Option<u64> {
    let mut client = Client::connect(addr).ok()?;
    let response = client.call(&Frame::text("metrics", "")).ok()?;
    Metrics::parse_counter(&response.payload_text(), name)
}

struct PassTotals {
    sent: AtomicU64,
    ok: AtomicU64,
    errors: AtomicU64,
    shed: AtomicU64,
    latency: Histogram,
    error_samples: std::sync::Mutex<Vec<String>>,
}

/// Run `passes` trips through the corpus on every connection
/// concurrently, accumulating into `totals`.
fn run_passes(
    config: &LoadgenConfig,
    corpus: &[CorpusItem],
    passes: usize,
    totals: &PassTotals,
) -> io::Result<()> {
    std::thread::scope(|scope| {
        let mut threads = Vec::new();
        for conn in 0..config.connections.max(1) {
            threads.push(scope.spawn(move || -> io::Result<()> {
                let mut client = Client::connect(&config.addr)?;
                for pass in 0..passes {
                    for i in 0..corpus.len() {
                        // Offset each connection's walk so the daemon
                        // sees mixed kinds at any instant, not 8 copies
                        // of the same request marching in phase.
                        let item = &corpus[(i + conn * 3 + pass) % corpus.len()];
                        let start = Instant::now();
                        let response = client.call(&item.frame)?;
                        totals.latency.record(start.elapsed());
                        totals.sent.fetch_add(1, Ordering::Relaxed);
                        match response.kind.as_str() {
                            "ok" => {
                                totals.ok.fetch_add(1, Ordering::Relaxed);
                            }
                            "overloaded" => {
                                totals.shed.fetch_add(1, Ordering::Relaxed);
                            }
                            _ => {
                                totals.errors.fetch_add(1, Ordering::Relaxed);
                                let mut samples =
                                    totals.error_samples.lock().expect("samples poisoned");
                                if samples.len() < 3 {
                                    samples.push(format!(
                                        "{}: {}",
                                        item.label,
                                        response.payload_text()
                                    ));
                                }
                            }
                        }
                    }
                }
                Ok(())
            }));
        }
        for t in threads {
            t.join().expect("loadgen connection thread panicked")?;
        }
        Ok(())
    })
}

/// Run the load generator: build the corpus, fire the passes, gather
/// the report, and optionally drain the daemon.
///
/// # Errors
///
/// Corpus build failures and connection-level I/O errors are fatal;
/// per-request `error`/`overloaded` responses are counted, not thrown.
pub fn run_loadgen(config: &LoadgenConfig) -> io::Result<LoadgenReport> {
    let corpus = build_corpus(config).map_err(|e| io::Error::other(format!("corpus: {e}")))?;
    let totals = PassTotals {
        sent: AtomicU64::new(0),
        ok: AtomicU64::new(0),
        errors: AtomicU64::new(0),
        shed: AtomicU64::new(0),
        latency: Histogram::default(),
        error_samples: std::sync::Mutex::new(Vec::new()),
    };
    let hits_before = server_counter(&config.addr, "cache_hits");
    let start = Instant::now();
    run_passes(config, &corpus, config.passes.max(1), &totals)?;
    let elapsed = start.elapsed();
    let hits_after = server_counter(&config.addr, "cache_hits");
    if config.shutdown_after {
        let mut client = Client::connect(&config.addr)?;
        let bye = client.call(&Frame::text("shutdown", ""))?;
        if bye.kind != "ok" {
            return Err(io::Error::other(format!(
                "shutdown refused: {}",
                bye.payload_text()
            )));
        }
    }
    Ok(LoadgenReport {
        sent: totals.sent.into_inner(),
        ok: totals.ok.into_inner(),
        errors: totals.errors.into_inner(),
        shed: totals.shed.into_inner(),
        elapsed,
        latency: totals.latency,
        error_samples: totals.error_samples.into_inner().expect("samples poisoned"),
        cache_hit_delta: match (hits_before, hits_after) {
            (Some(a), Some(b)) => Some(b.saturating_sub(a)),
            _ => None,
        },
    })
}

/// The `--smoke` contract: a cold pass then a warm pass, with hard
/// assertions. Returns the warm-pass report and a list of violated
/// assertions (empty = pass).
///
/// # Errors
///
/// Same fatal conditions as [`run_loadgen`].
pub fn run_smoke(config: &LoadgenConfig) -> io::Result<(LoadgenReport, Vec<String>)> {
    let cold = run_loadgen(config)?;
    let warm = run_loadgen(config)?;
    let mut violations = Vec::new();
    for (label, report) in [("cold", &cold), ("warm", &warm)] {
        if report.errors > 0 {
            violations.push(format!(
                "{label} pass returned {} error frame(s): {:?}",
                report.errors, report.error_samples
            ));
        }
        if report.shed > 0 {
            violations.push(format!(
                "{label} pass was shed {} time(s) — queue too small for smoke load",
                report.shed
            ));
        }
    }
    match warm.cache_hit_delta {
        Some(0) => violations.push("warm pass gained zero cache hits".to_string()),
        Some(_) => {}
        None => violations.push("daemon metrics endpoint unreachable".to_string()),
    }
    Ok((warm, violations))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_covers_every_workload_both_kinds() {
        let config = LoadgenConfig {
            train_size: 256,
            input_size: 256,
            ..LoadgenConfig::default()
        };
        let corpus = build_corpus(&config).expect("corpus builds");
        assert_eq!(corpus.len(), br_workloads::all().len() * 2);
        assert!(corpus.iter().any(|c| c.frame.kind == "reorder"));
        assert!(corpus.iter().any(|c| c.frame.kind == "measure"));

        let reorder_only = LoadgenConfig {
            reorder_only: true,
            ..config
        };
        let corpus = build_corpus(&reorder_only).expect("corpus builds");
        assert_eq!(corpus.len(), br_workloads::all().len());
        assert!(corpus.iter().all(|c| c.frame.kind == "reorder"));
    }
}
