//! Load generator (`brc loadgen`): closed-loop and open-loop modes,
//! both protocols, single- or multi-process.
//!
//! **Closed loop** (the default) replays the 17 paper workloads from N
//! concurrent connections, each keeping exactly one request (or one
//! batch) in flight — send, wait, repeat — so offered load adapts to
//! service capacity and the reported latency is honest. `--smoke` is
//! the CI contract built on it: cold pass then warm pass with hard
//! assertions (zero errors, zero shed, nonzero cache-hit delta).
//!
//! **Open loop** (`--open`) is the saturation instrument: requests are
//! *scheduled* at a fixed offered rate on a shared tick clock,
//! regardless of how fast the service answers, and each latency is
//! measured from the request's **scheduled** time — not its actual send
//! time — so queueing delay the generator itself suffered is charged to
//! the service (the coordinated-omission correction). Sweeping a list
//! of rates yields the latency-under-saturation curves (p50/p99/p999 vs
//! offered load) that tell you where the knee is; [`write_curves`]
//! emits them as CSV with a fixed schema.
//!
//! **Multi-process** (`--procs N`): one generator process tops out well
//! before a sharded cluster does, so the open loop can fan out N worker
//! processes (re-invoking the current executable with `--worker`), each
//! offering `rate / N`, and merge their counter-and-histogram summaries
//! from stdout. The merged report is indistinguishable from a single
//! generator offering the full rate.
//!
//! **Protocols**: `--brs2` switches the corpus to the binary protocol
//! with content-hash module interning (repeat requests stop re-sending
//! printed IR), and `--batch K` packs K requests per frame in closed
//! loop — the shape that amortizes framing and syscalls enough to
//! saturate a cluster from one box.

use std::io::{self, BufRead as _};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use br_ir::print_module;
use br_minic::{compile, HeuristicSet, Options};
use br_reorder::{reorder_module, ReorderOptions};

use crate::metrics::{Histogram, Metrics, BUCKETS};
use crate::proto::{Client, Frame, Section};
use crate::proto2::{self, BatchItem, Client2, ModuleRef};

/// Load-generator configuration (`brc loadgen` flags map here 1:1).
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Daemon address.
    pub addr: String,
    /// Concurrent connections.
    pub connections: usize,
    /// Corpus passes per connection.
    pub passes: usize,
    /// Training-input bytes per reorder request.
    pub train_size: usize,
    /// Test-input bytes per measure request.
    pub input_size: usize,
    /// Send only `reorder` requests (skip `measure`), for a pure
    /// pipeline-throughput number.
    pub reorder_only: bool,
    /// Send a `shutdown` frame after the run (graceful drain).
    pub shutdown_after: bool,
    /// Speak `brs2` (binary frames, module interning) instead of `brs1`.
    pub brs2: bool,
    /// Requests per `brs2` batch frame in closed-loop mode (1 = one
    /// request per frame). Ignored without `brs2`.
    pub batch: usize,
}

impl Default for LoadgenConfig {
    fn default() -> LoadgenConfig {
        LoadgenConfig {
            addr: "127.0.0.1:7411".to_string(),
            connections: 4,
            passes: 4,
            train_size: 2048,
            input_size: 2048,
            reorder_only: false,
            shutdown_after: false,
            brs2: false,
            batch: 1,
        }
    }
}

impl LoadgenConfig {
    /// The CI smoke shape: 8 connections x 2 passes over the full
    /// mixed corpus at small input sizes — ≥ 64 requests in flight
    /// across the run, cold pass then warm pass.
    pub fn smoke(addr: &str) -> LoadgenConfig {
        LoadgenConfig {
            addr: addr.to_string(),
            connections: 8,
            passes: 1, // per measured pass; smoke runs two passes itself
            train_size: 512,
            input_size: 512,
            reorder_only: false,
            shutdown_after: false,
            brs2: false,
            batch: 1,
        }
    }
}

/// Aggregated results of one generator run.
#[derive(Debug)]
pub struct LoadgenReport {
    /// Requests sent.
    pub sent: u64,
    /// `ok` responses.
    pub ok: u64,
    /// `error` responses.
    pub errors: u64,
    /// `overloaded`/shed responses.
    pub shed: u64,
    /// Wall-clock time of the measured passes.
    pub elapsed: Duration,
    /// Client-observed request latency.
    pub latency: Histogram,
    /// Up to three example error payloads, for diagnosis.
    pub error_samples: Vec<String>,
    /// Server cache hits gained during this run (from the daemon's
    /// metrics endpoint), when it was reachable.
    pub cache_hit_delta: Option<u64>,
}

impl LoadgenReport {
    /// Achieved requests/second.
    pub fn throughput(&self) -> f64 {
        self.sent as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Shed responses as a fraction of requests sent.
    pub fn shed_rate(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.shed as f64 / self.sent as f64
        }
    }

    /// Human-readable summary: throughput, shed rate, latency histogram.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "loadgen: {} requests in {:.2?} — {:.1} req/s; {} ok, {} error(s), {} shed ({:.2}% shed rate)",
            self.sent,
            self.elapsed,
            self.throughput(),
            self.ok,
            self.errors,
            self.shed,
            self.shed_rate() * 100.0,
        );
        for (label, q) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99)] {
            if let Some(d) = self.latency.quantile(q) {
                let _ = writeln!(out, "latency {label}: <= {d:.0?}");
            }
        }
        let counts = self.latency.snapshot();
        for (i, c) in counts.iter().enumerate() {
            if *c > 0 {
                let _ = writeln!(out, "  <= {:>9} us: {c}", Histogram::bucket_bound_us(i));
            }
        }
        if let Some(delta) = self.cache_hit_delta {
            let _ = writeln!(out, "server cache hits gained: {delta}");
        }
        for e in &self.error_samples {
            let _ = writeln!(out, "error sample: {e}");
        }
        out
    }
}

/// One prepared request, ready to replay in either protocol.
pub struct CorpusItem {
    /// Workload name plus request kind, for diagnostics.
    pub label: String,
    /// The `brs1` request frame.
    pub frame: Frame,
    /// The `brs2` opcode.
    pub kind2: u8,
    /// Module operands (interned/delta-uploaded over `brs2`).
    pub modules: Vec<ModuleRef>,
    /// Non-module sections, in canonical order after the modules.
    pub plain: Vec<(u8, Vec<u8>)>,
}

impl CorpusItem {
    fn plain_refs(&self) -> Vec<(u8, &[u8])> {
        self.plain
            .iter()
            .map(|(id, bytes)| (*id, bytes.as_slice()))
            .collect()
    }
}

/// Build the replay corpus from the 17 bundled workloads: a `reorder`
/// request per workload, plus (unless `reorder_only`) a `measure`
/// request comparing the original against a locally reordered module.
///
/// # Errors
///
/// A workload that fails to compile or train is a hard error — the
/// corpus ships with the repo, so that is a build break, not a load
/// condition.
pub fn build_corpus(config: &LoadgenConfig) -> Result<Vec<CorpusItem>, String> {
    let mut corpus = Vec::new();
    for w in br_workloads::all() {
        let mut module = compile(w.source, &Options::with_heuristics(HeuristicSet::SET_I))
            .map_err(|e| format!("{}: compile error: {e}", w.name))?;
        br_opt::optimize(&mut module);
        let module_text = Arc::new(print_module(&module));
        let train = w.training_input(config.train_size);
        corpus.push(CorpusItem {
            label: format!("{}/reorder", w.name),
            frame: Frame::structured(
                "reorder",
                &[
                    Section {
                        name: "module",
                        bytes: module_text.as_bytes(),
                    },
                    Section {
                        name: "train",
                        bytes: &train,
                    },
                ],
            ),
            kind2: proto2::kind::REORDER,
            modules: vec![ModuleRef::new(
                proto2::sec::MODULE,
                Arc::clone(&module_text),
            )],
            plain: vec![(proto2::sec::TRAIN, train.clone())],
        });
        if config.reorder_only {
            continue;
        }
        let report = reorder_module(&module, &train, &ReorderOptions::default())
            .map_err(|t| format!("{}: training run trapped: {t}", w.name))?;
        let reordered_text = Arc::new(print_module(&report.module));
        let input = w.test_input(config.input_size);
        corpus.push(CorpusItem {
            label: format!("{}/measure", w.name),
            frame: Frame::structured(
                "measure",
                &[
                    Section {
                        name: "original",
                        bytes: module_text.as_bytes(),
                    },
                    Section {
                        name: "reordered",
                        bytes: reordered_text.as_bytes(),
                    },
                    Section {
                        name: "input",
                        bytes: &input,
                    },
                ],
            ),
            kind2: proto2::kind::MEASURE,
            modules: vec![
                ModuleRef::new(proto2::sec::ORIGINAL, Arc::clone(&module_text)),
                ModuleRef::new(proto2::sec::REORDERED, reordered_text),
            ],
            plain: vec![(proto2::sec::INPUT, input)],
        });
    }
    Ok(corpus)
}

/// Read one server-side counter via the metrics endpoint.
fn server_counter(addr: &str, name: &str) -> Option<u64> {
    let mut client = Client::connect(addr).ok()?;
    let response = client.call(&Frame::text("metrics", "")).ok()?;
    Metrics::parse_counter(&response.payload_text(), name)
}

/// The three outcomes a counted request can have.
enum Outcome {
    Ok,
    Shed,
    Error(String),
}

/// A protocol-agnostic generator connection.
enum AnyClient {
    V1(Client),
    V2(Client2),
}

impl AnyClient {
    fn connect(addr: &str, brs2: bool) -> io::Result<AnyClient> {
        Ok(if brs2 {
            AnyClient::V2(Client2::connect(addr)?)
        } else {
            AnyClient::V1(Client::connect(addr)?)
        })
    }

    /// Send one corpus item and classify the response.
    fn send(&mut self, item: &CorpusItem) -> io::Result<Outcome> {
        match self {
            AnyClient::V1(client) => {
                let response = client.call(&item.frame)?;
                Ok(match response.kind.as_str() {
                    "ok" => Outcome::Ok,
                    "overloaded" => Outcome::Shed,
                    _ => Outcome::Error(response.payload_text()),
                })
            }
            AnyClient::V2(client) => {
                let plain = item.plain_refs();
                let response = client.call_interned(item.kind2, &item.modules, &plain)?;
                Ok(classify_v2(response.kind, response.code, &response.payload))
            }
        }
    }
}

fn classify_v2(kind: u8, code: u16, payload: &[u8]) -> Outcome {
    if kind == proto2::kind::OK {
        Outcome::Ok
    } else if code == proto2::code::SHED {
        Outcome::Shed
    } else {
        Outcome::Error(String::from_utf8_lossy(payload).into_owned())
    }
}

struct PassTotals {
    sent: AtomicU64,
    ok: AtomicU64,
    errors: AtomicU64,
    shed: AtomicU64,
    latency: Histogram,
    error_samples: std::sync::Mutex<Vec<String>>,
}

impl PassTotals {
    fn new() -> PassTotals {
        PassTotals {
            sent: AtomicU64::new(0),
            ok: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            latency: Histogram::default(),
            error_samples: std::sync::Mutex::new(Vec::new()),
        }
    }

    fn count(&self, label: &str, outcome: Outcome) {
        self.sent.fetch_add(1, Ordering::Relaxed);
        match outcome {
            Outcome::Ok => {
                self.ok.fetch_add(1, Ordering::Relaxed);
            }
            Outcome::Shed => {
                self.shed.fetch_add(1, Ordering::Relaxed);
            }
            Outcome::Error(text) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                let mut samples = self.error_samples.lock().expect("samples poisoned");
                if samples.len() < 3 {
                    samples.push(format!("{label}: {text}"));
                }
            }
        }
    }
}

/// Run `passes` trips through the corpus on every connection
/// concurrently, accumulating into `totals`.
fn run_passes(
    config: &LoadgenConfig,
    corpus: &[CorpusItem],
    passes: usize,
    totals: &PassTotals,
) -> io::Result<()> {
    let batch = if config.brs2 { config.batch.max(1) } else { 1 };
    std::thread::scope(|scope| {
        let mut threads = Vec::new();
        for conn in 0..config.connections.max(1) {
            threads.push(scope.spawn(move || -> io::Result<()> {
                let mut client = AnyClient::connect(&config.addr, config.brs2)?;
                for pass in 0..passes {
                    // Offset each connection's walk so the daemon sees
                    // mixed kinds at any instant, not N copies of the
                    // same request marching in phase.
                    let indices: Vec<usize> = (0..corpus.len())
                        .map(|i| (i + conn * 3 + pass) % corpus.len())
                        .collect();
                    for chunk in indices.chunks(batch) {
                        if batch > 1 {
                            let AnyClient::V2(client) = &mut client else {
                                unreachable!("batching implies brs2");
                            };
                            let items: Vec<&CorpusItem> =
                                chunk.iter().map(|&i| &corpus[i]).collect();
                            let plains: Vec<Vec<(u8, &[u8])>> =
                                items.iter().map(|it| it.plain_refs()).collect();
                            let calls: Vec<BatchItem<'_>> = items
                                .iter()
                                .zip(&plains)
                                .map(|(it, plain)| {
                                    (it.kind2, it.modules.as_slice(), plain.as_slice())
                                })
                                .collect();
                            let start = Instant::now();
                            let replies = client.call_batch(&calls)?;
                            let elapsed = start.elapsed();
                            for (item, reply) in items.iter().zip(replies) {
                                totals.latency.record(elapsed);
                                totals.count(
                                    &item.label,
                                    classify_v2(reply.kind, reply.code, &reply.payload),
                                );
                            }
                        } else {
                            for &i in chunk {
                                let item = &corpus[i];
                                let start = Instant::now();
                                let outcome = client.send(item)?;
                                totals.latency.record(start.elapsed());
                                totals.count(&item.label, outcome);
                            }
                        }
                    }
                }
                Ok(())
            }));
        }
        for t in threads {
            t.join().expect("loadgen connection thread panicked")?;
        }
        Ok(())
    })
}

/// Run the load generator: build the corpus, fire the passes, gather
/// the report, and optionally drain the daemon.
///
/// # Errors
///
/// Corpus build failures and connection-level I/O errors are fatal;
/// per-request `error`/`overloaded` responses are counted, not thrown.
pub fn run_loadgen(config: &LoadgenConfig) -> io::Result<LoadgenReport> {
    let corpus = build_corpus(config).map_err(|e| io::Error::other(format!("corpus: {e}")))?;
    let totals = PassTotals::new();
    let hits_before = server_counter(&config.addr, "cache_hits");
    let start = Instant::now();
    run_passes(config, &corpus, config.passes.max(1), &totals)?;
    let elapsed = start.elapsed();
    let hits_after = server_counter(&config.addr, "cache_hits");
    if config.shutdown_after {
        let mut client = Client::connect(&config.addr)?;
        let bye = client.call(&Frame::text("shutdown", ""))?;
        if bye.kind != "ok" {
            return Err(io::Error::other(format!(
                "shutdown refused: {}",
                bye.payload_text()
            )));
        }
    }
    Ok(LoadgenReport {
        sent: totals.sent.into_inner(),
        ok: totals.ok.into_inner(),
        errors: totals.errors.into_inner(),
        shed: totals.shed.into_inner(),
        elapsed,
        latency: totals.latency,
        error_samples: totals.error_samples.into_inner().expect("samples poisoned"),
        cache_hit_delta: match (hits_before, hits_after) {
            (Some(a), Some(b)) => Some(b.saturating_sub(a)),
            _ => None,
        },
    })
}

/// The `--smoke` contract: a cold pass then a warm pass, with hard
/// assertions. Returns the warm-pass report and a list of violated
/// assertions (empty = pass).
///
/// # Errors
///
/// Same fatal conditions as [`run_loadgen`].
pub fn run_smoke(config: &LoadgenConfig) -> io::Result<(LoadgenReport, Vec<String>)> {
    let cold = run_loadgen(config)?;
    let warm = run_loadgen(config)?;
    let mut violations = Vec::new();
    for (label, report) in [("cold", &cold), ("warm", &warm)] {
        if report.errors > 0 {
            violations.push(format!(
                "{label} pass returned {} error frame(s): {:?}",
                report.errors, report.error_samples
            ));
        }
        if report.shed > 0 {
            violations.push(format!(
                "{label} pass was shed {} time(s) — queue too small for smoke load",
                report.shed
            ));
        }
    }
    match warm.cache_hit_delta {
        Some(0) => violations.push("warm pass gained zero cache hits".to_string()),
        Some(_) => {}
        None => violations.push("daemon metrics endpoint unreachable".to_string()),
    }
    Ok((warm, violations))
}

/// Open-loop run configuration: a fixed offered rate for a fixed
/// duration, from a number of connections, in one process.
#[derive(Clone, Debug)]
pub struct OpenLoopConfig {
    /// The closed-loop knobs reused by the open loop (address,
    /// protocol, corpus sizes).
    pub base: LoadgenConfig,
    /// Offered load in requests/second (this process's share).
    pub rate: f64,
    /// How long to offer it.
    pub duration: Duration,
}

/// Results of one open-loop run (or a merge of several workers').
#[derive(Debug)]
pub struct OpenReport {
    /// Offered load across all workers, requests/second.
    pub offered: f64,
    /// Requests sent.
    pub sent: u64,
    /// `ok` responses.
    pub ok: u64,
    /// Error responses.
    pub errors: u64,
    /// Shed responses.
    pub shed: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Latency measured from each request's *scheduled* time
    /// (coordinated-omission corrected).
    pub latency: Histogram,
    /// Up to three example error payloads.
    pub error_samples: Vec<String>,
}

impl OpenReport {
    /// Achieved (answered) requests/second.
    pub fn achieved(&self) -> f64 {
        self.sent as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// One human-readable line per run, for the report section.
    pub fn render_line(&self) -> String {
        let q = |q: f64| self.latency.quantile(q).map_or(0, |d| d.as_micros() as u64);
        format!(
            "offered {:>8.0} req/s -> achieved {:>8.1} req/s; {} ok, {} error(s), {} shed; p50 {} us, p99 {} us, p999 {} us",
            self.offered,
            self.achieved(),
            self.ok,
            self.errors,
            self.shed,
            q(0.50),
            q(0.99),
            q(0.999),
        )
    }

    /// Serialize counters + histogram for the `--worker` stdout
    /// protocol (one line, parsed by [`parse_worker_summary`]).
    pub fn worker_summary(&self) -> String {
        let buckets: Vec<String> = self.latency.snapshot().iter().map(u64::to_string).collect();
        format!(
            "loadgen-worker sent={} ok={} errors={} shed={} elapsed_us={} buckets={}",
            self.sent,
            self.ok,
            self.errors,
            self.shed,
            self.elapsed.as_micros(),
            buckets.join(",")
        )
    }
}

/// Parse a worker's summary line back into counters.
///
/// # Errors
///
/// Describes the malformed field; a worker that crashes mid-run will
/// fail here and the parent reports it.
pub fn parse_worker_summary(line: &str) -> Result<OpenReport, String> {
    let rest = line
        .trim()
        .strip_prefix("loadgen-worker ")
        .ok_or_else(|| format!("not a worker summary: {line:?}"))?;
    let mut sent = None;
    let mut ok = None;
    let mut errors = None;
    let mut shed = None;
    let mut elapsed_us = None;
    let mut buckets: Option<Vec<u64>> = None;
    for field in rest.split(' ') {
        let (key, value) = field
            .split_once('=')
            .ok_or_else(|| format!("bad field {field:?}"))?;
        match key {
            "sent" => sent = value.parse().ok(),
            "ok" => ok = value.parse().ok(),
            "errors" => errors = value.parse().ok(),
            "shed" => shed = value.parse().ok(),
            "elapsed_us" => elapsed_us = value.parse().ok(),
            "buckets" => {
                buckets = value
                    .split(',')
                    .map(|v| v.parse().ok())
                    .collect::<Option<Vec<u64>>>()
            }
            _ => return Err(format!("unknown field {key:?}")),
        }
    }
    let buckets = buckets.ok_or("missing buckets")?;
    if buckets.len() != BUCKETS {
        return Err(format!("expected {BUCKETS} buckets, got {}", buckets.len()));
    }
    let latency = Histogram::default();
    for (i, n) in buckets.iter().enumerate() {
        latency.add_bucket(i, *n);
    }
    Ok(OpenReport {
        offered: 0.0,
        sent: sent.ok_or("missing sent")?,
        ok: ok.ok_or("missing ok")?,
        errors: errors.ok_or("missing errors")?,
        shed: shed.ok_or("missing shed")?,
        elapsed: Duration::from_micros(elapsed_us.ok_or("missing elapsed_us")?),
        latency,
        error_samples: Vec::new(),
    })
}

/// Run one open-loop pass in this process: requests fire on a shared
/// tick clock at `rate`/s for `duration`, spread over the configured
/// connections; latency is charged from the scheduled tick.
///
/// # Errors
///
/// Corpus build failures and connection-level I/O errors are fatal.
pub fn run_open_loop(config: &OpenLoopConfig) -> io::Result<OpenReport> {
    let corpus =
        build_corpus(&config.base).map_err(|e| io::Error::other(format!("corpus: {e}")))?;
    let totals = PassTotals::new();
    let ticks = AtomicU64::new(0);
    let rate = config.rate.max(0.1);
    let start = Instant::now();
    let end = start + config.duration;
    std::thread::scope(|scope| {
        let mut threads = Vec::new();
        for _ in 0..config.base.connections.max(1) {
            let totals = &totals;
            let ticks = &ticks;
            let corpus = &corpus;
            threads.push(scope.spawn(move || -> io::Result<()> {
                let mut client = AnyClient::connect(&config.base.addr, config.base.brs2)?;
                loop {
                    let n = ticks.fetch_add(1, Ordering::Relaxed);
                    let scheduled = start + Duration::from_secs_f64(n as f64 / rate);
                    if scheduled >= end {
                        return Ok(());
                    }
                    let now = Instant::now();
                    if scheduled > now {
                        std::thread::sleep(scheduled - now);
                    }
                    let item = &corpus[(n as usize) % corpus.len()];
                    let outcome = client.send(item)?;
                    // Measured from the *scheduled* time: if this
                    // connection was stuck waiting on a slow response,
                    // the delay the next request suffered is service
                    // latency, not generator slack.
                    totals.latency.record(scheduled.elapsed());
                    totals.count(&item.label, outcome);
                }
            }));
        }
        for t in threads {
            t.join().expect("open-loop connection thread panicked")?;
        }
        Ok::<(), io::Error>(())
    })?;
    Ok(OpenReport {
        offered: rate,
        sent: totals.sent.into_inner(),
        ok: totals.ok.into_inner(),
        errors: totals.errors.into_inner(),
        shed: totals.shed.into_inner(),
        elapsed: start
            .elapsed()
            .min(config.duration.max(Duration::from_millis(1))),
        latency: totals.latency,
        error_samples: totals.error_samples.into_inner().expect("samples poisoned"),
    })
}

/// Run an open-loop pass across `procs` worker processes, each offering
/// `rate / procs`, and merge their summaries. `worker_args` must
/// re-invoke the current executable in `--worker` mode with the
/// remaining knobs (the `brc loadgen` layer builds it).
///
/// # Errors
///
/// A worker that cannot be spawned, exits nonzero, or prints no
/// parseable summary is fatal.
pub fn run_open_multiproc(
    config: &OpenLoopConfig,
    procs: usize,
    worker_args: &[String],
) -> io::Result<OpenReport> {
    let exe = std::env::current_exe()?;
    let share = config.rate / procs.max(1) as f64;
    let mut children = Vec::new();
    for _ in 0..procs.max(1) {
        let mut cmd = std::process::Command::new(&exe);
        cmd.args(worker_args)
            .arg("--rate")
            .arg(format!("{share}"))
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::inherit());
        children.push(cmd.spawn()?);
    }
    let mut merged = OpenReport {
        offered: config.rate,
        sent: 0,
        ok: 0,
        errors: 0,
        shed: 0,
        elapsed: config.duration,
        latency: Histogram::default(),
        error_samples: Vec::new(),
    };
    let mut max_elapsed = Duration::ZERO;
    for mut child in children {
        let stdout = child.stdout.take().expect("stdout piped");
        let mut summary = None;
        for line in io::BufReader::new(stdout).lines() {
            let line = line?;
            if line.starts_with("loadgen-worker ") {
                summary = Some(parse_worker_summary(&line).map_err(io::Error::other)?);
            }
        }
        let status = child.wait()?;
        if !status.success() {
            return Err(io::Error::other(format!("loadgen worker failed: {status}")));
        }
        let report = summary.ok_or_else(|| io::Error::other("worker printed no summary"))?;
        merged.sent += report.sent;
        merged.ok += report.ok;
        merged.errors += report.errors;
        merged.shed += report.shed;
        max_elapsed = max_elapsed.max(report.elapsed);
        for (i, n) in report.latency.snapshot().iter().enumerate() {
            merged.latency.add_bucket(i, *n);
        }
    }
    if max_elapsed > Duration::ZERO {
        merged.elapsed = max_elapsed;
    }
    Ok(merged)
}

/// Sweep a list of offered rates and collect one [`OpenReport`] per
/// rate — the latency-under-saturation curve. With `procs > 1` each
/// point fans out over worker processes.
///
/// # Errors
///
/// Fatal conditions of the underlying runs.
pub fn run_curves(
    config: &OpenLoopConfig,
    rates: &[f64],
    procs: usize,
    worker_args: &[String],
) -> io::Result<Vec<OpenReport>> {
    let mut rows = Vec::new();
    for &rate in rates {
        let point = OpenLoopConfig {
            rate,
            ..config.clone()
        };
        let report = if procs > 1 {
            run_open_multiproc(&point, procs, worker_args)?
        } else {
            run_open_loop(&point)?
        };
        rows.push(report);
    }
    Ok(rows)
}

/// Write curve rows as CSV with a fixed schema:
/// `offered_rps,achieved_rps,sent,ok,errors,shed,p50_us,p90_us,p99_us,p999_us`.
///
/// The schema, row order (ascending offered load), and quantile set are
/// fixed so downstream plots regenerate deterministically from any run.
///
/// # Errors
///
/// Propagates file-creation and write errors.
pub fn write_curves(path: &std::path::Path, rows: &[OpenReport]) -> io::Result<()> {
    use std::io::Write as _;
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(
        out,
        "offered_rps,achieved_rps,sent,ok,errors,shed,p50_us,p90_us,p99_us,p999_us"
    )?;
    for r in rows {
        let q = |q: f64| r.latency.quantile(q).map_or(0, |d| d.as_micros() as u64);
        writeln!(
            out,
            "{:.0},{:.1},{},{},{},{},{},{},{},{}",
            r.offered,
            r.achieved(),
            r.sent,
            r.ok,
            r.errors,
            r.shed,
            q(0.50),
            q(0.90),
            q(0.99),
            q(0.999),
        )?;
    }
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_covers_every_workload_both_kinds() {
        let config = LoadgenConfig {
            train_size: 256,
            input_size: 256,
            ..LoadgenConfig::default()
        };
        let corpus = build_corpus(&config).expect("corpus builds");
        assert_eq!(corpus.len(), br_workloads::all().len() * 2);
        assert!(corpus.iter().any(|c| c.frame.kind == "reorder"));
        assert!(corpus.iter().any(|c| c.frame.kind == "measure"));
        // Every item carries a brs2 form whose module hashes match the
        // brs1 section bytes.
        for item in &corpus {
            assert!(!item.modules.is_empty());
            for m in &item.modules {
                assert_eq!(m.hash, proto2::module_hash(m.text.as_bytes()));
            }
        }

        let reorder_only = LoadgenConfig {
            reorder_only: true,
            ..config
        };
        let corpus = build_corpus(&reorder_only).expect("corpus builds");
        assert_eq!(corpus.len(), br_workloads::all().len());
        assert!(corpus.iter().all(|c| c.frame.kind == "reorder"));
    }

    #[test]
    fn worker_summary_roundtrips() {
        let latency = Histogram::default();
        latency.record(Duration::from_micros(100));
        latency.record(Duration::from_micros(5000));
        let report = OpenReport {
            offered: 500.0,
            sent: 10,
            ok: 8,
            errors: 1,
            shed: 1,
            elapsed: Duration::from_millis(2000),
            latency,
            error_samples: Vec::new(),
        };
        let parsed = parse_worker_summary(&report.worker_summary()).expect("parses");
        assert_eq!(parsed.sent, 10);
        assert_eq!(parsed.ok, 8);
        assert_eq!(parsed.errors, 1);
        assert_eq!(parsed.shed, 1);
        assert_eq!(parsed.elapsed, Duration::from_millis(2000));
        assert_eq!(parsed.latency.snapshot(), report.latency.snapshot());
        assert!(parse_worker_summary("something else").is_err());
        assert!(parse_worker_summary("loadgen-worker sent=1").is_err());
    }

    #[test]
    fn curves_csv_schema_is_fixed() {
        let dir = std::env::temp_dir().join(format!("br-loadgen-curves-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("latency_curves.csv");
        let rows = vec![OpenReport {
            offered: 1000.0,
            sent: 5000,
            ok: 5000,
            errors: 0,
            shed: 0,
            elapsed: Duration::from_secs(5),
            latency: Histogram::default(),
            error_samples: Vec::new(),
        }];
        write_curves(&path, &rows).expect("writes");
        let text = std::fs::read_to_string(&path).expect("readable");
        let mut lines = text.lines();
        assert_eq!(
            lines.next(),
            Some("offered_rps,achieved_rps,sent,ok,errors,shed,p50_us,p90_us,p99_us,p999_us")
        );
        assert_eq!(lines.next(), Some("1000,1000.0,5000,5000,0,0,0,0,0,0"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
