//! # br-serve
//!
//! Reordering-as-a-service: a pure-std, multi-threaded TCP daemon that
//! exposes the repo's probe → plan → splice pipeline as long-lived
//! endpoints, shaped for sustained load rather than one-shot CLI runs.
//!
//! Endpoints (see [`proto`] for the framing):
//!
//! * **`reorder`** — printed-IR module + training input in; reordered
//!   module, per-sequence records, and the PR-1 translation validator's
//!   verdict out. The response is byte-identical to running
//!   [`br_reorder::reorder_module`] in-process.
//! * **`measure`** — two modules + one input; both run on the VM fast
//!   path and the Table-4 event-counter deltas come back as CSV.
//! * **`profile`** — one module + input; the daemon instruments every
//!   detected sequence and returns the per-range exit counts.
//! * **`health` / `metrics`** — plaintext liveness and counters
//!   (request/hit/shed/error totals, latency histogram with p50/p99),
//!   answered off the connection thread so they work under overload.
//!
//! Production shape:
//!
//! * bounded worker pool behind an **admission queue** — excess load is
//!   shed with explicit `overloaded` frames, never queued unboundedly
//!   ([`pool`]);
//! * **per-request deadlines** — work whose deadline expired in the
//!   queue is answered without being started;
//! * **panic isolation** — a request that panics the pipeline produces
//!   an `error` frame; the daemon keeps serving;
//! * **graceful drain** on SIGTERM/SIGINT or a `shutdown` frame;
//! * a **content-addressed response cache** layered on the sweep
//!   engine's artifact cache, keyed by (endpoint, module, options,
//!   input) ([`endpoints`]);
//! * a closed-loop **load generator** ([`loadgen`]) that replays the 17
//!   paper workloads and reports achieved throughput, shed rate, and
//!   the latency histogram.
//!
//! ```no_run
//! use br_serve::server::{ServeConfig, Server};
//!
//! let config = ServeConfig {
//!     addr: "127.0.0.1:0".to_string(), // port 0: pick a free port
//!     ..ServeConfig::default()
//! };
//! let server = Server::start(config).expect("bind");
//! println!("serving on {}", server.addr());
//! server.wait().expect("clean shutdown");
//! ```

pub mod endpoints;
pub mod intern;
pub mod loadgen;
pub mod metrics;
pub mod pool;
pub mod proto;
pub mod proto2;
pub mod server;

pub use loadgen::{run_loadgen, run_smoke, LoadgenConfig, LoadgenReport};
pub use proto::{Client, Frame, Section};
pub use proto2::{Client2, Frame2, ModuleRef};
pub use server::{install_signal_handler, terminated, ProtocolMode, ServeConfig, Server};
