//! `brs2`: the length-prefixed, zero-copy binary frame format.
//!
//! `brs1` ([`crate::proto`]) framed the repo's text formats with text
//! headers; every section parse re-scanned and re-allocated, and repeat
//! clients re-sent the full printed IR of a module on every request. At
//! cluster scale the serving tier — not the optimizer — sets the
//! throughput ceiling, so `brs2` removes both costs:
//!
//! * **Fixed binary header, one payload read.** A frame is a 20-byte
//!   little-endian header followed by exactly `len` payload bytes:
//!
//!   ```text
//!   magic "brs2" | kind u8 | flags u8 | code u16 | aux u64 | len u32
//!   ```
//!
//!   The reader issues one `read_exact` for the header and one for the
//!   payload; there is no line scanning and no terminator search.
//!
//! * **Zero-copy sections.** A structured request payload is a run of
//!   `id:u8 len:u32 bytes` sections. [`sections`] yields borrowed
//!   `(id, &[u8])` views into the single payload buffer — parsing
//!   allocates nothing and copies nothing.
//!
//! * **Module interning / content-addressed delta upload.** A client
//!   that has sent a module before replaces the module-body section
//!   with an 8-byte section carrying the module's FNV-1a content hash
//!   (the same [`br_sweep::cache::fnv1a`] scheme the sweep artifact
//!   cache keys on). The shard answers from its intern table (backed by
//!   the shared artifact cache) or replies `code::NEED_MODULE`, naming
//!   the hashes it lacks; the client re-sends the full body once and
//!   hashes thereafter.
//!
//! * **Batching on the wire.** A `kind::BATCH` frame carries many
//!   requests; the response carries the matching run of item responses
//!   in order. One round trip amortizes framing and syscalls across the
//!   whole batch.
//!
//! * **Structured error codes.** Response frames carry a stable `u16`
//!   code (`code::SHED`, `code::DEADLINE`, `code::NEED_MODULE`, …) in
//!   the header, so clients branch on a number instead of parsing
//!   prose. The human-readable message still travels in the payload.
//!
//! **Response compatibility.** The payload of an `ok` compute response
//! is the *`brs1` section stream, verbatim* — `brs2` changes the
//! framing and the upload path, never the result bytes. A reorder
//! served over `brs2` is byte-identical (module text, sequence records,
//! validator verdict, brcert v2 certificate lines) to the same request
//! over `brs1` or in-process. The `aux` header field of a compute
//! response carries the server's response-cache key (0 when the
//! response is uncacheable), which is what lets a router replicate
//! cache entries to a successor shard without re-deriving keys.

use std::io::{self, Read, Write};
use std::sync::Arc;

use crate::proto::MAX_PAYLOAD;

/// The 4-byte frame magic; the first bytes of every `brs2` frame.
pub const MAGIC2: &[u8; 4] = b"brs2";

/// Header length in bytes (magic + kind + flags + code + aux + len).
pub const HEADER2: usize = 20;

/// Frame flags.
pub mod flags {
    /// The payload is a run of batch items, not one request/response.
    pub const BATCH: u8 = 1;
}

/// Frame kinds (request verbs and response statuses).
pub mod kind {
    /// `reorder` request.
    pub const REORDER: u8 = 1;
    /// `measure` request.
    pub const MEASURE: u8 = 2;
    /// `profile` request.
    pub const PROFILE: u8 = 3;
    /// `health` request.
    pub const HEALTH: u8 = 4;
    /// `metrics` request.
    pub const METRICS: u8 = 5;
    /// `shutdown` request.
    pub const SHUTDOWN: u8 = 6;
    /// `cacheput` request: install a replicated response-cache entry.
    pub const CACHEPUT: u8 = 7;
    /// Batch envelope: payload is a run of request items.
    pub const BATCH: u8 = 8;
    /// Debug-only `sleep` request.
    pub const SLEEP: u8 = 9;
    /// Debug-only `panic` request.
    pub const PANIC: u8 = 10;
    /// Successful response.
    pub const OK: u8 = 128;
    /// Error response; the header `code` says which error.
    pub const ERROR: u8 = 129;
}

/// Stable response codes carried in the frame header.
pub mod code {
    /// Success.
    pub const OK: u16 = 0;
    /// Protocol-version mismatch; the message names both versions.
    pub const PROTOCOL: u16 = 1;
    /// Frame payload exceeded [`super::MAX_PAYLOAD`].
    pub const OVERSIZED: u16 = 2;
    /// Shed at admission: the queue was full. Retry with backoff.
    pub const SHED: u16 = 3;
    /// The request's deadline expired while it was queued.
    pub const DEADLINE: u16 = 4;
    /// A content hash referenced a module this shard has not interned;
    /// the message lists the missing hashes. Re-send the full body.
    pub const NEED_MODULE: u16 = 5;
    /// Malformed request (bad sections, bad IR, unknown kind).
    pub const BAD_REQUEST: u16 = 6;
    /// Internal failure (pipeline panic).
    pub const INTERNAL: u16 = 7;
    /// The endpoint is draining and refused the request.
    pub const DRAINING: u16 = 8;
}

/// Section ids for structured request payloads. Ids 1–8 carry the
/// literal bytes of the like-named `brs1` section; the `*_HASH` ids
/// carry an 8-byte little-endian FNV-1a content hash standing in for
/// the body ([`module_hash`]).
pub mod sec {
    /// Printed-IR module body.
    pub const MODULE: u8 = 1;
    /// Training input bytes.
    pub const TRAIN: u8 = 2;
    /// Options lines.
    pub const OPTIONS: u8 = 3;
    /// Original module body (measure).
    pub const ORIGINAL: u8 = 4;
    /// Reordered module body (measure).
    pub const REORDERED: u8 = 5;
    /// Test input bytes.
    pub const INPUT: u8 = 6;
    /// Response-cache key (cacheput), 16 hex digits.
    pub const KEY: u8 = 7;
    /// Replicated response payload (cacheput).
    pub const BODY: u8 = 8;
    /// Content hash standing in for [`MODULE`].
    pub const MODULE_HASH: u8 = 9;
    /// Content hash standing in for [`ORIGINAL`].
    pub const ORIGINAL_HASH: u8 = 10;
    /// Content hash standing in for [`REORDERED`].
    pub const REORDERED_HASH: u8 = 11;
}

/// The `brs1` section name for a body-section id.
pub fn sec_name(id: u8) -> Option<&'static str> {
    Some(match id {
        sec::MODULE => "module",
        sec::TRAIN => "train",
        sec::OPTIONS => "options",
        sec::ORIGINAL => "original",
        sec::REORDERED => "reordered",
        sec::INPUT => "input",
        sec::KEY => "key",
        sec::BODY => "body",
        _ => return None,
    })
}

/// For a hash-section id: the body id it stands in for. The normalized
/// `brs1`-style section name is the body name plus a `#` suffix, which
/// no text-protocol client can collide with (section names never
/// contain `#`).
pub fn hash_target(id: u8) -> Option<u8> {
    Some(match id {
        sec::MODULE_HASH => sec::MODULE,
        sec::ORIGINAL_HASH => sec::ORIGINAL,
        sec::REORDERED_HASH => sec::REORDERED,
        _ => return None,
    })
}

/// The hash-section id standing in for a body-section id.
pub fn hash_of_body(id: u8) -> Option<u8> {
    Some(match id {
        sec::MODULE => sec::MODULE_HASH,
        sec::ORIGINAL => sec::ORIGINAL_HASH,
        sec::REORDERED => sec::REORDERED_HASH,
        _ => return None,
    })
}

/// The `brs1` request-kind string for a `brs2` opcode.
pub fn kind_name(k: u8) -> Option<&'static str> {
    Some(match k {
        kind::REORDER => "reorder",
        kind::MEASURE => "measure",
        kind::PROFILE => "profile",
        kind::HEALTH => "health",
        kind::METRICS => "metrics",
        kind::SHUTDOWN => "shutdown",
        kind::CACHEPUT => "cacheput",
        kind::SLEEP => "sleep",
        kind::PANIC => "panic",
        _ => return None,
    })
}

/// Content hash of a module body: length-delimited FNV-1a under a
/// domain tag, shared with the sweep artifact cache's hash scheme.
/// Clients and shards must agree on this function exactly.
pub fn module_hash(text: &[u8]) -> u64 {
    br_sweep::cache::fnv1a(&[b"brs2-module", text])
}

/// One `brs2` frame, owned (read side and client side).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame2 {
    /// Opcode or response status ([`kind`]).
    pub kind: u8,
    /// Frame flags ([`flags`]).
    pub flags: u8,
    /// Response code ([`code`]); 0 on requests.
    pub code: u16,
    /// Auxiliary word: response-cache key on compute responses.
    pub aux: u64,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl Frame2 {
    /// A request frame with a structured (binary-section) payload.
    pub fn request(k: u8, sections: &[(u8, &[u8])]) -> Frame2 {
        let mut payload =
            Vec::with_capacity(sections.iter().map(|(_, b)| 5 + b.len()).sum::<usize>());
        for (id, bytes) in sections {
            push_section(&mut payload, *id, bytes);
        }
        Frame2 {
            kind: k,
            flags: 0,
            code: 0,
            aux: 0,
            payload,
        }
    }

    /// An error response.
    pub fn error(c: u16, message: &str) -> Frame2 {
        Frame2 {
            kind: kind::ERROR,
            flags: 0,
            code: c,
            aux: 0,
            payload: message.as_bytes().to_vec(),
        }
    }

    /// An `ok` response whose payload is a verbatim `brs1` section
    /// stream (or plain text for health/metrics).
    pub fn ok(aux: u64, payload: Vec<u8>) -> Frame2 {
        Frame2 {
            kind: kind::OK,
            flags: 0,
            code: code::OK,
            aux,
            payload,
        }
    }

    /// The payload as UTF-8 text (lossy; error messages are UTF-8).
    pub fn payload_text(&self) -> String {
        String::from_utf8_lossy(&self.payload).into_owned()
    }

    /// Serialize onto a writer: one header write, one payload write —
    /// the payload bytes are never copied into an intermediate buffer.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        let mut header = [0u8; HEADER2];
        header[..4].copy_from_slice(MAGIC2);
        header[4] = self.kind;
        header[5] = self.flags;
        header[6..8].copy_from_slice(&self.code.to_le_bytes());
        header[8..16].copy_from_slice(&self.aux.to_le_bytes());
        header[16..20].copy_from_slice(&(self.payload.len() as u32).to_le_bytes());
        w.write_all(&header)?;
        w.write_all(&self.payload)?;
        w.flush()
    }

    /// Read the remainder of a frame whose 4-byte magic has already
    /// been consumed.
    ///
    /// # Errors
    ///
    /// I/O failure, or an oversized payload (as `InvalidData`; see
    /// [`crate::proto::read_any`] for the draining server-side path).
    pub fn read_after_magic(r: &mut impl Read) -> io::Result<Frame2> {
        let (kind, flags, code, aux, len) = read_header_after_magic(r)?;
        if len > MAX_PAYLOAD as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("payload of {len} bytes exceeds the {MAX_PAYLOAD}-byte limit"),
            ));
        }
        let mut payload = vec![0u8; len as usize];
        r.read_exact(&mut payload)?;
        Ok(Frame2 {
            kind,
            flags,
            code,
            aux,
            payload,
        })
    }

    /// Read one full frame (magic included).
    ///
    /// # Errors
    ///
    /// I/O failure, a bad magic, or an oversized payload.
    pub fn read_from(r: &mut impl Read) -> io::Result<Frame2> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC2 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad brs2 magic {magic:?}"),
            ));
        }
        Frame2::read_after_magic(r)
    }
}

/// Read the 16 post-magic header bytes: kind, flags, code, aux, len.
pub(crate) fn read_header_after_magic(r: &mut impl Read) -> io::Result<(u8, u8, u16, u64, u64)> {
    let mut h = [0u8; HEADER2 - 4];
    r.read_exact(&mut h)?;
    let kind = h[0];
    let flags = h[1];
    let code = u16::from_le_bytes([h[2], h[3]]);
    let aux = u64::from_le_bytes(h[4..12].try_into().expect("8 bytes"));
    let len = u64::from(u32::from_le_bytes(h[12..16].try_into().expect("4 bytes")));
    Ok((kind, flags, code, aux, len))
}

fn push_section(out: &mut Vec<u8>, id: u8, bytes: &[u8]) {
    out.push(id);
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

/// Iterate the `(id, bytes)` sections of a structured payload without
/// copying: every yielded slice borrows the payload buffer.
///
/// # Errors
///
/// Returns a description of the first truncated section header.
pub fn sections(payload: &[u8]) -> Result<Vec<(u8, &[u8])>, String> {
    let mut out = Vec::new();
    let mut rest = payload;
    while !rest.is_empty() {
        if rest.len() < 5 {
            return Err("truncated section header".to_string());
        }
        let id = rest[0];
        let len = u32::from_le_bytes(rest[1..5].try_into().expect("4 bytes")) as usize;
        let body = rest
            .get(5..5 + len)
            .ok_or_else(|| format!("section id {id} truncated"))?;
        out.push((id, body));
        rest = &rest[5 + len..];
    }
    Ok(out)
}

/// One batch item (request direction): an opcode plus its structured
/// payload. Encoded as `kind:u8 len:u32 bytes`.
pub fn push_batch_item(out: &mut Vec<u8>, k: u8, payload: &[u8]) {
    out.push(k);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Parse the request items of a `kind::BATCH` payload (borrowed).
///
/// # Errors
///
/// Returns a description of the first truncated item.
pub fn batch_items(payload: &[u8]) -> Result<Vec<(u8, &[u8])>, String> {
    let mut out = Vec::new();
    let mut rest = payload;
    while !rest.is_empty() {
        if rest.len() < 5 {
            return Err("truncated batch item header".to_string());
        }
        let k = rest[0];
        let len = u32::from_le_bytes(rest[1..5].try_into().expect("4 bytes")) as usize;
        let body = rest
            .get(5..5 + len)
            .ok_or_else(|| format!("batch item kind {k} truncated"))?;
        out.push((k, body));
        rest = &rest[5 + len..];
    }
    Ok(out)
}

/// One batch item (response direction): status kind, code, aux (cache
/// key), payload. Encoded as `kind:u8 code:u16 aux:u64 len:u32 bytes`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchReply {
    /// `kind::OK` or `kind::ERROR`.
    pub kind: u8,
    /// Response code ([`code`]).
    pub code: u16,
    /// Response-cache key (0 when uncacheable).
    pub aux: u64,
    /// Response payload (same bytes as the unbatched response).
    pub payload: Vec<u8>,
}

/// Append one response item to a batch-response payload.
pub fn push_batch_reply(out: &mut Vec<u8>, reply: &BatchReply) {
    out.push(reply.kind);
    out.extend_from_slice(&reply.code.to_le_bytes());
    out.extend_from_slice(&reply.aux.to_le_bytes());
    out.extend_from_slice(&(reply.payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&reply.payload);
}

/// Parse the response items of a batched `kind::OK` payload.
///
/// # Errors
///
/// Returns a description of the first truncated item.
pub fn batch_replies(payload: &[u8]) -> Result<Vec<BatchReply>, String> {
    let mut out = Vec::new();
    let mut rest = payload;
    while !rest.is_empty() {
        if rest.len() < 15 {
            return Err("truncated batch reply header".to_string());
        }
        let kind = rest[0];
        let code = u16::from_le_bytes(rest[1..3].try_into().expect("2 bytes"));
        let aux = u64::from_le_bytes(rest[3..11].try_into().expect("8 bytes"));
        let len = u32::from_le_bytes(rest[11..15].try_into().expect("4 bytes")) as usize;
        let body = rest.get(15..15 + len).ok_or("batch reply truncated")?;
        out.push(BatchReply {
            kind,
            code,
            aux,
            payload: body.to_vec(),
        });
        rest = &rest[15 + len..];
    }
    Ok(out)
}

/// One batch item: request kind, module operands, plain sections.
pub type BatchItem<'a> = (u8, &'a [ModuleRef], &'a [(u8, &'a [u8])]);

/// A module operand of a request: either sent by content hash (the
/// steady state) or uploaded in full (first contact / after failover).
#[derive(Clone, Debug)]
pub struct ModuleRef {
    /// The body-section id this module fills ([`sec::MODULE`], …).
    pub body_sec: u8,
    /// Printed-IR text, shared so batching never re-copies it.
    pub text: Arc<String>,
    /// Content hash of `text` ([`module_hash`]).
    pub hash: u64,
}

impl ModuleRef {
    /// Wrap a printed module for a body section.
    pub fn new(body_sec: u8, text: Arc<String>) -> ModuleRef {
        let hash = module_hash(text.as_bytes());
        ModuleRef {
            body_sec,
            text,
            hash,
        }
    }
}

/// Build a structured request payload, sending each module by hash when
/// `by_hash` says the peer already knows it, by body otherwise.
/// Sections are emitted modules-first in `modules` order, then `plain`
/// in order — the canonical order shards normalize to, which keeps the
/// response cache shared between `brs1` and `brs2` clients.
pub fn request_payload(
    modules: &[ModuleRef],
    plain: &[(u8, &[u8])],
    by_hash: impl Fn(u64) -> bool,
) -> Vec<u8> {
    let mut payload = Vec::new();
    for m in modules {
        if by_hash(m.hash) {
            let h = hash_of_body(m.body_sec).expect("module body section");
            push_section(&mut payload, h, &m.hash.to_le_bytes());
        } else {
            push_section(&mut payload, m.body_sec, m.text.as_bytes());
        }
    }
    for (id, bytes) in plain {
        push_section(&mut payload, *id, bytes);
    }
    payload
}

/// A blocking request/response `brs2` client over one TCP connection.
///
/// Tracks which module hashes the peer has interned, so steady-state
/// requests carry an 8-byte hash instead of the printed IR, and a
/// `NEED_MODULE` answer (a fresh shard, a failover successor) triggers
/// exactly one full re-upload before returning to hashes.
pub struct Client2 {
    stream: std::net::TcpStream,
    known: std::collections::HashSet<u64>,
}

impl Client2 {
    /// Connect to a `brs2` endpoint.
    ///
    /// # Errors
    ///
    /// Propagates the connect error.
    pub fn connect(addr: &str) -> io::Result<Client2> {
        let stream = std::net::TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client2 {
            stream,
            known: std::collections::HashSet::new(),
        })
    }

    /// Connect with a bounded connect timeout and optional read/write
    /// timeouts — the router's shard-facing shape, where a wedged shard
    /// must surface as an error (and trigger failover) rather than hang
    /// the connection thread.
    ///
    /// # Errors
    ///
    /// Address resolution, connect, or timeout-configuration failure.
    pub fn connect_with(
        addr: &str,
        connect_timeout: std::time::Duration,
        io_timeout: Option<std::time::Duration>,
    ) -> io::Result<Client2> {
        use std::net::ToSocketAddrs as _;
        let sockaddr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::other(format!("{addr}: no address")))?;
        let stream = std::net::TcpStream::connect_timeout(&sockaddr, connect_timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(io_timeout)?;
        stream.set_write_timeout(io_timeout)?;
        Ok(Client2 {
            stream,
            known: std::collections::HashSet::new(),
        })
    }

    /// Send one frame and read the response frame.
    ///
    /// # Errors
    ///
    /// I/O failure, or an unexpected EOF in place of a response.
    pub fn call(&mut self, request: &Frame2) -> io::Result<Frame2> {
        request.write_to(&mut self.stream)?;
        Frame2::read_from(&mut self.stream)
    }

    /// Call a compute endpoint with interned module upload: modules the
    /// peer is believed to know travel as hashes; a `NEED_MODULE`
    /// response invalidates that belief and retries once with full
    /// bodies.
    ///
    /// # Errors
    ///
    /// I/O failure. Application errors come back as the response frame.
    pub fn call_interned(
        &mut self,
        k: u8,
        modules: &[ModuleRef],
        plain: &[(u8, &[u8])],
    ) -> io::Result<Frame2> {
        let known = &self.known;
        let payload = request_payload(modules, plain, |h| known.contains(&h));
        let request = Frame2 {
            kind: k,
            flags: 0,
            code: 0,
            aux: 0,
            payload,
        };
        let response = self.call(&request)?;
        if response.kind == kind::ERROR && response.code == code::NEED_MODULE {
            for m in modules {
                self.known.remove(&m.hash);
            }
            let payload = request_payload(modules, plain, |_| false);
            let retry = Frame2 {
                kind: k,
                flags: 0,
                code: 0,
                aux: 0,
                payload,
            };
            let response = self.call(&retry)?;
            if response.kind == kind::OK {
                self.known.extend(modules.iter().map(|m| m.hash));
            }
            return Ok(response);
        }
        if response.kind == kind::OK {
            self.known.extend(modules.iter().map(|m| m.hash));
        }
        Ok(response)
    }

    /// Send a batch of `(kind, modules, plain)` requests in one frame
    /// and return the per-item replies in order. `NEED_MODULE` items
    /// are retried (unbatched) with full bodies, so callers see only
    /// final outcomes.
    ///
    /// # Errors
    ///
    /// I/O failure, or a malformed batch response.
    pub fn call_batch(&mut self, items: &[BatchItem<'_>]) -> io::Result<Vec<BatchReply>> {
        let mut payload = Vec::new();
        for (k, modules, plain) in items {
            let known = &self.known;
            let item = request_payload(modules, plain, |h| known.contains(&h));
            push_batch_item(&mut payload, *k, &item);
        }
        let request = Frame2 {
            kind: kind::BATCH,
            flags: flags::BATCH,
            code: 0,
            aux: 0,
            payload,
        };
        let response = self.call(&request)?;
        if response.kind != kind::OK || response.flags & flags::BATCH == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "batch response was kind {} code {}: {}",
                    response.kind,
                    response.code,
                    response.payload_text()
                ),
            ));
        }
        let mut replies = batch_replies(&response.payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        if replies.len() != items.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "batch of {} answered with {} replies",
                    items.len(),
                    replies.len()
                ),
            ));
        }
        for (i, reply) in replies.iter_mut().enumerate() {
            let (k, modules, plain) = &items[i];
            if reply.kind == kind::ERROR && reply.code == code::NEED_MODULE {
                for m in *modules {
                    self.known.remove(&m.hash);
                }
                let retry = self.call_interned(*k, modules, plain)?;
                *reply = BatchReply {
                    kind: retry.kind,
                    code: retry.code,
                    aux: retry.aux,
                    payload: retry.payload,
                };
            } else if reply.kind == kind::OK {
                self.known.extend(modules.iter().map(|m| m.hash));
            }
        }
        Ok(replies)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrips_binary() {
        let frame = Frame2::request(
            kind::REORDER,
            &[
                (sec::MODULE, b"func main() {\n}\n".as_slice()),
                (sec::TRAIN, &[0, 255, b'\n', 7]),
            ],
        );
        let mut wire = Vec::new();
        frame.write_to(&mut wire).unwrap();
        let back = Frame2::read_from(&mut wire.as_slice()).unwrap();
        assert_eq!(back, frame);
        let secs = sections(&back.payload).unwrap();
        assert_eq!(secs.len(), 2);
        assert_eq!(secs[0], (sec::MODULE, b"func main() {\n}\n".as_slice()));
        assert_eq!(secs[1].1, &[0u8, 255, b'\n', 7]);
    }

    #[test]
    fn header_fields_survive() {
        let frame = Frame2 {
            kind: kind::OK,
            flags: flags::BATCH,
            code: code::SHED,
            aux: 0xdead_beef_cafe_f00d,
            payload: b"x".to_vec(),
        };
        let mut wire = Vec::new();
        frame.write_to(&mut wire).unwrap();
        let back = Frame2::read_from(&mut wire.as_slice()).unwrap();
        assert_eq!(back.aux, 0xdead_beef_cafe_f00d);
        assert_eq!(back.code, code::SHED);
        assert_eq!(back.flags, flags::BATCH);
    }

    #[test]
    fn bad_magic_and_truncation_are_errors() {
        assert!(Frame2::read_from(&mut b"brs1 ok 0\n".as_slice()).is_err());
        let mut wire = Vec::new();
        Frame2::request(kind::HEALTH, &[])
            .write_to(&mut wire)
            .unwrap();
        wire.truncate(HEADER2 - 3);
        assert!(Frame2::read_from(&mut wire.as_slice()).is_err());
        // Oversized length is rejected before allocation.
        let mut huge = Vec::new();
        Frame2 {
            kind: kind::OK,
            flags: 0,
            code: 0,
            aux: 0,
            payload: Vec::new(),
        }
        .write_to(&mut huge)
        .unwrap();
        huge[16..20].copy_from_slice(&(u32::MAX).to_le_bytes());
        assert!(Frame2::read_from(&mut huge.as_slice()).is_err());
    }

    #[test]
    fn batch_items_and_replies_roundtrip() {
        let mut payload = Vec::new();
        push_batch_item(&mut payload, kind::REORDER, b"abc");
        push_batch_item(&mut payload, kind::MEASURE, b"");
        let items = batch_items(&payload).unwrap();
        assert_eq!(
            items,
            vec![
                (kind::REORDER, b"abc".as_slice()),
                (kind::MEASURE, b"".as_slice())
            ]
        );

        let mut out = Vec::new();
        let reply = BatchReply {
            kind: kind::OK,
            code: code::OK,
            aux: 42,
            payload: b"result".to_vec(),
        };
        push_batch_reply(&mut out, &reply);
        assert_eq!(batch_replies(&out).unwrap(), vec![reply]);
        assert!(batch_replies(&out[..5]).is_err());
    }

    #[test]
    fn request_payload_switches_between_hash_and_body() {
        let m = ModuleRef::new(sec::MODULE, Arc::new("func f() {}\n".to_string()));
        let by_hash = request_payload(std::slice::from_ref(&m), &[(sec::TRAIN, b"t")], |_| true);
        let secs = sections(&by_hash).unwrap();
        assert_eq!(secs[0].0, sec::MODULE_HASH);
        assert_eq!(secs[0].1, m.hash.to_le_bytes());
        let full = request_payload(std::slice::from_ref(&m), &[(sec::TRAIN, b"t")], |_| false);
        let secs = sections(&full).unwrap();
        assert_eq!(secs[0].0, sec::MODULE);
        assert_eq!(secs[0].1, m.text.as_bytes());
        // The hash form is radically smaller — the point of interning.
        assert!(by_hash.len() < full.len());
    }
}
