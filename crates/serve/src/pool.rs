//! Bounded worker pool with admission control.
//!
//! Connection threads parse frames; *compute* happens here. The pool
//! owns the daemon's overload policy:
//!
//! * **Admission queue.** A bounded FIFO between connection threads and
//!   workers. [`Pool::submit`] refuses — never blocks — when the queue
//!   is at its limit, so one burst cannot build unbounded memory or
//!   latency debt; the caller turns a refusal into an `overloaded`
//!   frame, which a well-behaved client treats as backpressure.
//! * **Deadlines.** Each job carries an optional deadline. A job whose
//!   deadline passed while it sat in the queue is answered with an
//!   `error` frame without being started — work that nobody is waiting
//!   for anymore is the first thing an overloaded service must drop. A
//!   job that *started* in time runs to completion (threads cannot be
//!   cancelled safely); late completions are still delivered and are
//!   visible in the `deadline_expired` counter.
//! * **Panic isolation.** The handler runs under [`catch_unwind`]: a
//!   request that panics the pipeline produces an `error` frame naming
//!   the panic, and the worker thread survives to take the next job.
//! * **Graceful drain.** [`Pool::drain`] lets queued jobs finish,
//!   refuses new ones, and joins every worker.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::endpoints::Response;
use crate::metrics::Metrics;
use crate::proto::Frame;
use crate::proto2::code;

/// One admitted request waiting for a worker.
pub struct Job {
    /// The request frame.
    pub request: Frame,
    /// When the job was admitted (latency measurement starts here).
    pub accepted: Instant,
    /// Absolute deadline; `None` means no limit.
    pub deadline: Option<Instant>,
    /// Where the response goes (the connection thread blocks on the
    /// other end).
    pub reply: mpsc::Sender<Response>,
}

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    limit: usize,
    draining: AtomicBool,
}

/// The worker pool. Dropping it without [`Pool::drain`] detaches the
/// workers (they exit once told to drain; the daemon always drains).
pub struct Pool {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// Extract a human-readable message from a panic payload.
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl Pool {
    /// Start `threads` workers feeding from a queue bounded at
    /// `queue_limit` jobs, each request handled by `handler`.
    pub fn start(
        threads: usize,
        queue_limit: usize,
        metrics: Arc<Metrics>,
        handler: Arc<dyn Fn(&Frame) -> Response + Send + Sync>,
    ) -> Pool {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            limit: queue_limit.max(1),
            draining: AtomicBool::new(false),
        });
        let workers = (0..threads.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                let metrics = Arc::clone(&metrics);
                let handler = Arc::clone(&handler);
                std::thread::spawn(move || worker(&shared, &metrics, handler.as_ref()))
            })
            .collect();
        Pool {
            shared,
            workers: Mutex::new(workers),
        }
    }

    /// Admit a job, or hand it back when the queue is full or the pool
    /// is draining — the caller sheds it with an `overloaded` frame.
    pub fn submit(&self, job: Job) -> Result<(), Job> {
        if self.shared.draining.load(Ordering::SeqCst) {
            return Err(job);
        }
        let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
        if queue.len() >= self.shared.limit {
            return Err(job);
        }
        queue.push_back(job);
        drop(queue);
        self.shared.available.notify_one();
        Ok(())
    }

    /// Jobs currently queued (diagnostic; racy by nature).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.lock().expect("pool queue poisoned").len()
    }

    /// Finish every queued job, refuse new ones, and join the workers.
    /// Idempotent; `&self` so the daemon can drain a shared pool.
    pub fn drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
        let workers: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.workers.lock().expect("pool workers poisoned"));
        for w in workers {
            let _ = w.join();
        }
    }
}

fn worker(shared: &Shared, metrics: &Metrics, handler: &(dyn Fn(&Frame) -> Response + Sync)) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared.available.wait(queue).expect("pool queue poisoned");
            }
        };
        let response = run_job(&job, metrics, handler);
        match response.frame.kind.as_str() {
            "ok" => metrics.ok.fetch_add(1, Ordering::Relaxed),
            _ => metrics.errors.fetch_add(1, Ordering::Relaxed),
        };
        metrics.latency.record(job.accepted.elapsed());
        // A send failure means the connection is gone; the work is
        // simply discarded, which is the right amount of caring.
        let _ = job.reply.send(response);
    }
}

fn run_job(
    job: &Job,
    metrics: &Metrics,
    handler: &(dyn Fn(&Frame) -> Response + Sync),
) -> Response {
    if let Some(deadline) = job.deadline {
        if Instant::now() > deadline {
            metrics.expired.fetch_add(1, Ordering::Relaxed);
            return Response::error(
                code::DEADLINE,
                &format!(
                    "deadline expired after {:?} in queue",
                    job.accepted.elapsed()
                ),
            );
        }
    }
    let response = match catch_unwind(AssertUnwindSafe(|| handler(&job.request))) {
        Ok(response) => response,
        Err(payload) => Response::error(
            code::INTERNAL,
            &format!(
                "internal panic handling {} request: {}",
                job.request.kind,
                panic_message(payload)
            ),
        ),
    };
    if let Some(deadline) = job.deadline {
        if Instant::now() > deadline {
            metrics.expired.fetch_add(1, Ordering::Relaxed);
        }
    }
    response
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn echo_pool(threads: usize, limit: usize) -> (Pool, Arc<Metrics>) {
        let metrics = Arc::new(Metrics::default());
        let pool = Pool::start(
            threads,
            limit,
            Arc::clone(&metrics),
            Arc::new(|req: &Frame| match req.kind.as_str() {
                "boom" => panic!("intentional test panic"),
                "slow" => {
                    std::thread::sleep(Duration::from_millis(100));
                    Response::ok(b"slow done".to_vec(), 0)
                }
                _ => Response::ok(req.payload.clone(), 0),
            }),
        );
        (pool, metrics)
    }

    fn job(kind: &str, deadline: Option<Instant>) -> (Job, mpsc::Receiver<Response>) {
        let (tx, rx) = mpsc::channel();
        (
            Job {
                request: Frame::text(kind, "payload"),
                accepted: Instant::now(),
                deadline,
                reply: tx,
            },
            rx,
        )
    }

    #[test]
    fn completes_jobs_and_survives_panics() {
        let (pool, metrics) = echo_pool(2, 16);
        let (boom, boom_rx) = job("boom", None);
        pool.submit(boom).ok().unwrap();
        let response = boom_rx.recv().unwrap();
        assert_eq!(response.frame.kind, "error");
        assert_eq!(response.code, code::INTERNAL);
        assert!(response
            .frame
            .payload_text()
            .contains("intentional test panic"));

        // The pool keeps serving after the panic.
        let (ok, ok_rx) = job("echo", None);
        pool.submit(ok).ok().unwrap();
        assert_eq!(ok_rx.recv().unwrap().frame.kind, "ok");
        pool.drain();
        assert_eq!(metrics.ok.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.errors.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn full_queue_refuses_admission() {
        let (pool, _metrics) = echo_pool(1, 1);
        let (slow, slow_rx) = job("slow", None);
        pool.submit(slow).ok().unwrap();
        // Wait until the worker has the slow job off the queue.
        while pool.queue_depth() > 0 {
            std::thread::yield_now();
        }
        let (queued, queued_rx) = job("echo", None);
        pool.submit(queued).ok().unwrap();
        // Queue is at its limit of 1: the third job is refused.
        let (shed, _shed_rx) = job("echo", None);
        assert!(pool.submit(shed).is_err());
        assert_eq!(slow_rx.recv().unwrap().frame.kind, "ok");
        assert_eq!(queued_rx.recv().unwrap().frame.kind, "ok");
        pool.drain();
    }

    #[test]
    fn queued_past_deadline_is_an_error() {
        let (pool, metrics) = echo_pool(1, 4);
        let (slow, slow_rx) = job("slow", None);
        pool.submit(slow).ok().unwrap();
        // This job's deadline passes while the slow job holds the only
        // worker, so it must be answered without being started.
        let (late, late_rx) = job("echo", Some(Instant::now() + Duration::from_millis(10)));
        pool.submit(late).ok().unwrap();
        assert_eq!(slow_rx.recv().unwrap().frame.kind, "ok");
        let response = late_rx.recv().unwrap();
        assert_eq!(response.frame.kind, "error");
        assert_eq!(response.code, code::DEADLINE);
        assert!(response.frame.payload_text().contains("deadline expired"));
        pool.drain();
        assert_eq!(metrics.expired.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn drain_refuses_new_work() {
        let (pool, _metrics) = echo_pool(2, 4);
        let (a, a_rx) = job("echo", None);
        pool.submit(a).ok().unwrap();
        assert_eq!(a_rx.recv().unwrap().frame.kind, "ok");
        pool.drain();
        // After drain the pool is gone; nothing left to assert beyond
        // the join having returned without hanging.
    }
}
